#!/usr/bin/env bash
# Workspace CI gate. Run from the repository root:
#
#   ./ci.sh          # format check, clippy, xylem-lint audit, full test suite
#   ./ci.sh lint     # determinism audit only: xylem-lint text + --json modes
#   ./ci.sh sanitize # sanitizer lane: miri (if installed) over the pure
#                    # crates + thread-count determinism digests (default
#                    # and GMG-forced solver configurations)
#   ./ci.sh bench    # regenerate BENCH_thermal.json: steady scaling up to
#                    # 128x128, AMG-vs-GMG setup/apply/solve head-to-head,
#                    # stencil-vs-CSR matvec microbench, matched-accuracy
#                    # adaptive comparison
#   ./ci.sh faults   # fault-injection sweep: seeded sensor faults, forced
#                    # solver failures, checkpoint/resume bit-identity
#   ./ci.sh golden   # fast paper-claims suite (EXPERIMENTS.md ✅ rows) +
#                    # observability invariants, in release mode
#   ./ci.sh adaptive # adaptive-stepping convergence vs fixed-step reference
#                    # + 50-scenario divergence-injection sweep, release mode
#   ./ci.sh sweep    # sweep-engine resilience lane: a 3x3 journaled sweep
#                    # SIGKILLed mid-run must resume to 100% completion with
#                    # zero duplicate journal entries, and a seeded chaos
#                    # campaign (panics, non-convergence, deadline blowouts)
#                    # must end every task ok|quarantined and replay
#                    # bit-identically
#   ./ci.sh serve    # service lane: admission/backpressure + fairness +
#                    # crash acceptance tests (SIGKILL mid-run must resume
#                    # bit-identically with zero duplicate frames), then the
#                    # full chaos/load selftest campaign — 1000 clients, 8
#                    # tenants, seeded panics/errors/deadline misses, and a
#                    # kill drill — merging latency percentiles into
#                    # BENCH_thermal.json
#   ./ci.sh scenario # .stk DSL lane: conformance corpus (every valid file
#                    # lowers+solves, every invalid file matches its locked
#                    # .stderr snapshot), parser totality fuzz, print/parse
#                    # round-trip, golden equivalence vs the hard-wired
#                    # paper builder, and the scenario determinism digest
#
# The lint audit fails on any new finding AND on stale allowlist/baseline
# entries (the ratchet: fixing an exempted finding requires deleting its
# entry). Each stage fails fast; the whole script passing is the merge bar.
set -euo pipefail
cd "$(dirname "$0")"

if [[ "${1:-}" == "lint" ]]; then
  shift
  echo "==> xylem-lint determinism audit"
  cargo run -q -p xylem-lint -- "$@"
  exit 0
fi

if [[ "${1:-}" == "sanitize" ]]; then
  # Pure crates first: no threads, no FFI — miri-friendly if a miri
  # toolchain is installed, plain `cargo test` otherwise. The container
  # image does not bake miri in, so its absence is a skip, not a failure.
  if cargo miri --version >/dev/null 2>&1; then
    echo "==> miri (pure crates: lint, obs, workloads)"
    cargo miri test -q -p xylem-lint -p xylem-obs -p xylem-workloads
  else
    echo "==> miri not installed; falling back to plain tests for pure crates"
    cargo test -q -p xylem-lint -p xylem-obs -p xylem-workloads
  fi
  echo "==> thread-count determinism digests (default + GMG, 1 vs 4 threads)"
  cargo test -q --release -p xylem-core --test thread_determinism
  echo "Sanitize lane green."
  exit 0
fi

if [[ "${1:-}" == "bench" ]]; then
  echo "==> solver smoke bench (BENCH_thermal.json: scaling to 128x128, AMG vs GMG, stencil matvec)"
  cargo run --release -q -p xylem-bench --bin bench_thermal_smoke
  exit 0
fi

if [[ "${1:-}" == "faults" ]]; then
  echo "==> fault-injection sweep (50 seeded scenarios + checkpoint/resume)"
  cargo test -q -p xylem-core --test fault_injection
  echo "==> DTM fault/checkpoint property tests"
  cargo test -q -p xylem-core --test proptest_dtm
  echo "Fault sweep green."
  exit 0
fi

if [[ "${1:-}" == "adaptive" ]]; then
  echo "==> adaptive convergence (error vs rtol, solve-count saving)"
  cargo test -q --release -p xylem-thermal --test adaptive_convergence
  echo "==> divergence injection (50 seeded scenarios, rollback/hold/budget)"
  cargo test -q --release -p xylem-thermal --test adaptive_divergence
  echo "==> adaptive DTM integration (summary, v1 compat, bit-identical resume)"
  cargo test -q --release -p xylem-core --test adaptive_dtm
  echo "Adaptive suite green."
  exit 0
fi

if [[ "${1:-}" == "sweep" ]]; then
  echo "==> sweep resilience (SIGKILL + resume, chaos campaign, 3x3 grid)"
  cargo test -q --release -p xylem-sweep --test resilience
  echo "==> sweep engine unit tests (backoff, journal, spec, chaos rolls)"
  cargo test -q --release -p xylem-sweep --lib
  echo "==> sweep thread/shard-count determinism digest (1 vs 4)"
  cargo test -q --release -p xylem-core --test thread_determinism sweep_is_bit
  echo "Sweep lane green."
  exit 0
fi

if [[ "${1:-}" == "serve" ]]; then
  echo "==> serve admission control (backpressure, quotas, shedding, restart)"
  cargo test -q --release -p xylem-serve --test backpressure
  echo "==> serve load smoke + tenant-fairness regression (tick-metered p99 bound)"
  cargo test -q --release -p xylem-serve --test load
  echo "==> serve SIGKILL drill (kill -9 mid-run; bit-identical resume, zero dup frames)"
  cargo test -q --release -p xylem-serve --test crash
  echo "==> serve unit + protocol tests"
  cargo test -q --release -p xylem-serve --lib
  echo "==> chaos/load selftest campaign (1000 clients, kill drill, bench row)"
  cargo run -q --release -p xylem-sweep --bin xylem -- serve --selftest \
    --sessions 1000 --kill-drill --spool target/serve-selftest \
    --bench-out BENCH_thermal.json
  echo "Serve lane green."
  exit 0
fi

if [[ "${1:-}" == "scenario" ]]; then
  echo "==> .stk conformance corpus (valid lowers+solves, invalid snapshot-locked)"
  cargo test -q -p xylem-scenario --test conformance
  echo "==> parser totality fuzz (every-byte truncation, mutation, byte soup)"
  cargo test -q -p xylem-scenario --test fuzz_totality
  echo "==> print/parse round-trip (corpus + generated IRs)"
  cargo test -q -p xylem-scenario --test roundtrip
  echo "==> golden equivalence vs the hard-wired paper builder (bit-for-bit)"
  cargo test -q --release -p xylem-scenario --test golden_equivalence
  echo "==> scenario sweep + unit tests"
  cargo test -q -p xylem-scenario --lib
  cargo test -q -p xylem-sweep --lib scenario
  echo "==> scenario thread-count determinism digest (1 vs 4)"
  cargo test -q --release -p xylem-core --test thread_determinism scenario_solve
  echo "Scenario lane green."
  exit 0
fi

if [[ "${1:-}" == "golden" ]]; then
  echo "==> golden paper-claims suite (EXPERIMENTS.md rows, 32x32, release)"
  cargo test -q --release -p xylem-core --test golden_paper_claims
  echo "==> thread-count determinism (bit-identical runs, 1 vs 4 threads)"
  cargo test -q --release -p xylem-core --test thread_determinism
  echo "==> xylem-obs unit + property tests"
  cargo test -q --release -p xylem-obs
  echo "Golden suite green."
  exit 0
fi

echo "==> cargo fmt --check"
cargo fmt --all --check

# Lints only lib/bin targets: test code is allowed to unwrap (the
# [workspace.lints] clippy::unwrap_used policy is for library code).
echo "==> cargo clippy (libs + bins, warnings are errors)"
cargo clippy --workspace --lib --bins -- -D warnings

echo "==> xylem-lint determinism audit (nine rules, baseline ratchet, stale check)"
cargo run -q -p xylem-lint
echo "==> xylem-lint --json (machine-readable findings, schema-locked JSONL)"
cargo run -q -p xylem-lint -- --json

echo "==> cargo test"
cargo test -q --workspace

echo "CI green."
