//! Property-based tests for the Wide I/O channel model.

use proptest::prelude::*;

use xylem_dram::channel::{MemoryRequest, RequestKind, WideIoStack};
use xylem_dram::timing::{refresh_interval_ms, refresh_overhead, WideIoTiming};

fn request(addr: u64, write: bool, issue_ns: f64) -> MemoryRequest {
    MemoryRequest {
        addr,
        kind: if write {
            RequestKind::Write
        } else {
            RequestKind::Read
        },
        issue_ns,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every access completes no earlier than issue + the row-hit service
    /// time, and no access completes before its issue time.
    #[test]
    fn completion_bounds(
        ops in proptest::collection::vec((any::<u32>(), any::<bool>(), 0.0f64..1000.0), 1..60)
    ) {
        let t = WideIoTiming::paper_default();
        let mut stack = WideIoStack::new(t);
        for (addr, write, dt) in ops {
            let issue = dt;
            let (done, _) = stack.access(request(u64::from(addr) * 64, write, issue));
            prop_assert!(done >= issue + t.hit_latency() - 1e-9,
                "done {done} < issue {issue} + hit {}", t.hit_latency());
        }
    }

    /// Statistics add up: hits + closed misses + conflicts == total
    /// requests, and every non-hit issued an ACT.
    #[test]
    fn stats_are_consistent(
        ops in proptest::collection::vec((any::<u32>(), any::<bool>()), 1..100)
    ) {
        let mut stack = WideIoStack::paper_default();
        let mut now = 0.0;
        for (addr, write) in ops {
            let (done, _) = stack.access(request(u64::from(addr) * 64, write, now));
            now = done;
        }
        let s = stack.total_stats();
        let total = s.reads + s.writes;
        prop_assert_eq!(s.row_hits + s.closed_misses + s.conflicts, total);
        prop_assert_eq!(s.activates, s.closed_misses + s.conflicts);
        prop_assert!(s.mean_latency_ns() > 0.0);
        prop_assert!(s.hit_rate() <= 1.0);
    }

    /// The data bus never overlaps bursts: total bus-busy time fits in
    /// the span of the simulation.
    #[test]
    fn bus_time_bounded_by_makespan(
        n in 1usize..200
    ) {
        let t = WideIoTiming::paper_default();
        let mut stack = WideIoStack::new(t);
        let mut last = 0.0f64;
        for i in 0..n {
            // Same channel (bits 6-7 zero), alternating banks.
            let addr = ((i as u64 % 4) << 10) | ((i as u64 / 4) << 12);
            let (done, _) = stack.access(request(addr, false, 0.0));
            last = last.max(done);
        }
        let busy = stack.channels()[0].stats().bus_busy_ns;
        prop_assert!(busy <= last + 1e-9, "busy {busy} > makespan {last}");
    }

    /// Refresh interval is monotone non-increasing in temperature and
    /// refresh overhead monotone non-decreasing.
    #[test]
    fn refresh_monotone(t1 in 20.0f64..120.0, t2 in 20.0f64..120.0) {
        let (lo, hi) = if t1 < t2 { (t1, t2) } else { (t2, t1) };
        prop_assert!(refresh_interval_ms(lo) >= refresh_interval_ms(hi));
        let timing = WideIoTiming::paper_default();
        prop_assert!(refresh_overhead(&timing, lo) <= refresh_overhead(&timing, hi));
    }

    /// Serving the same request sequence twice gives identical timing
    /// (the model is deterministic).
    #[test]
    fn deterministic(
        ops in proptest::collection::vec((any::<u32>(), any::<bool>()), 1..50)
    ) {
        let run = || {
            let mut stack = WideIoStack::paper_default();
            let mut out = Vec::new();
            let mut now = 0.0;
            for &(addr, write) in &ops {
                let (done, _) = stack.access(request(u64::from(addr) * 64, write, now));
                out.push(done);
                now = done;
            }
            out
        };
        prop_assert_eq!(run(), run());
    }
}
