//! Channel model: bank state machines and an open-page FCFS controller.
//!
//! A Wide I/O channel owns 4 ranks (one per stacked slice) of 4 banks. The
//! controller keeps rows open (open-page policy), schedules requests FCFS,
//! and respects tRCD/tRP/tRAS/tWR plus data-bus occupancy. The model is
//! event-based on a nanosecond timeline: each [`Channel::access`] returns
//! the request's completion time.

use serde::{Deserialize, Serialize};

use crate::timing::WideIoTiming;

/// Read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RequestKind {
    /// A 64-byte read.
    Read,
    /// A 64-byte write.
    Write,
}

/// One memory request on the stack's physical address space.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryRequest {
    /// Physical address (64-byte aligned access assumed).
    pub addr: u64,
    /// Read or write.
    pub kind: RequestKind,
    /// Arrival time at the controller, ns.
    pub issue_ns: f64,
}

/// Physical address decomposition for the Wide I/O stack:
/// `| row | bank(2) | rank(2) | channel(2) | offset(6) |`
/// — cache-line interleaving across channels, then ranks, then banks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecodedAddress {
    /// Channel, 0..4.
    pub channel: usize,
    /// Rank (slice), 0..4.
    pub rank: usize,
    /// Bank within the rank, 0..4.
    pub bank: usize,
    /// Row.
    pub row: u64,
}

impl DecodedAddress {
    /// Decodes a physical address.
    pub fn decode(addr: u64) -> Self {
        DecodedAddress {
            channel: ((addr >> 6) & 0x3) as usize,
            rank: ((addr >> 8) & 0x3) as usize,
            bank: ((addr >> 10) & 0x3) as usize,
            row: addr >> 12,
        }
    }
}

/// Row-buffer outcome of an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RowBufferOutcome {
    /// The requested row was already open.
    Hit,
    /// The bank was idle (no open row).
    ClosedMiss,
    /// Another row was open and had to be precharged.
    Conflict,
}

#[derive(Debug, Clone, Copy, Default)]
struct Bank {
    open_row: Option<u64>,
    /// Bank unavailable until (command-wise), ns.
    ready_at: f64,
    /// Time of the last ACT (for tRAS), ns.
    last_activate: f64,
}

/// Aggregate channel statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ChannelStats {
    /// Reads served.
    pub reads: u64,
    /// Writes served.
    pub writes: u64,
    /// Row-buffer hits.
    pub row_hits: u64,
    /// Closed-bank misses.
    pub closed_misses: u64,
    /// Row conflicts.
    pub conflicts: u64,
    /// ACT commands issued.
    pub activates: u64,
    /// Total data-bus busy time, ns.
    pub bus_busy_ns: f64,
    /// Sum of request latencies, ns.
    pub total_latency_ns: f64,
}

impl ChannelStats {
    /// Mean request latency, ns (0 if no requests).
    pub fn mean_latency_ns(&self) -> f64 {
        let n = self.reads + self.writes;
        if n == 0 {
            0.0
        } else {
            self.total_latency_ns / n as f64
        }
    }

    /// Row-buffer hit rate (0 if no requests).
    pub fn hit_rate(&self) -> f64 {
        let n = self.reads + self.writes;
        if n == 0 {
            0.0
        } else {
            self.row_hits as f64 / n as f64
        }
    }
}

/// One Wide I/O channel: 4 ranks x 4 banks behind a shared data bus.
#[derive(Debug, Clone)]
pub struct Channel {
    timing: WideIoTiming,
    banks: Vec<Bank>, // 16 = rank * 4 + bank
    bus_free_at: f64,
    stats: ChannelStats,
}

impl Channel {
    /// Creates an idle channel.
    pub fn new(timing: WideIoTiming) -> Self {
        Channel {
            timing,
            banks: vec![Bank::default(); 16],
            bus_free_at: 0.0,
            stats: ChannelStats::default(),
        }
    }

    /// Serves one request (FCFS, open-page); returns
    /// `(completion time ns, row-buffer outcome)`.
    pub fn access(
        &mut self,
        rank: usize,
        bank: usize,
        row: u64,
        req: &MemoryRequest,
    ) -> (f64, RowBufferOutcome) {
        assert!(
            rank < 4 && bank < 4,
            "rank {rank} / bank {bank} out of range"
        );
        let t = self.timing;
        let b = &mut self.banks[rank * 4 + bank];
        let start = req.issue_ns.max(b.ready_at);

        let (outcome, cas_start) = match b.open_row {
            Some(r) if r == row => (RowBufferOutcome::Hit, start),
            Some(_) => {
                // Precharge (respecting tRAS since the last ACT), then ACT.
                let pre_at = start.max(b.last_activate + t.t_ras);
                let act_at = pre_at + t.t_rp;
                b.last_activate = act_at;
                self.stats.activates += 1;
                (RowBufferOutcome::Conflict, act_at + t.t_rcd)
            }
            None => {
                b.last_activate = start;
                self.stats.activates += 1;
                (RowBufferOutcome::ClosedMiss, start + t.t_rcd)
            }
        };
        b.open_row = Some(row);

        // CAS, then the burst occupies the shared data bus.
        let data_ready = cas_start + t.t_cl;
        let burst_start = data_ready.max(self.bus_free_at);
        let completion = burst_start + t.t_burst;
        self.bus_free_at = completion;
        self.stats.bus_busy_ns += t.t_burst;

        // Bank can accept the next CAS one burst slot later (tCCD);
        // writes additionally pay the write-recovery time before the bank
        // may be precharged or re-CASed.
        b.ready_at = match req.kind {
            RequestKind::Read => cas_start + t.t_burst,
            RequestKind::Write => completion + t.t_wr,
        };

        match req.kind {
            RequestKind::Read => self.stats.reads += 1,
            RequestKind::Write => self.stats.writes += 1,
        }
        match outcome {
            RowBufferOutcome::Hit => self.stats.row_hits += 1,
            RowBufferOutcome::ClosedMiss => self.stats.closed_misses += 1,
            RowBufferOutcome::Conflict => self.stats.conflicts += 1,
        }
        self.stats.total_latency_ns += completion - req.issue_ns;
        (completion, outcome)
    }

    /// Statistics so far.
    pub fn stats(&self) -> &ChannelStats {
        &self.stats
    }

    /// The channel's timing parameters.
    pub fn timing(&self) -> &WideIoTiming {
        &self.timing
    }

    /// The currently open row of `(rank, bank)`, if any — what an
    /// FR-FCFS scheduler inspects to find row hits.
    ///
    /// # Panics
    ///
    /// Panics if rank/bank are out of range.
    pub fn open_row(&self, rank: usize, bank: usize) -> Option<u64> {
        assert!(rank < 4 && bank < 4);
        self.banks[rank * 4 + bank].open_row
    }

    /// Earliest time the bank can accept a new command, ns.
    ///
    /// # Panics
    ///
    /// Panics if rank/bank are out of range.
    pub fn bank_ready_at(&self, rank: usize, bank: usize) -> f64 {
        assert!(rank < 4 && bank < 4);
        self.banks[rank * 4 + bank].ready_at
    }
}

/// The full 4-channel Wide I/O stack.
#[derive(Debug, Clone)]
pub struct WideIoStack {
    channels: Vec<Channel>,
}

impl WideIoStack {
    /// Creates an idle stack with the given per-channel timing.
    pub fn new(timing: WideIoTiming) -> Self {
        WideIoStack {
            channels: (0..4).map(|_| Channel::new(timing)).collect(),
        }
    }

    /// A stack with the paper's timing.
    pub fn paper_default() -> Self {
        WideIoStack::new(WideIoTiming::paper_default())
    }

    /// Serves one request; returns `(completion time ns, outcome)`.
    pub fn access(&mut self, req: MemoryRequest) -> (f64, RowBufferOutcome) {
        let d = DecodedAddress::decode(req.addr);
        self.channels[d.channel].access(d.rank, d.bank, d.row, &req)
    }

    /// Per-channel views.
    pub fn channels(&self) -> &[Channel] {
        &self.channels
    }

    /// Summed statistics across channels.
    pub fn total_stats(&self) -> ChannelStats {
        let mut out = ChannelStats::default();
        for c in &self.channels {
            let s = c.stats();
            out.reads += s.reads;
            out.writes += s.writes;
            out.row_hits += s.row_hits;
            out.closed_misses += s.closed_misses;
            out.conflicts += s.conflicts;
            out.activates += s.activates;
            out.bus_busy_ns += s.bus_busy_ns;
            out.total_latency_ns += s.total_latency_ns;
        }
        out
    }

    /// Peak bandwidth of the stack, bytes/ns (= GB/s): 64 bytes per burst
    /// slot per channel.
    pub fn peak_bandwidth_gbps(&self) -> f64 {
        4.0 * 64.0 / self.channels[0].timing().t_burst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read_at(addr: u64, ns: f64) -> MemoryRequest {
        MemoryRequest {
            addr,
            kind: RequestKind::Read,
            issue_ns: ns,
        }
    }

    #[test]
    fn address_decode_roundtrip_fields() {
        let d = DecodedAddress::decode(0b1011_01_10_11_000000);
        assert_eq!(d.channel, 0b11);
        assert_eq!(d.rank, 0b10);
        assert_eq!(d.bank, 0b01);
        assert_eq!(d.row, 0b1011);
    }

    #[test]
    fn idle_closed_access_latency() {
        let mut s = WideIoStack::paper_default();
        let (done, outcome) = s.access(read_at(0, 0.0));
        assert_eq!(outcome, RowBufferOutcome::ClosedMiss);
        let t = WideIoTiming::paper_default();
        assert!((done - t.closed_latency()).abs() < 1e-9, "{done}");
    }

    #[test]
    fn row_hit_is_faster_conflict_is_slower() {
        let mut s = WideIoStack::paper_default();
        let (d1, _) = s.access(read_at(0, 0.0));
        // Same row (same everything above bit 12).
        let (d2, o2) = s.access(read_at(0, d1));
        assert_eq!(o2, RowBufferOutcome::Hit);
        let t = WideIoTiming::paper_default();
        assert!((d2 - d1 - t.hit_latency()).abs() < 1e-9);
        // Different row, same bank -> conflict.
        let (d3, o3) = s.access(read_at(1 << 12, d2));
        assert_eq!(o3, RowBufferOutcome::Conflict);
        assert!(d3 - d2 >= t.conflict_latency() - 1e-9);
    }

    #[test]
    fn t_ras_delays_early_conflict() {
        let mut s = WideIoStack::paper_default();
        let t = WideIoTiming::paper_default();
        let (_d1, _) = s.access(read_at(0, 0.0));
        // Immediately conflict: precharge must wait until tRAS after ACT@0.
        let (d2, o2) = s.access(read_at(1 << 12, 0.0));
        assert_eq!(o2, RowBufferOutcome::Conflict);
        assert!(
            d2 >= t.t_ras + t.t_rp + t.t_rcd + t.hit_latency() - 1e-9,
            "{d2}"
        );
    }

    #[test]
    fn bank_parallelism_beats_single_bank() {
        let t = WideIoTiming::paper_default();
        // 8 back-to-back reads to one bank+row vs spread over 4 banks.
        let mut single = WideIoStack::new(t);
        let mut last = 0.0;
        for i in 0..8u64 {
            let (d, _) = single.access(read_at(i << 13, 0.0));
            last = d;
        }
        let mut spread = WideIoStack::new(t);
        let mut last_spread = 0.0;
        for i in 0..8u64 {
            let bank = i % 4;
            let row = i / 4;
            let (d, _) = spread.access(read_at((row << 13) | (bank << 10), 0.0));
            last_spread = d;
        }
        assert!(last_spread < last, "{last_spread} vs {last}");
    }

    #[test]
    fn channel_interleaving_spreads_load() {
        let mut s = WideIoStack::paper_default();
        for i in 0..16u64 {
            s.access(read_at(i * 64, 0.0));
        }
        for c in s.channels() {
            assert_eq!(c.stats().reads, 4);
        }
    }

    #[test]
    fn write_recovery_blocks_bank() {
        let mut s = WideIoStack::paper_default();
        let t = WideIoTiming::paper_default();
        let (d1, _) = s.access(MemoryRequest {
            addr: 0,
            kind: RequestKind::Write,
            issue_ns: 0.0,
        });
        // A conflicting read right after the write waits out tWR too.
        let (d2, _) = s.access(read_at(1 << 12, d1));
        assert!(d2 - d1 >= t.t_wr - 1e-9, "{}", d2 - d1);
    }

    #[test]
    fn peak_bandwidth_is_paper_rate() {
        let s = WideIoStack::paper_default();
        // 4 channels x 64 B / 2.5 ns = 102.4 GB/s burst peak; the sustained
        // paper rate (51.2 GB/s) is half of burst peak.
        let bw = s.peak_bandwidth_gbps();
        assert!((bw - 102.4).abs() < 0.1, "{bw}");
    }

    #[test]
    fn saturation_respects_bus_bandwidth() {
        let mut s = WideIoStack::paper_default();
        // Flood one channel (channel 0: addr bit 6-7 = 0) with row hits.
        let mut done = 0.0;
        let n = 1000;
        for _ in 0..n {
            let (d, _) = s.access(read_at(0, 0.0));
            done = d;
        }
        let bytes = n as f64 * 64.0;
        let gbps = bytes / done;
        let t = WideIoTiming::paper_default();
        let single_channel_peak = 64.0 / t.t_burst;
        assert!(gbps <= single_channel_peak + 1e-6, "{gbps}");
        assert!(gbps > 0.9 * single_channel_peak, "{gbps}");
    }
}
