//! DRAM energy and power (the DRAMSim2 energy model stand-in).
//!
//! Produces per-die power for the thermal model from access rates and the
//! DRAM temperature (refresh power follows the JEDEC derating of
//! [`crate::timing::refresh_interval_ms`]). Calibrated so the 8-die stack
//! spans the paper's 2-4.5 W envelope (Sec. 6.2) between compute-bound and
//! memory-bound workloads.

use serde::{Deserialize, Serialize};

use crate::timing::refresh_interval_ms;

/// Per-operation energies and background power of one Wide I/O slice.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramEnergyModel {
    /// Energy of one 64-byte read burst (array + I/O), J.
    pub read_energy: f64,
    /// Energy of one 64-byte write burst, J.
    pub write_energy: f64,
    /// Energy of one ACT+PRE pair, J.
    pub activate_energy: f64,
    /// Energy of one refresh command (per die), J.
    pub refresh_energy: f64,
    /// Standby/peripheral background power per die, W.
    pub background_power: f64,
    /// Refresh commands per refresh window.
    pub refresh_commands: f64,
}

impl DramEnergyModel {
    /// The calibrated Wide I/O model.
    pub fn paper_default() -> Self {
        DramEnergyModel {
            read_energy: 4e-9,
            write_energy: 4.4e-9,
            activate_energy: 8e-9,
            refresh_energy: 0.5e-6,
            background_power: 0.15,
            refresh_commands: 8192.0,
        }
    }

    /// Refresh power of one die at `temp_c`, W.
    pub fn refresh_power(&self, temp_c: f64) -> f64 {
        let window_s = refresh_interval_ms(temp_c) * 1e-3;
        self.refresh_commands * self.refresh_energy / window_s
    }

    /// Total stack dynamic power for the given command rates (commands per
    /// second across the whole stack), W.
    pub fn dynamic_power(&self, read_rate: f64, write_rate: f64, activate_rate: f64) -> f64 {
        read_rate * self.read_energy
            + write_rate * self.write_energy
            + activate_rate * self.activate_energy
    }

    /// Power of one die, W: its share of the stack's dynamic power plus
    /// its own background and refresh power.
    ///
    /// # Panics
    ///
    /// Panics if `n_dies == 0`.
    pub fn die_power(
        &self,
        read_rate: f64,
        write_rate: f64,
        activate_rate: f64,
        temp_c: f64,
        n_dies: usize,
    ) -> f64 {
        assert!(n_dies > 0, "stack must have dies");
        self.dynamic_power(read_rate, write_rate, activate_rate) / n_dies as f64
            + self.background_power
            + self.refresh_power(temp_c)
    }

    /// Total stack power, W.
    ///
    /// # Panics
    ///
    /// Panics if `n_dies == 0`.
    pub fn stack_power(
        &self,
        read_rate: f64,
        write_rate: f64,
        activate_rate: f64,
        temp_c: f64,
        n_dies: usize,
    ) -> f64 {
        self.die_power(read_rate, write_rate, activate_rate, temp_c, n_dies) * n_dies as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_envelope_matches_paper() {
        let m = DramEnergyModel::paper_default();
        // Memory-bound: ~50% of 51.2 GB/s -> 400M accesses/s, 40% miss
        // activates.
        let hot = m.stack_power(300e6, 100e6, 160e6, 85.0, 8);
        assert!((3.5..5.0).contains(&hot), "memory-bound stack {hot} W");
        // Compute-bound: ~5% utilization.
        let cold = m.stack_power(30e6, 10e6, 16e6, 75.0, 8);
        assert!((1.5..2.6).contains(&cold), "compute-bound stack {cold} W");
    }

    #[test]
    fn refresh_power_doubles_past_85c() {
        let m = DramEnergyModel::paper_default();
        let p85 = m.refresh_power(85.0);
        let p95 = m.refresh_power(95.0);
        assert!((p95 / p85 - 2.0).abs() < 1e-9, "{}", p95 / p85);
        // 8192 * 0.5 uJ / 64 ms = 64 mW.
        assert!((p85 - 0.064).abs() < 1e-6, "{p85}");
    }

    #[test]
    fn die_power_splits_dynamic_evenly() {
        let m = DramEnergyModel::paper_default();
        let total = m.stack_power(100e6, 50e6, 60e6, 80.0, 8);
        let die = m.die_power(100e6, 50e6, 60e6, 80.0, 8);
        assert!((total - 8.0 * die).abs() < 1e-9);
    }

    #[test]
    fn writes_cost_more_than_reads() {
        let m = DramEnergyModel::paper_default();
        assert!(m.write_energy > m.read_energy);
        let p_w = m.dynamic_power(0.0, 100e6, 0.0);
        let p_r = m.dynamic_power(100e6, 0.0, 0.0);
        assert!(p_w > p_r);
    }
}
