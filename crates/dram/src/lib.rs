//! Wide I/O stacked-DRAM timing, refresh, and power model.
//!
//! The DRAMSim2 stand-in for the Xylem reproduction: a cycle-approximate
//! model of a JEDEC Wide I/O stack (4 channels, 4 ranks per channel — one
//! rank per slice — 4 banks per rank), used for
//!
//! * DRAM service latency under load, feeding the interval performance
//!   model of `xylem-archsim`;
//! * temperature-dependent refresh (64 ms at <= 85 deg C, halved for every
//!   10 deg C above — JEDEC extended range, paper Sec. 7.5);
//! * per-die DRAM power for the thermal model (the paper's 2-4.5 W stack
//!   envelope).
//!
//! Address mapping, bank state machines, and an open-page FCFS controller
//! live in [`channel`]; device timing in [`timing`]; energy in [`energy`].

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod channel;
pub mod energy;
pub mod scheduler;
pub mod timing;

pub use channel::{Channel, MemoryRequest, RequestKind, WideIoStack};
pub use energy::DramEnergyModel;
pub use scheduler::{FrFcfsScheduler, SchedulerConfig};
pub use timing::{refresh_interval_ms, WideIoTiming};
