//! FR-FCFS command scheduling (the DRAMSim2-style controller policy).
//!
//! [`Channel`] serves requests strictly in the
//! order it receives them. Real controllers reorder: **First-Ready,
//! First-Come-First-Served** prefers requests that hit an already-open
//! row, falling back to the oldest request — subject to a starvation
//! bound — and drain writes in batches behind a high/low watermark so
//! reads are not stuck behind the write queue.
//!
//! The scheduler wraps one channel per Wide I/O channel: callers
//! [`enqueue`](FrFcfsScheduler::enqueue) requests and then
//! [`drain`](FrFcfsScheduler::drain) the queues; completion times come
//! from the underlying bank state machines.

use serde::{Deserialize, Serialize};

use crate::channel::{Channel, DecodedAddress, MemoryRequest, RequestKind};
use crate::timing::WideIoTiming;

/// Scheduler policy parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchedulerConfig {
    /// Start draining writes when the per-channel write queue reaches
    /// this depth.
    pub write_high_watermark: usize,
    /// Stop draining when it falls to this depth.
    pub write_low_watermark: usize,
    /// A request older than this many scheduling rounds is served before
    /// any younger row hit (starvation bound).
    pub starvation_rounds: usize,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            write_high_watermark: 16,
            write_low_watermark: 4,
            starvation_rounds: 8,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Pending {
    req: MemoryRequest,
    decoded: DecodedAddress,
    /// Scheduling rounds this request has been skipped.
    age: usize,
}

/// Scheduler statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SchedulerStats {
    /// Requests served.
    pub served: u64,
    /// Requests served out of arrival order.
    pub reordered: u64,
    /// Requests promoted by the starvation bound.
    pub starvation_promotions: u64,
    /// Write-drain bursts entered.
    pub write_drains: u64,
    /// Sum of completion latencies, ns.
    pub total_latency_ns: f64,
}

impl SchedulerStats {
    /// Mean completion latency, ns.
    pub fn mean_latency_ns(&self) -> f64 {
        if self.served == 0 {
            0.0
        } else {
            self.total_latency_ns / self.served as f64
        }
    }
}

/// Per-channel FR-FCFS scheduler over the 4-channel Wide I/O stack.
#[derive(Debug, Clone)]
pub struct FrFcfsScheduler {
    config: SchedulerConfig,
    channels: Vec<Channel>,
    reads: Vec<Vec<Pending>>,
    writes: Vec<Vec<Pending>>,
    draining: Vec<bool>,
    stats: SchedulerStats,
}

impl FrFcfsScheduler {
    /// Creates an idle scheduler.
    pub fn new(timing: WideIoTiming, config: SchedulerConfig) -> Self {
        FrFcfsScheduler {
            config,
            channels: (0..4).map(|_| Channel::new(timing)).collect(),
            reads: vec![Vec::new(); 4],
            writes: vec![Vec::new(); 4],
            draining: vec![false; 4],
            stats: SchedulerStats::default(),
        }
    }

    /// The paper-default timing with default policy.
    pub fn paper_default() -> Self {
        FrFcfsScheduler::new(WideIoTiming::paper_default(), SchedulerConfig::default())
    }

    /// Queues a request.
    pub fn enqueue(&mut self, req: MemoryRequest) {
        let decoded = DecodedAddress::decode(req.addr);
        let pending = Pending {
            req,
            decoded,
            age: 0,
        };
        match req.kind {
            RequestKind::Read => self.reads[decoded.channel].push(pending),
            RequestKind::Write => self.writes[decoded.channel].push(pending),
        }
    }

    /// Pending requests across all channels.
    pub fn pending(&self) -> usize {
        self.reads
            .iter()
            .chain(self.writes.iter())
            .map(Vec::len)
            .sum()
    }

    /// Serves every queued request; returns `(completion time ns,
    /// original request)` pairs in service order.
    pub fn drain(&mut self) -> Vec<(f64, MemoryRequest)> {
        let mut out = Vec::with_capacity(self.pending());
        for ch in 0..4 {
            while let Some(done) = self.schedule_one(ch) {
                out.push(done);
            }
        }
        out
    }

    /// Picks and serves one request on channel `ch` per FR-FCFS.
    fn schedule_one(&mut self, ch: usize) -> Option<(f64, MemoryRequest)> {
        // Watermark logic: enter drain mode when writes pile up, leave it
        // when the queue is nearly empty or reads would starve.
        if !self.draining[ch] && self.writes[ch].len() >= self.config.write_high_watermark {
            self.draining[ch] = true;
            self.stats.write_drains += 1;
        }
        if self.draining[ch] && self.writes[ch].len() <= self.config.write_low_watermark {
            self.draining[ch] = false;
        }
        let use_writes =
            (self.draining[ch] || self.reads[ch].is_empty()) && !self.writes[ch].is_empty();
        let queue = if use_writes {
            &mut self.writes[ch]
        } else {
            &mut self.reads[ch]
        };
        if queue.is_empty() {
            return None;
        }

        // Starvation bound: the oldest request wins once it has been
        // skipped too often (queues are in arrival order, so index 0 is
        // oldest).
        let starving = queue[0].age >= self.config.starvation_rounds;
        let pick = if starving {
            self.stats.starvation_promotions += 1;
            0
        } else {
            // First-ready: a request whose row is open in its bank.
            let channel = &self.channels[ch];
            queue
                .iter()
                .position(|p| {
                    channel.open_row(p.decoded.rank, p.decoded.bank) == Some(p.decoded.row)
                })
                .unwrap_or(0)
        };
        if pick != 0 {
            self.stats.reordered += 1;
            for (i, p) in queue.iter_mut().enumerate() {
                if i != pick {
                    p.age += 1;
                }
            }
        }
        let pending = queue.remove(pick);
        let (done, _) = self.channels[ch].access(
            pending.decoded.rank,
            pending.decoded.bank,
            pending.decoded.row,
            &pending.req,
        );
        self.stats.served += 1;
        self.stats.total_latency_ns += done - pending.req.issue_ns;
        Some((done, pending.req))
    }

    /// Statistics so far.
    pub fn stats(&self) -> &SchedulerStats {
        &self.stats
    }

    /// The underlying channels (for bank-level statistics).
    pub fn channels(&self) -> &[Channel] {
        &self.channels
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read(addr: u64, t: f64) -> MemoryRequest {
        MemoryRequest {
            addr,
            kind: RequestKind::Read,
            issue_ns: t,
        }
    }

    fn write(addr: u64, t: f64) -> MemoryRequest {
        MemoryRequest {
            addr,
            kind: RequestKind::Write,
            issue_ns: t,
        }
    }

    /// Interleaved accesses to two rows of one bank: FCFS ping-pongs
    /// (every access a row conflict) while FR-FCFS batches the row hits.
    /// The decode maps addr>>12 to the row, so a "row hit" is a repeat
    /// access to the same row address.
    fn row_pingpong(n: u64) -> Vec<MemoryRequest> {
        (0..n).map(|i| read((i % 2) << 12, 0.0)).collect()
    }

    #[test]
    fn fr_fcfs_beats_fcfs_on_row_pingpong() {
        let reqs = row_pingpong(24);
        // FCFS baseline through the raw stack.
        let mut raw = crate::channel::WideIoStack::paper_default();
        for r in &reqs {
            raw.access(*r);
        }
        let fcfs_mean = raw.total_stats().mean_latency_ns();

        let mut sched = FrFcfsScheduler::paper_default();
        for r in &reqs {
            sched.enqueue(*r);
        }
        let served = sched.drain();
        assert_eq!(served.len(), reqs.len());
        let fr_mean = sched.stats().mean_latency_ns();
        assert!(
            fr_mean < fcfs_mean,
            "FR-FCFS {fr_mean} ns vs FCFS {fcfs_mean} ns"
        );
        assert!(sched.stats().reordered > 0);
    }

    #[test]
    fn starvation_bound_limits_reordering() {
        let mut cfg = SchedulerConfig::default();
        cfg.starvation_rounds = 2;
        let mut sched = FrFcfsScheduler::new(WideIoTiming::paper_default(), cfg);
        // One victim in row 1, then a long run of row-0 hits.
        sched.enqueue(read(0, 0.0)); // opens row 0
        sched.enqueue(read(1 << 12, 0.0)); // row 1 victim
        for _ in 1..12u64 {
            sched.enqueue(read(0, 0.0)); // row 0 hits
        }
        let served = sched.drain();
        // The victim must be served within starvation_rounds+2 slots.
        let victim_pos = served.iter().position(|(_, r)| r.addr == 1 << 12).unwrap();
        assert!(victim_pos <= 4, "victim served at slot {victim_pos}");
        assert!(sched.stats().starvation_promotions > 0);
    }

    #[test]
    fn writes_drain_in_batches() {
        let mut cfg = SchedulerConfig::default();
        cfg.write_high_watermark = 4;
        cfg.write_low_watermark = 1;
        let mut sched = FrFcfsScheduler::new(WideIoTiming::paper_default(), cfg);
        for i in 0..6u64 {
            sched.enqueue(write(i << 20, 0.0));
        }
        sched.enqueue(read(0, 0.0));
        let served = sched.drain();
        assert_eq!(served.len(), 7);
        assert!(sched.stats().write_drains >= 1);
    }

    #[test]
    fn reads_preferred_over_writes_outside_drain() {
        let mut sched = FrFcfsScheduler::paper_default();
        sched.enqueue(write(1 << 20, 0.0));
        sched.enqueue(read(2 << 20, 0.0));
        let served = sched.drain();
        assert_eq!(served[0].1.kind, RequestKind::Read);
        assert_eq!(served[1].1.kind, RequestKind::Write);
    }

    #[test]
    fn empty_drain_is_empty() {
        let mut sched = FrFcfsScheduler::paper_default();
        assert!(sched.drain().is_empty());
        assert_eq!(sched.pending(), 0);
    }
}
