//! Wide I/O device timing and temperature-dependent refresh.
//!
//! Timing values follow the Wide I/O SDR standard (JESD229) scaled to the
//! paper's 800 MHz I/O clock with DDR signaling (51.2 GB/s across 4
//! channels, Sec. 6.2). All times are kept in nanoseconds; convert to core
//! cycles at the consumer.

use serde::{Deserialize, Serialize};

/// Device timing parameters, ns.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WideIoTiming {
    /// I/O clock period, ns (800 MHz -> 1.25 ns).
    pub t_ck: f64,
    /// ACT to internal read/write delay (tRCD), ns.
    pub t_rcd: f64,
    /// Precharge time (tRP), ns.
    pub t_rp: f64,
    /// CAS latency (tCL), ns.
    pub t_cl: f64,
    /// ACT to PRE minimum (tRAS), ns.
    pub t_ras: f64,
    /// Write recovery (tWR), ns.
    pub t_wr: f64,
    /// Burst duration on the data bus, ns (BL4 DDR at 800 MHz: 2.5 ns for
    /// a 64-byte line over a 128-bit channel).
    pub t_burst: f64,
    /// Refresh cycle time (tRFC), ns.
    pub t_rfc: f64,
    /// ACT-to-ACT same rank different bank (tRRD), ns.
    pub t_rrd: f64,
}

impl WideIoTiming {
    /// The paper's configuration: Wide I/O organization at a Wide I/O 2
    /// data rate (51.2 GB/s).
    pub fn paper_default() -> Self {
        WideIoTiming {
            t_ck: 1.25,
            t_rcd: 18.0,
            t_rp: 18.0,
            t_cl: 18.0,
            t_ras: 42.0,
            t_wr: 15.0,
            t_burst: 2.5,
            t_rfc: 210.0,
            t_rrd: 10.0,
        }
    }

    /// Row-buffer-hit read latency (CAS + burst), ns.
    pub fn hit_latency(&self) -> f64 {
        self.t_cl + self.t_burst
    }

    /// Row-buffer-miss (closed row) latency: ACT + CAS + burst, ns.
    pub fn closed_latency(&self) -> f64 {
        self.t_rcd + self.hit_latency()
    }

    /// Row-buffer-conflict latency: PRE + ACT + CAS + burst, ns.
    pub fn conflict_latency(&self) -> f64 {
        self.t_rp + self.closed_latency()
    }
}

/// Refresh interval (whole-device, ms) at the given DRAM temperature:
/// 64 ms at or below 85 deg C, halved for every 10 deg C above (JEDEC
/// extended temperature range, paper Sec. 7.5). Clamped below at 1 ms.
pub fn refresh_interval_ms(temp_c: f64) -> f64 {
    let base = 64.0;
    if temp_c <= 85.0 {
        return base;
    }
    let halvings = ((temp_c - 85.0) / 10.0).ceil();
    (base / 2f64.powf(halvings)).max(1.0)
}

/// Fraction of time a device is unavailable due to refresh at `temp_c`:
/// `n_rows_refresh_commands * tRFC / tREFW`. With 8K refresh commands per
/// window (JEDEC), this is the refresh overhead the controller sees.
pub fn refresh_overhead(timing: &WideIoTiming, temp_c: f64) -> f64 {
    const REFRESH_COMMANDS_PER_WINDOW: f64 = 8192.0;
    let t_refw_ns = refresh_interval_ms(temp_c) * 1e6;
    (REFRESH_COMMANDS_PER_WINDOW * timing.t_rfc / t_refw_ns).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_ordering() {
        let t = WideIoTiming::paper_default();
        assert!(t.hit_latency() < t.closed_latency());
        assert!(t.closed_latency() < t.conflict_latency());
        // Idle closed-row access ~ 100 core cycles at 2.4 GHz (paper
        // Table 3: ~100 cycles round trip): 38.5 ns -> 92 cycles + on-die
        // interconnect.
        let cycles = t.closed_latency() * 2.4;
        assert!((80.0..110.0).contains(&cycles), "{cycles}");
    }

    #[test]
    fn refresh_halves_every_10c() {
        assert_eq!(refresh_interval_ms(25.0), 64.0);
        assert_eq!(refresh_interval_ms(85.0), 64.0);
        assert_eq!(refresh_interval_ms(86.0), 32.0);
        assert_eq!(refresh_interval_ms(95.0), 32.0);
        assert_eq!(refresh_interval_ms(96.0), 16.0);
        assert_eq!(refresh_interval_ms(105.0), 16.0);
    }

    #[test]
    fn refresh_overhead_grows_with_temperature() {
        let t = WideIoTiming::paper_default();
        let cool = refresh_overhead(&t, 80.0);
        let warm = refresh_overhead(&t, 90.0);
        let hot = refresh_overhead(&t, 100.0);
        assert!(cool < warm && warm < hot);
        // At 85 C: 8192 * 210 ns / 64 ms = 2.7%.
        assert!((cool - 0.0269).abs() < 0.001, "{cool}");
        assert!(hot < 0.2);
    }
}
