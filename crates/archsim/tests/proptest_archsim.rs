//! Property-based tests on cache/coherence invariants and the interval
//! model.

use proptest::prelude::*;

use xylem_archsim::cache::{Cache, LineState};
use xylem_archsim::coherence::CoherentL2s;
use xylem_archsim::config::{ArchConfig, CacheGeometry};
use xylem_archsim::interval::{cpi_breakdown, exec_time_s};
use xylem_workloads::Benchmark;

fn small_geometry() -> CacheGeometry {
    CacheGeometry {
        size: 4 * 1024,
        ways: 4,
        line: 64,
        round_trip_cycles: 2,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// An access immediately after an access to the same line always hits.
    #[test]
    fn temporal_locality_hits(
        ops in proptest::collection::vec((any::<u16>(), any::<bool>()), 1..200)
    ) {
        let mut c = Cache::new(small_geometry());
        for (addr, write) in ops {
            let a = u64::from(addr) * 8;
            let _ = c.access(a, write, LineState::Exclusive);
            prop_assert_eq!(
                c.access(a, false, LineState::Exclusive),
                xylem_archsim::cache::AccessOutcome::Hit
            );
        }
    }

    /// The cache never holds more distinct lines than its capacity.
    #[test]
    fn capacity_respected(
        addrs in proptest::collection::vec(any::<u32>(), 1..500)
    ) {
        let geom = small_geometry();
        let mut c = Cache::new(geom);
        for a in &addrs {
            let _ = c.access(u64::from(*a) * 64, false, LineState::Exclusive);
        }
        // Count resident lines by probing all touched addresses.
        let resident = addrs
            .iter()
            .map(|a| u64::from(*a) * 64)
            .collect::<std::collections::HashSet<_>>()
            .into_iter()
            .filter(|&a| c.state_of(a) != LineState::Invalid)
            .count();
        prop_assert!(resident <= geom.size / geom.line, "{resident}");
    }

    /// Single-writer/multiple-reader: after any access sequence, a line is
    /// either Modified in at most one cache (and Invalid elsewhere), or in
    /// Shared/Exclusive states with no Modified copy.
    #[test]
    fn mesi_swmr_invariant(
        ops in proptest::collection::vec((0usize..4, 0u8..16, any::<bool>()), 1..300)
    ) {
        let mut l2s = CoherentL2s::new(4, small_geometry());
        let mut touched = std::collections::HashSet::new();
        for (core, line, write) in ops {
            let addr = u64::from(line) * 64;
            touched.insert(addr);
            let _ = l2s.access(core, addr, write);
            for &a in &touched {
                let states: Vec<LineState> =
                    (0..4).map(|i| l2s.cache(i).state_of(a)).collect();
                let modified = states.iter().filter(|&&s| s == LineState::Modified).count();
                let exclusive = states.iter().filter(|&&s| s == LineState::Exclusive).count();
                let shared = states.iter().filter(|&&s| s == LineState::Shared).count();
                prop_assert!(modified <= 1, "{states:?}");
                prop_assert!(exclusive <= 1, "{states:?}");
                if modified == 1 || exclusive == 1 {
                    prop_assert_eq!(shared, 0, "owner coexists with sharers: {:?}", states);
                }
            }
        }
    }

    /// CPI is monotone in DRAM latency and in every MPKI input; execution
    /// time decreases with frequency.
    #[test]
    fn interval_model_monotonicities(
        f1 in 2.4f64..3.5,
        lat in 30.0f64..120.0,
        extra in 1.0f64..50.0,
    ) {
        let arch = ArchConfig::paper_default();
        for b in [Benchmark::LuNas, Benchmark::Fft, Benchmark::Is] {
            let p = b.profile();
            let c1 = cpi_breakdown(&arch, &p, f1, lat);
            let c2 = cpi_breakdown(&arch, &p, f1, lat + extra);
            prop_assert!(c2.total() >= c1.total());
            let t1 = exec_time_s(&arch, &p, f1, lat);
            let t2 = exec_time_s(&arch, &p, (f1 + 0.1).min(3.5), lat);
            prop_assert!(t2 <= t1 + 1e-15);
        }
    }
}
