//! The interval CPI model.
//!
//! Execution time splits into a frequency-scaled core component and a
//! frequency-invariant exposed-memory component:
//!
//! ```text
//! time(f) = N * cpi_core / f  +  N * dram_apki/1000 * exposed_latency
//! ```
//!
//! where `cpi_core` covers issue-limited cycles, L1/L2 access stalls and
//! coherence bus round trips (all in core cycles), and `exposed_latency`
//! is the DRAM round trip discounted by the profile's memory-level
//! parallelism. This split is exactly why a frequency boost helps
//! compute-bound code more than memory-bound code — the mechanism behind
//! the paper's Figs. 9-12.

use serde::{Deserialize, Serialize};

use xylem_workloads::WorkloadProfile;

use crate::config::ArchConfig;

/// CPI decomposition at one operating frequency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpiBreakdown {
    /// Issue-limited CPI.
    pub base: f64,
    /// L1I miss stalls, cycles/instr.
    pub l1i_stall: f64,
    /// L1D miss (L2 access) stalls, cycles/instr.
    pub l2_access: f64,
    /// Coherence (cache-to-cache) stalls, cycles/instr.
    pub coherence: f64,
    /// Exposed DRAM stalls at this frequency, cycles/instr.
    pub dram: f64,
}

impl CpiBreakdown {
    /// Core-only CPI (everything that scales with frequency).
    pub fn core(&self) -> f64 {
        self.base + self.l1i_stall + self.l2_access + self.coherence
    }

    /// Total CPI.
    pub fn total(&self) -> f64 {
        self.core() + self.dram
    }
}

/// Fraction of an L1-miss/L2-hit round trip that out-of-order execution
/// hides.
const L2_OVERLAP: f64 = 0.5;

/// Computes the CPI breakdown for `profile` at `f_ghz` with the given
/// average DRAM round-trip latency (ns, including on-die overhead).
pub fn cpi_breakdown(
    arch: &ArchConfig,
    profile: &WorkloadProfile,
    f_ghz: f64,
    dram_latency_ns: f64,
) -> CpiBreakdown {
    let l1i_stall =
        profile.l1i_mpki / 1000.0 * f64::from(arch.l2.round_trip_cycles) * (1.0 - L2_OVERLAP);
    let l2_access =
        profile.l1d_mpki / 1000.0 * f64::from(arch.l2.round_trip_cycles) * (1.0 - L2_OVERLAP);
    let coherence =
        profile.l2_mpki * profile.sharing_fraction / 1000.0 * f64::from(arch.c2c_cycles);
    let exposed_ns = dram_latency_ns * (1.0 - profile.mlp_overlap);
    let dram = profile.dram_apki() / 1000.0 * exposed_ns * f_ghz;
    CpiBreakdown {
        base: profile.base_cpi,
        l1i_stall,
        l2_access,
        coherence,
        dram,
    }
}

/// Execution time of one thread's `profile.instructions` instructions at
/// `f_ghz`, seconds.
pub fn exec_time_s(
    arch: &ArchConfig,
    profile: &WorkloadProfile,
    f_ghz: f64,
    dram_latency_ns: f64,
) -> f64 {
    let b = cpi_breakdown(arch, profile, f_ghz, dram_latency_ns);
    profile.instructions as f64 * b.total() / (f_ghz * 1e9)
}

/// Speedup of `f_ghz` over `f_ref_ghz` for `profile` (same DRAM latency).
pub fn speedup(
    arch: &ArchConfig,
    profile: &WorkloadProfile,
    f_ref_ghz: f64,
    f_ghz: f64,
    dram_latency_ns: f64,
) -> f64 {
    exec_time_s(arch, profile, f_ref_ghz, dram_latency_ns)
        / exec_time_s(arch, profile, f_ghz, dram_latency_ns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xylem_workloads::Benchmark;

    const LAT: f64 = 42.0;

    #[test]
    fn dram_component_scales_with_frequency_in_cycles_not_time() {
        let arch = ArchConfig::paper_default();
        let p = Benchmark::Ft.profile();
        let a = cpi_breakdown(&arch, &p, 2.4, LAT);
        let b = cpi_breakdown(&arch, &p, 3.5, LAT);
        assert!((a.core() - b.core()).abs() < 1e-12);
        assert!((b.dram / a.dram - 3.5 / 2.4).abs() < 1e-9);
        // Exposed DRAM *time* per instruction is frequency-invariant.
        let ta = a.dram / 2.4;
        let tb = b.dram / 3.5;
        assert!((ta - tb).abs() < 1e-12);
    }

    #[test]
    fn compute_bound_scales_better_than_memory_bound() {
        let arch = ArchConfig::paper_default();
        let s_compute = speedup(&arch, &Benchmark::LuNas.profile(), 2.4, 3.5, LAT);
        let s_memory = speedup(&arch, &Benchmark::Is.profile(), 2.4, 3.5, LAT);
        assert!(s_compute > 1.35, "{s_compute}");
        assert!(s_memory < 1.22, "{s_memory}");
        assert!(s_compute > s_memory);
    }

    #[test]
    fn every_benchmark_speeds_up_with_frequency() {
        let arch = ArchConfig::paper_default();
        for b in Benchmark::ALL {
            let s = speedup(&arch, &b.profile(), 2.4, 2.8, LAT);
            assert!(s > 1.0 && s < 2.8 / 2.4 + 1e-9, "{b}: {s}");
        }
    }

    #[test]
    fn higher_dram_latency_hurts_memory_bound_more() {
        let arch = ArchConfig::paper_default();
        let rel_slowdown = |b: Benchmark| {
            let p = b.profile();
            exec_time_s(&arch, &p, 2.4, 80.0) / exec_time_s(&arch, &p, 2.4, 42.0)
        };
        assert!(rel_slowdown(Benchmark::Is) > rel_slowdown(Benchmark::LuNas));
    }

    #[test]
    fn coherence_component_tracks_sharing() {
        let arch = ArchConfig::paper_default();
        let barnes = cpi_breakdown(&arch, &Benchmark::Barnes.profile(), 2.4, LAT);
        let black = cpi_breakdown(&arch, &Benchmark::Blackscholes.profile(), 2.4, LAT);
        assert!(barnes.coherence > black.coherence);
    }
}
