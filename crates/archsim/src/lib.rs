//! Architecture performance model (the SESC stand-in).
//!
//! The Xylem evaluation needs, per application and frequency: execution
//! time (Fig. 10, 12), per-core activity factors for the power model, and
//! DRAM command rates for the memory power model. This crate provides:
//!
//! * [`config`] — the paper's Table 3 architecture parameters;
//! * [`cache`] — a set-associative, LRU, MESI-state cache used for both
//!   the private L1s/L2s and the coherence model;
//! * [`coherence`] — a bus-based snoopy MESI protocol across the 8
//!   private L2s;
//! * [`interval`] — the first-order interval CPI model: core-limited
//!   cycles scale with frequency, exposed DRAM time does not. This is the
//!   mechanism behind every performance number in the paper's evaluation
//!   (a frequency boost helps compute-bound code, not memory-bound code);
//! * [`system`] — [`Machine`]: ties profiles, the cache
//!   hierarchy, and the Wide I/O DRAM model together, including a
//!   fixed-point DRAM-latency-under-load estimate driven through the
//!   actual `xylem-dram` channel model.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod coherence;
pub mod config;
pub mod interval;
pub mod system;

pub use config::ArchConfig;
pub use interval::{exec_time_s, CpiBreakdown};
pub use system::{AppMetrics, Machine};
