//! Bus-based snoopy MESI coherence across the private L2s (Table 3).
//!
//! All 8 L2s sit on a shared 512-bit snooping bus. An L2 miss broadcasts:
//! a remote `Modified`/`Exclusive`/`Shared` copy supplies the line
//! cache-to-cache (and downgrades/invalidates per MESI); otherwise the
//! request goes to DRAM. The model tracks transaction counts — the inputs
//! to the NoC activity factor and the DRAM command rates.

use serde::{Deserialize, Serialize};

use crate::cache::{AccessOutcome, Cache, LineState};
use crate::config::CacheGeometry;

/// Where an L2 miss was served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MissSource {
    /// Served by a remote L2 (cache-to-cache transfer).
    CacheToCache,
    /// Served by DRAM.
    Dram,
}

/// Bus statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BusStats {
    /// Bus transactions (every L2 miss broadcasts once).
    pub transactions: u64,
    /// Cache-to-cache transfers.
    pub c2c_transfers: u64,
    /// Invalidations performed at remote caches.
    pub invalidations: u64,
    /// Dirty writebacks triggered by snoops.
    pub snoop_writebacks: u64,
    /// Requests forwarded to DRAM.
    pub dram_requests: u64,
}

/// The 8 coherent L2s and their snooping bus.
#[derive(Debug, Clone)]
pub struct CoherentL2s {
    caches: Vec<Cache>,
    stats: BusStats,
}

impl CoherentL2s {
    /// Creates `n` empty coherent L2s.
    pub fn new(n: usize, geometry: CacheGeometry) -> Self {
        CoherentL2s {
            caches: (0..n).map(|_| Cache::new(geometry)).collect(),
            stats: BusStats::default(),
        }
    }

    /// Number of caches.
    pub fn len(&self) -> usize {
        self.caches.len()
    }

    /// Whether there are no caches.
    pub fn is_empty(&self) -> bool {
        self.caches.is_empty()
    }

    /// A cache's private view (for stats).
    pub fn cache(&self, core: usize) -> &Cache {
        &self.caches[core]
    }

    /// Core `core` accesses `addr`; returns where a miss was served from
    /// (`None` on a local hit).
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn access(&mut self, core: usize, addr: u64, write: bool) -> Option<MissSource> {
        assert!(core < self.caches.len(), "core {core} out of range");

        // Local lookup first. A write to a Shared line shows up as an
        // upgrade miss and must invalidate remote sharers.
        let local_state = self.caches[core].state_of(addr);
        let local_hit = match local_state {
            LineState::Invalid => false,
            LineState::Shared => !write,
            LineState::Exclusive | LineState::Modified => true,
        };
        if local_hit {
            let outcome = self.caches[core].access(addr, write, LineState::Exclusive);
            debug_assert_eq!(outcome, AccessOutcome::Hit);
            return None;
        }

        // Bus transaction: snoop the other caches.
        self.stats.transactions += 1;
        let mut supplied = false;
        for i in 0..self.caches.len() {
            if i == core {
                continue;
            }
            let remote_state = self.caches[i].state_of(addr);
            if remote_state == LineState::Invalid {
                continue;
            }
            supplied = true;
            if write {
                if self.caches[i].invalidate(addr) {
                    self.stats.snoop_writebacks += 1;
                }
                self.stats.invalidations += 1;
            } else if self.caches[i].downgrade(addr) {
                self.stats.snoop_writebacks += 1;
            }
        }

        // Fill locally: Shared if a read found remote copies, else
        // Exclusive (reads) / Modified (writes, handled by `access`).
        let fill = if supplied && !write {
            LineState::Shared
        } else {
            LineState::Exclusive
        };
        let _ = self.caches[core].access(addr, write, fill);

        let upgrade = local_state == LineState::Shared && write;
        if supplied || upgrade {
            // An upgrade with no remaining sharers still only costs the bus
            // transaction — the data is already local.
            self.stats.c2c_transfers += u64::from(supplied);
            Some(MissSource::CacheToCache)
        } else {
            self.stats.dram_requests += 1;
            Some(MissSource::Dram)
        }
    }

    /// Bus statistics so far.
    pub fn stats(&self) -> &BusStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l2s(n: usize) -> CoherentL2s {
        CoherentL2s::new(
            n,
            CacheGeometry {
                size: 8 * 1024,
                ways: 4,
                line: 64,
                round_trip_cycles: 10,
            },
        )
    }

    #[test]
    fn cold_miss_goes_to_dram() {
        let mut b = l2s(8);
        assert_eq!(b.access(0, 0x1000, false), Some(MissSource::Dram));
        assert_eq!(b.access(0, 0x1000, false), None); // now a hit
        assert_eq!(b.stats().dram_requests, 1);
    }

    #[test]
    fn remote_copy_supplies_cache_to_cache() {
        let mut b = l2s(8);
        b.access(0, 0x1000, false);
        assert_eq!(b.access(1, 0x1000, false), Some(MissSource::CacheToCache));
        // Both now Shared; further reads hit locally.
        assert_eq!(b.access(0, 0x1000, false), None);
        assert_eq!(b.access(1, 0x1000, false), None);
        assert_eq!(b.cache(0).state_of(0x1000), LineState::Shared);
        assert_eq!(b.cache(1).state_of(0x1000), LineState::Shared);
    }

    #[test]
    fn write_invalidates_remote_sharers() {
        let mut b = l2s(4);
        b.access(0, 0x2000, false);
        b.access(1, 0x2000, false);
        b.access(2, 0x2000, false);
        // Core 3 writes: all three sharers invalidated.
        assert_eq!(b.access(3, 0x2000, true), Some(MissSource::CacheToCache));
        assert_eq!(b.stats().invalidations, 3);
        assert_eq!(b.cache(0).state_of(0x2000), LineState::Invalid);
        assert_eq!(b.cache(3).state_of(0x2000), LineState::Modified);
    }

    #[test]
    fn remote_dirty_line_is_written_back_on_snoop() {
        let mut b = l2s(2);
        b.access(0, 0x3000, true); // Modified at core 0
        assert_eq!(b.access(1, 0x3000, false), Some(MissSource::CacheToCache));
        assert_eq!(b.stats().snoop_writebacks, 1);
        assert_eq!(b.cache(0).state_of(0x3000), LineState::Shared);
    }

    #[test]
    fn upgrade_on_shared_write_counts_transaction() {
        let mut b = l2s(2);
        b.access(0, 0x4000, false);
        b.access(1, 0x4000, false); // both Shared
        let before = b.stats().transactions;
        assert_eq!(b.access(0, 0x4000, true), Some(MissSource::CacheToCache));
        assert_eq!(b.stats().transactions, before + 1);
        assert_eq!(b.cache(1).state_of(0x4000), LineState::Invalid);
    }

    #[test]
    fn exclusive_read_when_no_remote_copy() {
        let mut b = l2s(2);
        b.access(0, 0x5000, false);
        assert_eq!(b.cache(0).state_of(0x5000), LineState::Exclusive);
    }
}
