//! The paper's architecture parameters (Table 3).

use serde::{Deserialize, Serialize};

/// Cache geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheGeometry {
    /// Capacity, bytes.
    pub size: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size, bytes.
    pub line: usize,
    /// Round-trip latency, core cycles.
    pub round_trip_cycles: u32,
}

impl CacheGeometry {
    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.size / (self.ways * self.line)
    }
}

/// The Table 3 machine: eight 4-issue out-of-order cores at 2.4-3.5 GHz,
/// private L1s and L2s, bus-based snoopy MESI, 4 Wide I/O DRAM channels.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArchConfig {
    /// Number of cores.
    pub cores: usize,
    /// Issue width.
    pub issue_width: usize,
    /// L1 instruction cache.
    pub l1i: CacheGeometry,
    /// L1 data cache (write-through per Table 3).
    pub l1d: CacheGeometry,
    /// Private unified L2 (write-back).
    pub l2: CacheGeometry,
    /// Coherence-bus width, bits.
    pub bus_width_bits: usize,
    /// Cache-to-cache transfer round trip, core cycles.
    pub c2c_cycles: u32,
    /// On-die interconnect + controller overhead added to a DRAM access,
    /// ns (brings the idle round trip to Table 3's ~100 cycles at
    /// 2.4 GHz).
    pub dram_overhead_ns: f64,
    /// Maximum processor junction temperature, deg C.
    pub t_j_max: f64,
    /// Maximum DRAM temperature, deg C (JEDEC extended range).
    pub t_dram_max: f64,
}

impl ArchConfig {
    /// The paper's configuration.
    pub fn paper_default() -> Self {
        ArchConfig {
            cores: 8,
            issue_width: 4,
            l1i: CacheGeometry {
                size: 32 * 1024,
                ways: 2,
                line: 64,
                round_trip_cycles: 2,
            },
            l1d: CacheGeometry {
                size: 32 * 1024,
                ways: 2,
                line: 64,
                round_trip_cycles: 2,
            },
            l2: CacheGeometry {
                size: 256 * 1024,
                ways: 8,
                line: 64,
                round_trip_cycles: 10,
            },
            bus_width_bits: 512,
            c2c_cycles: 40,
            dram_overhead_ns: 4.0,
            t_j_max: 100.0,
            t_dram_max: 95.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xylem_dram::WideIoTiming;

    #[test]
    fn table3_values() {
        let c = ArchConfig::paper_default();
        assert_eq!(c.cores, 8);
        assert_eq!(c.issue_width, 4);
        assert_eq!(c.l1d.size, 32 * 1024);
        assert_eq!(c.l1d.ways, 2);
        assert_eq!(c.l1d.round_trip_cycles, 2);
        assert_eq!(c.l2.size, 256 * 1024);
        assert_eq!(c.l2.ways, 8);
        assert_eq!(c.l2.round_trip_cycles, 10);
        assert_eq!(c.bus_width_bits, 512);
        assert_eq!(c.t_j_max, 100.0);
        assert_eq!(c.t_dram_max, 95.0);
    }

    #[test]
    fn set_counts() {
        let c = ArchConfig::paper_default();
        assert_eq!(c.l1d.sets(), 256);
        assert_eq!(c.l2.sets(), 512);
    }

    #[test]
    fn idle_dram_round_trip_near_100_cycles() {
        let c = ArchConfig::paper_default();
        let t = WideIoTiming::paper_default();
        let rt_ns = t.closed_latency() + c.dram_overhead_ns;
        let cycles = rt_ns * 2.4;
        assert!((95.0..110.0).contains(&cycles), "{cycles}");
    }
}
