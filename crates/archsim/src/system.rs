//! The simulated machine: profiles + caches + DRAM, end to end.
//!
//! [`Machine::run`] is the fast path the experiments use: it combines the
//! interval model with a DRAM-latency-under-load fixed point driven
//! through the real `xylem-dram` channel model, and derives the activity
//! factors the power model consumes.
//!
//! [`Machine::simulate_hierarchy`] is the measurement path: it generates
//! synthetic traces and runs them through the set-associative L1s and the
//! MESI-coherent L2s, reporting measured miss rates (used by tests to keep
//! profiles and simulation mutually consistent).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use xylem_dram::channel::{MemoryRequest, RequestKind, WideIoStack};
use xylem_dram::timing::WideIoTiming;
use xylem_workloads::{Benchmark, TraceGenerator, WorkloadProfile};

use crate::cache::{Cache, LineState};
use crate::coherence::{CoherentL2s, MissSource};
use crate::config::ArchConfig;
use crate::interval::{cpi_breakdown, CpiBreakdown};

/// Everything the power/thermal chain needs to know about one application
/// run at one frequency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AppMetrics {
    /// Core frequency, GHz.
    pub f_ghz: f64,
    /// Threads in the run.
    pub threads: usize,
    /// CPI decomposition.
    pub cpi: CpiBreakdown,
    /// Execution time of the run, s.
    pub exec_time_s: f64,
    /// Average loaded DRAM round trip (incl. on-die overhead), ns.
    pub dram_latency_ns: f64,
    /// Per-core dynamic activity factor, 0..=1.
    pub activity: f64,
    /// Memory intensity (for the power-fraction blend), 0..=1.
    pub memory_intensity: f64,
    /// LLC/L2-traffic activity factor, 0..=1.
    pub llc_activity: f64,
    /// Per-channel memory-controller utilization, 0..=1.
    pub mc_utilization: [f64; 4],
    /// Coherence-bus activity factor, 0..=1.
    pub noc_activity: f64,
    /// DRAM reads/s across the stack.
    pub dram_read_rate: f64,
    /// DRAM writes/s across the stack.
    pub dram_write_rate: f64,
    /// DRAM activates/s across the stack.
    pub dram_activate_rate: f64,
    /// Sustained DRAM bandwidth, GB/s.
    pub dram_bandwidth_gbps: f64,
}

/// Measured miss rates from the trace-driven hierarchy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct HierarchyReport {
    /// Instructions simulated (all threads).
    pub instructions: u64,
    /// Measured L1I misses per kilo-instruction.
    pub l1i_mpki: f64,
    /// Measured L1D misses per kilo-instruction.
    pub l1d_mpki: f64,
    /// Measured L2 misses per kilo-instruction (to bus).
    pub l2_mpki: f64,
    /// Fraction of L2 misses served cache-to-cache.
    pub c2c_fraction: f64,
    /// Measured DRAM accesses per kilo-instruction.
    pub dram_apki: f64,
}

/// The simulated 8-core machine.
#[derive(Debug, Clone)]
pub struct Machine {
    arch: ArchConfig,
    timing: WideIoTiming,
}

impl Machine {
    /// The paper's machine (Table 3).
    pub fn paper_default() -> Self {
        Machine {
            arch: ArchConfig::paper_default(),
            timing: WideIoTiming::paper_default(),
        }
    }

    /// Creates a machine from explicit parameters.
    pub fn new(arch: ArchConfig, timing: WideIoTiming) -> Self {
        Machine { arch, timing }
    }

    /// The architecture parameters.
    pub fn arch(&self) -> &ArchConfig {
        &self.arch
    }

    /// Runs `benchmark` with `threads` threads at `f_ghz`; returns the
    /// full metrics bundle.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is 0 or exceeds the core count.
    pub fn run(&self, benchmark: Benchmark, f_ghz: f64, threads: usize) -> AppMetrics {
        assert!(
            threads >= 1 && threads <= self.arch.cores,
            "threads {threads} out of range"
        );
        let profile = benchmark.profile();
        let lat = self.dram_latency_under_load(&profile, f_ghz, threads);
        self.metrics_for_latency(&profile, f_ghz, threads, lat)
    }

    fn metrics_for_latency(
        &self,
        profile: &WorkloadProfile,
        f_ghz: f64,
        threads: usize,
        dram_latency_ns: f64,
    ) -> AppMetrics {
        let cpi = cpi_breakdown(&self.arch, profile, f_ghz, dram_latency_ns);
        let total_cpi = cpi.total();
        let exec_time_s = profile.instructions as f64 * total_cpi / (f_ghz * 1e9);

        let instr_rate_per_core = f_ghz * 1e9 / total_cpi;
        let dram_access_rate = threads as f64 * instr_rate_per_core * profile.dram_apki() / 1000.0;
        let read_rate = dram_access_rate * profile.read_fraction;
        let write_rate = dram_access_rate * (1.0 - profile.read_fraction);
        let activate_rate = dram_access_rate * (1.0 - profile.row_hit_fraction);
        let bandwidth_gbps = dram_access_rate * 64.0 / 1e9;

        // Activity: issue utilization shrinks as memory stalls grow.
        let activity = profile.activity_peak * (cpi.core() / total_cpi);

        // LLC activity from L2 accesses per cycle; MCs from channel
        // bandwidth; NoC from bus transactions.
        let l2_apc = profile.l1d_mpki / 1000.0 / total_cpi;
        let llc_activity = (l2_apc / 0.04).min(1.0);
        let per_channel_gbps = bandwidth_gbps / 4.0;
        let mc_util = (per_channel_gbps / 12.8).min(1.0);
        let bus_rate = threads as f64 * instr_rate_per_core * profile.l2_mpki / 1000.0;
        let noc_activity = (bus_rate / 400e6).min(1.0);

        AppMetrics {
            f_ghz,
            threads,
            cpi,
            exec_time_s,
            dram_latency_ns,
            activity,
            memory_intensity: profile.memory_intensity,
            llc_activity,
            mc_utilization: [mc_util; 4],
            noc_activity,
            dram_read_rate: read_rate,
            dram_write_rate: write_rate,
            dram_activate_rate: activate_rate,
            dram_bandwidth_gbps: bandwidth_gbps,
        }
    }

    /// Average DRAM round trip under the application's own load, ns
    /// (including on-die overhead): a fixed point between the interval
    /// model's access rate and the channel model's loaded latency.
    pub fn dram_latency_under_load(
        &self,
        profile: &WorkloadProfile,
        f_ghz: f64,
        threads: usize,
    ) -> f64 {
        let idle = self.timing.closed_latency() + self.arch.dram_overhead_ns;
        let mut lat = idle;
        for round in 0..3 {
            let cpi = cpi_breakdown(&self.arch, profile, f_ghz, lat);
            let rate = threads as f64 * (f_ghz * 1e9 / cpi.total()) * profile.dram_apki() / 1000.0;
            if rate <= 0.0 {
                return idle;
            }
            lat = self.simulate_channel_latency(profile, rate, 64 + round)
                + self.arch.dram_overhead_ns;
        }
        lat
    }

    /// Drives the Wide I/O channel model with a synthetic arrival process
    /// at `rate` accesses/s and returns the mean device latency, ns.
    fn simulate_channel_latency(&self, profile: &WorkloadProfile, rate: f64, seed: u64) -> f64 {
        const REQUESTS: usize = 4000;
        let mut stack = WideIoStack::new(self.timing);
        let mut rng = StdRng::seed_from_u64(seed);
        let mean_gap_ns = 1e9 / rate;
        let mut now = 0.0_f64;
        // Track a current row per bank to honor the row-hit fraction.
        let mut rows = [[0u64; 16]; 4];
        for _ in 0..REQUESTS {
            // Exponential interarrival.
            let u: f64 = rng.gen_range(1e-9..1.0);
            now += -mean_gap_ns * u.ln();
            let ch = rng.gen_range(0..4usize);
            let bank16 = rng.gen_range(0..16usize);
            if !rng.gen_bool(profile.row_hit_fraction) {
                rows[ch][bank16] = rng.gen_range(0..4096);
            }
            let row = rows[ch][bank16];
            let addr = (row << 12)
                | ((bank16 as u64 & 0x3) << 10)
                | (((bank16 as u64) >> 2) << 8)
                | ((ch as u64) << 6);
            let kind = if rng.gen_bool(profile.read_fraction) {
                RequestKind::Read
            } else {
                RequestKind::Write
            };
            stack.access(MemoryRequest {
                addr,
                kind,
                issue_ns: now,
            });
        }
        stack.total_stats().mean_latency_ns()
    }

    /// Runs `benchmark` through the **measured** path: generates traces,
    /// measures the cache hierarchy, substitutes the measured miss rates
    /// into the profile, and evaluates the interval model on them. This
    /// closes the loop between the synthetic traces and the analytic
    /// profiles; tests assert the two paths agree qualitatively.
    ///
    /// `instructions` is the per-thread trace length for the measurement
    /// (trade accuracy for time).
    pub fn run_measured(
        &self,
        benchmark: Benchmark,
        f_ghz: f64,
        threads: usize,
        instructions: u64,
        seed: u64,
    ) -> AppMetrics {
        let report = self.simulate_hierarchy(benchmark, instructions, threads, seed);
        let mut profile = benchmark.profile();
        profile.l1i_mpki = report.l1i_mpki;
        profile.l1d_mpki = report.l1d_mpki;
        profile.l2_mpki = report.l2_mpki;
        profile.sharing_fraction = report.c2c_fraction.clamp(0.0, 1.0);
        let lat = self.dram_latency_under_load(&profile, f_ghz, threads);
        self.metrics_for_latency(&profile, f_ghz, threads, lat)
    }

    /// Trace-driven cache-hierarchy simulation: `instructions` slots per
    /// thread through private L1I/L1D (write-through, no-write-allocate
    /// data cache per Table 3) and the MESI-coherent private L2s.
    pub fn simulate_hierarchy(
        &self,
        benchmark: Benchmark,
        instructions: u64,
        threads: usize,
        seed: u64,
    ) -> HierarchyReport {
        assert!(threads >= 1 && threads <= self.arch.cores);
        let profile = benchmark.profile();
        let mut l1i: Vec<Cache> = (0..threads).map(|_| Cache::new(self.arch.l1i)).collect();
        let mut l1d: Vec<Cache> = (0..threads).map(|_| Cache::new(self.arch.l1d)).collect();
        let mut l2s = CoherentL2s::new(threads, self.arch.l2);
        let mut gens: Vec<TraceGenerator> = (0..threads)
            .map(|t| TraceGenerator::new(profile, t, seed))
            .collect();

        let mut l1i_misses = 0u64;
        let mut l1d_misses = 0u64;
        let mut l2_misses = 0u64;
        let mut c2c = 0u64;
        let mut dram = 0u64;

        for _ in 0..instructions {
            for t in 0..threads {
                let ev = gens[t].next_event();
                if matches!(
                    l1i[t].access(ev.pc, false, LineState::Exclusive),
                    crate::cache::AccessOutcome::Miss { .. }
                ) {
                    l1i_misses += 1;
                    // Instruction fill goes through the local L2.
                    if let Some(src) = l2s.access(t, ev.pc | 1 << 62, false) {
                        l2_misses += 1;
                        match src {
                            MissSource::CacheToCache => c2c += 1,
                            MissSource::Dram => dram += 1,
                        }
                    }
                }
                if let Some((addr, is_write)) = ev.access {
                    if is_write {
                        // Write-through, no-write-allocate: the write always
                        // reaches the L2; the L1 is updated only on a hit.
                        let _ = l1d[t].state_of(addr); // modeling note: no allocate
                        if let Some(src) = l2s.access(t, addr, true) {
                            l2_misses += 1;
                            match src {
                                MissSource::CacheToCache => c2c += 1,
                                MissSource::Dram => dram += 1,
                            }
                        }
                        l1d_misses += 1; // WT writes count as L2 traffic
                    } else if matches!(
                        l1d[t].access(addr, false, LineState::Exclusive),
                        crate::cache::AccessOutcome::Miss { .. }
                    ) {
                        l1d_misses += 1;
                        if let Some(src) = l2s.access(t, addr, false) {
                            l2_misses += 1;
                            match src {
                                MissSource::CacheToCache => c2c += 1,
                                MissSource::Dram => dram += 1,
                            }
                        }
                    }
                }
            }
        }

        let total_instr = instructions * threads as u64;
        let k = 1000.0 / total_instr as f64;
        HierarchyReport {
            instructions: total_instr,
            l1i_mpki: l1i_misses as f64 * k,
            l1d_mpki: l1d_misses as f64 * k,
            l2_mpki: l2_misses as f64 * k,
            c2c_fraction: if l2_misses == 0 {
                0.0
            } else {
                c2c as f64 / l2_misses as f64
            },
            dram_apki: dram as f64 * k,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_produces_consistent_metrics() {
        let m = Machine::paper_default();
        let a = m.run(Benchmark::Fft, 2.4, 8);
        assert!(a.exec_time_s > 0.0);
        assert!(a.activity > 0.0 && a.activity <= 1.0);
        assert!(a.dram_latency_ns >= 40.0, "{}", a.dram_latency_ns);
        assert!(a.dram_bandwidth_gbps < 51.2, "{}", a.dram_bandwidth_gbps);
    }

    #[test]
    fn memory_bound_apps_have_higher_latency_and_lower_activity() {
        let m = Machine::paper_default();
        let is = m.run(Benchmark::Is, 2.4, 8);
        let lu = m.run(Benchmark::LuNas, 2.4, 8);
        assert!(is.activity < lu.activity);
        assert!(is.dram_bandwidth_gbps > lu.dram_bandwidth_gbps);
        assert!(is.dram_latency_ns >= lu.dram_latency_ns - 2.0);
    }

    #[test]
    fn frequency_boost_shrinks_time_sublinearly_for_memory_bound() {
        let m = Machine::paper_default();
        let t24 = m.run(Benchmark::Ft, 2.4, 8).exec_time_s;
        let t35 = m.run(Benchmark::Ft, 3.5, 8).exec_time_s;
        let speedup = t24 / t35;
        assert!(speedup > 1.0 && speedup < 1.25, "{speedup}");
        let c24 = m.run(Benchmark::LuNas, 2.4, 8).exec_time_s;
        let c35 = m.run(Benchmark::LuNas, 3.5, 8).exec_time_s;
        assert!(c24 / c35 > 1.35, "{}", c24 / c35);
    }

    #[test]
    fn hierarchy_measurement_tracks_profile_ordering() {
        let m = Machine::paper_default();
        let is = m.simulate_hierarchy(Benchmark::Is, 40_000, 4, 11);
        let lu = m.simulate_hierarchy(Benchmark::LuNas, 40_000, 4, 11);
        assert!(
            is.l1d_mpki > lu.l1d_mpki,
            "{} vs {}",
            is.l1d_mpki,
            lu.l1d_mpki
        );
        assert!(
            is.dram_apki > lu.dram_apki,
            "{} vs {}",
            is.dram_apki,
            lu.dram_apki
        );
    }

    #[test]
    fn sharing_apps_see_cache_to_cache_traffic() {
        let m = Machine::paper_default();
        let barnes = m.simulate_hierarchy(Benchmark::Barnes, 60_000, 8, 5);
        assert!(barnes.c2c_fraction > 0.02, "{}", barnes.c2c_fraction);
    }

    #[test]
    fn loaded_latency_reasonable_for_all_benchmarks() {
        let m = Machine::paper_default();
        for b in Benchmark::ALL {
            // Row hits pull the mean below the idle closed-row latency;
            // queuing pushes it above. Both are bounded.
            let lat = m.dram_latency_under_load(&b.profile(), 2.4, 8);
            assert!((20.0..200.0).contains(&lat), "{b}: {lat} ns");
        }
    }

    #[test]
    #[should_panic(expected = "threads")]
    fn too_many_threads_panics() {
        let m = Machine::paper_default();
        let _ = m.run(Benchmark::Fft, 2.4, 9);
    }

    #[test]
    fn measured_path_agrees_with_profile_path_qualitatively() {
        let m = Machine::paper_default();
        // Measured exec times preserve the compute/memory ordering.
        let lu_a = m.run(Benchmark::LuNas, 2.4, 4);
        let lu_m = m.run_measured(Benchmark::LuNas, 2.4, 4, 30_000, 7);
        let is_a = m.run(Benchmark::Is, 2.4, 4);
        let is_m = m.run_measured(Benchmark::Is, 2.4, 4, 30_000, 7);
        // Per-instruction cost: memory-bound > compute-bound on both paths.
        assert!(is_a.cpi.total() > lu_a.cpi.total());
        assert!(is_m.cpi.total() > lu_m.cpi.total());
        // Activities track each other within a factor of 2.
        let ratio = lu_m.activity / lu_a.activity;
        assert!((0.5..2.0).contains(&ratio), "{ratio}");
    }

    #[test]
    fn measured_path_is_deterministic_per_seed() {
        let m = Machine::paper_default();
        let a = m.run_measured(Benchmark::Fft, 2.8, 2, 20_000, 3);
        let b = m.run_measured(Benchmark::Fft, 2.8, 2, 20_000, 3);
        assert_eq!(a, b);
    }
}
