//! Set-associative LRU cache with MESI line states.
//!
//! One implementation serves the private L1s (which only use the
//! `Exclusive`/`Modified` states) and the coherent L2s (full MESI driven
//! by [`crate::coherence`]).

use serde::{Deserialize, Serialize};

use crate::config::CacheGeometry;

/// MESI line state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LineState {
    /// Not present.
    Invalid,
    /// Clean, possibly in other caches.
    Shared,
    /// Clean, only copy.
    Exclusive,
    /// Dirty, only copy.
    Modified,
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    state: LineState,
    /// Higher = more recently used.
    lru: u64,
}

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// Line present in a compatible state.
    Hit,
    /// Line absent (or present in an incompatible state for a write —
    /// reported as a miss to let the coherence layer upgrade it).
    Miss {
        /// Dirty line address evicted to make room, if any.
        writeback: Option<u64>,
    },
}

/// Aggregate statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Misses (including coherence upgrades).
    pub misses: u64,
    /// Dirty evictions.
    pub writebacks: u64,
}

impl CacheStats {
    /// Misses per kilo-access.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// A set-associative LRU cache.
#[derive(Debug, Clone)]
pub struct Cache {
    geometry: CacheGeometry,
    sets: Vec<Vec<Line>>,
    clock: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not yield a power-of-two set count of
    /// at least 1.
    pub fn new(geometry: CacheGeometry) -> Self {
        let sets = geometry.sets();
        assert!(sets >= 1 && sets.is_power_of_two(), "bad set count {sets}");
        Cache {
            geometry,
            sets: vec![Vec::with_capacity(geometry.ways); sets],
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The geometry.
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geometry
    }

    fn set_index(&self, addr: u64) -> usize {
        ((addr / self.geometry.line as u64) % self.sets.len() as u64) as usize
    }

    fn tag(&self, addr: u64) -> u64 {
        addr / (self.geometry.line as u64 * self.sets.len() as u64)
    }

    /// Line-aligned base address of a (set, tag) pair.
    fn line_addr(&self, set: usize, tag: u64) -> u64 {
        (tag * self.sets.len() as u64 + set as u64) * self.geometry.line as u64
    }

    /// Current state of the line containing `addr`.
    pub fn state_of(&self, addr: u64) -> LineState {
        let set = self.set_index(addr);
        let tag = self.tag(addr);
        self.sets[set]
            .iter()
            .find(|l| l.tag == tag && l.state != LineState::Invalid)
            .map_or(LineState::Invalid, |l| l.state)
    }

    /// Accesses `addr`; on a miss the line is filled in `fill_state`.
    /// A write to a `Shared` line is reported as a miss (upgrade) and the
    /// line moves to `fill_state`.
    pub fn access(&mut self, addr: u64, write: bool, fill_state: LineState) -> AccessOutcome {
        self.clock += 1;
        self.stats.accesses += 1;
        let set = self.set_index(addr);
        let tag = self.tag(addr);
        let clock = self.clock;

        if let Some(line) = self.sets[set]
            .iter_mut()
            .find(|l| l.tag == tag && l.state != LineState::Invalid)
        {
            line.lru = clock;
            if write {
                if line.state == LineState::Shared {
                    // Upgrade miss: the coherence layer must invalidate the
                    // other sharers; we count it as a miss.
                    line.state = fill_state;
                    self.stats.misses += 1;
                    return AccessOutcome::Miss { writeback: None };
                }
                line.state = LineState::Modified;
            }
            return AccessOutcome::Hit;
        }

        self.stats.misses += 1;
        let state = if write {
            LineState::Modified
        } else {
            fill_state
        };
        let new_line = Line {
            tag,
            state,
            lru: clock,
        };

        let ways = self.geometry.ways;
        let set_vec = &mut self.sets[set];
        if set_vec.len() < ways {
            set_vec.push(new_line);
            return AccessOutcome::Miss { writeback: None };
        }
        // Evict LRU.
        let victim_idx = set_vec
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| l.lru)
            .map(|(i, _)| i)
            .expect("non-empty set");
        let victim = set_vec[victim_idx];
        set_vec[victim_idx] = new_line;
        let writeback = if victim.state == LineState::Modified {
            self.stats.writebacks += 1;
            Some(self.line_addr(set, victim.tag))
        } else {
            None
        };
        AccessOutcome::Miss { writeback }
    }

    /// Invalidates the line containing `addr` (snoop); returns `true` if
    /// the line was dirty (needs a writeback / cache-to-cache supply).
    pub fn invalidate(&mut self, addr: u64) -> bool {
        let set = self.set_index(addr);
        let tag = self.tag(addr);
        if let Some(line) = self.sets[set]
            .iter_mut()
            .find(|l| l.tag == tag && l.state != LineState::Invalid)
        {
            let dirty = line.state == LineState::Modified;
            line.state = LineState::Invalid;
            dirty
        } else {
            false
        }
    }

    /// Downgrades the line containing `addr` to `Shared` (remote read
    /// snoop); returns `true` if it was dirty.
    pub fn downgrade(&mut self, addr: u64) -> bool {
        let set = self.set_index(addr);
        let tag = self.tag(addr);
        if let Some(line) = self.sets[set]
            .iter_mut()
            .find(|l| l.tag == tag && l.state != LineState::Invalid)
        {
            let dirty = line.state == LineState::Modified;
            line.state = LineState::Shared;
            dirty
        } else {
            false
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        Cache::new(CacheGeometry {
            size: 4 * 64 * 2, // 2 sets, 4 ways
            ways: 4,
            line: 64,
            round_trip_cycles: 2,
        })
    }

    #[test]
    fn hit_after_fill() {
        let mut c = small();
        assert!(matches!(
            c.access(0x1000, false, LineState::Exclusive),
            AccessOutcome::Miss { writeback: None }
        ));
        assert_eq!(
            c.access(0x1000, false, LineState::Exclusive),
            AccessOutcome::Hit
        );
        assert_eq!(c.state_of(0x1000), LineState::Exclusive);
    }

    #[test]
    fn same_line_different_word_hits() {
        let mut c = small();
        c.access(0x1000, false, LineState::Exclusive);
        assert_eq!(
            c.access(0x103F, false, LineState::Exclusive),
            AccessOutcome::Hit
        );
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = small();
        // Fill 4 ways of set 0 (stride = 2 sets * 64 = 128).
        for i in 0..4u64 {
            c.access(i * 128, false, LineState::Exclusive);
        }
        // Touch line 0 so line 1 becomes LRU.
        c.access(0, false, LineState::Exclusive);
        // New line evicts line 1 (clean, no writeback).
        assert!(matches!(
            c.access(4 * 128, false, LineState::Exclusive),
            AccessOutcome::Miss { writeback: None }
        ));
        assert_eq!(c.state_of(0), LineState::Exclusive);
        assert_eq!(c.state_of(128), LineState::Invalid);
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = small();
        c.access(0, true, LineState::Modified);
        for i in 1..4u64 {
            c.access(i * 128, false, LineState::Exclusive);
        }
        match c.access(4 * 128, false, LineState::Exclusive) {
            AccessOutcome::Miss { writeback: Some(a) } => assert_eq!(a, 0),
            other => panic!("expected writeback, got {other:?}"),
        }
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn write_hit_dirties_line() {
        let mut c = small();
        c.access(0, false, LineState::Exclusive);
        assert_eq!(c.access(0, true, LineState::Modified), AccessOutcome::Hit);
        assert_eq!(c.state_of(0), LineState::Modified);
    }

    #[test]
    fn write_to_shared_is_upgrade_miss() {
        let mut c = small();
        c.access(0, false, LineState::Shared);
        assert!(matches!(
            c.access(0, true, LineState::Modified),
            AccessOutcome::Miss { writeback: None }
        ));
        assert_eq!(c.state_of(0), LineState::Modified);
    }

    #[test]
    fn invalidate_and_downgrade() {
        let mut c = small();
        c.access(0, true, LineState::Modified);
        assert!(c.downgrade(0));
        assert_eq!(c.state_of(0), LineState::Shared);
        assert!(!c.invalidate(0)); // now clean
        assert_eq!(c.state_of(0), LineState::Invalid);
        assert!(!c.invalidate(0x9999_0000)); // absent
    }

    #[test]
    fn miss_rate_accounting() {
        let mut c = small();
        for _ in 0..9 {
            c.access(0, false, LineState::Exclusive);
        }
        c.access(64, false, LineState::Exclusive); // different set/line -> miss
        assert_eq!(c.stats().accesses, 10);
        assert_eq!(c.stats().misses, 2);
        assert!((c.stats().miss_rate() - 0.2).abs() < 1e-12);
    }
}
