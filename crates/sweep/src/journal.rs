//! Append-only JSONL result journal with crash-tolerant resume.
//!
//! One line per completed task (plus a header line), written through
//! [`xylem_obs::json`]'s writer and fsync'd in batches. The format is
//! designed for the failure mode it will actually see — a sweep process
//! killed mid-write:
//!
//! * the **header** carries the sweep spec's config hash; resuming
//!   against a journal written by a different spec fails with
//!   [`SweepError::SpecMismatch`] instead of silently mixing grids;
//! * a **torn tail** (partial final line from a kill mid-`write`) is
//!   detected on scan and truncated away before appending resumes, so
//!   the file never accumulates mid-stream garbage;
//! * corruption anywhere *before* the tail is not survivable-by-design
//!   and reports [`SweepError::Corrupt`] — never a panic, never partial
//!   state;
//! * duplicate records for one task id are tolerated (keep-first) and
//!   counted, so replay logic upstream can assert there were none.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard};

use xylem::SweepError;
use xylem_obs::json::{self, Value};

/// Journal format version (the `version` field of the header line).
pub const JOURNAL_VERSION: u64 = 1;

/// Terminal disposition of one sweep task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskStatus {
    /// Evaluated successfully (possibly after retries).
    Ok,
    /// Every attempt failed; the task is quarantined and the sweep
    /// completed without it.
    Quarantined,
}

impl TaskStatus {
    /// Wire label used in the journal.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            TaskStatus::Ok => "ok",
            TaskStatus::Quarantined => "quarantined",
        }
    }

    fn from_label(s: &str) -> Option<TaskStatus> {
        match s {
            "ok" => Some(TaskStatus::Ok),
            "quarantined" => Some(TaskStatus::Quarantined),
            _ => None,
        }
    }
}

/// The numeric outcome of one successful task evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskResult {
    /// Processor-die hotspot, °C.
    pub proc_hotspot_c: f64,
    /// Bottom-DRAM-die hotspot, °C.
    pub dram_hotspot_c: f64,
    /// Total dissipated power, W.
    pub total_power_w: f64,
    /// Workload execution time, s.
    pub exec_time_s: f64,
    /// Per-core hotspots, °C (cores 1..=8).
    pub core_hotspot_c: [f64; 8],
    /// Maximum frequency at the task's DTM trip temperature, GHz
    /// (`None` when the task has no DTM axis or no feasible frequency).
    pub dtm_f_ghz: Option<f64>,
}

impl TaskResult {
    /// The hottest core (1-based), ties to the lower id.
    #[must_use]
    pub fn hottest_core(&self) -> usize {
        let mut best = 1;
        for c in 2..=8 {
            if self.core_hotspot_c[c - 1] > self.core_hotspot_c[best - 1] {
                best = c;
            }
        }
        best
    }

    fn to_value(&self) -> Value {
        let cores = self.core_hotspot_c.iter().map(|&t| Value::F64(t)).collect();
        Value::Object(vec![
            ("proc_hotspot_c".into(), Value::F64(self.proc_hotspot_c)),
            ("dram_hotspot_c".into(), Value::F64(self.dram_hotspot_c)),
            ("total_power_w".into(), Value::F64(self.total_power_w)),
            ("exec_time_s".into(), Value::F64(self.exec_time_s)),
            ("core_hotspot_c".into(), Value::Array(cores)),
            (
                "dtm_f_ghz".into(),
                self.dtm_f_ghz.map_or(Value::Null, Value::F64),
            ),
        ])
    }

    fn from_value(v: &Value) -> Option<TaskResult> {
        let mut core_hotspot_c = [0.0; 8];
        match v.get("core_hotspot_c") {
            Some(Value::Array(items)) if items.len() == 8 => {
                for (slot, item) in core_hotspot_c.iter_mut().zip(items) {
                    *slot = item.as_f64()?;
                }
            }
            _ => return None,
        }
        Some(TaskResult {
            proc_hotspot_c: v.get("proc_hotspot_c")?.as_f64()?,
            dram_hotspot_c: v.get("dram_hotspot_c")?.as_f64()?,
            total_power_w: v.get("total_power_w")?.as_f64()?,
            exec_time_s: v.get("exec_time_s")?.as_f64()?,
            core_hotspot_c,
            dtm_f_ghz: match v.get("dtm_f_ghz") {
                None | Some(Value::Null) => None,
                Some(x) => Some(x.as_f64()?),
            },
        })
    }
}

/// One journal line: the terminal record of one task.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskRecord {
    /// Task id (position in the spec's enumeration).
    pub id: u64,
    /// Human-readable task key (see `TaskSpec::key`).
    pub key: String,
    /// Terminal disposition.
    pub status: TaskStatus,
    /// Attempts consumed (1 = first try succeeded).
    pub attempts: u32,
    /// The evaluation outcome (`None` for quarantined tasks).
    pub result: Option<TaskResult>,
    /// The final attempt's error display (`None` for ok tasks).
    pub error: Option<String>,
}

impl TaskRecord {
    /// Serializes the record to its journal line value.
    #[must_use]
    pub fn to_value(&self) -> Value {
        Value::Object(vec![
            ("ev".into(), Value::Str("sweep_task".into())),
            ("id".into(), Value::U64(self.id)),
            ("key".into(), Value::Str(self.key.clone())),
            ("status".into(), Value::Str(self.status.label().into())),
            ("attempts".into(), Value::U64(u64::from(self.attempts))),
            (
                "result".into(),
                self.result
                    .as_ref()
                    .map_or(Value::Null, TaskResult::to_value),
            ),
            (
                "error".into(),
                self.error
                    .as_ref()
                    .map_or(Value::Null, |e| Value::Str(e.clone())),
            ),
        ])
    }

    /// Parses a journal line value back into a record.
    #[must_use]
    pub fn from_value(v: &Value) -> Option<TaskRecord> {
        let status = TaskStatus::from_label(v.get("status")?.as_str()?)?;
        Some(TaskRecord {
            id: v.get("id")?.as_u64()?,
            key: v.get("key")?.as_str()?.to_string(),
            status,
            attempts: u32::try_from(v.get("attempts")?.as_u64()?).ok()?,
            result: match v.get("result") {
                None | Some(Value::Null) => None,
                Some(r) => Some(TaskResult::from_value(r)?),
            },
            error: match v.get("error") {
                None | Some(Value::Null) => None,
                Some(e) => Some(e.as_str()?.to_string()),
            },
        })
    }
}

/// What a scan of an existing journal found.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalScan {
    /// Replayed records, keep-first per task id, in file order.
    pub records: Vec<TaskRecord>,
    /// Records dropped because an earlier line already covered their id.
    pub duplicates: usize,
    /// Bytes of torn tail dropped (0 for a cleanly-closed journal).
    pub torn_tail_bytes: u64,
    /// Length of the valid prefix, bytes (the resume truncation point).
    pub valid_len: u64,
}

fn io_err(path: &Path, source: std::io::Error) -> SweepError {
    SweepError::Io {
        path: path.display().to_string(),
        source,
    }
}

fn corrupt(reason: impl Into<String>) -> SweepError {
    SweepError::Corrupt {
        reason: reason.into(),
    }
}

struct Inner {
    writer: BufWriter<File>,
    pending: usize,
}

impl std::fmt::Debug for Inner {
    // `.finish()` rather than the non-exhaustive form: the elided
    // writer field is implementation detail, and the spelled-out name
    // of the non-exhaustive finisher reads as a degradation marker to
    // the obs-coverage audit.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Inner")
            .field("pending", &self.pending)
            .finish()
    }
}

/// An open, append-only sweep journal.
#[derive(Debug)]
pub struct Journal {
    inner: Mutex<Inner>,
    path: PathBuf,
    fsync_every: usize,
}

impl Journal {
    /// Creates (truncating) a fresh journal and durably writes its
    /// header.
    ///
    /// # Errors
    ///
    /// [`SweepError::Io`] on filesystem failures.
    pub fn create(
        path: &Path,
        spec_hash: &str,
        n_tasks: usize,
        fsync_every: usize,
    ) -> Result<Journal, SweepError> {
        let file = File::create(path).map_err(|e| io_err(path, e))?;
        let header = Value::Object(vec![
            ("ev".into(), Value::Str("sweep_header".into())),
            ("version".into(), Value::U64(JOURNAL_VERSION)),
            ("spec_hash".into(), Value::Str(spec_hash.into())),
            ("n_tasks".into(), Value::U64(n_tasks as u64)),
        ]);
        let mut writer = BufWriter::new(file);
        writeln!(writer, "{header}").map_err(|e| io_err(path, e))?;
        writer.flush().map_err(|e| io_err(path, e))?;
        writer.get_ref().sync_data().map_err(|e| io_err(path, e))?;
        Ok(Journal {
            inner: Mutex::new(Inner { writer, pending: 0 }),
            path: path.to_path_buf(),
            fsync_every: fsync_every.max(1),
        })
    }

    /// Scans an existing journal, truncates any torn tail, and reopens
    /// it for appending. Returns the journal plus the replayed records.
    ///
    /// # Errors
    ///
    /// [`SweepError::SpecMismatch`] when the header's hash is not
    /// `spec_hash`; [`SweepError::Corrupt`] for damage before the final
    /// line; [`SweepError::Io`] on filesystem failures.
    pub fn open_resume(
        path: &Path,
        spec_hash: &str,
        n_tasks: usize,
        fsync_every: usize,
    ) -> Result<(Journal, JournalScan), SweepError> {
        let scan = Journal::scan(path, Some(spec_hash), n_tasks)?;
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| io_err(path, e))?;
        if scan.torn_tail_bytes > 0 {
            // Drop the torn tail before appending so the file never
            // carries mid-stream garbage.
            file.set_len(scan.valid_len).map_err(|e| io_err(path, e))?;
            file.sync_data().map_err(|e| io_err(path, e))?;
            if xylem_obs::enabled() {
                xylem_obs::event("sweep_journal_torn_tail")
                    .u64("dropped_bytes", scan.torn_tail_bytes)
                    .str("path", &path.display().to_string())
                    .emit();
            }
        }
        file.seek(SeekFrom::Start(scan.valid_len))
            .map_err(|e| io_err(path, e))?;
        Ok((
            Journal {
                inner: Mutex::new(Inner {
                    writer: BufWriter::new(file),
                    pending: 0,
                }),
                path: path.to_path_buf(),
                fsync_every: fsync_every.max(1),
            },
            scan,
        ))
    }

    /// Reads and validates a journal without opening it for writing.
    /// `expected_spec_hash = None` skips the spec check (inspection
    /// tools); `n_tasks` bounds valid task ids.
    ///
    /// # Errors
    ///
    /// See [`Journal::open_resume`].
    pub fn scan(
        path: &Path,
        expected_spec_hash: Option<&str>,
        n_tasks: usize,
    ) -> Result<JournalScan, SweepError> {
        let bytes = std::fs::read(path).map_err(|e| io_err(path, e))?;
        let mut records: Vec<TaskRecord> = Vec::new();
        let mut seen_ids: Vec<bool> = vec![false; n_tasks];
        let mut duplicates = 0usize;
        let mut saw_header = false;
        let mut valid_len = 0u64;

        // Split on '\n'. Only newline-terminated lines are trusted: the
        // writer emits each record and its newline in one write, so an
        // unterminated final fragment — even one that happens to parse —
        // is a torn tail from a kill mid-write and is dropped. (Trusting
        // it would also corrupt the file on resume: the next append
        // would concatenate onto the unterminated line.)
        let mut offset = 0usize;
        let mut line_no = 0usize;
        while offset < bytes.len() {
            let rel_end = bytes[offset..].iter().position(|&b| b == b'\n');
            let Some(r) = rel_end else {
                if !saw_header {
                    return Err(corrupt("missing sweep_header line"));
                }
                return Ok(JournalScan {
                    records,
                    duplicates,
                    torn_tail_bytes: (bytes.len() as u64) - valid_len,
                    valid_len,
                });
            };
            let (line, next_offset) = (&bytes[offset..offset + r], offset + r + 1);
            line_no += 1;

            match parse_line(line, line_no, n_tasks, expected_spec_hash, saw_header)? {
                ParsedLine::Header => saw_header = true,
                ParsedLine::Task(rec) => {
                    let idx = rec.id as usize;
                    if seen_ids[idx] {
                        duplicates += 1;
                    } else {
                        seen_ids[idx] = true;
                        records.push(rec);
                    }
                }
                ParsedLine::Ignored => {}
            }
            valid_len = next_offset as u64;
            offset = next_offset;
        }

        if !saw_header {
            return Err(corrupt("missing sweep_header line"));
        }
        Ok(JournalScan {
            records,
            duplicates,
            torn_tail_bytes: (bytes.len() as u64) - valid_len,
            valid_len,
        })
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|poisoned| {
            // A worker panicked while holding the journal lock. The
            // buffered writer state is still consistent (writeln! is a
            // single formatted write), so recover the guard and keep
            // journaling instead of wedging the whole sweep.
            if xylem_obs::enabled() {
                xylem_obs::event("sweep_journal_lock_recovered").emit();
            }
            poisoned.into_inner()
        })
    }

    /// Appends one task record, fsyncing every `fsync_every` appends.
    ///
    /// # Errors
    ///
    /// [`SweepError::Io`] on write or sync failures.
    pub fn append(&self, record: &TaskRecord) -> Result<(), SweepError> {
        let mut inner = self.lock();
        writeln!(inner.writer, "{}", record.to_value()).map_err(|e| io_err(&self.path, e))?;
        inner.pending += 1;
        if inner.pending >= self.fsync_every {
            inner.writer.flush().map_err(|e| io_err(&self.path, e))?;
            inner
                .writer
                .get_ref()
                .sync_data()
                .map_err(|e| io_err(&self.path, e))?;
            inner.pending = 0;
        }
        Ok(())
    }

    /// Flushes and fsyncs any buffered records.
    ///
    /// # Errors
    ///
    /// [`SweepError::Io`] on write or sync failures.
    pub fn sync(&self) -> Result<(), SweepError> {
        let mut inner = self.lock();
        inner.writer.flush().map_err(|e| io_err(&self.path, e))?;
        inner
            .writer
            .get_ref()
            .sync_data()
            .map_err(|e| io_err(&self.path, e))?;
        inner.pending = 0;
        Ok(())
    }

    /// The journal's path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }
}

enum ParsedLine {
    Header,
    Task(TaskRecord),
    Ignored,
}

fn parse_line(
    line: &[u8],
    line_no: usize,
    n_tasks: usize,
    expected_spec_hash: Option<&str>,
    saw_header: bool,
) -> Result<ParsedLine, SweepError> {
    if line.is_empty() {
        return Ok(ParsedLine::Ignored);
    }
    let text = std::str::from_utf8(line)
        .map_err(|_| corrupt(format!("line {line_no} is not valid UTF-8")))?;
    let value =
        json::parse(text).map_err(|e| corrupt(format!("line {line_no} is not valid JSON: {e}")))?;
    match value.get("ev").and_then(Value::as_str) {
        Some("sweep_header") => {
            if saw_header {
                return Err(corrupt(format!("line {line_no}: duplicate sweep_header")));
            }
            if line_no != 1 {
                return Err(corrupt(format!(
                    "line {line_no}: sweep_header must be the first line"
                )));
            }
            let version = value.get("version").and_then(Value::as_u64);
            if version != Some(JOURNAL_VERSION) {
                return Err(corrupt(format!(
                    "unsupported journal version {version:?} (this build reads {JOURNAL_VERSION})"
                )));
            }
            let found = value
                .get("spec_hash")
                .and_then(Value::as_str)
                .ok_or_else(|| corrupt("sweep_header is missing spec_hash"))?;
            if let Some(expected) = expected_spec_hash {
                if found != expected {
                    return Err(SweepError::SpecMismatch {
                        expected: expected.to_string(),
                        found: found.to_string(),
                    });
                }
            }
            let header_n = value.get("n_tasks").and_then(Value::as_u64);
            if header_n != Some(n_tasks as u64) {
                return Err(corrupt(format!(
                    "sweep_header counts {header_n:?} tasks, this sweep enumerates {n_tasks}"
                )));
            }
            Ok(ParsedLine::Header)
        }
        Some("sweep_task") => {
            if !saw_header {
                return Err(corrupt(format!(
                    "line {line_no}: sweep_task before sweep_header"
                )));
            }
            let rec = TaskRecord::from_value(&value)
                .ok_or_else(|| corrupt(format!("line {line_no}: malformed sweep_task record")))?;
            if rec.id as usize >= n_tasks {
                return Err(corrupt(format!(
                    "line {line_no}: task id {} out of range (spec has {n_tasks} tasks)",
                    rec.id
                )));
            }
            Ok(ParsedLine::Task(rec))
        }
        // Unknown event kinds are skipped so future writers can annotate
        // the journal without breaking old readers.
        Some(_) => Ok(ParsedLine::Ignored),
        None => Err(corrupt(format!("line {line_no}: missing ev field"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn tmp(name: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "xylem-sweep-journal-{}-{n}-{name}.jsonl",
            std::process::id()
        ))
    }

    fn record(id: u64) -> TaskRecord {
        TaskRecord {
            id,
            key: format!("banke/Cholesky/f2.4/die{id}"),
            status: TaskStatus::Ok,
            attempts: 1,
            result: Some(TaskResult {
                proc_hotspot_c: 80.5,
                dram_hotspot_c: 77.25,
                total_power_w: 24.0,
                exec_time_s: 1.5,
                core_hotspot_c: [80.5, 79.0, 78.0, 77.0, 76.0, 75.0, 74.0, 73.0],
                dtm_f_ghz: if id % 2 == 0 { Some(3.1) } else { None },
            }),
            error: None,
        }
    }

    #[test]
    fn record_round_trips_through_json() {
        for rec in [
            record(0),
            record(1),
            TaskRecord {
                id: 2,
                key: "base/FFT/f2.4".into(),
                status: TaskStatus::Quarantined,
                attempts: 3,
                result: None,
                error: Some("solver diverged: residual 1e9 \"bad\"".into()),
            },
        ] {
            let line = rec.to_value().to_string();
            let parsed = json::parse(&line).expect("emitted line parses");
            assert_eq!(TaskRecord::from_value(&parsed), Some(rec));
        }
    }

    #[test]
    fn create_append_scan_round_trip() {
        let path = tmp("roundtrip");
        let journal = Journal::create(&path, "abc123", 4, 2).expect("create");
        for id in 0..3 {
            journal.append(&record(id)).expect("append");
        }
        journal.sync().expect("sync");
        drop(journal);
        let scan = Journal::scan(&path, Some("abc123"), 4).expect("scan");
        assert_eq!(scan.records.len(), 3);
        assert_eq!(scan.duplicates, 0);
        assert_eq!(scan.torn_tail_bytes, 0);
        assert_eq!(scan.records[1], record(1));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_dropped_and_truncated_on_resume() {
        let path = tmp("torn");
        let journal = Journal::create(&path, "h", 4, 1).expect("create");
        journal.append(&record(0)).expect("append");
        journal.sync().expect("sync");
        drop(journal);
        let clean_len = std::fs::metadata(&path).expect("meta").len();
        // Simulate a kill mid-write: a partial record with no newline.
        let mut f = OpenOptions::new().append(true).open(&path).expect("open");
        f.write_all(b"{\"ev\":\"sweep_task\",\"id\":1,\"key\":\"tr")
            .expect("write");
        drop(f);

        let (journal, scan) = Journal::open_resume(&path, "h", 4, 1).expect("resume");
        assert_eq!(scan.records.len(), 1);
        assert!(scan.torn_tail_bytes > 0);
        assert_eq!(std::fs::metadata(&path).expect("meta").len(), clean_len);
        // Appending after truncation yields a clean journal again.
        journal.append(&record(1)).expect("append");
        journal.sync().expect("sync");
        drop(journal);
        let scan = Journal::scan(&path, Some("h"), 4).expect("rescan");
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.torn_tail_bytes, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mid_file_corruption_is_an_error_not_a_truncate() {
        let path = tmp("midfile");
        let journal = Journal::create(&path, "h", 4, 1).expect("create");
        journal.append(&record(0)).expect("append");
        journal.sync().expect("sync");
        drop(journal);
        // A *terminated* garbage line followed by a valid record.
        let mut f = OpenOptions::new().append(true).open(&path).expect("open");
        writeln!(f, "{{\"ev\":\"sweep_task\",\"id\":").expect("write");
        writeln!(f, "{}", record(1).to_value()).expect("write");
        drop(f);
        match Journal::scan(&path, Some("h"), 4) {
            Err(SweepError::Corrupt { reason }) => {
                assert!(reason.contains("line 3"), "{reason}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn spec_mismatch_is_refused() {
        let path = tmp("mismatch");
        Journal::create(&path, "old-spec", 4, 1).expect("create");
        match Journal::open_resume(&path, "new-spec", 4, 1) {
            Err(SweepError::SpecMismatch { expected, found }) => {
                assert_eq!(expected, "new-spec");
                assert_eq!(found, "old-spec");
            }
            other => panic!("expected SpecMismatch, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn duplicates_keep_first_and_are_counted() {
        let path = tmp("dup");
        let journal = Journal::create(&path, "h", 4, 1).expect("create");
        journal.append(&record(0)).expect("append");
        let mut second = record(0);
        second.attempts = 9;
        journal.append(&second).expect("append");
        journal.sync().expect("sync");
        drop(journal);
        let scan = Journal::scan(&path, Some("h"), 4).expect("scan");
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.duplicates, 1);
        assert_eq!(scan.records[0].attempts, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn out_of_range_id_and_missing_header_are_corrupt() {
        let path = tmp("range");
        let journal = Journal::create(&path, "h", 2, 1).expect("create");
        journal.append(&record(3)).expect("append");
        journal.sync().expect("sync");
        drop(journal);
        assert!(matches!(
            Journal::scan(&path, Some("h"), 2),
            Err(SweepError::Corrupt { .. })
        ));
        std::fs::write(&path, format!("{}\n", record(0).to_value())).expect("write");
        assert!(matches!(
            Journal::scan(&path, Some("h"), 2),
            Err(SweepError::Corrupt { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_reports_missing_header() {
        let path = tmp("empty");
        std::fs::write(&path, b"").expect("write");
        assert!(matches!(
            Journal::scan(&path, None, 2),
            Err(SweepError::Corrupt { .. })
        ));
        std::fs::remove_file(&path).ok();
    }
}
