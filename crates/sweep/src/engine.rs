//! The sweep orchestrator: sharded workers, panic isolation, retries,
//! deadlines, quarantine, and journal-backed resume.
//!
//! The supervision ladder (DESIGN.md §18) runs bottom-up:
//!
//! 1. **attempt** — one evaluation, wrapped in `catch_unwind` so a
//!    panicking model can never take down the orchestrator, with an
//!    optional wall-clock [`DeadlineGuard`] threaded into the CG loop so
//!    a stuck solve aborts cleanly instead of hanging the worker;
//! 2. **task** — up to `max_attempts` attempts with deterministic
//!    seeded exponential backoff between them; a failed attempt evicts
//!    the worker's cached [`XylemSystem`] for that stack (it may hold
//!    partially-updated state); exhausting every attempt quarantines
//!    the task;
//! 3. **worker** — one OS thread owning a shard of tasks (sharded by
//!    [`TaskSpec::stack_key`], so every distinct stack is built exactly
//!    once per sweep) plus a second `catch_unwind` net around the whole
//!    shard;
//! 4. **sweep** — merges worker output with journal replay; tasks a
//!    crashed worker never reached are synthesized as quarantined, so
//!    the final report accounts for *every* task either `ok` or
//!    `quarantined` and [`run_sweep`] itself never panics.

use std::collections::btree_map::Entry;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

use xylem::headroom::max_frequency_at_iso_temperature;
use xylem::{SweepError, XylemError, XylemSystem};
use xylem_obs::metrics::{incr, record_ns, summarize, Counter, Hist, HistSummary};
use xylem_thermal::units::Celsius;
use xylem_thermal::{DeadlineGuard, ThermalError};

use crate::backoff::{splitmix64, BackoffPolicy};
use crate::journal::{Journal, JournalScan, TaskRecord, TaskResult, TaskStatus};
use crate::spec::{SweepSpec, TaskSpec};

/// Seeded fault injection for chaos testing the supervision ladder.
/// Each knob is a per-mille probability, rolled per (task, attempt) with
/// a counter-based hash — the campaign is reproducible from the seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChaosConfig {
    /// Seed for the fault rolls.
    pub seed: u64,
    /// Probability (0..=1000) of an injected panic per attempt.
    pub panic_per_mille: u16,
    /// Probability (0..=1000) of an injected solver-divergence error.
    pub error_per_mille: u16,
    /// Probability (0..=1000) of an injected deadline blowout.
    pub deadline_per_mille: u16,
}

enum ChaosAction {
    None,
    Panic,
    Error,
    Deadline,
}

impl ChaosConfig {
    fn decide(&self, task_key: u64, attempt: u32) -> ChaosAction {
        let roll = splitmix64(self.seed ^ splitmix64(task_key ^ (u64::from(attempt) << 32))) % 1000;
        let panic_to = u64::from(self.panic_per_mille);
        let error_to = panic_to + u64::from(self.error_per_mille);
        let deadline_to = error_to + u64::from(self.deadline_per_mille);
        if roll < panic_to {
            ChaosAction::Panic
        } else if roll < error_to {
            ChaosAction::Error
        } else if roll < deadline_to {
            ChaosAction::Deadline
        } else {
            ChaosAction::None
        }
    }
}

/// Knobs for [`run_sweep`]. `Default` is a journal-less in-process sweep
/// with 3 attempts per task and automatic shard count.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Worker threads (0 = one per available core, capped at the
    /// pending-task count).
    pub shards: usize,
    /// Attempts per task before quarantine (minimum 1).
    pub max_attempts: u32,
    /// Backoff between attempts.
    pub backoff: BackoffPolicy,
    /// Seed for backoff jitter (combined with each task's key hash).
    pub seed: u64,
    /// Per-attempt wall-clock deadline, ms (`None` = no deadline).
    pub deadline_ms: Option<u64>,
    /// Journal file (`None` = in-memory only, no resume).
    pub journal_path: Option<PathBuf>,
    /// Replay an existing journal at `journal_path` instead of starting
    /// over (ignored when the file does not exist).
    pub resume: bool,
    /// Unit-response cache directory for built stacks (`None` disables
    /// the disk cache).
    pub cache_dir: Option<PathBuf>,
    /// Journal appends per fsync (1 = every record).
    pub fsync_every: usize,
    /// Artificial delay after each task, ms — slows the sweep down so
    /// crash tests can kill it mid-run at a predictable point.
    pub pace_ms: u64,
    /// Fault injection for chaos tests.
    pub chaos: Option<ChaosConfig>,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            shards: 0,
            max_attempts: 3,
            backoff: BackoffPolicy::default(),
            seed: 0,
            deadline_ms: None,
            journal_path: None,
            resume: false,
            cache_dir: None,
            fsync_every: 8,
            pace_ms: 0,
            chaos: None,
        }
    }
}

/// The outcome of a completed sweep. Every task of the spec appears in
/// [`SweepReport::records`] exactly once, `ok` or `quarantined`, sorted
/// by task id.
#[derive(Debug)]
pub struct SweepReport {
    /// The spec's config hash (also the journal header hash).
    pub spec_hash: String,
    /// Tasks in the (possibly sampled) grid.
    pub total: usize,
    /// Tasks that evaluated successfully.
    pub ok: usize,
    /// Tasks that exhausted every attempt.
    pub quarantined: usize,
    /// Failed attempts that were retried (fresh tasks only).
    pub retried_attempts: u64,
    /// Tasks replayed from the journal instead of re-evaluated.
    pub replayed: usize,
    /// Duplicate journal records tolerated during replay (keep-first).
    pub duplicate_journal_records: usize,
    /// Torn-tail bytes dropped from the journal during resume.
    pub torn_tail_bytes: u64,
    /// Wall-clock time of this run, s.
    pub elapsed_s: f64,
    /// Freshly-evaluated tasks per second of wall-clock time.
    pub tasks_per_sec: f64,
    /// Per-task latency distribution (process-wide `sweep_task_ms`).
    pub task_latency: HistSummary,
    /// One terminal record per task, sorted by id.
    pub records: Vec<TaskRecord>,
}

impl SweepReport {
    /// The record for task `id`, if it is part of this sweep.
    #[must_use]
    pub fn result_of(&self, id: u64) -> Option<&TaskRecord> {
        self.records
            .binary_search_by_key(&id, |r| r.id)
            .ok()
            .map(|i| &self.records[i])
    }

    /// Fails if any task was quarantined, carrying every quarantined
    /// task's key and final error.
    ///
    /// # Errors
    ///
    /// [`XylemError::Sweep`] with [`SweepError::Quarantined`].
    pub fn require_complete(&self) -> Result<(), XylemError> {
        if self.quarantined == 0 {
            return Ok(());
        }
        let tasks = self
            .records
            .iter()
            .filter(|r| r.status == TaskStatus::Quarantined)
            .map(|r| {
                let reason = r
                    .error
                    .clone()
                    .unwrap_or_else(|| "no error recorded".to_string());
                (r.key.clone(), reason)
            })
            .collect();
        Err(SweepError::Quarantined {
            total: self.total,
            tasks,
        }
        .into())
    }
}

fn effective_shards(requested: usize, pending: usize) -> usize {
    let auto = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let n = if requested == 0 { auto } else { requested };
    n.clamp(1, pending.max(1))
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Recovers a poisoned mutex: the protected values (record vectors,
/// first-error slots) are written atomically from the holder's view, so
/// the data is usable even if the holding thread died.
fn lock_or_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|poisoned| {
        if xylem_obs::enabled() {
            xylem_obs::event("sweep_state_lock_recovered").emit();
        }
        poisoned.into_inner()
    })
}

/// Builds (or reuses) the task's stack and evaluates it: one uniform
/// 8-thread run, plus the DTM max-frequency search when the task has a
/// trip-temperature axis.
fn evaluate_task(
    systems: &mut BTreeMap<u64, XylemSystem>,
    task: &TaskSpec,
    grid: usize,
    cache_dir: Option<&Path>,
) -> Result<TaskResult, XylemError> {
    let system = match systems.entry(task.stack_key()) {
        Entry::Occupied(e) => e.into_mut(),
        Entry::Vacant(v) => v.insert(XylemSystem::new(task.system_config(grid, cache_dir))?),
    };
    let e = system.evaluate_uniform(task.benchmark, task.f_ghz)?;
    let dtm_f_ghz = match task.trip_c {
        None => None,
        Some(trip) => max_frequency_at_iso_temperature(system, task.benchmark, Celsius::new(trip))?
            .map(|b| b.f_ghz),
    };
    Ok(TaskResult {
        proc_hotspot_c: e.proc_hotspot_c,
        dram_hotspot_c: e.dram_hotspot_c,
        total_power_w: e.total_power_w,
        exec_time_s: e.workloads.first().map_or(0.0, |w| w.metrics.exec_time_s),
        core_hotspot_c: e.core_hotspot_c,
        dtm_f_ghz,
    })
}

/// One attempt: optional chaos injection, optional deadline, the
/// evaluation itself — all inside the caller's `catch_unwind`.
fn attempt_task(
    systems: &mut BTreeMap<u64, XylemSystem>,
    task: &TaskSpec,
    grid: usize,
    cache_dir: Option<&Path>,
    deadline_ms: Option<u64>,
    chaos: Option<&ChaosConfig>,
    attempt: u32,
) -> Result<TaskResult, XylemError> {
    if let Some(chaos) = chaos {
        match chaos.decide(task.key_hash(), attempt) {
            ChaosAction::None => {}
            ChaosAction::Panic => {
                panic!(
                    "chaos: injected panic (task {}, attempt {attempt})",
                    task.key()
                )
            }
            ChaosAction::Error => {
                return Err(ThermalError::NoConvergence {
                    iterations: 0,
                    residual: 1.0,
                    tolerance: 1e-9,
                }
                .into());
            }
            ChaosAction::Deadline => {
                // A real blowout would trip the in-CG deadline check;
                // synthesizing the same error keeps chaos runs fast and
                // exercises the identical recovery path.
                return Err(ThermalError::DeadlineExceeded { iterations: 0 }.into());
            }
        }
    }
    let _deadline =
        deadline_ms.map(|ms| DeadlineGuard::install(Instant::now() + Duration::from_millis(ms)));
    evaluate_task(systems, task, grid, cache_dir)
}

struct WorkerCtx<'a> {
    grid: usize,
    cache_dir: Option<&'a Path>,
    opts: &'a SweepOptions,
    journal: Option<&'a Journal>,
    results: &'a Mutex<Vec<TaskRecord>>,
    journal_error: &'a Mutex<Option<SweepError>>,
    worker_crashed: &'a AtomicBool,
}

/// Processes one shard of tasks. Returns early (leaving tasks
/// unprocessed) only when the journal itself fails — those tasks are
/// synthesized as quarantined by the orchestrator.
fn run_worker(ctx: &WorkerCtx<'_>, tasks: &[TaskSpec]) {
    let mut systems: BTreeMap<u64, XylemSystem> = BTreeMap::new();
    for task in tasks {
        let started = Instant::now();
        let mut record = None;
        let max_attempts = ctx.opts.max_attempts.max(1);
        for attempt in 1..=max_attempts {
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                attempt_task(
                    &mut systems,
                    task,
                    ctx.grid,
                    ctx.cache_dir,
                    ctx.opts.deadline_ms,
                    ctx.opts.chaos.as_ref(),
                    attempt,
                )
            }));
            let error = match outcome {
                Ok(Ok(result)) => {
                    record = Some(TaskRecord {
                        id: task.id as u64,
                        key: task.key(),
                        status: TaskStatus::Ok,
                        attempts: attempt,
                        result: Some(result),
                        error: None,
                    });
                    break;
                }
                Ok(Err(e)) => e.to_string(),
                Err(payload) => panic_message(payload.as_ref()),
            };
            // The failed attempt may have left this stack's cached
            // system partially updated — rebuild it next attempt.
            systems.remove(&task.stack_key());
            if attempt < max_attempts {
                incr(Counter::SweepTasksRetried);
                let delay = ctx
                    .opts
                    .backoff
                    .delay_ms(ctx.opts.seed, task.key_hash(), attempt);
                if delay > 0 {
                    std::thread::sleep(Duration::from_millis(delay));
                }
            } else {
                record = Some(TaskRecord {
                    id: task.id as u64,
                    key: task.key(),
                    status: TaskStatus::Quarantined,
                    attempts: attempt,
                    result: None,
                    error: Some(error),
                });
            }
        }
        let Some(record) = record else {
            // Unreachable (max_attempts >= 1 always produces a record),
            // but never panic the worker over it.
            continue;
        };
        match record.status {
            TaskStatus::Ok => incr(Counter::SweepTasksOk),
            TaskStatus::Quarantined => incr(Counter::SweepTasksQuarantined),
        }
        let elapsed = started.elapsed();
        record_ns(
            Hist::SweepTaskMs,
            u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX),
        );
        if xylem_obs::enabled() {
            xylem_obs::event("sweep_task_done")
                .u64("id", record.id)
                .str("key", &record.key)
                .str("status", record.status.label())
                .u64("attempts", u64::from(record.attempts))
                .f64("elapsed_ms", elapsed.as_secs_f64() * 1e3)
                .emit();
        }
        if let Some(journal) = ctx.journal {
            if let Err(e) = journal.append(&record) {
                let mut slot = lock_or_recover(ctx.journal_error);
                slot.get_or_insert(e);
                // A dead journal means completed work can no longer be
                // made durable; stop burning CPU on this shard.
                return;
            }
        }
        lock_or_recover(ctx.results).push(record);
        if ctx.opts.pace_ms > 0 {
            std::thread::sleep(Duration::from_millis(ctx.opts.pace_ms));
        }
    }
}

/// Runs `spec` to completion under `opts`.
///
/// Always returns a report in which **every** task is `ok` or
/// `quarantined` — evaluation failures never fail the sweep. The `Err`
/// path is reserved for infrastructure failures: an invalid spec, or a
/// journal that cannot be created, replayed, or appended to.
///
/// # Errors
///
/// [`XylemError::Config`] for an invalid spec; [`XylemError::Sweep`] for
/// journal I/O, corruption, or spec-mismatch failures.
pub fn run_sweep(spec: &SweepSpec, opts: &SweepOptions) -> Result<SweepReport, XylemError> {
    spec.validate()?;
    let started = Instant::now();
    let tasks = spec.tasks();
    let spec_hash = spec.spec_hash();
    let total = tasks.len();

    // Journal setup: create fresh, or replay an existing file.
    let mut replayed: Vec<TaskRecord> = Vec::new();
    let mut duplicate_journal_records = 0usize;
    let mut torn_tail_bytes = 0u64;
    let journal = match &opts.journal_path {
        None => None,
        Some(path) => {
            if opts.resume && path.exists() {
                let (journal, scan) =
                    Journal::open_resume(path, &spec_hash, total, opts.fsync_every)?;
                let JournalScan {
                    records,
                    duplicates,
                    torn_tail_bytes: torn,
                    ..
                } = scan;
                replayed = records;
                duplicate_journal_records = duplicates;
                torn_tail_bytes = torn;
                Some(journal)
            } else {
                Some(Journal::create(path, &spec_hash, total, opts.fsync_every)?)
            }
        }
    };

    let mut done = vec![false; total];
    for r in &replayed {
        done[r.id as usize] = true;
    }
    let pending: Vec<TaskSpec> = tasks.into_iter().filter(|t| !done[t.id]).collect();

    // Shard by stack so each distinct stack is built exactly once.
    let n_shards = effective_shards(opts.shards, pending.len());
    let mut shards: Vec<Vec<TaskSpec>> = (0..n_shards).map(|_| Vec::new()).collect();
    for task in pending {
        let shard = (task.stack_key() % n_shards as u64) as usize;
        shards[shard].push(task);
    }

    let results: Mutex<Vec<TaskRecord>> = Mutex::new(Vec::new());
    let journal_error: Mutex<Option<SweepError>> = Mutex::new(None);
    let worker_crashed = AtomicBool::new(false);
    std::thread::scope(|s| {
        for shard in &shards {
            if shard.is_empty() {
                continue;
            }
            let ctx = WorkerCtx {
                grid: spec.grid,
                cache_dir: opts.cache_dir.as_deref(),
                opts,
                journal: journal.as_ref(),
                results: &results,
                journal_error: &journal_error,
                worker_crashed: &worker_crashed,
            };
            s.spawn(move || {
                // Second safety net: a panic escaping the per-attempt
                // net (e.g. in journaling glue) must not propagate out
                // of the scope and panic the orchestrator.
                if catch_unwind(AssertUnwindSafe(|| run_worker(&ctx, shard))).is_err() {
                    ctx.worker_crashed.store(true, Ordering::Relaxed);
                }
            });
        }
    });

    let mut fresh = results.into_inner().unwrap_or_else(|p| p.into_inner());
    if let Some(e) = lock_or_recover(&journal_error).take() {
        return Err(e.into());
    }

    // Tasks no worker completed (journal death or a crashed worker):
    // account for them as quarantined so the report covers every task.
    let mut covered = vec![false; total];
    for r in replayed.iter().chain(&fresh) {
        covered[r.id as usize] = true;
    }
    for task in spec.tasks() {
        if !covered[task.id] {
            if worker_crashed.load(Ordering::Relaxed) && xylem_obs::enabled() {
                xylem_obs::event("sweep_worker_crashed")
                    .u64("id", task.id as u64)
                    .str("key", &task.key())
                    .emit();
            }
            incr(Counter::SweepTasksQuarantined);
            let record = TaskRecord {
                id: task.id as u64,
                key: task.key(),
                status: TaskStatus::Quarantined,
                attempts: 0,
                result: None,
                error: Some("worker thread crashed outside task isolation".to_string()),
            };
            if let Some(journal) = &journal {
                journal.append(&record).map_err(XylemError::from)?;
            }
            fresh.push(record);
        }
    }
    if let Some(journal) = &journal {
        journal.sync().map_err(XylemError::from)?;
    }

    let retried_attempts: u64 = fresh
        .iter()
        .map(|r| u64::from(r.attempts.saturating_sub(1)))
        .sum();
    let fresh_count = fresh.len();
    let mut records = replayed;
    records.append(&mut fresh);
    records.sort_by_key(|r| r.id);
    let ok = records
        .iter()
        .filter(|r| r.status == TaskStatus::Ok)
        .count();
    let quarantined = records.len() - ok;
    let elapsed_s = started.elapsed().as_secs_f64();
    let tasks_per_sec = if elapsed_s > 0.0 {
        fresh_count as f64 / elapsed_s
    } else {
        0.0
    };

    let report = SweepReport {
        spec_hash,
        total,
        ok,
        quarantined,
        retried_attempts,
        replayed: total - fresh_count,
        duplicate_journal_records,
        torn_tail_bytes,
        elapsed_s,
        tasks_per_sec,
        task_latency: summarize(Hist::SweepTaskMs),
        records,
    };
    if xylem_obs::enabled() {
        xylem_obs::event("sweep_done")
            .str("spec_hash", &report.spec_hash)
            .u64("total", report.total as u64)
            .u64("ok", report.ok as u64)
            .u64("quarantined", report.quarantined as u64)
            .u64("replayed", report.replayed as u64)
            .u64("retried_attempts", report.retried_attempts)
            .f64("elapsed_s", report.elapsed_s)
            .emit();
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_rolls_are_deterministic_and_cover_all_actions() {
        let chaos = ChaosConfig {
            seed: 11,
            panic_per_mille: 300,
            error_per_mille: 300,
            deadline_per_mille: 300,
        };
        let (mut panics, mut errors, mut deadlines, mut nones) = (0, 0, 0, 0);
        for key in 0..200u64 {
            for attempt in 1..=3 {
                match chaos.decide(key, attempt) {
                    ChaosAction::Panic => panics += 1,
                    ChaosAction::Error => errors += 1,
                    ChaosAction::Deadline => deadlines += 1,
                    ChaosAction::None => nones += 1,
                }
                // Redeciding the same (key, attempt) gives the same roll.
                assert!(matches!(
                    (chaos.decide(key, attempt), chaos.decide(key, attempt)),
                    (ChaosAction::Panic, ChaosAction::Panic)
                        | (ChaosAction::Error, ChaosAction::Error)
                        | (ChaosAction::Deadline, ChaosAction::Deadline)
                        | (ChaosAction::None, ChaosAction::None)
                ));
            }
        }
        assert!(panics > 0 && errors > 0 && deadlines > 0 && nones > 0);
    }

    #[test]
    fn shard_count_is_clamped_to_pending_tasks() {
        assert_eq!(effective_shards(8, 3), 3);
        assert_eq!(effective_shards(2, 100), 2);
        assert_eq!(effective_shards(1, 0), 1);
        assert!(effective_shards(0, 64) >= 1);
    }

    #[test]
    fn panic_messages_extract_both_payload_kinds() {
        let s: Box<dyn std::any::Any + Send> = Box::new("static str");
        assert_eq!(panic_message(s.as_ref()), "panic: static str");
        let s: Box<dyn std::any::Any + Send> = Box::new(String::from("owned"));
        assert_eq!(panic_message(s.as_ref()), "panic: owned");
        let s: Box<dyn std::any::Any + Send> = Box::new(42u32);
        assert_eq!(panic_message(s.as_ref()), "panic with non-string payload");
    }
}
