//! `xylem` — command-line driver for the Xylem reproduction.
//!
//! ```text
//! xylem evaluate --scheme banke --app Cholesky --freq 2.4
//! xylem boost    --scheme banke --app FFT
//! xylem apps     --scheme base --freq 2.4
//! xylem run      scenarios/valid/xylem-paper.stk
//! xylem sweep    --schemes base,banke --thickness-um 50,100,200 --journal s.jsonl
//! xylem sweep    --scenario my.stk --grids 16,32 --power-scale 0.5,1,2
//! xylem report   --scheme base --app Barnes --freq 2.4
//! xylem dtm      --scheme base --app "LU(NAS)" --freq 3.5 --duration 2.0
//! xylem serve    --selftest --sessions 1000 --kill-drill
//! xylem schemes
//! ```

use std::collections::HashMap;
use std::process::ExitCode;

use xylem::dtm::{
    dtm_transient_configured, frequency_strip, CheckpointConfig, DtmPolicy, DtmRunConfig,
};
use xylem::headroom::max_frequency_at_iso_temperature;
use xylem::system::{default_cache_dir, SystemConfig, XylemSystem};
use xylem_stack::area::{AreaOverhead, SAMSUNG_WIDE_IO_DIE_AREA};
use xylem_stack::dram_die::DramDieGeometry;
use xylem_stack::XylemScheme;
use xylem_sweep::{
    run_scenario_sweep, run_sweep, ChaosConfig, ScenarioSweepSpec, SweepOptions, SweepSpec,
    TaskStatus,
};
use xylem_thermal::grid::GridSpec;
use xylem_thermal::power::PowerMap;
use xylem_thermal::report::StackThermalReport;
use xylem_thermal::units::{Celsius, Watts};
use xylem_thermal::{AdaptiveOptions, DeadlineGuard};
use xylem_workloads::Benchmark;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        usage();
        return ExitCode::FAILURE;
    };
    let opts = parse_flags(&args[1..]);
    let metrics = match install_metrics(cmd, &opts) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "evaluate" => evaluate(&opts),
        "boost" => boost(&opts),
        "apps" => apps(&opts),
        "run" => run_scenario(&args[1..], &opts),
        "sweep" => sweep(&opts),
        "serve" => serve(&opts),
        "report" => report(&opts),
        "dtm" => dtm(&opts),
        "schemes" => {
            schemes();
            Ok(())
        }
        "--help" | "-h" | "help" => {
            usage();
            Ok(())
        }
        other => Err(format!("unknown command '{other}'")),
    };
    // End-of-run summary: always for the closed-loop dtm and batched
    // sweep commands, and for any command that wrote a metrics file.
    if result.is_ok() && (metrics || cmd == "dtm" || cmd == "sweep") {
        let report = xylem_obs::RunReport::capture();
        report.emit();
        print!("{report}");
    }
    if metrics {
        xylem_obs::shutdown();
        if let Some(path) = opts.get("metrics-out") {
            println!("[metrics written to {path}]");
        }
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        // Rendered scenario diagnostics arrive already prefixed with
        // `error:` and carry a source caret — print them verbatim and
        // skip the usage dump (the flags were fine; the file wasn't).
        Err(e) if e.starts_with("error:") => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("error: {e}");
            usage();
            ExitCode::FAILURE
        }
    }
}

/// Installs the JSONL metrics sink when `--metrics-out PATH` is given
/// and opens the file with a run manifest (tool, command, flags, and
/// their FNV-1a config hash). Returns whether a sink is live.
fn install_metrics(cmd: &str, opts: &HashMap<String, String>) -> Result<bool, String> {
    let Some(path) = opts.get("metrics-out") else {
        return Ok(false);
    };
    xylem_obs::install_file(std::path::Path::new(path))
        .map_err(|e| format!("cannot open metrics file '{path}': {e}"))?;
    let mut manifest = xylem_obs::RunManifest::new("xylem", cmd);
    let mut keys: Vec<&String> = opts.keys().collect();
    keys.sort();
    for key in keys {
        if key != "metrics-out" {
            manifest = manifest.with(key, &opts[key]);
        }
    }
    manifest.emit();
    Ok(true)
}

fn usage() {
    eprintln!(
        "xylem — vertical thermal conduction in 3D processor-memory stacks\n\
         \n\
         commands:\n\
           evaluate --scheme S --app A --freq F     temperatures/power for one run\n\
           boost    --scheme S --app A              iso-temperature frequency boost vs base\n\
           apps     --scheme S --freq F             all 17 applications\n\
           run      FILE.stk                        compile and solve one .stk scenario\n\
           sweep    [axes...]                       crash-safe batched design-space sweep\n\
           report   --scheme S --app A --freq F     layer-by-layer thermal breakdown\n\
           dtm      --scheme S --app A --freq F --duration D   closed-loop DTM transient\n\
           serve    --selftest | --stdio            multi-tenant simulation service\n\
           schemes                                  list TTSV schemes and overheads\n\
         \n\
         schemes: base bank banke isoCount prior;  apps: FFT Cholesky ... (paper names)\n\
         optional: --grid N (default 64)\n\
                   --metrics-out PATH   write JSONL metrics (manifest, per-step/per-solve\n\
                                        events, run report) and print the run summary\n\
         sweep axes (comma-separated lists): --schemes --apps --freqs --thickness-um\n\
                   --pillar-um --dies --d2d-um --trips; --sample K --seed N subsample\n\
         sweep robustness: --journal PATH [--resume]   append-only result journal; a\n\
                                        killed sweep resumes, skipping finished tasks\n\
                   --shards N --attempts N --deadline-ms M --pace-ms M\n\
         scenario sweep: sweep --scenario FILE.stk [--grids 16,32] [--power-scale 0.5,1,2]\n\
                   [--ambients 30,45]   vary a .stk scenario instead of the paper axes\n\
         run/dtm:  --deadline-ms M   wall-clock budget; an expired deadline aborts the\n\
                                        in-flight solve with DeadlineExceeded, never a hang\n\
         serve:    --selftest [--sessions N] [--tenants N] [--workers N] [--seed N]\n\
                   [--no-chaos] [--kill-drill] [--bench-out PATH]   seeded chaos/load\n\
                   campaign: overload + fault injection, then verifies every service\n\
                   contract (terminal states, bit-identical replays, crash resume)\n\
                   --stdio [--spool DIR]   serve the line-delimited JSON protocol on\n\
                                        stdin/stdout; a reused spool resumes its sessions\n\
         dtm only: --checkpoint PATH [--every N] [--resume]   save/restore the run state\n\
                   --adaptive [--rtol R]   error-controlled adaptive sub-stepping\n\
                   --budget-cg N / --budget-wall-s S / --budget-rejects N   run budgets\n\
                                        (exhaustion degrades to economy stepping, never aborts)"
    );
}

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut out = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(key) = args[i].strip_prefix("--") {
            // `--key=value` form (used by the serve drill re-exec,
            // where values may start with `-` or contain spaces).
            if let Some((k, v)) = key.split_once('=') {
                out.insert(k.to_string(), v.to_string());
                i += 1;
                continue;
            }
            // A flag followed by another flag (or nothing) is boolean.
            if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                out.insert(key.to_string(), args[i + 1].clone());
                i += 2;
                continue;
            }
            out.insert(key.to_string(), "true".to_string());
        }
        i += 1;
    }
    out
}

/// Parses `--deadline-ms` into an installed [`DeadlineGuard`] (held by
/// the caller for the duration of the command), or `None` when absent.
fn deadline_guard_of(opts: &HashMap<String, String>) -> Result<Option<DeadlineGuard>, String> {
    opts.get("deadline-ms")
        .map(|s| {
            let ms: u64 = s.parse().map_err(|_| format!("bad --deadline-ms '{s}'"))?;
            Ok(DeadlineGuard::install(
                std::time::Instant::now() + std::time::Duration::from_millis(ms),
            ))
        })
        .transpose()
}

fn scheme_of(opts: &HashMap<String, String>) -> Result<XylemScheme, String> {
    let name = opts.get("scheme").map(String::as_str).unwrap_or("banke");
    XylemScheme::ALL
        .into_iter()
        .find(|s| s.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| format!("unknown scheme '{name}'"))
}

fn app_of(opts: &HashMap<String, String>) -> Result<Benchmark, String> {
    let name = opts.get("app").map(String::as_str).unwrap_or("Cholesky");
    Benchmark::ALL
        .into_iter()
        .find(|b| b.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| format!("unknown application '{name}' (use paper names, e.g. LU(NAS))"))
}

fn freq_of(opts: &HashMap<String, String>) -> Result<f64, String> {
    match opts.get("freq") {
        None => Ok(2.4),
        Some(s) => s.parse().map_err(|_| format!("bad --freq '{s}'")),
    }
}

fn system_of(opts: &HashMap<String, String>) -> Result<XylemSystem, String> {
    let scheme = scheme_of(opts)?;
    let mut cfg = SystemConfig::paper_default(scheme);
    if let Some(g) = opts.get("grid") {
        let n: usize = g.parse().map_err(|_| format!("bad --grid '{g}'"))?;
        cfg.grid = GridSpec::new(n, n);
    }
    XylemSystem::new(cfg).map_err(|e| e.to_string())
}

fn evaluate(opts: &HashMap<String, String>) -> Result<(), String> {
    let mut sys = system_of(opts)?;
    let app = app_of(opts)?;
    let f = freq_of(opts)?;
    let e = sys.evaluate_uniform(app, f).map_err(|e| e.to_string())?;
    println!("{} on {} @ {f:.1} GHz", app, sys.scheme());
    println!(
        "  processor hotspot : {:8.2} C (core {})",
        e.proc_hotspot_c,
        e.hottest_core()
    );
    println!("  bottom DRAM die   : {:8.2} C", e.dram_hotspot_c);
    println!("  processor power   : {:8.2} W", e.proc_power_w);
    println!("  DRAM stack power  : {:8.2} W", e.dram_power_w);
    println!("  execution time    : {:8.2} ms", e.exec_time_s() * 1e3);
    println!("  stack energy      : {:8.3} J", e.stack_energy_j());
    Ok(())
}

fn boost(opts: &HashMap<String, String>) -> Result<(), String> {
    let app = app_of(opts)?;
    let mut base = {
        let mut o = opts.clone();
        o.insert("scheme".into(), "base".into());
        system_of(&o)?
    };
    let reference = base.evaluate_uniform(app, 2.4).map_err(|e| e.to_string())?;
    let mut sys = system_of(opts)?;
    let out =
        max_frequency_at_iso_temperature(&mut sys, app, Celsius::new(reference.proc_hotspot_c))
            .map_err(|e| e.to_string())?;
    match out {
        None => println!(
            "{} cannot hold the base reference of {:.2} C even at 2.4 GHz",
            sys.scheme(),
            reference.proc_hotspot_c
        ),
        Some(b) => {
            let gain = reference.exec_time_s() / b.evaluation.exec_time_s() - 1.0;
            println!(
                "{} on {}: base reference {:.2} C @2.4 GHz -> boosted to {:.1} GHz \
                 ({:+.0} MHz, {:.1}% faster, hotspot {:.2} C)",
                app,
                sys.scheme(),
                reference.proc_hotspot_c,
                b.f_ghz,
                (b.f_ghz - 2.4) * 1000.0,
                gain * 100.0,
                b.evaluation.proc_hotspot_c
            );
        }
    }
    Ok(())
}

fn apps(opts: &HashMap<String, String>) -> Result<(), String> {
    let mut sys = system_of(opts)?;
    let f = freq_of(opts)?;
    println!(
        "{:12} {:>9} {:>9} {:>8} {:>9}",
        "app", "proc C", "dram C", "power W", "time ms"
    );
    for app in Benchmark::ALL {
        let e = sys.evaluate_uniform(app, f).map_err(|e| e.to_string())?;
        println!(
            "{:12} {:>9.2} {:>9.2} {:>8.1} {:>9.2}",
            app.name(),
            e.proc_hotspot_c,
            e.dram_hotspot_c,
            e.total_power_w,
            e.exec_time_s() * 1e3
        );
    }
    Ok(())
}

/// The positional (non-flag) argument, skipping `--flag value` pairs.
fn positional_of(args: &[String]) -> Option<&str> {
    let mut i = 0;
    while i < args.len() {
        if args[i].starts_with("--") {
            // Boolean flag if followed by another flag; else skip value.
            i += if args.get(i + 1).is_some_and(|a| !a.starts_with("--")) {
                2
            } else {
                1
            };
            continue;
        }
        return Some(&args[i]);
    }
    None
}

fn run_scenario(args: &[String], opts: &HashMap<String, String>) -> Result<(), String> {
    let Some(path) = positional_of(args) else {
        return Err("run needs a scenario file: xylem run FILE.stk".to_string());
    };
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read '{path}': {e}"))?;
    let lowered = xylem_scenario::compile(&src).map_err(|e| e.render(path, &src))?;
    // Same timeout semantics as the sweep engine: the guard aborts the
    // in-flight CG solve with DeadlineExceeded, never a hang.
    let _deadline = deadline_guard_of(opts)?;
    let report = xylem_scenario::run(&lowered).map_err(|e| e.to_string())?;
    println!(
        "{path}: {} nodes ({}x{} grid)",
        report.nodes, lowered.nx, lowered.ny
    );
    println!(
        "  conductance digest : {:016x}\n  temperature digest : {:016x}",
        report.conductance_digest, report.temperature_digest
    );
    println!("  global hotspot     : {:8.2} C", report.global_hotspot_c);
    for p in &report.probes {
        println!("  probe {:12} : {:8.2} C  ({})", p.name, p.celsius, p.layer);
    }
    Ok(())
}

fn list_of<T>(
    opts: &HashMap<String, String>,
    key: &str,
    parse: impl Fn(&str) -> Result<T, String>,
) -> Result<Vec<T>, String> {
    match opts.get(key) {
        None => Ok(Vec::new()),
        Some(s) => s
            .split(',')
            .filter(|p| !p.is_empty())
            .map(|p| parse(p.trim()))
            .collect(),
    }
}

fn sweep_spec_of(opts: &HashMap<String, String>) -> Result<SweepSpec, String> {
    let mut spec = SweepSpec::default();
    let schemes = list_of(opts, "schemes", |name| {
        XylemScheme::ALL
            .into_iter()
            .find(|s| s.name().eq_ignore_ascii_case(name))
            .ok_or_else(|| format!("unknown scheme '{name}'"))
    })?;
    if !schemes.is_empty() {
        spec.schemes = schemes;
    }
    let apps = list_of(opts, "apps", |name| {
        Benchmark::ALL
            .into_iter()
            .find(|b| b.name().eq_ignore_ascii_case(name))
            .ok_or_else(|| format!("unknown application '{name}'"))
    })?;
    if !apps.is_empty() {
        spec.benchmarks = apps;
    }
    let f64_of = |key: &'static str| {
        list_of(opts, key, |s| {
            s.parse::<f64>().map_err(|_| format!("bad --{key} '{s}'"))
        })
    };
    let freqs = f64_of("freqs")?;
    if !freqs.is_empty() {
        spec.f_ghz = freqs;
    }
    spec.die_thickness_um = f64_of("thickness-um")?;
    spec.pillar_footprint_um = f64_of("pillar-um")?;
    spec.d2d_thickness_um = f64_of("d2d-um")?;
    spec.trips_c = f64_of("trips")?;
    spec.n_dram_dies = list_of(opts, "dies", |s| {
        s.parse::<usize>().map_err(|_| format!("bad --dies '{s}'"))
    })?;
    if let Some(g) = opts.get("grid") {
        spec.grid = g.parse().map_err(|_| format!("bad --grid '{g}'"))?;
    }
    if let Some(s) = opts.get("sample") {
        spec.sample = Some(s.parse().map_err(|_| format!("bad --sample '{s}'"))?);
    }
    if let Some(s) = opts.get("seed") {
        spec.seed = s.parse().map_err(|_| format!("bad --seed '{s}'"))?;
    }
    Ok(spec)
}

fn sweep_options_of(opts: &HashMap<String, String>, seed: u64) -> Result<SweepOptions, String> {
    let mut o = SweepOptions {
        seed,
        cache_dir: Some(default_cache_dir()),
        ..SweepOptions::default()
    };
    let num = |key: &'static str| -> Result<Option<u64>, String> {
        opts.get(key)
            .map(|s| s.parse::<u64>().map_err(|_| format!("bad --{key} '{s}'")))
            .transpose()
    };
    if let Some(n) = num("shards")? {
        o.shards = n as usize;
    }
    if let Some(n) = num("attempts")? {
        o.max_attempts = n.max(1) as u32;
    }
    o.deadline_ms = num("deadline-ms")?;
    if let Some(n) = num("pace-ms")? {
        o.pace_ms = n;
    }
    if let Some(path) = opts.get("journal") {
        o.journal_path = Some(std::path::PathBuf::from(path));
        o.resume = opts.contains_key("resume");
    }
    // Fault injection for supervised chaos runs (per-mille rates).
    let chaos_rates = (
        num("chaos-panic")?,
        num("chaos-error")?,
        num("chaos-deadline")?,
    );
    if chaos_rates.0.is_some() || chaos_rates.1.is_some() || chaos_rates.2.is_some() {
        o.chaos = Some(ChaosConfig {
            seed: num("chaos-seed")?.unwrap_or(seed),
            panic_per_mille: chaos_rates.0.unwrap_or(0) as u16,
            error_per_mille: chaos_rates.1.unwrap_or(0) as u16,
            deadline_per_mille: chaos_rates.2.unwrap_or(0) as u16,
        });
    }
    Ok(o)
}

/// Every flag the `sweep` subcommand reads. A typo here means a batch
/// silently sweeping its defaults for an hour, so — unlike the short
/// interactive commands — unknown flags are a hard error.
const SWEEP_FLAGS: &[&str] = &[
    "schemes",
    "apps",
    "freqs",
    "thickness-um",
    "pillar-um",
    "d2d-um",
    "trips",
    "dies",
    "grid",
    "sample",
    "seed",
    "shards",
    "attempts",
    "deadline-ms",
    "pace-ms",
    "journal",
    "resume",
    "chaos-panic",
    "chaos-error",
    "chaos-deadline",
    "chaos-seed",
    "metrics-out",
];

/// Flags of the scenario-driven sweep mode. Disjoint from the paper
/// axes: combining `--scenario` with `--schemes` has no meaning, so it
/// errors instead of silently ignoring half the command line.
const SCENARIO_SWEEP_FLAGS: &[&str] = &[
    "scenario",
    "grids",
    "power-scale",
    "ambients",
    "metrics-out",
];

fn scenario_sweep(opts: &HashMap<String, String>) -> Result<(), String> {
    let mut unknown: Vec<&str> = opts
        .keys()
        .map(String::as_str)
        .filter(|k| !SCENARIO_SWEEP_FLAGS.contains(k))
        .collect();
    if !unknown.is_empty() {
        unknown.sort_unstable();
        return Err(format!(
            "flag(s) not valid with --scenario: --{}",
            unknown.join(", --")
        ));
    }
    let path = opts.get("scenario").expect("caller checked --scenario");
    let source = std::fs::read_to_string(path).map_err(|e| format!("cannot read '{path}': {e}"))?;
    let name = std::path::Path::new(path)
        .file_stem()
        .map_or_else(|| path.clone(), |s| s.to_string_lossy().into_owned());
    let spec = ScenarioSweepSpec {
        name,
        source,
        grids: list_of(opts, "grids", |s| {
            s.parse::<usize>().map_err(|_| format!("bad --grids '{s}'"))
        })?,
        power_scales: list_of(opts, "power-scale", |s| {
            s.parse::<f64>()
                .map_err(|_| format!("bad --power-scale '{s}'"))
        })?,
        ambients_c: list_of(opts, "ambients", |s| {
            s.parse::<f64>()
                .map_err(|_| format!("bad --ambients '{s}'"))
        })?,
    };
    let report = run_scenario_sweep(&spec)?;
    println!(
        "scenario sweep {}: {} points, {} ok, {} quarantined",
        report.scenario,
        report.records.len(),
        report.ok,
        report.quarantined
    );
    println!(
        "{:44} {:>9} {:>10} {:>18}",
        "point", "hotspot C", "nodes", "temp digest"
    );
    for r in &report.records {
        match &r.outcome {
            Ok(res) => println!(
                "{:44} {:>9.2} {:>10} {:>18}",
                r.key,
                res.global_hotspot_c,
                res.nodes,
                format!("{:016x}", res.temperature_digest)
            ),
            Err(e) => println!(
                "{:44} QUARANTINED: {}",
                r.key,
                e.lines().next().unwrap_or("no error recorded")
            ),
        }
    }
    Ok(())
}

fn sweep(opts: &HashMap<String, String>) -> Result<(), String> {
    if opts.contains_key("scenario") {
        return scenario_sweep(opts);
    }
    let mut unknown: Vec<&str> = opts
        .keys()
        .map(String::as_str)
        .filter(|k| !SWEEP_FLAGS.contains(k))
        .collect();
    if !unknown.is_empty() {
        unknown.sort_unstable();
        return Err(format!("unknown sweep flag(s): --{}", unknown.join(", --")));
    }
    let spec = sweep_spec_of(opts)?;
    let sweep_opts = sweep_options_of(opts, spec.seed)?;
    let report = run_sweep(&spec, &sweep_opts).map_err(|e| e.to_string())?;
    println!(
        "sweep {}: {} tasks ({} grid), {} ok, {} quarantined, {} replayed from journal",
        report.spec_hash, report.total, spec.grid, report.ok, report.quarantined, report.replayed
    );
    if report.duplicate_journal_records > 0 || report.torn_tail_bytes > 0 {
        println!(
            "  journal repair: {} duplicate records ignored, {} torn-tail bytes dropped",
            report.duplicate_journal_records, report.torn_tail_bytes
        );
    }
    println!(
        "{:44} {:>4} {:>9} {:>9} {:>8} {:>9} {:>8}",
        "task", "try", "proc C", "dram C", "power W", "time ms", "dtm GHz"
    );
    for r in &report.records {
        match (&r.status, &r.result) {
            (TaskStatus::Ok, Some(res)) => {
                let dtm = res
                    .dtm_f_ghz
                    .map_or_else(|| "-".to_string(), |f| format!("{f:.1}"));
                println!(
                    "{:44} {:>4} {:>9.2} {:>9.2} {:>8.1} {:>9.2} {:>8}",
                    r.key,
                    r.attempts,
                    res.proc_hotspot_c,
                    res.dram_hotspot_c,
                    res.total_power_w,
                    res.exec_time_s * 1e3,
                    dtm
                );
            }
            _ => {
                println!(
                    "{:44} {:>4} QUARANTINED: {}",
                    r.key,
                    r.attempts,
                    r.error.as_deref().unwrap_or("no error recorded")
                );
            }
        }
    }
    println!(
        "completed in {:.2} s ({:.1} tasks/s fresh, {} retried attempts)",
        report.elapsed_s, report.tasks_per_sec, report.retried_attempts
    );
    Ok(())
}

/// Every flag the `serve` subcommand reads. The drill child is
/// re-spawned from a test harness with these exact flags, so — like
/// `sweep` — a typo is a hard error, never a silently-defaulted knob.
const SERVE_FLAGS: &[&str] = &[
    "selftest",
    "stdio",
    "drill-child",
    "spool",
    "sessions",
    "tenants",
    "workers",
    "seed",
    "no-chaos",
    "kill-drill",
    "bench-out",
    "pace-ms",
    "metrics-out",
];

fn serve(opts: &HashMap<String, String>) -> Result<(), String> {
    let mut unknown: Vec<&str> = opts
        .keys()
        .map(String::as_str)
        .filter(|k| !SERVE_FLAGS.contains(k))
        .collect();
    if !unknown.is_empty() {
        unknown.sort_unstable();
        return Err(format!("unknown serve flag(s): --{}", unknown.join(", --")));
    }
    let num = |key: &'static str| -> Result<Option<u64>, String> {
        opts.get(key)
            .map(|s| s.parse::<u64>().map_err(|_| format!("bad --{key} '{s}'")))
            .transpose()
    };
    let spool = opts.get("spool").map_or_else(
        || std::env::temp_dir().join(format!("xylem-serve-{}", std::process::id())),
        std::path::PathBuf::from,
    );

    // Drill child: the SIGKILL target the selftest spawns and kills.
    if opts.contains_key("drill-child") {
        let seed = num("seed")?.unwrap_or(0xCAFE);
        let pace = num("pace-ms")?.unwrap_or(0);
        return xylem_serve::selftest::run_drill_child(&spool, seed, pace)
            .map_err(|e| e.to_string());
    }

    // Interactive line protocol over stdin/stdout.
    if opts.contains_key("stdio") {
        let mut cfg = xylem_serve::ServerConfig::new(&spool);
        if let Some(w) = num("workers")? {
            cfg.workers = w as usize;
        }
        let (mut server, resume) = xylem_serve::Server::open(cfg).map_err(|e| e.to_string())?;
        if resume.resumed > 0 {
            eprintln!(
                "[resumed {} mid-flight session(s) from {}]",
                resume.resumed,
                spool.display()
            );
        }
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        let served = xylem_serve::protocol::serve_lines(&mut server, stdin.lock(), stdout.lock());
        server.shutdown();
        return served.map_err(|e| e.to_string());
    }

    if !opts.contains_key("selftest") {
        return Err(
            "serve needs a mode: --selftest (chaos/load drill), --stdio (line \
             protocol), or --drill-child (internal)"
                .to_string(),
        );
    }

    // The chaos/load campaign.
    let mut cfg = xylem_serve::SelftestConfig::new(&spool);
    if let Some(n) = num("sessions")? {
        cfg.sessions = n as usize;
    }
    if let Some(n) = num("tenants")? {
        cfg.tenants = (n as usize).max(1);
    }
    if let Some(n) = num("workers")? {
        cfg.workers = n as usize;
    }
    if let Some(n) = num("seed")? {
        cfg.seed = n;
    }
    cfg.chaos = !opts.contains_key("no-chaos");
    cfg.kill_drill = opts.contains_key("kill-drill");
    cfg.bench_out = opts.get("bench-out").map(std::path::PathBuf::from);
    cfg.exe = std::env::current_exe().ok();
    if cfg.kill_drill && cfg.exe.is_none() {
        return Err("--kill-drill needs a resolvable current exe".to_string());
    }
    let report = xylem_serve::run_selftest(&cfg).map_err(|e| e.to_string())?;
    println!(
        "serve selftest: {} sessions over {} tenants (seed {:#x}, chaos {})",
        cfg.sessions,
        cfg.tenants,
        cfg.seed,
        if cfg.chaos { "on" } else { "off" }
    );
    println!(
        "  admitted {} (after {} transient rejections over {} attempts)",
        report.admitted, report.rejected, report.submitted
    );
    println!(
        "  completed {}, quarantined {}, verified bit-identical {}",
        report.completed, report.quarantined, report.verified
    );
    println!(
        "  contained: {} panics, {} deadline degradations, {} suspends, {} line sheds",
        report.panics_caught, report.degradations, report.suspends, report.sheds
    );
    println!(
        "  submit-to-first-frame p50 {:.2} ms, p99 {:.2} ms; session p50 {:.2} ms, \
         p99 {:.2} ms",
        report.p50_first_frame_ms,
        report.p99_first_frame_ms,
        report.p50_session_ms,
        report.p99_session_ms
    );
    if cfg.kill_drill {
        println!(
            "  SIGKILL drill: {}",
            if report.kill_drill_passed {
                "resumed bit-identically, zero duplicate frames"
            } else {
                "FAILED"
            }
        );
    }
    if let Some(bench) = &cfg.bench_out {
        println!("  [serve row merged into {}]", bench.display());
    }
    Ok(())
}

fn report(opts: &HashMap<String, String>) -> Result<(), String> {
    let sys = system_of(opts)?;
    let app = app_of(opts)?;
    let f = freq_of(opts)?;
    // Direct solve (not the response cache) so every layer is sensed.
    let built = sys.built();
    let grid = GridSpec::new(32, 32);
    let model = built.stack().discretize(grid).map_err(|e| e.to_string())?;
    let metrics = sys.machine().run(app, f, 8);
    let dvfs = sys.power_model().dvfs().clone();
    let point = dvfs.point_at(f);
    let cores = vec![
        xylem_power::CoreActivity {
            activity: metrics.activity,
            memory_intensity: metrics.memory_intensity,
            point,
        };
        8
    ];
    let uncore = xylem_power::UncoreActivity {
        llc: metrics.llc_activity,
        mc: metrics.mc_utilization,
        noc: metrics.noc_activity,
        point,
    };
    let blocks = sys
        .power_model()
        .block_powers(&cores, &uncore, Celsius::new(90.0));
    let mut map = PowerMap::zeros(&model);
    for (name, w) in &blocks {
        map.add_block_power(&model, built.proc_metal_layer(), name, *w)
            .map_err(|e| e.to_string())?;
    }
    let n_dies = built.dram_metal_layers().len();
    let die_w = xylem_dram::DramEnergyModel::paper_default().die_power(
        metrics.dram_read_rate,
        metrics.dram_write_rate,
        metrics.dram_activate_rate,
        85.0,
        n_dies,
    );
    for &l in built.dram_metal_layers() {
        map.add_uniform_layer_power(l, Watts::new(die_w));
    }
    let temps = model.steady_state(&map).map_err(|e| e.to_string())?;
    let r = StackThermalReport::new(&model, &temps);
    println!("{} on {} @ {f:.1} GHz (32x32 grid)", app, sys.scheme());
    print!("{}", r.render());
    println!(
        "D2D share of the internal rise: {:.0}%",
        r.rise_share(|n| n.starts_with("d2d")) * 100.0
    );
    Ok(())
}

fn dtm(opts: &HashMap<String, String>) -> Result<(), String> {
    let sys = system_of(opts)?;
    let app = app_of(opts)?;
    let f = freq_of(opts)?;
    let duration: f64 = opts
        .get("duration")
        .map(|s| s.parse().map_err(|_| format!("bad --duration '{s}'")))
        .transpose()?
        .unwrap_or(2.0);
    let every: usize = opts
        .get("every")
        .map(|s| s.parse().map_err(|_| format!("bad --every '{s}'")))
        .transpose()?
        .unwrap_or(200);
    let resume = opts.contains_key("resume");
    let checkpoint = opts.get("checkpoint").map(std::path::PathBuf::from);
    if resume && checkpoint.is_none() {
        return Err("--resume needs --checkpoint PATH".to_string());
    }
    let mut policy = DtmPolicy::paper_default();
    if opts.contains_key("adaptive") {
        let mut a = AdaptiveOptions::default();
        if let Some(s) = opts.get("rtol") {
            a.rtol = s.parse().map_err(|_| format!("bad --rtol '{s}'"))?;
        }
        if let Some(s) = opts.get("budget-cg") {
            a.max_cg_iterations = Some(s.parse().map_err(|_| format!("bad --budget-cg '{s}'"))?);
        }
        if let Some(s) = opts.get("budget-wall-s") {
            a.max_wall_s = Some(
                s.parse()
                    .map_err(|_| format!("bad --budget-wall-s '{s}'"))?,
            );
        }
        if let Some(s) = opts.get("budget-rejects") {
            a.max_reject_streak = s
                .parse()
                .map_err(|_| format!("bad --budget-rejects '{s}'"))?;
        }
        policy = policy.with_adaptive(a);
    }
    let run = DtmRunConfig {
        checkpoint: checkpoint.map(|path| CheckpointConfig {
            path,
            every_steps: every,
            resume,
        }),
        deadline_ms: opts
            .get("deadline-ms")
            .map(|s| s.parse().map_err(|_| format!("bad --deadline-ms '{s}'")))
            .transpose()?,
        ..DtmRunConfig::new(policy)
    };
    let r = dtm_transient_configured(&sys, app, f, duration, &run, GridSpec::new(24, 24))
        .map_err(|e| e.to_string())?;
    println!(
        "{} on {}: requested {f:.1} GHz for {duration:.1} s",
        app,
        sys.scheme()
    );
    println!(
        "  effective frequency {:.2} GHz, final {:.1} GHz, {} throttle steps, \
         peak {:.1} C, {:.1}% of time above trip",
        r.mean_f_ghz(),
        r.final_f_ghz,
        r.throttle_events,
        r.peak_hotspot().get(),
        r.time_above_trip * 100.0
    );
    if r.failsafe_events > 0 || !r.recovery.is_empty() {
        println!(
            "  {} fail-safe periods; solver ladder: {} escalations, {} recovered",
            r.failsafe_events, r.recovery.attempts, r.recovery.recoveries
        );
    }
    if let Some(a) = &r.adaptive {
        println!(
            "  adaptive stepping: {} BE solves, {} accepted ({} forced), {} rejected, \
             {} held, final dt {:.2e} s{}",
            a.be_solves,
            a.accepted,
            a.forced,
            a.rejected,
            a.holds,
            a.final_dt_s,
            if a.economy {
                " [budget exhausted: economy mode]"
            } else {
                ""
            }
        );
    }
    // A coarse frequency-over-time strip.
    println!(
        "  f(t) [0=2.4GHz..9=3.5GHz]: {}",
        frequency_strip(&r.samples, 60)
    );
    Ok(())
}

fn schemes() {
    let g = DramDieGeometry::paper_default();
    println!(
        "{:10} {:>6} {:>10} {:>9}  description",
        "scheme", "TTSVs", "area mm2", "% die"
    );
    for s in XylemScheme::ALL {
        let a = AreaOverhead::for_scheme(s, &g, SAMSUNG_WIDE_IO_DIE_AREA);
        let desc = match s {
            XylemScheme::Base => "plain Wide I/O stack",
            XylemScheme::BankSurround => "TTSVs at bank vertices, aligned+shorted",
            XylemScheme::BankEnhanced => "bank + 8 co-designed TTSVs at the cores",
            XylemScheme::IsoCount => "banke minus the generic central row",
            XylemScheme::Prior => "banke placement, no alignment/shorting",
        };
        println!(
            "{:10} {:>6} {:>10.4} {:>8.2}%  {desc}",
            s.name(),
            a.ttsv_count,
            a.total_area * 1e6,
            a.percent()
        );
    }
}
