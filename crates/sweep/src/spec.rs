//! Declarative sweep specifications and their deterministic task grids.
//!
//! A [`SweepSpec`] is the cartesian product of axes over (scheme ×
//! die thickness × pillar footprint × die count × D2D thickness ×
//! workload × frequency × DTM trip). Enumeration order is fixed, so a
//! task's `id` is stable across runs of the same spec — the journal
//! keys on it. [`SweepSpec::spec_hash`] digests the canonical axis
//! string through the checkpoint layer's [`xylem::checkpoint::config_hash`]
//! so a resume against a journal written by a *different* spec is
//! refused instead of silently mixing result grids.

use std::path::Path;

use xylem::checkpoint::{config_hash, fnv1a};
use xylem::{ConfigError, SystemConfig, XylemError};
use xylem_stack::XylemScheme;
use xylem_thermal::grid::GridSpec;
use xylem_workloads::Benchmark;

use crate::backoff::splitmix64;

/// One fully-resolved point of the design space: everything needed to
/// build a stack and evaluate one workload on it.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSpec {
    /// Position in the spec's enumeration order (journal key).
    pub id: usize,
    /// TTSV placement scheme.
    pub scheme: XylemScheme,
    /// Workload to evaluate.
    pub benchmark: Benchmark,
    /// Core frequency, GHz.
    pub f_ghz: f64,
    /// DRAM die thickness override, µm (`None` keeps the paper default).
    pub die_thickness_um: Option<f64>,
    /// Thermal-cluster (pillar) footprint override, µm.
    pub pillar_footprint_um: Option<f64>,
    /// Die-to-die layer thickness override, µm.
    pub d2d_thickness_um: Option<f64>,
    /// DRAM die count override.
    pub n_dram_dies: Option<usize>,
    /// DTM policy axis: evaluate the maximum frequency holding the
    /// hotspot at this trip temperature (`None` skips the DTM search).
    pub trip_c: Option<f64>,
}

impl TaskSpec {
    /// Human-readable unique key: `scheme/benchmark/f<ghz>` plus one
    /// `/<axis><value>` segment per overridden axis.
    #[must_use]
    pub fn key(&self) -> String {
        let mut k = format!(
            "{}/{}/f{}",
            self.scheme.name(),
            self.benchmark.name(),
            self.f_ghz
        );
        if let Some(v) = self.die_thickness_um {
            k.push_str(&format!("/die{v}"));
        }
        if let Some(v) = self.pillar_footprint_um {
            k.push_str(&format!("/pf{v}"));
        }
        if let Some(v) = self.n_dram_dies {
            k.push_str(&format!("/nd{v}"));
        }
        if let Some(v) = self.d2d_thickness_um {
            k.push_str(&format!("/d2d{v}"));
        }
        if let Some(v) = self.trip_c {
            k.push_str(&format!("/trip{v}"));
        }
        k
    }

    /// FNV-1a hash of [`TaskSpec::key`] — seeds per-task jitter.
    #[must_use]
    pub fn key_hash(&self) -> u64 {
        fnv1a(self.key().as_bytes())
    }

    /// Hash over the *stack-defining* axes only (scheme + geometry, not
    /// workload/frequency/trip). Tasks sharing a `stack_key` share a
    /// built [`xylem::XylemSystem`], so the engine shards by this value:
    /// every distinct stack is built exactly once per sweep process.
    #[must_use]
    pub fn stack_key(&self) -> u64 {
        let s = format!(
            "{}|die={:?}|pf={:?}|nd={:?}|d2d={:?}",
            self.scheme.name(),
            self.die_thickness_um,
            self.pillar_footprint_um,
            self.n_dram_dies,
            self.d2d_thickness_um
        );
        fnv1a(s.as_bytes())
    }

    /// The [`SystemConfig`] this task evaluates: the paper default for
    /// its scheme with the task's geometry overrides applied (µm fields
    /// converted to meters) at a `grid`×`grid` resolution.
    #[must_use]
    pub fn system_config(&self, grid: usize, cache_dir: Option<&Path>) -> SystemConfig {
        let mut config = SystemConfig::paper_default(self.scheme);
        config.grid = GridSpec::new(grid, grid);
        config.cache_dir = cache_dir.map(Path::to_path_buf);
        if let Some(um) = self.die_thickness_um {
            config.stack.die_thickness = um * 1e-6;
        }
        if let Some(um) = self.pillar_footprint_um {
            config.stack.pillar_footprint = um * 1e-6;
        }
        if let Some(um) = self.d2d_thickness_um {
            config.stack.d2d_thickness = um * 1e-6;
        }
        if let Some(n) = self.n_dram_dies {
            config.stack.n_dram_dies = n;
        }
        config
    }
}

/// A declarative sweep: one `Vec` per axis, expanded as a cartesian
/// product in a fixed order. Empty geometry/trip axes mean "paper
/// default only"; empty scheme/benchmark/frequency axes are invalid.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// TTSV placement schemes to sweep.
    pub schemes: Vec<XylemScheme>,
    /// Workloads to sweep.
    pub benchmarks: Vec<Benchmark>,
    /// Core frequencies, GHz.
    pub f_ghz: Vec<f64>,
    /// DRAM die thicknesses, µm (empty = paper default only).
    pub die_thickness_um: Vec<f64>,
    /// Pillar footprints, µm (empty = paper default only).
    pub pillar_footprint_um: Vec<f64>,
    /// DRAM die counts (empty = paper default only).
    pub n_dram_dies: Vec<usize>,
    /// D2D layer thicknesses, µm (empty = paper default only).
    pub d2d_thickness_um: Vec<f64>,
    /// DTM trip temperatures, °C (empty = no DTM axis).
    pub trips_c: Vec<f64>,
    /// Thermal grid resolution (`grid`×`grid`).
    pub grid: usize,
    /// Random subsample size: keep only this many tasks, drawn
    /// deterministically from `seed` (`None` = the full grid).
    pub sample: Option<usize>,
    /// Seed for subsampling and retry-backoff jitter.
    pub seed: u64,
}

impl Default for SweepSpec {
    fn default() -> Self {
        SweepSpec {
            schemes: XylemScheme::ALL.to_vec(),
            benchmarks: vec![Benchmark::Cholesky],
            f_ghz: vec![2.4],
            die_thickness_um: Vec::new(),
            pillar_footprint_um: Vec::new(),
            n_dram_dies: Vec::new(),
            d2d_thickness_um: Vec::new(),
            trips_c: Vec::new(),
            grid: 64,
            sample: None,
            seed: 0,
        }
    }
}

/// An optional axis: empty means a single "paper default" (`None`) point.
fn axis<T: Copy>(values: &[T]) -> Vec<Option<T>> {
    if values.is_empty() {
        vec![None]
    } else {
        values.iter().copied().map(Some).collect()
    }
}

impl SweepSpec {
    /// Checks the spec is enumerable.
    ///
    /// # Errors
    ///
    /// [`XylemError::Config`] when a required axis is empty or the grid
    /// resolution is zero.
    pub fn validate(&self) -> Result<(), XylemError> {
        if self.schemes.is_empty() {
            return Err(ConfigError::new("schemes", "at least one scheme is required").into());
        }
        if self.benchmarks.is_empty() {
            return Err(ConfigError::new("benchmarks", "at least one workload is required").into());
        }
        if self.f_ghz.is_empty() {
            return Err(ConfigError::new("f_ghz", "at least one frequency is required").into());
        }
        if self.grid == 0 {
            return Err(ConfigError::new("grid", "resolution must be positive").into());
        }
        if self.sample == Some(0) {
            return Err(ConfigError::new("sample", "subsample size must be positive").into());
        }
        Ok(())
    }

    /// Expands the cartesian product in the fixed enumeration order
    /// (scheme, die thickness, pillar, die count, D2D, benchmark,
    /// frequency, trip), assigns sequential ids, then applies the seeded
    /// subsample if configured. Ids refer to the *full* grid, so a
    /// sampled sweep and its parent grid agree on task identity.
    #[must_use]
    pub fn tasks(&self) -> Vec<TaskSpec> {
        let mut out = Vec::new();
        let mut id = 0usize;
        for &scheme in &self.schemes {
            for die_thickness_um in axis(&self.die_thickness_um) {
                for pillar_footprint_um in axis(&self.pillar_footprint_um) {
                    for n_dram_dies in axis(&self.n_dram_dies) {
                        for d2d_thickness_um in axis(&self.d2d_thickness_um) {
                            for &benchmark in &self.benchmarks {
                                for &f_ghz in &self.f_ghz {
                                    for trip_c in axis(&self.trips_c) {
                                        out.push(TaskSpec {
                                            id,
                                            scheme,
                                            benchmark,
                                            f_ghz,
                                            die_thickness_um,
                                            pillar_footprint_um,
                                            d2d_thickness_um,
                                            n_dram_dies,
                                            trip_c,
                                        });
                                        id += 1;
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        if let Some(k) = self.sample {
            if k < out.len() {
                // Deterministic sample: order by a per-id hash, keep the
                // first k, then restore id order.
                let mut keyed: Vec<(u64, TaskSpec)> = out
                    .into_iter()
                    .map(|t| (splitmix64(self.seed ^ splitmix64(t.id as u64)), t))
                    .collect();
                keyed.sort_by_key(|(h, t)| (*h, t.id));
                keyed.truncate(k);
                keyed.sort_by_key(|(_, t)| t.id);
                out = keyed.into_iter().map(|(_, t)| t).collect();
            }
        }
        out
    }

    /// Canonical digest of every enumeration-relevant field, via the
    /// checkpoint layer's [`config_hash`]. Stored in the journal header;
    /// resume refuses a journal whose hash differs.
    #[must_use]
    pub fn spec_hash(&self) -> String {
        let mut s = String::from("xylem-sweep-spec-v1");
        s.push_str("|schemes=");
        for sc in &self.schemes {
            s.push_str(sc.name());
            s.push(',');
        }
        s.push_str("|benchmarks=");
        for b in &self.benchmarks {
            s.push_str(b.name());
            s.push(',');
        }
        push_f64_axis(&mut s, "f_ghz", &self.f_ghz);
        push_f64_axis(&mut s, "die_um", &self.die_thickness_um);
        push_f64_axis(&mut s, "pf_um", &self.pillar_footprint_um);
        s.push_str("|nd=");
        for n in &self.n_dram_dies {
            s.push_str(&format!("{n},"));
        }
        push_f64_axis(&mut s, "d2d_um", &self.d2d_thickness_um);
        push_f64_axis(&mut s, "trip_c", &self.trips_c);
        s.push_str(&format!("|grid={}", self.grid));
        s.push_str(&format!("|sample={:?}", self.sample));
        s.push_str(&format!("|seed={}", self.seed));
        config_hash(&s)
    }
}

fn push_f64_axis(s: &mut String, label: &str, values: &[f64]) {
    s.push('|');
    s.push_str(label);
    s.push('=');
    for v in values {
        s.push_str(&format!("{v},"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> SweepSpec {
        SweepSpec {
            schemes: vec![XylemScheme::Base, XylemScheme::BankEnhanced],
            benchmarks: vec![Benchmark::Cholesky, Benchmark::Barnes],
            f_ghz: vec![2.4],
            die_thickness_um: vec![50.0, 100.0],
            grid: 16,
            ..SweepSpec::default()
        }
    }

    #[test]
    fn enumeration_is_stable_and_sequential() {
        let tasks = small_spec().tasks();
        assert_eq!(tasks.len(), 2 * 2 * 2);
        for (i, t) in tasks.iter().enumerate() {
            assert_eq!(t.id, i);
        }
        // scheme is the outermost axis, trip/freq the innermost.
        assert_eq!(tasks[0].scheme, XylemScheme::Base);
        assert_eq!(tasks[4].scheme, XylemScheme::BankEnhanced);
        assert_eq!(tasks[0].benchmark, Benchmark::Cholesky);
        assert_eq!(tasks[1].benchmark, Benchmark::Barnes);
        assert_eq!(small_spec().tasks(), tasks, "tasks() is pure");
    }

    #[test]
    fn keys_are_unique() {
        let tasks = small_spec().tasks();
        let mut keys: Vec<String> = tasks.iter().map(TaskSpec::key).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), tasks.len());
    }

    #[test]
    fn sampling_is_deterministic_and_id_ordered() {
        let mut spec = small_spec();
        spec.sample = Some(3);
        spec.seed = 7;
        let a = spec.tasks();
        let b = spec.tasks();
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert!(a.windows(2).all(|w| w[0].id < w[1].id));
        // A different seed picks a different subset (with overwhelming
        // probability for this grid).
        spec.seed = 8;
        assert_ne!(spec.tasks(), a);
    }

    #[test]
    fn spec_hash_tracks_every_axis() {
        let base = small_spec();
        let h = base.spec_hash();
        assert_eq!(h, small_spec().spec_hash());
        let mut changed = small_spec();
        changed.trips_c = vec![95.0];
        assert_ne!(changed.spec_hash(), h);
        let mut changed = small_spec();
        changed.seed = 99;
        assert_ne!(changed.spec_hash(), h);
        let mut changed = small_spec();
        changed.grid = 32;
        assert_ne!(changed.spec_hash(), h);
    }

    #[test]
    fn validate_rejects_empty_required_axes() {
        let mut spec = small_spec();
        spec.schemes.clear();
        assert!(spec.validate().is_err());
        let mut spec = small_spec();
        spec.f_ghz.clear();
        assert!(spec.validate().is_err());
        let mut spec = small_spec();
        spec.sample = Some(0);
        assert!(spec.validate().is_err());
        assert!(small_spec().validate().is_ok());
    }

    #[test]
    fn stack_key_ignores_workload_axes() {
        let tasks = small_spec().tasks();
        // tasks 0 and 1 share geometry (die 50um) but differ in workload;
        // task 2 is the 100um die.
        assert_eq!(tasks[0].stack_key(), tasks[1].stack_key());
        assert_ne!(tasks[0].stack_key(), tasks[2].stack_key());
    }

    #[test]
    fn system_config_applies_um_overrides() {
        let t = TaskSpec {
            id: 0,
            scheme: XylemScheme::BankEnhanced,
            benchmark: Benchmark::Cholesky,
            f_ghz: 2.4,
            die_thickness_um: Some(50.0),
            pillar_footprint_um: Some(250.0),
            d2d_thickness_um: Some(10.0),
            n_dram_dies: Some(8),
            trip_c: None,
        };
        let c = t.system_config(16, None);
        assert!((c.stack.die_thickness - 50.0e-6).abs() < 1e-12);
        assert!((c.stack.pillar_footprint - 250.0e-6).abs() < 1e-12);
        assert!((c.stack.d2d_thickness - 10.0e-6).abs() < 1e-12);
        assert_eq!(c.stack.n_dram_dies, 8);
        assert!(c.cache_dir.is_none());
    }
}
