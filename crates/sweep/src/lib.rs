//! `xylem-sweep`: a crash-safe, self-healing batched design-space sweep
//! engine.
//!
//! The paper's sensitivity studies (Fig. 18 die-thickness sweep, Fig. 19
//! die-count sweep) are batch evaluations over a configuration grid —
//! exactly the heavy-traffic path for research users, where one request
//! means thousands of solves. A serial loop dies with its process: one
//! poisoned configuration, one stuck solve, or one SIGKILL loses
//! everything computed so far. This crate makes robustness the
//! first-class design axis instead (see DESIGN.md §18):
//!
//! * a declarative [`SweepSpec`] enumerates a deterministic task grid
//!   over (scheme × geometry × die count × workload × DTM policy), with
//!   optional seeded random subsampling;
//! * tasks run on a sharded worker pool ([`run_sweep`]) with per-task
//!   `catch_unwind` panic isolation, stack-affinity sharding (each
//!   distinct stack is built once, and shared sub-solves dedupe through
//!   the response cache), and wall-clock deadlines threaded into the CG
//!   loop via [`xylem_thermal::DeadlineGuard`];
//! * failed attempts retry with deterministic seeded exponential backoff
//!   ([`BackoffPolicy`], splitmix64 jitter like `sensor.rs`); tasks that
//!   exhaust every attempt land on a quarantine list — the sweep always
//!   completes and reports partial results;
//! * completed tasks stream to an append-only JSONL [`Journal`]
//!   (fsync'd in batches, torn-tail tolerant on read), so a killed sweep
//!   resumes by replaying the journal and skipping done or quarantined
//!   tasks; the header carries the spec's config hash (the checkpoint
//!   layer's hash discipline) so a journal from a different sweep is
//!   refused with [`xylem::SweepError::SpecMismatch`].

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod backoff;
pub mod engine;
pub mod journal;
pub mod scenario_sweep;
pub mod spec;

pub use backoff::{splitmix64, BackoffPolicy};
pub use engine::{run_sweep, ChaosConfig, SweepOptions, SweepReport};
pub use journal::{Journal, JournalScan, TaskRecord, TaskResult, TaskStatus};
pub use scenario_sweep::{
    run_scenario_sweep, ScenarioPointRecord, ScenarioSweepReport, ScenarioSweepSpec,
};
pub use spec::{SweepSpec, TaskSpec};
