//! Deterministic retry backoff: exponential envelope, seeded splitmix64
//! jitter.
//!
//! The delay before retry `attempt` is drawn from
//! `[envelope/2, envelope]` where `envelope = base · 2^(attempt-1)`
//! capped at `max_ms`. The jitter is a counter-based splitmix64 hash of
//! `(seed, task key, attempt)` — no RNG state exists, so replaying a
//! task (e.g. after a journal resume) or re-sharding the pool reproduces
//! the identical schedule at any thread count.

/// splitmix64 finalizer: a well-mixed 64-bit hash (the same mixer the
/// sensor noise model uses for counter-based determinism).
#[must_use]
pub fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Exponential-backoff policy with deterministic jitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// Envelope for the first retry, milliseconds. Zero disables
    /// sleeping entirely (useful in tests).
    pub base_ms: u64,
    /// Hard cap on any single delay, milliseconds.
    pub max_ms: u64,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            base_ms: 25,
            max_ms: 1_000,
        }
    }
}

impl BackoffPolicy {
    /// Delay in milliseconds before retrying after failed attempt
    /// `attempt` (1-based). Pure in `(self, seed, task_key, attempt)`:
    /// the same inputs always produce the same delay, and every delay is
    /// `<= max_ms`.
    #[must_use]
    pub fn delay_ms(&self, seed: u64, task_key: u64, attempt: u32) -> u64 {
        if self.base_ms == 0 || self.max_ms == 0 {
            return 0;
        }
        // 2^(attempt-1) envelope, saturating well before u64 overflow.
        let shift = attempt.saturating_sub(1).min(20);
        let envelope = self.base_ms.saturating_mul(1u64 << shift).min(self.max_ms);
        let half = envelope / 2;
        let jitter = splitmix64(seed ^ splitmix64(task_key ^ u64::from(attempt))) % (half + 1);
        (envelope - half + jitter).min(self.max_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_stable() {
        // Reference values from the canonical splitmix64 stream.
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
        assert_ne!(splitmix64(1), splitmix64(2));
    }

    #[test]
    fn delay_is_deterministic_under_a_fixed_seed() {
        let p = BackoffPolicy::default();
        for attempt in 1..=8 {
            for key in [0u64, 7, 0xDEAD_BEEF] {
                assert_eq!(
                    p.delay_ms(42, key, attempt),
                    p.delay_ms(42, key, attempt),
                    "attempt {attempt} key {key}"
                );
            }
        }
        // Different seeds decorrelate the jitter.
        assert_ne!(
            (1..=8).map(|a| p.delay_ms(1, 9, a)).collect::<Vec<_>>(),
            (1..=8).map(|a| p.delay_ms(2, 9, a)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn delay_is_bounded_by_max_delay() {
        let p = BackoffPolicy {
            base_ms: 40,
            max_ms: 300,
        };
        for seed in 0..20u64 {
            for key in 0..20u64 {
                for attempt in 1..=64u32 {
                    let d = p.delay_ms(seed, key, attempt);
                    assert!(
                        d <= p.max_ms,
                        "{d} > {} for {seed}/{key}/{attempt}",
                        p.max_ms
                    );
                }
            }
        }
        // Huge attempt numbers must not overflow the envelope.
        assert!(p.delay_ms(0, 0, u32::MAX) <= p.max_ms);
    }

    #[test]
    fn envelope_grows_until_the_cap() {
        let p = BackoffPolicy {
            base_ms: 10,
            max_ms: 640,
        };
        // Lower bound of the jitter window is envelope/2, which doubles
        // per attempt until max_ms pins it.
        for attempt in 1..=6u32 {
            let d = p.delay_ms(3, 3, attempt);
            let envelope = (10u64 << (attempt - 1)).min(640);
            assert!(d >= envelope - envelope / 2, "{d} vs {envelope}");
            assert!(d <= envelope, "{d} vs {envelope}");
        }
    }

    #[test]
    fn zero_base_disables_sleeping() {
        let p = BackoffPolicy {
            base_ms: 0,
            max_ms: 500,
        };
        assert_eq!(p.delay_ms(1, 2, 3), 0);
    }
}
