//! Scenario-driven sweeps: one `.stk` file, many design points.
//!
//! Where [`crate::engine`] sweeps the hard-wired paper configuration
//! axes (schemes, benchmarks, thicknesses), this module sweeps the
//! *scenario itself*: the variation axes — grid resolution, a global
//! power scale, and the package ambient — are applied to the parsed IR,
//! re-printed through the canonical printer, and pushed through the
//! full locked pipeline (`parse -> validate -> lower -> solve`) per
//! point. Each point is fenced by `catch_unwind` and counted with the
//! same sweep counters as the batch engine, so a pathological variant
//! quarantines instead of killing the batch.

use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};

use xylem_obs::metrics::{incr, Counter};
use xylem_scenario::ast::{HeatSinkDef, PowerStmt, Scenario};
use xylem_scenario::span::Spanned;
use xylem_scenario::{printer, RunReport};

/// One scenario sweep: the base `.stk` source plus variation axes. An
/// empty axis means "keep what the scenario says".
#[derive(Debug, Clone, Default)]
pub struct ScenarioSweepSpec {
    /// Display name (usually the file stem).
    pub name: String,
    /// The `.stk` source text.
    pub source: String,
    /// Grid override values (applied to the global grid AND every
    /// per-die `discretization`, which validation requires to agree).
    pub grids: Vec<usize>,
    /// Multipliers applied to every `power` statement's wattage.
    pub power_scales: Vec<f64>,
    /// Package ambient overrides, deg C.
    pub ambients_c: Vec<f64>,
}

/// One evaluated design point.
#[derive(Debug, Clone)]
pub struct ScenarioPointRecord {
    /// `name/gridN/scaleS/ambA` — stable, journal-friendly key.
    pub key: String,
    /// The solved report, or why this point was rejected/quarantined.
    pub outcome: Result<RunReport, String>,
}

/// The whole sweep's outcome. Points appear in deterministic axis
/// order: grids, then power scales, then ambients.
#[derive(Debug, Clone)]
pub struct ScenarioSweepReport {
    /// Scenario name from the spec.
    pub scenario: String,
    /// Points evaluated successfully.
    pub ok: usize,
    /// Points that failed to compile, solve, or panicked.
    pub quarantined: usize,
    /// All point records, in evaluation order.
    pub records: Vec<ScenarioPointRecord>,
}

/// Applies one design point's overrides to a copy of the base IR.
fn variant(base: &Scenario, grid: Option<usize>, scale: f64, ambient: Option<f64>) -> Scenario {
    let mut sc = base.clone();
    if let Some(g) = grid {
        let g = g as f64;
        if let Some(d) = &mut sc.dimensions {
            d.grid.0 = Spanned::synthetic(g);
            d.grid.1 = Spanned::synthetic(g);
        }
        // Per-die discretizations must agree with the global grid
        // (validation enforces it), so the override reaches them too.
        for die in &mut sc.dies {
            if die.discretization.is_some() {
                die.discretization = Some((Spanned::synthetic(g), Spanned::synthetic(g)));
            }
        }
    }
    if (scale - 1.0).abs() > 0.0 {
        for p in &mut sc.power {
            match p {
                PowerStmt::Uniform { watts, .. } | PowerStmt::Block { watts, .. } => {
                    watts.node *= scale;
                }
            }
        }
    }
    if let Some(a) = ambient {
        let hs = sc.heat_sink.get_or_insert_with(HeatSinkDef::default);
        hs.ambient = Some(Spanned::synthetic(a));
    }
    sc
}

/// Evaluates one point: print the variant IR, re-compile it through the
/// locked pipeline, solve, all behind a panic fence.
fn evaluate(sc: &Scenario, key: &str) -> Result<RunReport, String> {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let text = printer::print(sc);
        let lowered =
            xylem_scenario::compile(&text).map_err(|e| e.render(&format!("<{key}>"), &text))?;
        xylem_scenario::run(&lowered).map_err(|e| e.to_string())
    }));
    match outcome {
        Ok(r) => r,
        Err(_) => Err("point evaluation panicked".to_string()),
    }
}

/// Runs the scenario sweep serially in deterministic point order.
///
/// Point-level failures (a variant that no longer validates, a solver
/// failure, a panic) are quarantined into their records; the `Err`
/// path is reserved for a base scenario that does not even parse.
///
/// # Errors
///
/// The rendered parse error of the base scenario.
pub fn run_scenario_sweep(spec: &ScenarioSweepSpec) -> Result<ScenarioSweepReport, String> {
    let base = xylem_scenario::parse_scenario(&spec.source)
        .map_err(|e| e.render(&spec.name, &spec.source))?;

    let grids: Vec<Option<usize>> = if spec.grids.is_empty() {
        vec![None]
    } else {
        spec.grids.iter().copied().map(Some).collect()
    };
    let scales: Vec<f64> = if spec.power_scales.is_empty() {
        vec![1.0]
    } else {
        spec.power_scales.clone()
    };
    let ambients: Vec<Option<f64>> = if spec.ambients_c.is_empty() {
        vec![None]
    } else {
        spec.ambients_c.iter().copied().map(Some).collect()
    };

    let mut report = ScenarioSweepReport {
        scenario: spec.name.clone(),
        ok: 0,
        quarantined: 0,
        records: Vec::new(),
    };
    for &grid in &grids {
        for &scale in &scales {
            for &ambient in &ambients {
                let mut key = spec.name.clone();
                match grid {
                    Some(g) => {
                        let _ = write!(key, "/grid{g}");
                    }
                    None => key.push_str("/grid-native"),
                }
                let _ = write!(key, "/scale{scale}");
                match ambient {
                    Some(a) => {
                        let _ = write!(key, "/amb{a}");
                    }
                    None => key.push_str("/amb-native"),
                }
                let sc = variant(&base, grid, scale, ambient);
                let outcome = evaluate(&sc, &key);
                match &outcome {
                    Ok(_) => {
                        report.ok += 1;
                        incr(Counter::SweepTasksOk);
                    }
                    Err(_) => {
                        report.quarantined += 1;
                        incr(Counter::SweepTasksQuarantined);
                    }
                }
                report.records.push(ScenarioPointRecord { key, outcome });
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINIMAL: &str = "\
material si :
    thermal conductivity 120.0 ;
    volumetric heat capacity 1.75e6 ;
dimensions :
    chip length 8e-3 , width 8e-3 ;
    grid 8 , 8 ;
layer body :
    height 1e-4 ;
    material si ;
stack :
    layer body ;
power :
    uniform body 5.0 ;
solver :
    steady ;
";

    fn spec() -> ScenarioSweepSpec {
        ScenarioSweepSpec {
            name: "minimal".to_string(),
            source: MINIMAL.to_string(),
            ..ScenarioSweepSpec::default()
        }
    }

    #[test]
    fn native_point_runs_when_no_axes_given() {
        let r = run_scenario_sweep(&spec()).expect("sweeps");
        assert_eq!(r.records.len(), 1);
        assert_eq!(r.ok, 1);
        assert_eq!(r.records[0].key, "minimal/grid-native/scale1/amb-native");
        assert!(r.records[0].outcome.is_ok());
    }

    #[test]
    fn axes_form_a_deterministic_product() {
        let mut s = spec();
        s.grids = vec![4, 8];
        s.power_scales = vec![0.5, 2.0];
        s.ambients_c = vec![30.0];
        let r = run_scenario_sweep(&s).expect("sweeps");
        assert_eq!(r.records.len(), 4);
        assert_eq!(r.ok, 4);
        assert_eq!(r.records[0].key, "minimal/grid4/scale0.5/amb30");
        assert_eq!(r.records[3].key, "minimal/grid8/scale2/amb30");
        // More power -> hotter; same grid, same ambient.
        let t = |i: usize| {
            r.records[i]
                .outcome
                .as_ref()
                .expect("point solved")
                .global_hotspot_c
        };
        assert!(t(1) > t(0), "{} vs {}", t(1), t(0));
    }

    #[test]
    fn ambient_override_shifts_the_whole_field() {
        let mut s = spec();
        s.ambients_c = vec![30.0, 60.0];
        let r = run_scenario_sweep(&s).expect("sweeps");
        assert_eq!(r.ok, 2);
        let hot = |i: usize| {
            r.records[i]
                .outcome
                .as_ref()
                .expect("point solved")
                .global_hotspot_c
        };
        assert!(hot(1) > hot(0) + 25.0, "{} vs {}", hot(1), hot(0));
    }

    #[test]
    fn invalid_point_quarantines_instead_of_failing_the_sweep() {
        let mut s = spec();
        // 3000^2 cells blows the validator's grid budget: the point
        // must quarantine with the rendered diagnostic.
        s.grids = vec![8, 3000];
        let r = run_scenario_sweep(&s).expect("sweep itself survives");
        assert_eq!(r.ok, 1);
        assert_eq!(r.quarantined, 1);
        let err = r.records[1].outcome.as_ref().expect_err("rejected");
        assert!(err.contains("grid"), "{err}");
    }

    #[test]
    fn unparseable_base_scenario_is_a_sweep_error() {
        let mut s = spec();
        s.source = "material ;".to_string();
        let err = run_scenario_sweep(&s).expect_err("must fail");
        assert!(err.contains("error:"), "{err}");
    }
}
