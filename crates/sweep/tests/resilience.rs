//! Crash-safety acceptance tests for the sweep engine — the `./ci.sh
//! sweep` lane.
//!
//! * A 3x3 (benchmark x frequency) sweep is SIGKILLed mid-run in a
//!   child process; resuming from its journal must reach 100%
//!   completion with zero duplicate journal entries.
//! * A seeded chaos campaign (injected panics, forced non-convergence,
//!   deadline blowouts) must complete with every task `ok` or
//!   `quarantined`, never panic the orchestrator, and resume
//!   bit-identically on the completed subset.

use std::path::PathBuf;
use std::process::Command;
use std::time::{Duration, Instant};

use xylem_stack::XylemScheme;
use xylem_sweep::{
    run_sweep, BackoffPolicy, ChaosConfig, Journal, SweepOptions, SweepSpec, TaskStatus,
};
use xylem_workloads::Benchmark;

const KILL_CHILD_ENV: &str = "XYLEM_SWEEP_KILL_CHILD_JOURNAL";
/// 12x12 keeps unit-response builds cheap; one stack geometry means the
/// system is built once and every task after the first is fast.
const GRID: usize = 12;

/// The 3x3 acceptance grid: one stack, three workloads, three
/// frequencies.
fn nine_task_spec() -> SweepSpec {
    SweepSpec {
        schemes: vec![XylemScheme::Base],
        benchmarks: vec![Benchmark::Cholesky, Benchmark::Barnes, Benchmark::Fft],
        f_ghz: vec![2.0, 2.4, 2.8],
        grid: GRID,
        ..SweepSpec::default()
    }
}

fn shared_cache_dir() -> PathBuf {
    std::env::temp_dir().join("xylem-sweep-resilience-cache")
}

fn base_options() -> SweepOptions {
    SweepOptions {
        shards: 2,
        cache_dir: Some(shared_cache_dir()),
        fsync_every: 1,
        backoff: BackoffPolicy {
            base_ms: 1,
            max_ms: 4,
        },
        ..SweepOptions::default()
    }
}

/// Builds the (shared) response cache so the killed child's per-task
/// time is dominated by its pacing delay, not by cache warming.
fn warm_cache() {
    let mut spec = nine_task_spec();
    spec.benchmarks = vec![Benchmark::Cholesky];
    spec.f_ghz = vec![2.0];
    run_sweep(&spec, &base_options()).expect("cache warm-up sweep succeeds");
}

#[test]
fn killed_sweep_resumes_to_full_completion_without_duplicates() {
    // Child mode: run the paced, journaled sweep until the parent kills
    // this process. Completing anyway is fine — the parent's resume
    // then simply replays all nine records.
    if let Ok(journal) = std::env::var(KILL_CHILD_ENV) {
        let mut opts = base_options();
        opts.journal_path = Some(PathBuf::from(journal));
        opts.pace_ms = 250;
        run_sweep(&nine_task_spec(), &opts).expect("child sweep runs");
        return;
    }

    warm_cache();
    let journal = std::env::temp_dir().join(format!(
        "xylem-sweep-kill-resume-{}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&journal);

    let exe = std::env::current_exe().expect("test binary path");
    let mut child = Command::new(&exe)
        .args([
            "killed_sweep_resumes_to_full_completion_without_duplicates",
            "--exact",
            "--test-threads=1",
        ])
        .env(KILL_CHILD_ENV, &journal)
        .spawn()
        .expect("child spawns");

    // Wait for the header plus at least two task records, then SIGKILL
    // the child mid-run (its 250 ms pacing makes a mid-sweep kill all
    // but certain).
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let lines = std::fs::read(&journal)
            .map(|b| b.iter().filter(|&&c| c == b'\n').count())
            .unwrap_or(0);
        if lines >= 3 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "child never produced two journal records"
        );
        assert!(
            child.try_wait().expect("child status").is_none(),
            "child exited before it could be killed"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    child.kill().expect("SIGKILL delivers");
    let _ = child.wait();

    // Resume in-process: the sweep must finish every task exactly once.
    let mut opts = base_options();
    opts.journal_path = Some(journal.clone());
    opts.resume = true;
    let report = run_sweep(&nine_task_spec(), &opts).expect("resume completes");
    assert_eq!(report.total, 9);
    assert_eq!(report.ok, 9, "every task must complete: {report:?}");
    assert_eq!(report.quarantined, 0);
    assert!(report.replayed >= 2, "kill happened after two records");
    assert!(
        report.replayed < 9,
        "kill must land mid-sweep, not after completion"
    );
    assert_eq!(report.duplicate_journal_records, 0);

    // And the journal itself now holds exactly one record per task.
    let scan = Journal::scan(&journal, Some(&report.spec_hash), 9).expect("final journal scans");
    assert_eq!(scan.records.len(), 9);
    assert_eq!(scan.duplicates, 0, "zero duplicate journal entries");
    let _ = std::fs::remove_file(&journal);
}

#[test]
fn chaos_campaign_never_panics_and_resumes_bit_identically() {
    // Keep the injected worker panics from spraying backtraces into the
    // test output; everything else still prints.
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        std::panic::set_hook(Box::new(|info| {
            let payload = info.payload();
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !msg.contains("chaos: injected panic") {
                eprintln!("{info}");
            }
        }));
    });

    warm_cache();
    let journal =
        std::env::temp_dir().join(format!("xylem-sweep-chaos-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&journal);

    let mut opts = base_options();
    opts.journal_path = Some(journal.clone());
    opts.max_attempts = 2;
    opts.chaos = Some(ChaosConfig {
        seed: 0xC0FF_EE00,
        panic_per_mille: 250,
        error_per_mille: 250,
        deadline_per_mille: 150,
    });

    let first = run_sweep(&nine_task_spec(), &opts).expect("orchestrator survives the campaign");
    assert_eq!(first.total, 9);
    assert_eq!(
        first.ok + first.quarantined,
        first.total,
        "every task ends ok or quarantined: {first:?}"
    );
    assert!(
        first.retried_attempts > 0,
        "a 65% per-attempt fault rate must force retries: {first:?}"
    );
    // Chaos rolls are a pure function of (seed, task key, attempt), so
    // these counts are stable: this seed leaves survivors on both sides.
    assert!(first.ok > 0, "{first:?}");
    assert!(first.quarantined > 0, "{first:?}");
    for rec in &first.records {
        match rec.status {
            TaskStatus::Ok => {
                assert!(rec.result.is_some(), "ok record carries a result: {rec:?}");
            }
            TaskStatus::Quarantined => {
                assert!(rec.result.is_none());
                assert!(
                    rec.error.as_deref().is_some_and(|e| !e.is_empty()),
                    "quarantine names its last error: {rec:?}"
                );
            }
        }
    }

    // Resume over the same journal: everything is already recorded, so
    // the completed subset must replay bit-identically — no re-runs, no
    // second chances for quarantined configs within the same journal.
    let mut resume_opts = opts.clone();
    resume_opts.resume = true;
    let second = run_sweep(&nine_task_spec(), &resume_opts).expect("resume succeeds");
    assert_eq!(second.replayed, second.total);
    assert_eq!(second.records, first.records, "bit-identical replay");
    let _ = std::fs::remove_file(&journal);
}
