//! Property-based tests for the observability layer's invariants: the
//! four design rules of `xylem-obs` (see crate docs / DESIGN.md §14),
//! checked under arbitrary inputs rather than the unit tests' chosen
//! ones.
//!
//! Metrics are a process-global registry shared by every test thread,
//! so counter properties assert monotone lower bounds (`>=`) rather
//! than exact equality.

use proptest::prelude::*;

use xylem_obs::json::{parse, Value};
use xylem_obs::{add, counter, event, gauge, set_gauge, span, span_depth, Counter, Gauge};

/// Fixed palette of awkward string fragments: escapes, quotes, control
/// characters, multi-byte UTF-8. The generator composes these, which is
/// where JSON string encoders actually break.
const FRAGMENTS: [&str; 8] = ["", "a", "\"", "\\", "\n", "\u{1}", "héllo", "κ→🌡"];

fn fragment_string(a: u32, b: u32) -> String {
    format!(
        "{}{}",
        FRAGMENTS[a as usize % FRAGMENTS.len()],
        FRAGMENTS[b as usize % FRAGMENTS.len()]
    )
}

/// Builds an arbitrary `Value` tree from a flat instruction stream; the
/// stream length bounds the tree size, recursion depth is capped by
/// construction (containers only below `depth` 2).
fn value_from(ops: &mut std::slice::Iter<'_, (u32, i64, f64, u32)>, depth: usize) -> Value {
    let Some(&(tag, i, f, s)) = ops.next() else {
        return Value::Null;
    };
    let n_variants = if depth >= 2 { 6 } else { 8 };
    match tag % n_variants {
        0 => Value::Null,
        1 => Value::Bool(i % 2 == 0),
        2 => Value::U64(i.unsigned_abs()),
        3 => Value::I64(i),
        4 => Value::F64(f),
        5 => Value::Str(fragment_string(tag, s)),
        6 => Value::Array((0..(s % 3)).map(|_| value_from(ops, depth + 1)).collect()),
        _ => Value::Object(
            (0..(s % 3))
                .map(|k| {
                    (
                        fragment_string(s.wrapping_add(k), tag),
                        value_from(ops, depth + 1),
                    )
                })
                .collect(),
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Rule: counters only go up. Any sequence of `add`s leaves each
    /// counter at least the sum of its own increments higher, and no
    /// observation along the way ever decreases.
    #[test]
    fn counters_are_monotonic(
        ops in proptest::collection::vec((0usize..12, 0u64..1000), 1..40),
    ) {
        let c = |i: usize| Counter::ALL[i % Counter::ALL.len()];
        let before: Vec<u64> = Counter::ALL.iter().map(|&x| counter(x)).collect();
        let mut my_adds = vec![0u64; Counter::ALL.len()];
        let mut last_seen = before.clone();
        for &(i, by) in &ops {
            add(c(i), by);
            my_adds[i % Counter::ALL.len()] += by;
            for (k, &x) in Counter::ALL.iter().enumerate() {
                let now = counter(x);
                prop_assert!(now >= last_seen[k], "{} went down: {} -> {now}", x.label(), last_seen[k]);
                last_seen[k] = now;
            }
        }
        for (k, &x) in Counter::ALL.iter().enumerate() {
            prop_assert!(
                counter(x) >= before[k] + my_adds[k],
                "{} = {} < {} + {}",
                x.label(),
                counter(x),
                before[k],
                my_adds[k]
            );
        }
    }

    /// Rule: span timers nest LIFO. For an arbitrary nesting schedule the
    /// thread-local depth rises by exactly one per live span and returns
    /// to its starting value when the stack unwinds.
    #[test]
    fn span_timers_nest_correctly(widths in proptest::collection::vec(0usize..4, 1..6)) {
        fn nest(widths: &[usize]) -> Result<(), String> {
            let d0 = span_depth();
            let Some((&w, rest)) = widths.split_first() else {
                return Ok(());
            };
            for _ in 0..w {
                let s = span("prop_span", None);
                prop_assert!(span_depth() == d0 + 1, "open: {} != {}", span_depth(), d0 + 1);
                prop_assert!(s.depth() == d0, "span records entry depth");
                nest(rest)?;
                prop_assert!(span_depth() == d0 + 1, "inner spans unwound");
                drop(s);
                prop_assert!(span_depth() == d0, "close: {} != {d0}", span_depth());
            }
            Ok(())
        }
        nest(&widths)?;
        prop_assert_eq!(span_depth(), 0);
    }

    /// Rule: every line the sink writes can be parsed back. Arbitrary
    /// value trees survive a serialize/parse round trip bit-exactly, and
    /// whole events (with auto-added `ev`/`t_ms` fields and non-finite
    /// floats mapped to null) always re-parse.
    #[test]
    fn jsonl_round_trips(
        ops in proptest::collection::vec((any::<u32>(), any::<i64>(), -1.0e300f64..1.0e300, any::<u32>()), 1..30),
        specials in 0u32..8,
    ) {
        let v = value_from(&mut ops.iter(), 0);
        let text = v.to_string();
        let back = parse(&text).map_err(|e| format!("{text:?}: {e}"))?;
        prop_assert_eq!(&back, &v, "round trip through {:?}", text);

        // An event line with hostile field contents, including the
        // non-finite floats the builder must neutralize.
        let special = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.0][specials as usize % 4];
        let (tag, i, f, s) = ops[0];
        let ev = event("prop_event")
            .str("s", &fragment_string(tag, s))
            .i64("i", i)
            .f64("f", f)
            .f64("special", special)
            .value("tree", v)
            .to_value();
        let line = ev.to_string();
        let back = parse(&line).map_err(|e| format!("{line:?}: {e}"))?;
        if !special.is_finite() {
            prop_assert!(back.get("special") == Some(&Value::Null), "non-finite must become null");
        }
        prop_assert_eq!(back.get("i"), Some(&Value::I64(i)));
    }

    /// Rule: gauges never hold a non-finite value. Whatever stream of
    /// stores arrives — NaN, infinities, negative zero, huge magnitudes —
    /// a read returns either nothing or a finite float, and a non-finite
    /// store never clobbers the last finite one.
    #[test]
    fn gauges_never_go_non_finite(
        stores in proptest::collection::vec((0u32..6, any::<f64>()), 1..50),
    ) {
        let mut last_finite: Option<f64> = None;
        for &(tag, mag) in &stores {
            let value = match tag {
                0 => f64::NAN,
                1 => f64::INFINITY,
                2 => f64::NEG_INFINITY,
                3 => -0.0,
                _ => mag,
            };
            set_gauge(Gauge::SensorFusedC, value);
            if value.is_finite() {
                last_finite = Some(value);
            }
            let read = gauge(Gauge::SensorFusedC);
            prop_assert!(
                read.is_none_or(f64::is_finite),
                "gauge read back non-finite: {read:?}"
            );
            if let Some(want) = last_finite {
                prop_assert!(
                    read.map(f64::to_bits) == Some(want.to_bits()),
                    "finite store lost: read {read:?}, want {want}"
                );
            }
        }
    }
}
