//! `xylem-obs`: the workspace observability layer.
//!
//! A zero-dependency crate providing, in one place:
//!
//! - a process-global **JSONL event sink** ([`install_file`] /
//!   [`install_memory`] / [`shutdown`]) that the solver, DTM runtime,
//!   bench harness, CLI, and examples all write through;
//! - **monotonic counters** and finite-only **gauges** ([`metrics`]) that
//!   record unconditionally at a few nanoseconds per update;
//! - **histogram-bucketed span timers** ([`span`]) for p50/p99 latency;
//! - **run manifests** with FNV-1a config hashes ([`RunManifest`]) and an
//!   end-of-run [`RunReport`] summary.
//!
//! Design rules (see DESIGN.md §14):
//!
//! 1. *Disabled is free.* No sink installed ⇒ every emit site is a single
//!    relaxed atomic load; counters still count (they are how the
//!    determinism tests compare runs) but cost only an atomic add.
//! 2. *Counters are deterministic.* They total iterations, steps, and
//!    events — never wall-clock — so identical seeded runs produce
//!    identical totals at any thread count. Latency lives in histograms,
//!    which are excluded from that guarantee.
//! 3. *No NaN escapes.* Gauges drop non-finite stores; event floats
//!    serialise non-finite values as `null`.
//! 4. *Every line parses back.* The emitter and parser in [`json`] are a
//!    matched pair; round-tripping is property-tested.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod event;
pub mod json;
pub mod metrics;
pub mod report;
pub mod sink;
pub mod span;

pub use event::{event, Event};
pub use metrics::{
    add, counter, counters_snapshot, gauge, gauges_snapshot, incr, record_ns, reset_metrics,
    set_gauge, summarize, Counter, Gauge, Hist, HistSummary,
};
pub use report::{fnv1a, RunManifest, RunReport};
pub use sink::{
    elapsed_ms, enabled, flush, install_file, install_memory, install_writer, shutdown, MemorySink,
};
pub use span::{span, span_depth, Span};
