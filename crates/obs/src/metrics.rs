//! Process-global metric registry: monotonic counters, finite-only
//! gauges, and log2-bucketed latency histograms.
//!
//! Everything here is lock-free (`AtomicU64` with relaxed ordering) so
//! the hot solver and DTM paths can record unconditionally: an increment
//! costs a handful of nanoseconds whether or not a sink is installed.
//! Counters are monotonic by construction — the only mutating operations
//! are `add` and the test-only [`reset_metrics`].

use std::sync::atomic::{AtomicU64, Ordering};

macro_rules! metric_enum {
    ($(#[$doc:meta])* $name:ident { $($(#[$vdoc:meta])* $variant:ident => $label:literal,)+ }) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        #[repr(usize)]
        pub enum $name {
            $($(#[$vdoc])* $variant,)+
        }

        impl $name {
            /// Every variant, in declaration order.
            pub const ALL: &'static [$name] = &[$($name::$variant,)+];

            /// Stable snake_case label used in JSONL output.
            pub fn label(self) -> &'static str {
                match self {
                    $($name::$variant => $label,)+
                }
            }
        }
    };
}

metric_enum!(
    /// Monotonic counters. Totals of *deterministic* quantities
    /// (iterations, steps, events) — never wall-clock — so two runs with
    /// the same seed must produce identical totals regardless of thread
    /// count or sink state.
    Counter {
        /// CG solves attempted (including ladder retries).
        SolveCalls => "solve_calls",
        /// Total CG iterations across all solves.
        CgIterations => "cg_iterations",
        /// Resilience-ladder escalations (preconditioner downgrades /
        /// tolerance relaxations attempted after a failed solve).
        SolveFallbacks => "solve_fallbacks",
        /// Solves that recovered on a fallback rung.
        SolveRecoveries => "solve_recoveries",
        /// DTM control steps executed.
        DtmSteps => "dtm_steps",
        /// DVFS throttle decisions.
        ThrottleEvents => "throttle_events",
        /// DVFS boost decisions.
        BoostEvents => "boost_events",
        /// Failsafe entries (sensor quorum lost).
        FailsafeEvents => "failsafe_events",
        /// Sensor readings sampled.
        SensorSamples => "sensor_samples",
        /// Sensor readings rejected by the plausibility window.
        SensorRejected => "sensor_rejected",
        /// DTM checkpoints written.
        CheckpointsWritten => "checkpoints_written",
        /// Adaptive transient steps accepted (including forced accepts).
        AdaptiveAccepts => "adaptive_accepts",
        /// Adaptive transient steps rejected and rolled back.
        AdaptiveRejects => "adaptive_rejects",
        /// Adaptive hold steps (state carried unchanged across an
        /// unsolvable interval).
        AdaptiveHolds => "adaptive_holds",
        /// Adaptive run-budget exhaustions (CG iterations, wall clock,
        /// or rejection streak).
        BudgetExhaustions => "budget_exhaustions",
        /// JSONL events written to the sink (zero when disabled).
        EventsEmitted => "events_emitted",
        /// Sweep tasks that completed successfully.
        SweepTasksOk => "sweep_tasks_ok",
        /// Sweep task attempts that failed and were retried.
        SweepTasksRetried => "sweep_tasks_retried",
        /// Sweep tasks quarantined after exhausting all attempts.
        SweepTasksQuarantined => "sweep_tasks_quarantined",
        /// `.stk` scenarios parsed successfully.
        ScenarioParsed => "scenario_parsed",
        /// `.stk` scenarios lowered to a solvable stack.
        ScenarioLowered => "scenario_lowered",
        /// `.stk` sources rejected by the lexer, parser, or validator.
        ScenarioRejected => "scenario_rejected",
        /// Transient-operator cache lookups that reused a cached factor.
        TransientCacheHits => "transient_cache_hits",
        /// Transient-operator cache lookups that built a new factor.
        TransientCacheMisses => "transient_cache_misses",
        /// Transient-operator cache slots evicted (LRU).
        TransientCacheEvictions => "transient_cache_evictions",
        /// Serve submissions received (before admission).
        ServeSubmitted => "serve_submitted",
        /// Serve submissions admitted into the run queue.
        ServeAdmitted => "serve_admitted",
        /// Serve submissions rejected by admission control or a full
        /// queue (the reject carries an explicit retry-after hint).
        ServeRejected => "serve_rejected",
        /// Serve sessions that ran to completion.
        ServeSessionsCompleted => "serve_sessions_completed",
        /// Serve sessions quarantined after exhausting the degradation
        /// ladder.
        ServeSessionsQuarantined => "serve_sessions_quarantined",
        /// Serve sessions resumed from a durable checkpoint after a
        /// process kill.
        ServeSessionsResumed => "serve_sessions_resumed",
        /// Session panics caught at the slice boundary (state restored
        /// from the pre-dispatch snapshot).
        ServePanicsCaught => "serve_panics_caught",
        /// Deadline misses that triggered a degradation rung (economy
        /// stepping or checkpoint-and-suspend).
        ServeDeadlineDegradations => "serve_deadline_degradations",
        /// Sessions parked by checkpoint-and-suspend.
        ServeSuspends => "serve_suspends",
        /// Temperature frames emitted to clients.
        ServeFramesEmitted => "serve_frames_emitted",
        /// Frames suppressed during resume because they were already
        /// durable in the frame journal (duplicate-frame guard).
        ServeFramesSuppressed => "serve_frames_suppressed",
        /// Slow-client overflows: a session's outbound buffer filled and
        /// streaming was shed for that client (frames stay durable).
        ServeSlowClientSheds => "serve_slow_client_sheds",
        /// Slice outcomes lost to a dead worker pool (the tick barrier
        /// degraded to applying only what arrived).
        ServeOutcomesLost => "serve_outcomes_lost",
        /// Shared-model materializations that failed at dispatch (the
        /// session quarantines; the server keeps serving).
        ServeMaterializationFailures => "serve_materialization_failures",
    }
);

metric_enum!(
    /// Last-value gauges. Setters silently drop non-finite values, so a
    /// gauge can never hold (or emit) NaN/inf — fault-injection runs keep
    /// this invariant under proptest.
    Gauge {
        /// Relative residual of the most recent CG solve.
        LastResidual => "last_residual",
        /// Current DTM operating frequency (GHz).
        DtmFreqGhz => "dtm_freq_ghz",
        /// Most recent processor hotspot estimate (°C).
        DtmMaxTempC => "dtm_max_temp_c",
        /// Most recent fused sensor temperature (°C).
        SensorFusedC => "sensor_fused_c",
        /// Current adaptive time step (s).
        AdaptiveDtS => "adaptive_dt_s",
        /// WRMS local-truncation-error estimate of the latest adaptive
        /// step (1.0 = at tolerance).
        AdaptiveLte => "adaptive_lte",
    }
);

metric_enum!(
    /// Latency histograms (log2 buckets over nanoseconds).
    Hist {
        /// One DTM control step (solve + sense + decide).
        DtmStepMs => "dtm_step_ms",
        /// One linear solve (CG, any preconditioner).
        SolveMs => "solve_ms",
        /// One sensor sample+fuse pass.
        SensorFuseMs => "sensor_fuse_ms",
        /// One design-space sweep task (all attempts, success or
        /// quarantine).
        SweepTaskMs => "sweep_task_ms",
        /// Submit-to-first-frame latency of a serve session.
        ServeFirstFrameMs => "serve_first_frame_ms",
        /// Submit-to-completion latency of a serve session.
        ServeSessionMs => "serve_session_ms",
        /// One scheduler slice (dispatch to outcome) of a serve session.
        ServeSliceMs => "serve_slice_ms",
    }
);

const N_COUNTERS: usize = Counter::ALL.len();
const N_GAUGES: usize = Gauge::ALL.len();
const N_HISTS: usize = Hist::ALL.len();
/// log2 buckets: bucket `i` holds samples with `ns` in `[2^(i-1), 2^i)`.
const N_BUCKETS: usize = 64;

#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);
/// Sentinel meaning "gauge never set". `u64::MAX` is a NaN bit pattern,
/// so it can never collide with a stored finite value.
const GAUGE_UNSET: u64 = u64::MAX;
#[allow(clippy::declare_interior_mutable_const)]
const UNSET: AtomicU64 = AtomicU64::new(GAUGE_UNSET);

static COUNTERS: [AtomicU64; N_COUNTERS] = [ZERO; N_COUNTERS];
static GAUGES: [AtomicU64; N_GAUGES] = [UNSET; N_GAUGES];

struct HistCell {
    buckets: [AtomicU64; N_BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

#[allow(clippy::declare_interior_mutable_const)]
const EMPTY_HIST: HistCell = HistCell {
    buckets: [ZERO; N_BUCKETS],
    count: ZERO,
    sum_ns: ZERO,
    max_ns: ZERO,
};

static HISTS: [HistCell; N_HISTS] = [EMPTY_HIST; N_HISTS];

/// Adds `by` to a counter. Monotonic: there is no decrement operation.
#[inline]
pub fn add(counter: Counter, by: u64) {
    COUNTERS[counter as usize].fetch_add(by, Ordering::Relaxed);
}

/// Adds 1 to a counter.
#[inline]
pub fn incr(counter: Counter) {
    add(counter, 1);
}

/// Current value of a counter.
#[inline]
pub fn counter(counter: Counter) -> u64 {
    COUNTERS[counter as usize].load(Ordering::Relaxed)
}

/// Sets a gauge. Non-finite values are dropped (the previous value, if
/// any, is retained) so gauges can never report NaN or infinity.
#[inline]
pub fn set_gauge(gauge: Gauge, value: f64) {
    if value.is_finite() {
        GAUGES[gauge as usize].store(value.to_bits(), Ordering::Relaxed);
    }
}

/// Current gauge value, or `None` if the gauge was never set.
#[inline]
pub fn gauge(gauge: Gauge) -> Option<f64> {
    let bits = GAUGES[gauge as usize].load(Ordering::Relaxed);
    if bits == GAUGE_UNSET {
        None
    } else {
        Some(f64::from_bits(bits))
    }
}

#[inline]
fn bucket_of(ns: u64) -> usize {
    (64 - ns.leading_zeros() as usize).min(N_BUCKETS - 1)
}

/// Records one latency sample, in nanoseconds.
#[inline]
pub fn record_ns(hist: Hist, ns: u64) {
    let cell = &HISTS[hist as usize];
    cell.buckets[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
    cell.count.fetch_add(1, Ordering::Relaxed);
    cell.sum_ns.fetch_add(ns, Ordering::Relaxed);
    cell.max_ns.fetch_max(ns, Ordering::Relaxed);
}

/// Summary of one histogram at a point in time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistSummary {
    /// Number of recorded samples.
    pub count: u64,
    /// Mean latency in milliseconds.
    pub mean_ms: f64,
    /// Approximate p50 (upper bound of the median's log2 bucket), ms.
    pub p50_ms: f64,
    /// Approximate p99, ms.
    pub p99_ms: f64,
    /// Exact maximum, ms.
    pub max_ms: f64,
}

const NS_PER_MS: f64 = 1.0e6;

/// Summarises a histogram. Quantiles are upper bounds of the log2 bucket
/// containing the requested rank (at most 2x the true value).
pub fn summarize(hist: Hist) -> HistSummary {
    let cell = &HISTS[hist as usize];
    let count = cell.count.load(Ordering::Relaxed);
    if count == 0 {
        return HistSummary {
            count: 0,
            mean_ms: 0.0,
            p50_ms: 0.0,
            p99_ms: 0.0,
            max_ms: 0.0,
        };
    }
    let sum = cell.sum_ns.load(Ordering::Relaxed);
    let max_ns = cell.max_ns.load(Ordering::Relaxed);
    let quantile = |q: f64| -> f64 {
        let rank = ((count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, b) in cell.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                // Upper bound of bucket i is 2^i ns, capped at the
                // observed maximum.
                let upper = if i >= 63 { u64::MAX } else { 1u64 << i };
                return upper.min(max_ns) as f64 / NS_PER_MS;
            }
        }
        max_ns as f64 / NS_PER_MS
    };
    HistSummary {
        count,
        mean_ms: sum as f64 / count as f64 / NS_PER_MS,
        p50_ms: quantile(0.50),
        p99_ms: quantile(0.99),
        max_ms: max_ns as f64 / NS_PER_MS,
    }
}

/// Snapshot of every nonzero counter, in declaration order.
pub fn counters_snapshot() -> Vec<(&'static str, u64)> {
    Counter::ALL
        .iter()
        .map(|&c| (c.label(), counter(c)))
        .filter(|&(_, v)| v > 0)
        .collect()
}

/// Snapshot of every set gauge, in declaration order.
pub fn gauges_snapshot() -> Vec<(&'static str, f64)> {
    Gauge::ALL
        .iter()
        .filter_map(|&g| gauge(g).map(|v| (g.label(), v)))
        .collect()
}

/// Zeroes all counters, gauges, and histograms. Test/bench support only:
/// metrics are process-global, so concurrent recorders will race a reset.
pub fn reset_metrics() {
    for c in &COUNTERS {
        c.store(0, Ordering::Relaxed);
    }
    for g in &GAUGES {
        g.store(GAUGE_UNSET, Ordering::Relaxed);
    }
    for h in &HISTS {
        for b in &h.buckets {
            b.store(0, Ordering::Relaxed);
        }
        h.count.store(0, Ordering::Relaxed);
        h.sum_ns.store(0, Ordering::Relaxed);
        h.max_ns.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let before = counter(Counter::CheckpointsWritten);
        add(Counter::CheckpointsWritten, 3);
        incr(Counter::CheckpointsWritten);
        assert_eq!(counter(Counter::CheckpointsWritten), before + 4);
    }

    #[test]
    fn gauges_reject_non_finite() {
        set_gauge(Gauge::LastResidual, 0.5);
        set_gauge(Gauge::LastResidual, f64::NAN);
        set_gauge(Gauge::LastResidual, f64::INFINITY);
        assert_eq!(gauge(Gauge::LastResidual), Some(0.5));
    }

    #[test]
    fn histogram_quantiles_bound_samples() {
        for ns in [10_000u64, 20_000, 40_000, 80_000, 1_000_000] {
            record_ns(Hist::SensorFuseMs, ns);
        }
        let s = summarize(Hist::SensorFuseMs);
        assert_eq!(s.count, 5);
        assert!(s.p50_ms >= 0.02 && s.p50_ms <= 0.08, "{s:?}");
        assert!((s.max_ms - 1.0).abs() < 1e-9, "{s:?}");
        assert!(s.p99_ms <= s.max_ms + 1e-12);
    }
}
