//! RAII span timers: measure a scope, record its latency into a
//! histogram on drop, and (when the sink is enabled) emit a `span` event
//! carrying the nesting depth.

use std::cell::Cell;
use std::time::Instant;

use crate::event::event;
use crate::metrics::{record_ns, Hist};
use crate::sink;

thread_local! {
    static DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// Current span nesting depth on this thread (0 outside any span).
pub fn span_depth() -> usize {
    DEPTH.with(Cell::get)
}

/// A running span. Created by [`span`]; records on drop.
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    hist: Option<Hist>,
    start: Instant,
    /// Depth of this span (parent count); captured at entry so the
    /// exit-time invariant `depth_at_exit == depth_at_entry` is checkable.
    depth: usize,
}

/// Opens a span named `name`. If `hist` is given, the elapsed time is
/// recorded there on drop. Spans nest: each thread tracks a depth that
/// increments on entry and decrements on (strictly LIFO) exit.
pub fn span(name: &'static str, hist: Option<Hist>) -> Span {
    let depth = DEPTH.with(|d| {
        let depth = d.get();
        d.set(depth + 1);
        depth
    });
    Span {
        name,
        hist,
        start: Instant::now(),
        depth,
    }
}

impl Span {
    /// Elapsed time since the span opened, in nanoseconds.
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// The depth this span was opened at.
    pub fn depth(&self) -> usize {
        self.depth
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let ns = self.elapsed_ns();
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        if let Some(h) = self.hist {
            record_ns(h, ns);
        }
        if sink::enabled() {
            event("span")
                .str("name", self.name)
                .u64("depth", self.depth as u64)
                .f64("ms", ns as f64 / 1.0e6)
                .emit();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_tracks_lifo_nesting() {
        assert_eq!(span_depth(), 0);
        let outer = span("outer", None);
        assert_eq!(outer.depth(), 0);
        assert_eq!(span_depth(), 1);
        {
            let inner = span("inner", None);
            assert_eq!(inner.depth(), 1);
            assert_eq!(span_depth(), 2);
        }
        assert_eq!(span_depth(), 1);
        drop(outer);
        assert_eq!(span_depth(), 0);
    }
}
