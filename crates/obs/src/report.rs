//! Run-scoped provenance and end-of-run summaries.
//!
//! A [`RunManifest`] is the first line of every metrics file: tool name,
//! target, and an FNV-1a hash of the configuration key/value pairs, so a
//! CSV in `target/xylem-results/` can be traced back to the exact knobs
//! that produced it. A [`RunReport`] condenses the global metric registry
//! into the handful of numbers a human wants at end of run (p50/p99 step
//! latency, total CG iterations, recovery counts).

use std::fmt;

use crate::event::event;
use crate::json::Value;
use crate::metrics::{
    counter, counters_snapshot, gauges_snapshot, summarize, Counter, Hist, HistSummary,
};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte string. Stable across platforms and runs; used for
/// config hashes in manifests (matching the checkpoint hash discipline).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Provenance for one run: what produced this file, with which config.
#[derive(Debug, Clone)]
pub struct RunManifest {
    /// Producing tool (`xylem`, `bench`, an example name...).
    pub tool: String,
    /// Specific target within the tool (subcommand, figure name...).
    pub target: String,
    /// Ordered configuration key/value pairs.
    pub config: Vec<(String, String)>,
}

impl RunManifest {
    /// Starts a manifest for `tool` running `target`.
    pub fn new(tool: &str, target: &str) -> Self {
        RunManifest {
            tool: tool.to_owned(),
            target: target.to_owned(),
            config: Vec::new(),
        }
    }

    /// Adds one configuration key/value pair.
    #[must_use]
    pub fn with(mut self, key: &str, value: impl fmt::Display) -> Self {
        self.config.push((key.to_owned(), value.to_string()));
        self
    }

    /// FNV-1a hash over tool, target, and the ordered config pairs.
    pub fn config_hash(&self) -> u64 {
        let mut text = format!("{}\x1f{}", self.tool, self.target);
        for (k, v) in &self.config {
            text.push('\x1f');
            text.push_str(k);
            text.push('=');
            text.push_str(v);
        }
        fnv1a(text.as_bytes())
    }

    /// The manifest as a JSON object (the schema of the `manifest` event).
    pub fn to_value(&self) -> Value {
        Value::Object(vec![
            ("ev".to_owned(), Value::Str("manifest".to_owned())),
            ("tool".to_owned(), Value::Str(self.tool.clone())),
            ("target".to_owned(), Value::Str(self.target.clone())),
            (
                "config_hash".to_owned(),
                Value::Str(format!("{:016x}", self.config_hash())),
            ),
            (
                "config".to_owned(),
                Value::Object(
                    self.config
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::Str(v.clone())))
                        .collect(),
                ),
            ),
        ])
    }

    /// Emits the manifest to the sink (typically as the first line of a
    /// metrics file).
    pub fn emit(&self) {
        let mut ev = event("manifest")
            .str("tool", &self.tool)
            .str("target", &self.target)
            .str("config_hash", &format!("{:016x}", self.config_hash()));
        let config = Value::Object(
            self.config
                .iter()
                .map(|(k, v)| (k.clone(), Value::Str(v.clone())))
                .collect(),
        );
        ev = ev.value("config", config);
        ev.emit();
    }
}

/// End-of-run summary distilled from the global metric registry.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// DTM control steps executed.
    pub dtm_steps: u64,
    /// DTM step latency summary.
    pub step_latency: HistSummary,
    /// Linear-solve latency summary.
    pub solve_latency: HistSummary,
    /// Total CG iterations.
    pub cg_iterations: u64,
    /// CG solves attempted.
    pub solve_calls: u64,
    /// Resilience-ladder escalations attempted.
    pub solve_fallbacks: u64,
    /// Solves rescued by a fallback rung.
    pub solve_recoveries: u64,
    /// DVFS throttle decisions.
    pub throttle_events: u64,
    /// DVFS boost decisions.
    pub boost_events: u64,
    /// Failsafe entries.
    pub failsafe_events: u64,
    /// Sweep tasks completed successfully.
    pub sweep_tasks_ok: u64,
    /// Sweep task attempts retried.
    pub sweep_tasks_retried: u64,
    /// Sweep tasks quarantined.
    pub sweep_tasks_quarantined: u64,
    /// Per-sweep-task latency summary (all attempts of one task).
    pub sweep_task_latency: HistSummary,
    /// All nonzero counters (label, value).
    pub counters: Vec<(&'static str, u64)>,
    /// All set gauges (label, value).
    pub gauges: Vec<(&'static str, f64)>,
}

impl RunReport {
    /// Captures the current state of the global metric registry.
    pub fn capture() -> Self {
        RunReport {
            dtm_steps: counter(Counter::DtmSteps),
            step_latency: summarize(Hist::DtmStepMs),
            solve_latency: summarize(Hist::SolveMs),
            cg_iterations: counter(Counter::CgIterations),
            solve_calls: counter(Counter::SolveCalls),
            solve_fallbacks: counter(Counter::SolveFallbacks),
            solve_recoveries: counter(Counter::SolveRecoveries),
            throttle_events: counter(Counter::ThrottleEvents),
            boost_events: counter(Counter::BoostEvents),
            failsafe_events: counter(Counter::FailsafeEvents),
            sweep_tasks_ok: counter(Counter::SweepTasksOk),
            sweep_tasks_retried: counter(Counter::SweepTasksRetried),
            sweep_tasks_quarantined: counter(Counter::SweepTasksQuarantined),
            sweep_task_latency: summarize(Hist::SweepTaskMs),
            counters: counters_snapshot(),
            gauges: gauges_snapshot(),
        }
    }

    /// Emits the report as a `run_report` event (typically the last line
    /// of a metrics file).
    pub fn emit(&self) {
        let mut ev = event("run_report")
            .u64("dtm_steps", self.dtm_steps)
            .f64("step_p50_ms", self.step_latency.p50_ms)
            .f64("step_p99_ms", self.step_latency.p99_ms)
            .u64("cg_iterations", self.cg_iterations)
            .u64("solve_calls", self.solve_calls)
            .u64("solve_fallbacks", self.solve_fallbacks)
            .u64("solve_recoveries", self.solve_recoveries);
        if self.sweep_tasks_ok + self.sweep_tasks_quarantined > 0 {
            ev = ev
                .u64("sweep_tasks_ok", self.sweep_tasks_ok)
                .u64("sweep_tasks_retried", self.sweep_tasks_retried)
                .u64("sweep_tasks_quarantined", self.sweep_tasks_quarantined)
                .f64("sweep_task_p50_ms", self.sweep_task_latency.p50_ms)
                .f64("sweep_task_p99_ms", self.sweep_task_latency.p99_ms);
        }
        let counters = Value::Object(
            self.counters
                .iter()
                .map(|&(k, v)| (k.to_owned(), Value::U64(v)))
                .collect(),
        );
        ev = ev.value("counters", counters);
        ev.emit();
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "run report")?;
        if self.dtm_steps > 0 {
            writeln!(
                f,
                "  dtm steps        {:>10}   latency p50 {:.3} ms  p99 {:.3} ms  max {:.3} ms",
                self.dtm_steps,
                self.step_latency.p50_ms,
                self.step_latency.p99_ms,
                self.step_latency.max_ms
            )?;
        }
        writeln!(
            f,
            "  cg iterations    {:>10}   over {} solves (p50 {:.3} ms, p99 {:.3} ms)",
            self.cg_iterations,
            self.solve_calls,
            self.solve_latency.p50_ms,
            self.solve_latency.p99_ms
        )?;
        writeln!(
            f,
            "  recoveries       {:>10}   ({} fallback attempts)",
            self.solve_recoveries, self.solve_fallbacks
        )?;
        if self.sweep_tasks_ok + self.sweep_tasks_quarantined > 0 {
            writeln!(
                f,
                "  sweep tasks      {:>10}   ok, {} retried, {} quarantined \
                 (p50 {:.3} ms, p99 {:.3} ms)",
                self.sweep_tasks_ok,
                self.sweep_tasks_retried,
                self.sweep_tasks_quarantined,
                self.sweep_task_latency.p50_ms,
                self.sweep_task_latency.p99_ms
            )?;
        }
        if self.throttle_events + self.boost_events + self.failsafe_events > 0 {
            writeln!(
                f,
                "  dvfs             {:>10} throttles, {} boosts, {} failsafe entries",
                self.throttle_events, self.boost_events, self.failsafe_events
            )?;
        }
        for (label, value) in &self.gauges {
            if value.abs() < 1.0e-3 && value.abs() > 0.0 {
                writeln!(f, "  gauge {label:<22} {value:.3e}")?;
            } else {
                writeln!(f, "  gauge {label:<22} {value:.4}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn manifest_hash_is_order_sensitive_and_stable() {
        let a = RunManifest::new("xylem", "dtm")
            .with("grid", 32)
            .with("seed", 7);
        let b = RunManifest::new("xylem", "dtm")
            .with("grid", 32)
            .with("seed", 7);
        let c = RunManifest::new("xylem", "dtm")
            .with("seed", 7)
            .with("grid", 32);
        assert_eq!(a.config_hash(), b.config_hash());
        assert_ne!(a.config_hash(), c.config_hash());
    }
}
