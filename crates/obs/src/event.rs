//! Structured events: a small builder over [`crate::json::Value`] that
//! serialises to one JSONL line.

use crate::json::Value;
use crate::sink;

/// A structured event under construction. Build with [`crate::event`],
/// add typed fields, then [`Event::emit`].
///
/// Field setters on a disabled sink still record into the builder (the
/// cost has already been paid by constructing it); callers on hot paths
/// should gate on [`crate::enabled`] before constructing.
#[derive(Debug, Clone)]
#[must_use = "an Event does nothing until .emit() is called"]
pub struct Event {
    fields: Vec<(String, Value)>,
}

impl Event {
    /// Starts an event named `name` (the `ev` field), stamped with the
    /// process-relative timestamp `t_ms`.
    pub fn new(name: &str) -> Self {
        Event {
            fields: vec![
                ("ev".to_owned(), Value::Str(name.to_owned())),
                ("t_ms".to_owned(), Value::F64(sink::elapsed_ms())),
            ],
        }
    }

    /// Adds an unsigned integer field.
    pub fn u64(mut self, key: &str, v: u64) -> Self {
        self.fields.push((key.to_owned(), Value::U64(v)));
        self
    }

    /// Adds a signed integer field.
    pub fn i64(mut self, key: &str, v: i64) -> Self {
        self.fields.push((key.to_owned(), Value::I64(v)));
        self
    }

    /// Adds a float field. Non-finite values are stored as JSON `null`.
    pub fn f64(mut self, key: &str, v: f64) -> Self {
        let value = if v.is_finite() {
            Value::F64(v)
        } else {
            Value::Null
        };
        self.fields.push((key.to_owned(), value));
        self
    }

    /// Adds a string field.
    pub fn str(mut self, key: &str, v: &str) -> Self {
        self.fields.push((key.to_owned(), Value::Str(v.to_owned())));
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, key: &str, v: bool) -> Self {
        self.fields.push((key.to_owned(), Value::Bool(v)));
        self
    }

    /// Adds an array of floats (e.g. a residual curve). Non-finite
    /// entries are stored as `null`.
    pub fn f64_array(mut self, key: &str, vs: &[f64]) -> Self {
        let items = vs
            .iter()
            .map(|&v| {
                if v.is_finite() {
                    Value::F64(v)
                } else {
                    Value::Null
                }
            })
            .collect();
        self.fields.push((key.to_owned(), Value::Array(items)));
        self
    }

    /// Adds a pre-built JSON value field.
    pub fn value(mut self, key: &str, v: Value) -> Self {
        self.fields.push((key.to_owned(), v));
        self
    }

    /// The event as a JSON object value.
    pub fn to_value(&self) -> Value {
        Value::Object(self.fields.clone())
    }

    /// Serialises the event and writes it to the installed sink (no-op
    /// when the sink is disabled).
    pub fn emit(self) {
        if !sink::enabled() {
            return;
        }
        sink::write_line(&Value::Object(self.fields).to_string());
    }
}

/// Starts building an event named `name`.
pub fn event(name: &str) -> Event {
    Event::new(name)
}
