//! The process-global JSONL event sink.
//!
//! Disabled (the default) the fast path is a single relaxed atomic load:
//! every `emit` site checks [`enabled`] before building an event, so
//! instrumentation compiles to near-no-ops until a sink is installed.
//! Enabled, events are serialised to one JSON object per line behind a
//! mutex (event rates are low — one per solve / control step — so the
//! lock is uncontended in practice).

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

use crate::metrics::{incr, Counter};

static ENABLED: AtomicBool = AtomicBool::new(false);
static SINK: Mutex<Option<Box<dyn Write + Send>>> = Mutex::new(None);
static EPOCH: OnceLock<Instant> = OnceLock::new();

fn lock_sink() -> MutexGuard<'static, Option<Box<dyn Write + Send>>> {
    // A panic while holding the sink lock only interrupts log output;
    // recover the guard rather than poisoning observability forever.
    match SINK.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// True when a sink is installed. Emit sites check this before building
/// event payloads so the disabled cost is one relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Milliseconds since the first observability call in this process.
/// Monotonic; used as the `t_ms` field on every event.
pub fn elapsed_ms() -> f64 {
    let epoch = EPOCH.get_or_init(Instant::now);
    epoch.elapsed().as_secs_f64() * 1.0e3
}

/// Installs an arbitrary writer as the sink, replacing any previous one
/// (the old writer is flushed and dropped).
pub fn install_writer(writer: Box<dyn Write + Send>) {
    EPOCH.get_or_init(Instant::now);
    let mut guard = lock_sink();
    if let Some(mut old) = guard.take() {
        let _ = old.flush();
    }
    *guard = Some(writer);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Opens (truncating) `path` and installs it as a buffered JSONL sink.
pub fn install_file(path: &Path) -> io::Result<()> {
    let file = File::create(path)?;
    install_writer(Box::new(BufWriter::new(file)));
    Ok(())
}

/// Shared in-memory buffer sink, for tests.
#[derive(Debug, Clone, Default)]
pub struct MemorySink(Arc<Mutex<Vec<u8>>>);

impl MemorySink {
    /// Contents written so far, as UTF-8.
    pub fn contents(&self) -> String {
        let buf = match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        String::from_utf8_lossy(&buf).into_owned()
    }

    /// Non-empty JSONL lines written so far.
    pub fn lines(&self) -> Vec<String> {
        self.contents()
            .lines()
            .filter(|l| !l.is_empty())
            .map(str::to_owned)
            .collect()
    }
}

impl Write for MemorySink {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let mut guard = match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Installs an in-memory sink and returns a handle for reading it back.
pub fn install_memory() -> MemorySink {
    let sink = MemorySink::default();
    install_writer(Box::new(sink.clone()));
    sink
}

/// Flushes and removes the sink; [`enabled`] returns false afterwards.
pub fn shutdown() {
    ENABLED.store(false, Ordering::Relaxed);
    let mut guard = lock_sink();
    if let Some(mut old) = guard.take() {
        let _ = old.flush();
    }
}

/// Flushes the sink without removing it.
pub fn flush() {
    let mut guard = lock_sink();
    if let Some(w) = guard.as_mut() {
        let _ = w.flush();
    }
}

/// Writes one already-serialised JSONL line. Internal: use
/// [`crate::Event::emit`] instead.
pub(crate) fn write_line(line: &str) {
    if !enabled() {
        return;
    }
    let mut guard = lock_sink();
    if let Some(w) = guard.as_mut() {
        if writeln!(w, "{line}").is_ok() {
            incr(Counter::EventsEmitted);
        }
    }
}
