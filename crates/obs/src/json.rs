//! Minimal JSON value model, emitter, and parser.
//!
//! `xylem-obs` is a leaf crate with no dependencies, so it carries its own
//! JSON support: just enough to write one event per line (JSONL) and to
//! parse those lines back in tests and tooling. Integers are kept exact
//! (`u64`/`i64` variants) so counter totals survive a round trip even
//! beyond 2^53; non-finite floats are emitted as `null` because JSON has
//! no spelling for them.

use std::fmt;

/// A JSON value. Numbers keep their integer-ness so counters round-trip
/// exactly.
#[derive(Debug, Clone)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Non-negative integer literal.
    U64(u64),
    /// Negative integer literal.
    I64(i64),
    /// Any number with a fraction or exponent.
    F64(f64),
    /// String (emitted with full escaping).
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::U64(a), Value::U64(b)) => a == b,
            (Value::I64(a), Value::I64(b)) => a == b,
            // JSON has one integer type: a non-negative I64 serializes
            // as plain digits and parses back as U64, so numerically
            // equal integers compare equal across the two variants.
            (Value::I64(a), Value::U64(b)) | (Value::U64(b), Value::I64(a)) => {
                u64::try_from(*a) == Ok(*b)
            }
            // Bitwise: we never emit NaN (mapped to null), and bit
            // equality is exactly the round-trip property we test.
            (Value::F64(a), Value::F64(b)) => a.to_bits() == b.to_bits(),
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Array(a), Value::Array(b)) => a == b,
            (Value::Object(a), Value::Object(b)) => a == b,
            _ => false,
        }
    }
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Returns the value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(n) => Some(*n),
            Value::I64(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// Returns the value as `f64` if it is any kind of number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::U64(n) => Some(*n as f64),
            Value::I64(n) => Some(*n as f64),
            Value::F64(x) => Some(*x),
            _ => None,
        }
    }

    /// Returns the value as `&str` if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::U64(n) => write!(f, "{n}"),
            Value::I64(n) => write!(f, "{n}"),
            Value::F64(x) if !x.is_finite() => f.write_str("null"),
            // Rust's shortest round-trip Display, with a fraction forced
            // so the parser re-reads it as F64.
            Value::F64(x) => {
                let s = format!("{x}");
                if s.contains('.') || s.contains('e') || s.contains('E') {
                    f.write_str(&s)
                } else {
                    write!(f, "{s}.0")
                }
            }
            Value::Str(s) => write_escaped(f, s),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Object(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Error from [`parse`]: byte offset plus a short description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: &'static str) -> Result<T, ParseError> {
        Err(ParseError { at: self.pos, msg })
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err("unexpected byte")
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            self.err("invalid literal")
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return self.err("unterminated string");
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return self.err("unterminated escape");
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return self.err("short \\u escape");
                            }
                            let hex = &self.bytes[self.pos..self.pos + 4];
                            let hex = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            let Some(code) = hex else {
                                return self.err("bad \\u escape");
                            };
                            self.pos += 4;
                            // Surrogate pairs are not needed for our own
                            // output (we escape only control chars), but
                            // accept lone BMP code points.
                            match char::from_u32(code) {
                                Some(c) => out.push(c),
                                None => return self.err("invalid code point"),
                            }
                        }
                        _ => return self.err("unknown escape"),
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: re-decode from the byte before pos.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    if start + len > self.bytes.len() {
                        return self.err("truncated utf-8");
                    }
                    match std::str::from_utf8(&self.bytes[start..start + len]) {
                        Ok(s) => {
                            out.push_str(s);
                            self.pos = start + len;
                        }
                        Err(_) => return self.err("invalid utf-8"),
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| ParseError {
            at: start,
            msg: "non-utf8 number",
        })?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        match text.parse::<f64>() {
            Ok(x) => Ok(Value::F64(x)),
            Err(_) => Err(ParseError {
                at: start,
                msg: "bad number",
            }),
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return self.err("expected , or ]"),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let v = self.value()?;
                    fields.push((key, v));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => return self.err("expected , or }"),
                    }
                }
            }
            _ => self.err("expected value"),
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Parses one JSON document from `s` (trailing whitespace allowed).
pub fn parse(s: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing garbage");
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_basic_values() {
        let v = Value::Object(vec![
            ("ev".into(), Value::Str("solve".into())),
            ("iters".into(), Value::U64(u64::MAX)),
            ("res".into(), Value::F64(1.25e-9)),
            ("neg".into(), Value::I64(-3)),
            ("ok".into(), Value::Bool(true)),
            ("none".into(), Value::Null),
            (
                "curve".into(),
                Value::Array(vec![Value::F64(0.5), Value::U64(2)]),
            ),
        ]);
        let text = v.to_string();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn escapes_and_reparses_strings() {
        let v = Value::Str("a\"b\\c\nd\tµ".into());
        assert_eq!(parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Value::F64(f64::NAN).to_string(), "null");
        assert_eq!(Value::F64(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn accessors_read_event_fields() {
        let v = parse(r#"{"ev":"dtm_step","t_c":83.451,"iters":15}"#).unwrap();
        assert_eq!(v.get("ev").and_then(Value::as_str), Some("dtm_step"));
        assert_eq!(v.get("iters").and_then(Value::as_u64), Some(15));
        let t = v.get("t_c").and_then(Value::as_f64).unwrap();
        assert!((t - 83.451).abs() < 1e-12);
    }
}
