//! Benchmark profiles and synthetic trace generation.
//!
//! The paper evaluates 17 parallel applications from SPLASH-2, PARSEC and
//! the NAS Parallel Benchmarks (Sec. 6.3). The original binaries and
//! inputs are not reproducible here, so this crate encodes each
//! application as a [`WorkloadProfile`] — instruction mix, cache behaviour
//! and memory-boundedness calibrated to the qualitative structure of the
//! paper's figures (compute-intensive codes like LU-NAS and Cholesky are
//! the hottest and most frequency-sensitive; memory-intensive codes like
//! FT and IS are the coolest and least frequency-sensitive).
//!
//! [`trace`] generates synthetic instruction/address streams matching a
//! profile, which `xylem-archsim` runs through its cache hierarchy to
//! *measure* miss rates — keeping the fast profile-based path and the
//! simulated path mutually consistent.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod benchmark;
pub mod phases;
pub mod profile;
pub mod trace;

pub use benchmark::Benchmark;
pub use phases::{Phase, PhasedWorkload};
pub use profile::WorkloadProfile;
pub use trace::{TraceEvent, TraceGenerator};
