//! Synthetic instruction/address trace generation.
//!
//! [`TraceGenerator`] turns a [`WorkloadProfile`] into a deterministic,
//! seeded stream of [`TraceEvent`]s whose locality structure approximates
//! the profile: a small hot region (L1-resident), a medium reuse region
//! (L2-resident), and random accesses over the full working set (DRAM).
//! `xylem-archsim` runs these streams through its cache hierarchy to
//! measure miss rates; the tests check that measured behaviour tracks the
//! profile's intent (monotonicity, not exact equality).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::profile::WorkloadProfile;

/// One instruction slot of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Instruction address.
    pub pc: u64,
    /// Data access, if this instruction is a load/store:
    /// `(address, is_write)`.
    pub access: Option<(u64, bool)>,
}

/// Deterministic trace generator for one thread.
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    profile: WorkloadProfile,
    rng: StdRng,
    pc: u64,
    code_footprint: u64,
    /// Per-thread base so different threads touch disjoint (mostly)
    /// regions, with a shared region for coherence traffic.
    data_base: u64,
    shared_base: u64,
    stream_cursor: u64,
}

/// Fraction of instructions that access memory.
const MEM_FRACTION: f64 = 0.30;
/// Cache-line size, bytes.
const LINE: u64 = 64;

impl TraceGenerator {
    /// Creates a generator for `thread` of an app with the given profile.
    /// The same `(profile, thread, seed)` always produces the same trace.
    pub fn new(profile: WorkloadProfile, thread: usize, seed: u64) -> Self {
        let code_footprint = 8 * 1024 + (profile.l1i_mpki * 24.0 * 1024.0) as u64;
        TraceGenerator {
            profile,
            rng: StdRng::seed_from_u64(seed ^ ((thread as u64) << 32)),
            pc: 0x1000,
            code_footprint,
            data_base: 0x1_0000_0000 + (thread as u64) * (profile.working_set + (1 << 26)),
            shared_base: 0x8_0000_0000,
            stream_cursor: 0,
        }
    }

    /// The profile driving this generator.
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    /// Generates the next instruction slot.
    pub fn next_event(&mut self) -> TraceEvent {
        // Instruction stream: sequential walk over the code footprint with
        // occasional jumps (function calls / branches).
        self.pc += 4;
        if self.rng.gen_bool(0.05) {
            self.pc = 0x1000 + self.rng.gen_range(0..self.code_footprint / 4) * 4;
        }
        if self.pc >= 0x1000 + self.code_footprint {
            self.pc = 0x1000;
        }

        let access = if self.rng.gen_bool(MEM_FRACTION) {
            let p = &self.profile;
            // Probabilities within memory accesses, derived from MPKIs.
            let per_access = 1.0 / (MEM_FRACTION * 1000.0);
            let p_dram = (p.l2_mpki * per_access).min(0.9);
            let p_l2 = ((p.l1d_mpki - p.l2_mpki).max(0.0) * per_access).min(0.9 - p_dram);
            let r: f64 = self.rng.gen();
            let addr = if r < p_dram {
                // Full-working-set access: streaming (row-buffer friendly)
                // or random, per the profile's row-hit fraction; a slice
                // goes to the shared region to exercise coherence.
                if self.rng.gen_bool(p.sharing_fraction) {
                    self.shared_base + self.rng.gen_range(0..(1u64 << 20) / LINE) * LINE
                } else if self.rng.gen_bool(p.row_hit_fraction) {
                    self.stream_cursor += LINE;
                    if self.stream_cursor >= p.working_set {
                        self.stream_cursor = 0;
                    }
                    self.data_base + self.stream_cursor
                } else {
                    self.data_base + self.rng.gen_range(0..p.working_set / LINE) * LINE
                }
            } else if r < p_dram + p_l2 {
                // L2-resident region (bigger than L1, smaller than L2).
                let region = 160 * 1024;
                self.data_base + self.rng.gen_range(0..region / LINE) * LINE
            } else {
                // Hot, L1-resident region.
                let region = 16 * 1024;
                self.data_base + self.rng.gen_range(0..region / LINE) * LINE
            };
            let is_write = !self.rng.gen_bool(self.profile.read_fraction);
            Some((addr, is_write))
        } else {
            None
        };

        TraceEvent {
            pc: self.pc,
            access,
        }
    }

    /// Generates `n` instruction slots.
    pub fn take_events(&mut self, n: usize) -> Vec<TraceEvent> {
        (0..n).map(|_| self.next_event()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmark::Benchmark;

    #[test]
    fn deterministic_for_same_seed() {
        let p = Benchmark::Fft.profile();
        let a = TraceGenerator::new(p, 0, 42).take_events(1000);
        let b = TraceGenerator::new(p, 0, 42).take_events(1000);
        assert_eq!(a, b);
        let c = TraceGenerator::new(p, 0, 43).take_events(1000);
        assert_ne!(a, c);
    }

    #[test]
    fn threads_use_disjoint_private_regions() {
        let p = Benchmark::Blackscholes.profile();
        let a = TraceGenerator::new(p, 0, 1).take_events(5000);
        let b = TraceGenerator::new(p, 1, 1).take_events(5000);
        let max_a = a
            .iter()
            .filter_map(|e| e.access)
            .map(|(x, _)| x)
            .max()
            .unwrap();
        let min_b = b
            .iter()
            .filter_map(|e| e.access)
            .map(|(x, _)| x)
            .filter(|&x| x < 0x8_0000_0000)
            .min()
            .unwrap();
        assert!(max_a < min_b || max_a >= 0x8_0000_0000);
    }

    #[test]
    fn memory_fraction_near_target() {
        let p = Benchmark::Lu.profile();
        let events = TraceGenerator::new(p, 0, 7).take_events(50_000);
        let mem = events.iter().filter(|e| e.access.is_some()).count() as f64;
        let frac = mem / events.len() as f64;
        assert!((frac - MEM_FRACTION).abs() < 0.02, "{frac}");
    }

    #[test]
    fn write_fraction_tracks_profile() {
        let p = Benchmark::Is.profile(); // read_fraction 0.60
        let events = TraceGenerator::new(p, 0, 9).take_events(100_000);
        let (mut reads, mut writes) = (0.0_f64, 0.0_f64);
        for e in events.iter().filter_map(|e| e.access) {
            if e.1 {
                writes += 1.0;
            } else {
                reads += 1.0;
            }
        }
        let rf = reads / (reads + writes);
        assert!((rf - 0.60).abs() < 0.03, "{rf}");
    }

    #[test]
    fn memory_bound_app_touches_more_unique_lines() {
        let count_unique = |b: Benchmark| {
            let mut g = TraceGenerator::new(b.profile(), 0, 3);
            let mut set = std::collections::HashSet::new();
            for _ in 0..100_000 {
                if let Some((a, _)) = g.next_event().access {
                    set.insert(a / LINE);
                }
            }
            set.len()
        };
        assert!(count_unique(Benchmark::Is) > 2 * count_unique(Benchmark::LuNas));
    }
}
