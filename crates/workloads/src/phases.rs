//! Phased workload behaviour for transient experiments.
//!
//! The steady-state experiments use one average profile per application.
//! Transient studies (DTM throttling, thread migration) are more
//! interesting when applications move through phases — an
//! initialization/data-load phase (memory-heavy, cool), a main compute
//! phase (hot), and a reduce/writeback phase. [`PhasedWorkload`] wraps a
//! [`Benchmark`] in such a schedule while preserving the benchmark's
//! instruction-weighted average characteristics (the invariant the tests
//! enforce), so steady-state results remain consistent with the phased
//! view.

use serde::{Deserialize, Serialize};

use crate::benchmark::Benchmark;
use crate::profile::WorkloadProfile;

/// One phase of execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// Fraction of the benchmark's instructions spent in this phase
    /// (phases of a workload sum to 1).
    pub weight: f64,
    /// Multiplier on the dynamic activity factor (clamped to [0, 1]).
    pub activity_scale: f64,
    /// Multiplier on the memory-side miss rates (L1D/L2).
    pub memory_scale: f64,
}

/// A benchmark with a phase schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhasedWorkload {
    benchmark: Benchmark,
    phases: Vec<Phase>,
}

impl PhasedWorkload {
    /// The default three-phase schedule: a short memory-heavy warm-up, a
    /// long main phase slightly hotter than average, and a short
    /// writeback tail. Scales are chosen so the instruction-weighted
    /// averages equal 1 (the benchmark's published profile).
    pub fn standard(benchmark: Benchmark) -> Self {
        // weights: 15% / 70% / 15%.
        // activity: w1*a1 + w2*a2 + w3*a3 = 1 with a1 = 0.6, a3 = 0.8:
        // a2 = (1 - 0.15*0.6 - 0.15*0.8) / 0.7 = 1.3/... computed below.
        let (w1, w2, w3) = (0.15, 0.70, 0.15);
        let (a1, a3) = (0.6, 0.8);
        let a2 = (1.0 - w1 * a1 - w3 * a3) / w2;
        let (m1, m3) = (1.8, 1.3);
        let m2 = (1.0 - w1 * m1 - w3 * m3) / w2;
        PhasedWorkload {
            benchmark,
            phases: vec![
                Phase {
                    weight: w1,
                    activity_scale: a1,
                    memory_scale: m1,
                },
                Phase {
                    weight: w2,
                    activity_scale: a2,
                    memory_scale: m2,
                },
                Phase {
                    weight: w3,
                    activity_scale: a3,
                    memory_scale: m3,
                },
            ],
        }
    }

    /// Creates a custom schedule.
    ///
    /// # Panics
    ///
    /// Panics if the schedule is empty or weights do not sum to ~1.
    pub fn new(benchmark: Benchmark, phases: Vec<Phase>) -> Self {
        assert!(!phases.is_empty(), "schedule needs phases");
        let total: f64 = phases.iter().map(|p| p.weight).sum();
        assert!(
            (total - 1.0).abs() < 1e-9,
            "phase weights sum to {total}, expected 1"
        );
        PhasedWorkload { benchmark, phases }
    }

    /// The underlying benchmark.
    pub fn benchmark(&self) -> Benchmark {
        self.benchmark
    }

    /// The schedule.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// The effective profile during phase `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn phase_profile(&self, i: usize) -> WorkloadProfile {
        let phase = self.phases[i];
        let base = self.benchmark.profile();
        let mut p = base;
        p.instructions = ((base.instructions as f64) * phase.weight).round().max(1.0) as u64;
        p.activity_peak = (base.activity_peak * phase.activity_scale).clamp(0.0, 1.0);
        p.l1d_mpki = base.l1d_mpki * phase.memory_scale;
        p.l2_mpki = (base.l2_mpki * phase.memory_scale).min(p.l1d_mpki);
        p.memory_intensity = (base.memory_intensity * phase.memory_scale).clamp(0.0, 1.0);
        p
    }

    /// Instruction-weighted mean of a quantity over the phases.
    pub fn weighted_mean(&self, f: impl Fn(&WorkloadProfile) -> f64) -> f64 {
        self.phases
            .iter()
            .enumerate()
            .map(|(i, ph)| ph.weight * f(&self.phase_profile(i)))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_schedule_preserves_averages() {
        for b in [Benchmark::Cholesky, Benchmark::Is, Benchmark::Fft] {
            let w = PhasedWorkload::standard(b);
            let base = b.profile();
            let act = w.weighted_mean(|p| p.activity_peak);
            // Clamping bends the average for near-peak bases (Cholesky's
            // main phase saturates at activity 1.0), by up to ~6%.
            assert!(
                (act - base.activity_peak).abs() < 0.06,
                "{b}: {act} vs {}",
                base.activity_peak
            );
            let l1d = w.weighted_mean(|p| p.l1d_mpki);
            assert!((l1d - base.l1d_mpki).abs() / base.l1d_mpki < 0.02, "{b}");
        }
    }

    #[test]
    fn phase_profiles_validate_and_differ() {
        let w = PhasedWorkload::standard(Benchmark::Barnes);
        let warmup = w.phase_profile(0);
        let main = w.phase_profile(1);
        warmup.validate().unwrap();
        main.validate().unwrap();
        assert!(warmup.activity_peak < main.activity_peak);
        assert!(warmup.l1d_mpki > main.l1d_mpki);
        // L2 never exceeds L1D after scaling.
        assert!(warmup.l2_mpki <= warmup.l1d_mpki);
    }

    #[test]
    fn instruction_split_follows_weights() {
        let w = PhasedWorkload::standard(Benchmark::Lu);
        let total: u64 = (0..3).map(|i| w.phase_profile(i).instructions).sum();
        let base = Benchmark::Lu.profile().instructions;
        let rel = (total as f64 - base as f64).abs() / (base as f64);
        assert!(rel < 0.01, "{rel}");
    }

    #[test]
    #[should_panic(expected = "weights sum")]
    fn bad_weights_panic() {
        let _ = PhasedWorkload::new(
            Benchmark::Fft,
            vec![Phase {
                weight: 0.5,
                activity_scale: 1.0,
                memory_scale: 1.0,
            }],
        );
    }
}
