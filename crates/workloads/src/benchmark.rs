//! The 17 evaluated applications (paper Sec. 6.3).
//!
//! Profiles are calibrated to reproduce the qualitative structure of the
//! paper's figures: the compute-intensive codes (LU-NAS, Cholesky, Barnes,
//! Radiosity, Blackscholes) run hot and scale with frequency; the
//! memory-intensive codes (IS, FT, CG, Radix) run cool and scale poorly;
//! the rest sit in between.

use serde::{Deserialize, Serialize};

use crate::profile::WorkloadProfile;

/// Benchmark suite of origin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Suite {
    /// SPLASH-2.
    Splash2,
    /// PARSEC.
    Parsec,
    /// NAS Parallel Benchmarks.
    Nas,
}

/// The 17 applications of the paper's evaluation, in Fig. 7 order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Benchmark {
    Fft,
    Cholesky,
    Lu,
    Radix,
    Barnes,
    Fmm,
    Radiosity,
    Raytrace,
    Fluidanimate,
    Blackscholes,
    Bt,
    Cg,
    Ft,
    Is,
    LuNas,
    Mg,
    Sp,
}

impl Benchmark {
    /// All benchmarks, in the paper's plot order.
    pub const ALL: [Benchmark; 17] = [
        Benchmark::Fft,
        Benchmark::Cholesky,
        Benchmark::Lu,
        Benchmark::Radix,
        Benchmark::Barnes,
        Benchmark::Fmm,
        Benchmark::Radiosity,
        Benchmark::Raytrace,
        Benchmark::Fluidanimate,
        Benchmark::Blackscholes,
        Benchmark::Bt,
        Benchmark::Cg,
        Benchmark::Ft,
        Benchmark::Is,
        Benchmark::LuNas,
        Benchmark::Mg,
        Benchmark::Sp,
    ];

    /// The plot label used by the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Benchmark::Fft => "FFT",
            Benchmark::Cholesky => "Cholesky",
            Benchmark::Lu => "LU",
            Benchmark::Radix => "Radix",
            Benchmark::Barnes => "Barnes",
            Benchmark::Fmm => "FMM",
            Benchmark::Radiosity => "Radiosity",
            Benchmark::Raytrace => "Raytrace",
            Benchmark::Fluidanimate => "Fluid.",
            Benchmark::Blackscholes => "Black.",
            Benchmark::Bt => "BT",
            Benchmark::Cg => "CG",
            Benchmark::Ft => "FT",
            Benchmark::Is => "IS",
            Benchmark::LuNas => "LU(NAS)",
            Benchmark::Mg => "MG",
            Benchmark::Sp => "SP",
        }
    }

    /// Suite of origin.
    pub fn suite(&self) -> Suite {
        match self {
            Benchmark::Fft
            | Benchmark::Cholesky
            | Benchmark::Lu
            | Benchmark::Radix
            | Benchmark::Barnes
            | Benchmark::Fmm
            | Benchmark::Radiosity
            | Benchmark::Raytrace => Suite::Splash2,
            Benchmark::Fluidanimate | Benchmark::Blackscholes => Suite::Parsec,
            Benchmark::Bt
            | Benchmark::Cg
            | Benchmark::Ft
            | Benchmark::Is
            | Benchmark::LuNas
            | Benchmark::Mg
            | Benchmark::Sp => Suite::Nas,
        }
    }

    /// The input size the paper runs (Sec. 6.3).
    pub fn input(&self) -> &'static str {
        match self {
            Benchmark::Fft => "2^22 points",
            Benchmark::Cholesky => "tk29.O",
            Benchmark::Lu => "512x512, 16x16 blocks",
            Benchmark::Radix => "4M integers",
            Benchmark::Barnes => "16K particles",
            Benchmark::Fmm => "16K particles",
            Benchmark::Radiosity => "batch",
            Benchmark::Raytrace => "teapot",
            Benchmark::Fluidanimate => "simsmall",
            Benchmark::Blackscholes => "simmedium",
            Benchmark::Bt => "small",
            Benchmark::Cg => "workstation",
            Benchmark::Ft => "workstation",
            Benchmark::Is => "workstation",
            Benchmark::LuNas => "small",
            Benchmark::Mg => "workstation",
            Benchmark::Sp => "small",
        }
    }

    /// The calibrated profile.
    pub fn profile(&self) -> WorkloadProfile {
        // (base_cpi, l1i, l1d, l2_mpki, sharing, read, row_hit, mlp,
        //  activity, mem_intensity, ws MiB, Minstr)
        let t = match self {
            Benchmark::Fft => (
                0.70, 0.8, 14.0, 3.0, 0.10, 0.70, 0.62, 0.45, 0.80, 0.45, 32, 120,
            ),
            Benchmark::Cholesky => (
                0.55, 1.2, 8.0, 0.8, 0.15, 0.72, 0.65, 0.60, 0.95, 0.15, 8, 160,
            ),
            Benchmark::Lu => (
                0.60, 0.6, 10.0, 1.8, 0.12, 0.70, 0.68, 0.55, 0.85, 0.30, 16, 140,
            ),
            Benchmark::Radix => (
                0.75, 0.4, 26.0, 7.0, 0.08, 0.60, 0.45, 0.40, 0.55, 0.75, 32, 100,
            ),
            Benchmark::Barnes => (
                0.52, 1.0, 7.0, 0.6, 0.30, 0.75, 0.60, 0.60, 0.96, 0.12, 8, 170,
            ),
            Benchmark::Fmm => (
                0.58, 1.1, 9.0, 1.2, 0.25, 0.74, 0.60, 0.55, 0.88, 0.25, 12, 150,
            ),
            Benchmark::Radiosity => (
                0.54, 1.5, 7.5, 0.7, 0.30, 0.73, 0.58, 0.60, 0.95, 0.15, 8, 160,
            ),
            Benchmark::Raytrace => (
                0.62, 2.0, 11.0, 2.2, 0.20, 0.78, 0.55, 0.50, 0.82, 0.35, 24, 130,
            ),
            Benchmark::Fluidanimate => (
                0.60, 0.7, 9.5, 1.5, 0.18, 0.70, 0.62, 0.55, 0.87, 0.28, 16, 140,
            ),
            Benchmark::Blackscholes => (
                0.55, 0.3, 6.0, 0.5, 0.02, 0.72, 0.70, 0.60, 0.90, 0.10, 4, 150,
            ),
            Benchmark::Bt => (
                0.65, 0.5, 12.0, 2.5, 0.10, 0.68, 0.66, 0.50, 0.80, 0.40, 48, 130,
            ),
            Benchmark::Cg => (
                0.80, 0.4, 30.0, 9.0, 0.06, 0.85, 0.40, 0.32, 0.45, 0.85, 64, 90,
            ),
            Benchmark::Ft => (
                0.85, 0.4, 32.0, 10.0, 0.05, 0.65, 0.50, 0.30, 0.42, 0.85, 64, 90,
            ),
            Benchmark::Is => (
                0.90, 0.3, 36.0, 12.0, 0.04, 0.60, 0.38, 0.28, 0.38, 0.90, 48, 80,
            ),
            Benchmark::LuNas => (
                0.50, 0.4, 6.0, 0.4, 0.08, 0.72, 0.70, 0.65, 0.98, 0.08, 8, 180,
            ),
            Benchmark::Mg => (
                0.70, 0.5, 20.0, 5.0, 0.08, 0.75, 0.55, 0.38, 0.65, 0.60, 56, 110,
            ),
            Benchmark::Sp => (
                0.68, 0.5, 16.0, 3.5, 0.10, 0.72, 0.60, 0.45, 0.75, 0.50, 40, 120,
            ),
        };
        let (base_cpi, l1i, l1d, l2, sharing, read, row_hit, mlp, act, mi, ws_mib, minstr) = t;
        WorkloadProfile {
            instructions: (minstr as u64) * 1_000_000,
            base_cpi,
            l1i_mpki: l1i,
            l1d_mpki: l1d,
            l2_mpki: l2,
            sharing_fraction: sharing,
            read_fraction: read,
            row_hit_fraction: row_hit,
            mlp_overlap: mlp,
            activity_peak: act,
            memory_intensity: mi,
            working_set: (ws_mib as u64) << 20,
        }
    }

    /// Whether the paper treats this code as compute-intensive (used by
    /// the thread-placement experiment, which pairs LU-NAS with IS).
    pub fn is_compute_intensive(&self) -> bool {
        self.profile().memory_intensity < 0.4
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seventeen_benchmarks() {
        assert_eq!(Benchmark::ALL.len(), 17);
        let names: std::collections::HashSet<_> = Benchmark::ALL.iter().map(|b| b.name()).collect();
        assert_eq!(names.len(), 17);
    }

    #[test]
    fn all_profiles_validate() {
        for b in Benchmark::ALL {
            b.profile()
                .validate()
                .unwrap_or_else(|e| panic!("{b}: {e}"));
        }
    }

    #[test]
    fn cache_miss_hierarchy_is_sane() {
        for b in Benchmark::ALL {
            let p = b.profile();
            assert!(p.l2_mpki <= p.l1d_mpki, "{b}: L2 misses exceed L1D misses");
        }
    }

    #[test]
    fn compute_codes_are_hot_and_memory_codes_are_not() {
        let hot = [
            Benchmark::LuNas,
            Benchmark::Cholesky,
            Benchmark::Barnes,
            Benchmark::Radiosity,
        ];
        let cool = [
            Benchmark::Is,
            Benchmark::Ft,
            Benchmark::Cg,
            Benchmark::Radix,
        ];
        for h in hot {
            assert!(h.profile().activity_peak > 0.9, "{h}");
            assert!(h.is_compute_intensive(), "{h}");
        }
        for c in cool {
            assert!(c.profile().activity_peak < 0.6, "{c}");
            assert!(!c.is_compute_intensive(), "{c}");
        }
    }

    #[test]
    fn suites_match_paper() {
        assert_eq!(Benchmark::Fft.suite(), Suite::Splash2);
        assert_eq!(Benchmark::Blackscholes.suite(), Suite::Parsec);
        assert_eq!(Benchmark::LuNas.suite(), Suite::Nas);
        let nas = Benchmark::ALL
            .iter()
            .filter(|b| b.suite() == Suite::Nas)
            .count();
        assert_eq!(nas, 7);
    }

    #[test]
    fn display_matches_paper_labels() {
        assert_eq!(Benchmark::LuNas.to_string(), "LU(NAS)");
        assert_eq!(Benchmark::Fluidanimate.to_string(), "Fluid.");
    }
}
