//! Workload profiles: the per-application numbers that drive the models.

use serde::{Deserialize, Serialize};

/// Per-application characterization used by the performance, power, and
/// DRAM models.
///
/// Rates are per-thread unless stated otherwise; the evaluated apps run
/// 8 threads (one per core) except in the thread-placement and migration
/// experiments.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Instructions per thread for one run (synthetic scale).
    pub instructions: u64,
    /// Core-limited CPI: cycles per instruction with a perfect memory
    /// system (issue width, dependencies, branches).
    pub base_cpi: f64,
    /// L1 instruction misses per kilo-instruction.
    pub l1i_mpki: f64,
    /// L1 data misses per kilo-instruction (serviced by the private L2).
    pub l1d_mpki: f64,
    /// L2 misses per kilo-instruction (go to DRAM or another L2).
    pub l2_mpki: f64,
    /// Fraction of L2 misses served by cache-to-cache transfer (MESI
    /// snooping) rather than DRAM.
    pub sharing_fraction: f64,
    /// Fraction of DRAM accesses that are reads.
    pub read_fraction: f64,
    /// Fraction of DRAM accesses that hit an open row.
    pub row_hit_fraction: f64,
    /// Fraction of DRAM latency hidden by memory-level parallelism /
    /// out-of-order overlap (0 = fully exposed, 1 = fully hidden).
    pub mlp_overlap: f64,
    /// Peak dynamic activity factor of a core running this code, 0..=1.
    pub activity_peak: f64,
    /// Memory intensity for the power-fraction blend, 0..=1.
    pub memory_intensity: f64,
    /// Working-set size per thread, bytes (drives the trace generator).
    pub working_set: u64,
}

impl WorkloadProfile {
    /// Validates ranges; used by the constructor table test.
    pub fn validate(&self) -> Result<(), String> {
        fn frac(name: &str, v: f64) -> Result<(), String> {
            if (0.0..=1.0).contains(&v) {
                Ok(())
            } else {
                Err(format!("{name} = {v} outside [0,1]"))
            }
        }
        if self.instructions == 0 {
            return Err("instructions must be > 0".into());
        }
        if !(self.base_cpi.is_finite() && self.base_cpi > 0.0) {
            return Err(format!("base_cpi = {} invalid", self.base_cpi));
        }
        for (n, v) in [
            ("l1i_mpki", self.l1i_mpki),
            ("l1d_mpki", self.l1d_mpki),
            ("l2_mpki", self.l2_mpki),
        ] {
            if !(v.is_finite() && v >= 0.0) {
                return Err(format!("{n} = {v} invalid"));
            }
        }
        frac("sharing_fraction", self.sharing_fraction)?;
        frac("read_fraction", self.read_fraction)?;
        frac("row_hit_fraction", self.row_hit_fraction)?;
        frac("mlp_overlap", self.mlp_overlap)?;
        frac("activity_peak", self.activity_peak)?;
        frac("memory_intensity", self.memory_intensity)?;
        if self.working_set == 0 {
            return Err("working_set must be > 0".into());
        }
        Ok(())
    }

    /// DRAM accesses per kilo-instruction (L2 misses not served by
    /// cache-to-cache transfers).
    pub fn dram_apki(&self) -> f64 {
        self.l2_mpki * (1.0 - self.sharing_fraction)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn valid() -> WorkloadProfile {
        WorkloadProfile {
            instructions: 1_000_000,
            base_cpi: 0.6,
            l1i_mpki: 1.0,
            l1d_mpki: 20.0,
            l2_mpki: 3.0,
            sharing_fraction: 0.2,
            read_fraction: 0.7,
            row_hit_fraction: 0.6,
            mlp_overlap: 0.4,
            activity_peak: 0.8,
            memory_intensity: 0.4,
            working_set: 1 << 20,
        }
    }

    #[test]
    fn validation_catches_bad_fields() {
        assert!(valid().validate().is_ok());
        let mut p = valid();
        p.base_cpi = 0.0;
        assert!(p.validate().is_err());
        let mut p = valid();
        p.read_fraction = 1.5;
        assert!(p.validate().is_err());
        let mut p = valid();
        p.instructions = 0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn dram_apki_discounts_sharing() {
        let p = valid();
        assert!((p.dram_apki() - 2.4).abs() < 1e-12);
    }
}
