//! Property-based tests for profiles and trace generation.

use proptest::prelude::*;

use xylem_workloads::{Benchmark, TraceGenerator};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Traces are deterministic in (benchmark, thread, seed) and differ
    /// across seeds.
    #[test]
    fn determinism(seed in any::<u64>(), thread in 0usize..8) {
        let p = Benchmark::Fft.profile();
        let a = TraceGenerator::new(p, thread, seed).take_events(500);
        let b = TraceGenerator::new(p, thread, seed).take_events(500);
        prop_assert_eq!(a, b);
    }

    /// Every generated data address is 64-byte aligned and PCs are
    /// 4-byte aligned within the code footprint.
    #[test]
    fn alignment_and_bounds(seed in any::<u64>()) {
        for b in [Benchmark::LuNas, Benchmark::Is, Benchmark::Barnes] {
            let mut g = TraceGenerator::new(b.profile(), 0, seed);
            for _ in 0..2000 {
                let e = g.next_event();
                prop_assert_eq!(e.pc % 4, 0);
                if let Some((addr, _)) = e.access {
                    prop_assert_eq!(addr % 64, 0, "{}", addr);
                }
            }
        }
    }

    /// Profiles imply a consistent cache hierarchy for every benchmark:
    /// dram accesses never exceed L2 misses, which never exceed L1D
    /// misses.
    #[test]
    fn profile_hierarchy_consistency(_x in 0..1) {
        for b in Benchmark::ALL {
            let p = b.profile();
            prop_assert!(p.dram_apki() <= p.l2_mpki + 1e-12);
            prop_assert!(p.l2_mpki <= p.l1d_mpki);
            p.validate().unwrap();
        }
    }
}
