//! Conductivity (lambda)-aware techniques (paper Sec. 5.2, 7.6).
//!
//! The aligned-and-shorted microbump/TTSV sites make vertical conduction
//! spatially heterogeneous: the inner cores (2, 3, 6, 7) sit closer, on
//! average, to the high-conductivity sites than the outer cores
//! (1, 4, 5, 8). Three techniques exploit that:
//!
//! * **thread placement** — put the thermally demanding threads on the
//!   inner cores ([`placement_experiment`], Fig. 15);
//! * **frequency boosting** — boost the inner cores beyond the chip-wide
//!   limit ([`boosting_experiment`], Fig. 16);
//! * **thread migration** — rotate threads among the inner ring rather
//!   than the outer ring ([`crate::migration`], Fig. 17).

use serde::{Deserialize, Serialize};

use xylem_workloads::Benchmark;

use crate::headroom::{max_frequency_for_run, ThermalLimits};
use crate::placement::ThreadPlacement;
use crate::system::{Instance, RunSpec, XylemSystem};
use crate::Result;

/// Outcome of the lambda-aware thread-placement experiment (Fig. 15):
/// maximum die-wide frequency with the compute-intensive threads outside
/// vs. inside.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlacementOutcome {
    /// Max frequency with the hot threads on the outer cores, GHz.
    pub outside_f_ghz: f64,
    /// Max frequency with the hot threads on the inner cores, GHz.
    pub inside_f_ghz: f64,
}

/// Runs the Fig. 15 experiment: 4 threads of a compute-intensive code and
/// 4 threads of a memory-intensive code share the die; the placement of
/// the hot threads (outer vs. inner cores) decides the admissible
/// die-wide frequency under DTM limits.
///
/// # Errors
///
/// Propagates evaluation errors. Returns frequencies of 0.0 if even the
/// lowest DVFS point violates the limits (does not happen for the paper
/// configuration).
pub fn placement_experiment(
    system: &mut XylemSystem,
    compute: Benchmark,
    memory: Benchmark,
) -> Result<PlacementOutcome> {
    let limits = ThermalLimits::paper_dtm();
    let mixed = |hot_inner: bool| {
        move |f: f64| {
            let (hot_cores, cool_cores) = if hot_inner {
                (ThreadPlacement::inner(), ThreadPlacement::outer())
            } else {
                (ThreadPlacement::outer(), ThreadPlacement::inner())
            };
            RunSpec {
                instances: vec![
                    Instance {
                        benchmark: compute,
                        placement: hot_cores,
                        f_ghz: f,
                    },
                    Instance {
                        benchmark: memory,
                        placement: cool_cores,
                        f_ghz: f,
                    },
                ],
                uncore_f_ghz: f,
            }
        }
    };
    let outside = max_frequency_for_run(system, limits, mixed(false))?;
    let inside = max_frequency_for_run(system, limits, mixed(true))?;
    Ok(PlacementOutcome {
        outside_f_ghz: outside.map_or(0.0, |b| b.f_ghz),
        inside_f_ghz: inside.map_or(0.0, |b| b.f_ghz),
    })
}

/// Outcome of the lambda-aware frequency-boosting experiment (Fig. 16).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoostingOutcome {
    /// Chip-wide maximum frequency (all 8 cores), GHz.
    pub single_f_ghz: f64,
    /// Inner-core frequency after the additional lambda-aware boost (the
    /// outer cores stay at `single_f_ghz`), GHz.
    pub multiple_inner_f_ghz: f64,
}

impl BoostingOutcome {
    /// Average frequency across the 8 cores in the multiple-frequency
    /// configuration, GHz.
    pub fn multiple_mean_f_ghz(&self) -> f64 {
        (4.0 * self.single_f_ghz + 4.0 * self.multiple_inner_f_ghz) / 8.0
    }
}

/// Runs the Fig. 16 experiment: two 4-thread instances of `benchmark`
/// (one on the inner cores, one on the outer). First find the chip-wide
/// maximum frequency under DTM limits; then boost only the inner cores
/// until they too reach the limit.
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn boosting_experiment(
    system: &mut XylemSystem,
    benchmark: Benchmark,
) -> Result<BoostingOutcome> {
    let limits = ThermalLimits::paper_dtm();
    let both = |f_inner: f64, f_outer: f64| RunSpec {
        instances: vec![
            Instance {
                benchmark,
                placement: ThreadPlacement::inner(),
                f_ghz: f_inner,
            },
            Instance {
                benchmark,
                placement: ThreadPlacement::outer(),
                f_ghz: f_outer,
            },
        ],
        uncore_f_ghz: f_outer.min(f_inner),
    };

    let single = max_frequency_for_run(system, limits, |f| both(f, f))?;
    let single_f = single.as_ref().map_or(0.0, |b| b.f_ghz);

    // Phase 2: outer pinned at the chip-wide limit; inner boosted further.
    let multiple = max_frequency_for_run(system, limits, |f| both(f.max(single_f), single_f))?;
    let multiple_f = multiple.map_or(single_f, |b| b.f_ghz.max(single_f));

    Ok(BoostingOutcome {
        single_f_ghz: single_f,
        multiple_inner_f_ghz: multiple_f,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SystemConfig;
    use xylem_stack::XylemScheme;

    fn system(scheme: XylemScheme) -> XylemSystem {
        let mut cfg = SystemConfig::fast(scheme);
        cfg.cache_dir = Some(std::env::temp_dir().join("xylem-system-test-cache"));
        XylemSystem::new(cfg).unwrap()
    }

    #[test]
    fn inside_placement_never_worse() {
        let mut s = system(XylemScheme::BankEnhanced);
        let out = placement_experiment(&mut s, Benchmark::LuNas, Benchmark::Is).unwrap();
        assert!(out.inside_f_ghz >= out.outside_f_ghz, "{out:?}");
        assert!(out.outside_f_ghz >= 2.4);
    }

    #[test]
    fn multiple_frequency_never_below_single() {
        let mut s = system(XylemScheme::BankEnhanced);
        let out = boosting_experiment(&mut s, Benchmark::Fft).unwrap();
        assert!(out.multiple_inner_f_ghz >= out.single_f_ghz, "{out:?}");
        assert!(out.multiple_mean_f_ghz() >= out.single_f_ghz);
    }
}
