//! Xylem: vertical thermal-conduction pillars and conductivity-aware
//! architectural techniques for 3D processor-memory stacks.
//!
//! This crate is the top of the reproduction of *"Xylem: Enhancing
//! Vertical Thermal Conduction in 3D Processor-Memory Stacks"* (MICRO
//! 2017). It couples the substrates —
//!
//! * [`xylem_stack`]: stack geometry, Wide I/O floorplans, the TTSV
//!   placement schemes, and microbump-TTSV alignment & shorting;
//! * [`xylem_thermal`]: the HotSpot-style RC thermal solver;
//! * [`xylem_power`]: the per-block processor power model with DVFS;
//! * [`xylem_dram`]: Wide I/O timing, refresh, and energy;
//! * [`xylem_archsim`] / [`xylem_workloads`]: the performance model and
//!   the 17 evaluated applications —
//!
//! into [`XylemSystem`], and implements the paper's architectural
//! techniques on top:
//!
//! * **frequency boosting into the thermal headroom** (Sec. 5.1) —
//!   [`headroom`];
//! * **dynamic thermal management** (frequency throttling to `T_j,max`) —
//!   [`headroom::max_frequency_under_limits`];
//! * **conductivity-aware thread placement, frequency boosting, and
//!   thread migration** (Sec. 5.2) — [`lambda_aware`].
//!
//! # Quickstart
//!
//! ```no_run
//! use xylem::{XylemSystem, SystemConfig};
//! use xylem_stack::XylemScheme;
//! use xylem_workloads::Benchmark;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut system = XylemSystem::new(SystemConfig::paper_default(XylemScheme::BankEnhanced))?;
//! let eval = system.evaluate_uniform(Benchmark::Cholesky, 2.4)?;
//! println!("hotspot: {:.1} C at {:.1} W", eval.proc_hotspot_c, eval.total_power_w);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod checkpoint;
pub mod dtm;
pub mod error;
pub mod evaluation;
pub mod headroom;
pub mod lambda_aware;
pub mod migration;
pub mod placement;
pub mod response;
pub mod sensor;
pub mod system;

pub use error::{CheckpointError, ConfigError, SweepError, XylemError};
pub use evaluation::Evaluation;
pub use placement::ThreadPlacement;
pub use response::ThermalResponse;
pub use system::{SystemConfig, XylemSystem};

/// Result alias over the workspace-level error type.
pub type Result<T> = std::result::Result<T, XylemError>;
