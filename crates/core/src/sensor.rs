//! On-die thermal sensors for the DTM loop.
//!
//! The seed controller read a perfect, instantaneous hotspot
//! temperature. Real DTM loops (Sec. 2, Fig. 7) see the die through a
//! handful of discrete sensors with quantization, noise, readout
//! latency, and — on a long enough run — hardware faults. This module
//! models that path: each control step every sensor samples its grid
//! cell, the reading is noised, quantized, possibly corrupted by an
//! injected fault, and delivered `latency_steps` periods later. The
//! controller then fuses the delayed frame with a plausibility filter
//! and falls back to full throttle when no sensor can be trusted
//! (see [`SensorArray::fuse`]).
//!
//! Noise is **counter-based** (a splitmix64 hash of seed, step, and
//! sensor index) rather than drawn from a stateful RNG, so replaying a
//! step — e.g. after a checkpoint resume — reproduces the identical
//! reading without any generator state in the checkpoint.

use serde::{Deserialize, Serialize};

use xylem_thermal::temperature::TemperatureField;
use xylem_thermal::units::Celsius;

use crate::error::ConfigError;

/// Margin below ambient still accepted by the plausibility filter: a
/// die cannot cool below ambient, but noise and quantization may dip a
/// healthy reading slightly under it.
const PLAUSIBLE_BELOW_AMBIENT_C: f64 = 10.0;

/// Default ceiling of the plausibility window, deg C — far above any
/// survivable junction temperature, so only a faulted sensor trips it.
const DEFAULT_PLAUSIBLE_MAX_C: f64 = 150.0;

/// One sensor location: a cell of the monitored user layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SensorSite {
    /// Cell x index.
    pub ix: usize,
    /// Cell y index.
    pub iy: usize,
}

/// What an injected fault does to the reading of its sensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The sensor reports `value_c` regardless of the die temperature.
    StuckAt,
    /// The sensor produces no reading at all.
    Dropout,
    /// `value_c` is added on top of the true reading.
    Spike,
}

/// A fault injected into one sensor over a step window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SensorFault {
    /// Index of the faulted sensor in [`SensorModel::sites`].
    pub sensor: usize,
    /// Fault behavior.
    pub kind: FaultKind,
    /// First control step (inclusive) the fault is active.
    pub from_step: usize,
    /// Last control step (exclusive) the fault is active.
    pub to_step: usize,
    /// Fault magnitude, deg C: the stuck reading for
    /// [`FaultKind::StuckAt`], the offset for [`FaultKind::Spike`],
    /// ignored for [`FaultKind::Dropout`].
    pub value_c: f64,
}

impl SensorFault {
    /// Whether this fault corrupts `sensor` at `step`.
    #[must_use]
    pub fn active(&self, sensor: usize, step: usize) -> bool {
        self.sensor == sensor && step >= self.from_step && step < self.to_step
    }
}

/// One delivered sensor reading. `valid == false` means the sensor
/// produced nothing this step (dropout); JSON cannot encode NaN, so
/// absence is a flag rather than a sentinel value.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SensorReading {
    /// Reported temperature, deg C (meaningless when `valid` is false).
    pub value_c: f64,
    /// Whether the sensor delivered a reading.
    pub valid: bool,
}

/// Static description of the sensor array.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensorModel {
    /// Sensor locations on the monitored layer.
    pub sites: Vec<SensorSite>,
    /// Quantization step, deg C (0 disables; typical on-die sensors
    /// resolve ~0.25 C).
    pub quantization_c: f64,
    /// Standard deviation of the additive noise, deg C (uniform
    /// distribution scaled to this sigma; 0 disables).
    pub noise_sigma_c: f64,
    /// Control periods between sampling and delivery to the controller.
    pub latency_steps: usize,
    /// Seed of the counter-based noise hash.
    pub seed: u64,
    /// Ceiling of the plausibility window, deg C; readings above it are
    /// discarded by the fusion step.
    pub plausible_max_c: f64,
}

impl SensorModel {
    /// A realistic default: a 2x2 array spread over an `nx` by `ny`
    /// grid, 0.25 C quantization, 0.2 C noise, one period of latency.
    #[must_use]
    pub fn default_array(nx: usize, ny: usize, seed: u64) -> Self {
        let qx = nx.max(2) / 2;
        let qy = ny.max(2) / 2;
        let sites = vec![
            SensorSite {
                ix: qx / 2,
                iy: qy / 2,
            },
            SensorSite {
                ix: qx + qx / 2,
                iy: qy / 2,
            },
            SensorSite {
                ix: qx / 2,
                iy: qy + qy / 2,
            },
            SensorSite {
                ix: qx + qx / 2,
                iy: qy + qy / 2,
            },
        ];
        SensorModel {
            sites,
            quantization_c: 0.25,
            noise_sigma_c: 0.2,
            latency_steps: 1,
            seed,
            plausible_max_c: DEFAULT_PLAUSIBLE_MAX_C,
        }
    }

    /// An ideal array: one sensor per given site, no quantization,
    /// noise, or latency — useful to isolate fault effects in tests.
    #[must_use]
    pub fn ideal(sites: Vec<SensorSite>, seed: u64) -> Self {
        SensorModel {
            sites,
            quantization_c: 0.0,
            noise_sigma_c: 0.0,
            latency_steps: 0,
            seed,
            plausible_max_c: DEFAULT_PLAUSIBLE_MAX_C,
        }
    }

    /// Validates the model against a grid of `nx` by `ny` cells.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] for an empty array, an out-of-grid site, or a
    /// non-finite/negative quantization, noise, or plausibility bound.
    pub fn validate(&self, nx: usize, ny: usize) -> Result<(), ConfigError> {
        if self.sites.is_empty() {
            return Err(ConfigError::new("sensors", "sensor array is empty"));
        }
        for (i, s) in self.sites.iter().enumerate() {
            if s.ix >= nx || s.iy >= ny {
                return Err(ConfigError::new(
                    "sensors",
                    format!(
                        "sensor {i} at ({}, {}) outside the {nx}x{ny} grid",
                        s.ix, s.iy
                    ),
                ));
            }
        }
        for (what, v) in [
            ("quantization_c", self.quantization_c),
            ("noise_sigma_c", self.noise_sigma_c),
        ] {
            if !(v.is_finite() && v >= 0.0) {
                return Err(ConfigError::new(
                    "sensors",
                    format!("{what} = {v} must be finite and non-negative"),
                ));
            }
        }
        if !(self.plausible_max_c.is_finite() && self.plausible_max_c > 0.0) {
            return Err(ConfigError::new(
                "sensors",
                format!(
                    "plausible_max_c = {} must be finite and positive",
                    self.plausible_max_c
                ),
            ));
        }
        Ok(())
    }
}

/// The fused controller input for one step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FusedReading {
    /// Hotspot estimate, deg C (meaningless when `valid` is false).
    pub value_c: f64,
    /// Whether any sensor passed the plausibility filter.
    pub valid: bool,
    /// Sensors that contributed (delivered and plausible).
    pub used: usize,
}

/// Runtime sensor state: the model plus the per-sensor delay lines.
/// Serializable as-is, so a checkpoint captures the in-flight readings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensorArray {
    /// Static description.
    pub model: SensorModel,
    /// Per-sensor delay line, oldest first, holding the `latency_steps`
    /// readings still in flight; [`SensorArray::sample`] pushes the new
    /// reading and delivers the front.
    queues: Vec<Vec<SensorReading>>,
}

/// splitmix64 finalizer: a well-mixed 64-bit hash.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform in [0, 1) from (seed, step, sensor) — stateless, so any step
/// can be replayed.
fn unit_uniform(seed: u64, step: u64, sensor: u64) -> f64 {
    let h = splitmix64(seed ^ splitmix64(step ^ splitmix64(sensor ^ 0x5851_F42D_4C95_7F2D)));
    (h >> 11) as f64 / (1u64 << 53) as f64
}

impl SensorArray {
    /// A fresh array with the delay lines primed at `ambient`, the
    /// reading a sensor would report for an unpowered die.
    #[must_use]
    pub fn new(model: SensorModel, ambient: Celsius) -> Self {
        let prime = SensorReading {
            value_c: ambient.get(),
            valid: true,
        };
        let queues = model
            .sites
            .iter()
            .map(|_| vec![prime; model.latency_steps])
            .collect();
        SensorArray { model, queues }
    }

    /// Samples the field at control step `step`, applies noise,
    /// quantization, and any active fault, pushes the result into each
    /// sensor's delay line, and returns the frame the controller sees
    /// (delayed by `latency_steps`).
    pub fn sample(
        &mut self,
        field: &TemperatureField,
        layer: usize,
        step: usize,
        faults: &[SensorFault],
    ) -> Vec<SensorReading> {
        let mut frame = Vec::with_capacity(self.model.sites.len());
        let mut faulted = 0usize;
        for (i, site) in self.model.sites.iter().enumerate() {
            let truth = field.cell(layer, site.ix, site.iy).get();
            let mut reading = SensorReading {
                value_c: truth,
                valid: true,
            };
            if self.model.noise_sigma_c > 0.0 {
                let u = unit_uniform(self.model.seed, step as u64, i as u64);
                // Uniform on [-sqrt(3), sqrt(3)) sigma has std sigma.
                let spread = 2.0 * 3.0_f64.sqrt() * self.model.noise_sigma_c;
                reading.value_c += (u - 0.5) * spread;
            }
            if self.model.quantization_c > 0.0 {
                let q = self.model.quantization_c;
                reading.value_c = (reading.value_c / q).round() * q;
            }
            for fault in faults {
                if fault.active(i, step) {
                    faulted += 1;
                    match fault.kind {
                        FaultKind::StuckAt => reading.value_c = fault.value_c,
                        FaultKind::Dropout => {
                            reading.valid = false;
                            reading.value_c = 0.0;
                        }
                        FaultKind::Spike => reading.value_c += fault.value_c,
                    }
                }
            }
            let queue = &mut self.queues[i];
            queue.push(reading);
            let delivered = queue.remove(0);
            frame.push(delivered);
        }
        xylem_obs::add(xylem_obs::Counter::SensorSamples, frame.len() as u64);
        if faulted > 0 && xylem_obs::enabled() {
            xylem_obs::event("sensor_fault")
                .u64("step", step as u64)
                .u64("active_faults", faulted as u64)
                .emit();
        }
        frame
    }

    /// Fuses a frame into the controller's hotspot estimate: the
    /// maximum over delivered readings inside the plausibility window
    /// `[ambient - 10, plausible_max_c]`. `valid == false` (no sensor
    /// survived the filter) is the fail-safe signal — the controller
    /// must assume the worst and throttle to the floor.
    #[must_use]
    pub fn fuse(&self, frame: &[SensorReading], ambient: Celsius) -> FusedReading {
        let floor = ambient.get() - PLAUSIBLE_BELOW_AMBIENT_C;
        let mut best = f64::NEG_INFINITY;
        let mut used = 0usize;
        for r in frame {
            if r.valid
                && r.value_c.is_finite()
                && r.value_c >= floor
                && r.value_c <= self.model.plausible_max_c
            {
                best = best.max(r.value_c);
                used += 1;
            }
        }
        xylem_obs::add(
            xylem_obs::Counter::SensorRejected,
            (frame.len() - used) as u64,
        );
        if used > 0 {
            xylem_obs::set_gauge(xylem_obs::Gauge::SensorFusedC, best);
        }
        FusedReading {
            value_c: if used > 0 { best } else { 0.0 },
            valid: used > 0,
            used,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xylem_thermal::grid::GridSpec;
    use xylem_thermal::layer::Layer;
    use xylem_thermal::material::SILICON;
    use xylem_thermal::model::ThermalModel;
    use xylem_thermal::stack::Stack;

    fn model() -> ThermalModel {
        let die = 8e-3;
        let stack = Stack::builder(die, die)
            .layer(Layer::uniform("a", 100e-6, SILICON.clone()))
            .build()
            .unwrap();
        stack.discretize(GridSpec::new(8, 8)).unwrap()
    }

    fn uniform_field(m: &ThermalModel, t: f64) -> TemperatureField {
        TemperatureField::uniform(m, Celsius::new(t))
    }

    #[test]
    fn ideal_sensors_report_the_truth() {
        let m = model();
        let f = uniform_field(&m, 80.0);
        let sm = SensorModel::ideal(vec![SensorSite { ix: 1, iy: 1 }], 7);
        let mut arr = SensorArray::new(sm, m.ambient());
        let frame = arr.sample(&f, 0, 0, &[]);
        assert_eq!(frame.len(), 1);
        assert!(frame[0].valid);
        assert_eq!(frame[0].value_c, 80.0);
    }

    #[test]
    fn latency_delays_delivery() {
        let m = model();
        let hot = uniform_field(&m, 90.0);
        let mut sm = SensorModel::ideal(vec![SensorSite { ix: 0, iy: 0 }], 7);
        sm.latency_steps = 2;
        let mut arr = SensorArray::new(sm, m.ambient());
        // The first two frames still show the primed ambient value.
        let f0 = arr.sample(&hot, 0, 0, &[]);
        let f1 = arr.sample(&hot, 0, 1, &[]);
        let f2 = arr.sample(&hot, 0, 2, &[]);
        assert_eq!(f0[0].value_c, m.ambient().get());
        assert_eq!(f1[0].value_c, m.ambient().get());
        assert_eq!(f2[0].value_c, 90.0);
    }

    #[test]
    fn noise_is_reproducible_and_bounded() {
        let m = model();
        let f = uniform_field(&m, 70.0);
        let mut sm = SensorModel::ideal(vec![SensorSite { ix: 2, iy: 3 }], 42);
        sm.noise_sigma_c = 0.5;
        let mut a = SensorArray::new(sm.clone(), m.ambient());
        let mut b = SensorArray::new(sm, m.ambient());
        for step in 0..50 {
            let ra = a.sample(&f, 0, step, &[]);
            let rb = b.sample(&f, 0, step, &[]);
            assert_eq!(ra, rb, "counter-based noise must replay exactly");
            assert!((ra[0].value_c - 70.0).abs() < 1.0);
        }
    }

    #[test]
    fn faults_corrupt_only_their_window() {
        let m = model();
        let f = uniform_field(&m, 60.0);
        let sm = SensorModel::ideal(vec![SensorSite { ix: 0, iy: 0 }], 1);
        let mut arr = SensorArray::new(sm, m.ambient());
        let faults = [SensorFault {
            sensor: 0,
            kind: FaultKind::StuckAt,
            from_step: 2,
            to_step: 4,
            value_c: 200.0,
        }];
        let readings: Vec<f64> = (0..6)
            .map(|s| arr.sample(&f, 0, s, &faults)[0].value_c)
            .collect();
        assert_eq!(readings, vec![60.0, 60.0, 200.0, 200.0, 60.0, 60.0]);
    }

    #[test]
    fn fusion_discards_implausible_readings() {
        let m = model();
        let sm = SensorModel::ideal(
            vec![SensorSite { ix: 0, iy: 0 }, SensorSite { ix: 1, iy: 0 }],
            1,
        );
        let arr = SensorArray::new(sm, m.ambient());
        let frame = [
            SensorReading {
                value_c: 85.0,
                valid: true,
            },
            SensorReading {
                value_c: 300.0, // stuck high, above plausible_max_c
                valid: true,
            },
        ];
        let fused = arr.fuse(&frame, m.ambient());
        assert!(fused.valid);
        assert_eq!(fused.used, 1);
        assert_eq!(fused.value_c, 85.0);
    }

    #[test]
    fn fusion_reports_failsafe_when_nothing_is_credible() {
        let m = model();
        let sm = SensorModel::ideal(vec![SensorSite { ix: 0, iy: 0 }], 1);
        let arr = SensorArray::new(sm, m.ambient());
        let frame = [SensorReading {
            value_c: 0.0,
            valid: false,
        }];
        let fused = arr.fuse(&frame, m.ambient());
        assert!(!fused.valid);
        assert_eq!(fused.used, 0);
    }

    #[test]
    fn validate_rejects_bad_models() {
        let ok = SensorModel::default_array(12, 12, 3);
        assert!(ok.validate(12, 12).is_ok());
        let empty = SensorModel::ideal(vec![], 0);
        assert!(empty.validate(12, 12).is_err());
        let outside = SensorModel::ideal(vec![SensorSite { ix: 40, iy: 0 }], 0);
        assert!(outside.validate(12, 12).is_err());
        let mut bad = SensorModel::default_array(12, 12, 3);
        bad.noise_sigma_c = f64::NAN;
        assert!(bad.validate(12, 12).is_err());
    }

    #[test]
    fn sensor_array_round_trips_through_json() {
        let m = model();
        let f = uniform_field(&m, 75.0);
        let mut sm = SensorModel::default_array(8, 8, 11);
        sm.latency_steps = 2;
        let mut arr = SensorArray::new(sm, m.ambient());
        for step in 0..5 {
            arr.sample(&f, 0, step, &[]);
        }
        let json = serde_json::to_string(&arr).unwrap();
        let back: SensorArray = serde_json::from_str(&json).unwrap();
        assert_eq!(arr, back, "in-flight readings survive serialization");
    }
}
