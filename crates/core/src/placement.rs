//! Thread-to-core placements.

use serde::{Deserialize, Serialize};

use xylem_stack::proc_die::ProcDieGeometry;

/// A placement of `n` threads onto distinct cores (core ids 1..=8).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThreadPlacement {
    cores: Vec<usize>,
}

impl ThreadPlacement {
    /// Places `threads` onto the given cores (thread `i` on `cores[i]`).
    ///
    /// # Panics
    ///
    /// Panics if a core id is out of `1..=8` or repeated.
    pub fn new(cores: Vec<usize>) -> Self {
        assert!(!cores.is_empty() && cores.len() <= 8, "1..=8 threads");
        let mut seen = [false; 9];
        for &c in &cores {
            assert!((1..=8).contains(&c), "core {c} out of range");
            assert!(!seen[c], "core {c} assigned twice");
            seen[c] = true;
        }
        ThreadPlacement { cores }
    }

    /// All 8 cores in id order (the default 8-thread run).
    pub fn all_eight() -> Self {
        ThreadPlacement::new((1..=8).collect())
    }

    /// The 4 inner cores (2, 3, 6, 7) — closest to the high-conductivity
    /// sites.
    pub fn inner() -> Self {
        ThreadPlacement::new(ProcDieGeometry::inner_cores().to_vec())
    }

    /// The 4 outer cores (1, 4, 5, 8).
    pub fn outer() -> Self {
        ThreadPlacement::new(ProcDieGeometry::outer_cores().to_vec())
    }

    /// The cores, in thread order.
    pub fn cores(&self) -> &[usize] {
        &self.cores
    }

    /// Number of threads.
    pub fn len(&self) -> usize {
        self.cores.len()
    }

    /// Whether the placement is empty (never true for a constructed one).
    pub fn is_empty(&self) -> bool {
        self.cores.is_empty()
    }

    /// Whether `core` is used.
    pub fn uses(&self, core: usize) -> bool {
        self.cores.contains(&core)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canned_placements() {
        assert_eq!(ThreadPlacement::all_eight().len(), 8);
        assert_eq!(ThreadPlacement::inner().cores(), &[2, 3, 6, 7]);
        assert_eq!(ThreadPlacement::outer().cores(), &[1, 4, 5, 8]);
    }

    #[test]
    fn inner_and_outer_are_disjoint() {
        let inner = ThreadPlacement::inner();
        for c in ThreadPlacement::outer().cores() {
            assert!(!inner.uses(*c));
        }
    }

    #[test]
    #[should_panic(expected = "assigned twice")]
    fn duplicate_core_panics() {
        let _ = ThreadPlacement::new(vec![1, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_core_panics() {
        let _ = ThreadPlacement::new(vec![0]);
    }
}
