//! Versioned, checksummed checkpoint files for long transient runs.
//!
//! A multi-hour DTM sweep must survive being killed: the loop
//! periodically serializes its full state — temperature field,
//! controller state, sensor delay lines, accumulated trace — and a
//! `--resume` run picks up from the last good file. The format is
//! paranoid by design:
//!
//! * an outer envelope carries a magic string, a format **version**,
//!   and an FNV-1a **checksum** over the serialized payload, so a
//!   truncated or bit-flipped file is rejected before deserialization;
//! * the payload embeds the **grid shape**, **time step**, and a
//!   **config hash** of the run parameters; resuming under a different
//!   configuration is a [`CheckpointError::Mismatch`], not a silently
//!   wrong answer.
//!
//! JSON floats round-trip exactly (shortest-representation printing),
//! so a resumed run continues from bit-identical state — the
//! fault-injection suite asserts resume equals an uninterrupted run.
//! Writes go to a temporary sibling file first, are fsynced, renamed
//! into place, and the parent directory is fsynced after the rename —
//! a crash mid-write never corrupts the previous checkpoint, and a
//! power loss just after `save` returns cannot un-link the new file
//! (the rename itself must be durable, which requires the directory
//! sync, not just the file sync).
//!
//! The envelope is payload-agnostic: [`save_payload`] / [`load_payload`]
//! wrap any serialized string in the same magic/version/checksum armor,
//! which is how xylem-serve persists per-session state without
//! reimplementing the durability protocol.

use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::dtm::DtmSample;
use crate::error::CheckpointError;
use crate::sensor::SensorArray;
use xylem_thermal::{AdaptiveController, RecoveryReport};

/// First bytes of every checkpoint file.
pub const CHECKPOINT_MAGIC: &str = "xylem-checkpoint";

/// Current format version; bumped on any payload layout change.
///
/// History: v1 = fixed-step only; v2 adds the optional adaptive
/// controller state ([`DtmCheckpoint::adaptive`]).
pub const CHECKPOINT_VERSION: u64 = 2;

/// Oldest format version [`load`] still accepts. A v1 payload simply
/// lacks the `adaptive` key, which deserializes to `None` — exactly the
/// state of a fixed-step run, so fixed-step resumes from v1 files keep
/// working unchanged.
pub const CHECKPOINT_MIN_VERSION: u64 = 1;

/// Outer envelope: everything needed to reject a bad file before
/// touching the payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Envelope {
    magic: String,
    version: u64,
    /// FNV-1a 64-bit hash of `payload`, hex.
    checksum: String,
    /// The serialized [`DtmCheckpoint`], nested as a string so the
    /// checksum covers exactly the bytes that will be deserialized.
    payload: String,
}

/// Complete mid-run state of a DTM transient loop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DtmCheckpoint {
    /// Control steps completed.
    pub step: usize,
    /// Grid cells in x of the run that wrote the file.
    pub grid_nx: usize,
    /// Grid cells in y.
    pub grid_ny: usize,
    /// Control period (= transient dt), s.
    pub dt: f64,
    /// FNV-1a hash (hex) of the serialized run configuration.
    pub config_hash: String,
    /// Raw node temperatures at `step`.
    pub temps: Vec<f64>,
    /// Controller DVFS level index.
    pub level: usize,
    /// Downward frequency steps so far.
    pub throttle_events: usize,
    /// Samples above trip so far.
    pub above: usize,
    /// Fail-safe activations so far.
    pub failsafe_events: usize,
    /// CG iterations so far.
    pub cg_iterations: usize,
    /// Controller trace so far.
    pub samples: Vec<DtmSample>,
    /// Sensor delay-line state (None for a perfect-telemetry run).
    pub sensors: Option<SensorArray>,
    /// Solver recoveries so far.
    pub recovery: RecoveryReport,
    /// Adaptive step-size controller state (None for a fixed-step run,
    /// and for every pre-adaptive v1 file). Serialized bit-exactly so a
    /// resumed adaptive run continues with the same dt, PI history, and
    /// budget accounting as an uninterrupted one.
    pub adaptive: Option<AdaptiveController>,
}

/// FNV-1a 64-bit hash.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Hash of a run configuration's canonical JSON, as stored in
/// [`DtmCheckpoint::config_hash`].
#[must_use]
pub fn config_hash(config_json: &str) -> String {
    format!("{:016x}", fnv1a(config_json.as_bytes()))
}

fn io_err(path: &Path, source: std::io::Error) -> CheckpointError {
    CheckpointError::Io {
        path: path.display().to_string(),
        source,
    }
}

/// Fsyncs the directory containing `path`, making a just-completed
/// rename into that directory durable. An empty parent (bare relative
/// file name) syncs the current directory.
fn fsync_parent(path: &Path) -> Result<(), CheckpointError> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    let dir = std::fs::File::open(parent).map_err(|e| io_err(parent, e))?;
    dir.sync_all().map_err(|e| io_err(parent, e))
}

/// Writes `payload` to `path` wrapped in the checkpoint envelope
/// (magic, version, FNV-1a checksum), durably: temp sibling + file
/// fsync + rename + parent-directory fsync. After this returns, the
/// file survives power loss at any instant — either the old content or
/// the new, never a torn mix, never a vanished entry.
///
/// # Errors
///
/// [`CheckpointError::Io`] on filesystem failures;
/// [`CheckpointError::Corrupt`] if the envelope cannot be serialized.
pub fn save_payload(path: &Path, payload: &str) -> Result<(), CheckpointError> {
    let envelope = Envelope {
        magic: CHECKPOINT_MAGIC.to_owned(),
        version: CHECKPOINT_VERSION,
        checksum: format!("{:016x}", fnv1a(payload.as_bytes())),
        payload: payload.to_owned(),
    };
    let text = serde_json::to_string(&envelope).map_err(|e| CheckpointError::Corrupt {
        reason: format!("envelope serialization failed: {e}"),
    })?;
    let tmp = path.with_extension("tmp");
    {
        use std::io::Write;
        let mut f = std::fs::File::create(&tmp).map_err(|e| io_err(&tmp, e))?;
        f.write_all(text.as_bytes()).map_err(|e| io_err(&tmp, e))?;
        f.sync_all().map_err(|e| io_err(&tmp, e))?;
    }
    std::fs::rename(&tmp, path).map_err(|e| io_err(path, e))?;
    fsync_parent(path)
}

/// Reads and validates an envelope written by [`save_payload`] (magic,
/// version range, checksum) and returns the verified payload string.
///
/// # Errors
///
/// [`CheckpointError::Io`] if the file cannot be read;
/// [`CheckpointError::Corrupt`] for a damaged or foreign file;
/// [`CheckpointError::Mismatch`] for an unsupported version.
pub fn load_payload(path: &Path) -> Result<String, CheckpointError> {
    let text = std::fs::read_to_string(path).map_err(|e| io_err(path, e))?;
    let envelope: Envelope = serde_json::from_str(&text).map_err(|e| CheckpointError::Corrupt {
        reason: format!("envelope parse failed: {e}"),
    })?;
    if envelope.magic != CHECKPOINT_MAGIC {
        return Err(CheckpointError::Corrupt {
            reason: format!("bad magic {:?}", envelope.magic),
        });
    }
    if !(CHECKPOINT_MIN_VERSION..=CHECKPOINT_VERSION).contains(&envelope.version) {
        return Err(CheckpointError::Mismatch {
            what: "format version",
            expected: format!("{CHECKPOINT_MIN_VERSION}..={CHECKPOINT_VERSION}"),
            found: envelope.version.to_string(),
        });
    }
    let sum = format!("{:016x}", fnv1a(envelope.payload.as_bytes()));
    if sum != envelope.checksum {
        return Err(CheckpointError::Corrupt {
            reason: format!(
                "checksum mismatch: stored {}, computed {sum}",
                envelope.checksum
            ),
        });
    }
    Ok(envelope.payload)
}

/// Serializes `ckpt` to `path` atomically and durably (temp file +
/// fsync + rename + directory fsync).
///
/// # Errors
///
/// [`CheckpointError::Io`] on filesystem failures;
/// [`CheckpointError::Corrupt`] if the state cannot be serialized
/// (non-finite temperatures — JSON has no NaN).
pub fn save(path: &Path, ckpt: &DtmCheckpoint) -> Result<(), CheckpointError> {
    if let Some(node) = ckpt.temps.iter().position(|t| !t.is_finite()) {
        return Err(CheckpointError::Corrupt {
            reason: format!("refusing to write non-finite temperature at node {node}"),
        });
    }
    let payload = serde_json::to_string(ckpt).map_err(|e| CheckpointError::Corrupt {
        reason: format!("payload serialization failed: {e}"),
    })?;
    save_payload(path, &payload)
}

/// Loads and validates a checkpoint file (magic, version, checksum,
/// payload shape). Run-compatibility checks are the caller's job via
/// [`DtmCheckpoint::validate_against`].
///
/// # Errors
///
/// [`CheckpointError::Io`] if the file cannot be read;
/// [`CheckpointError::Corrupt`] for a damaged or foreign file;
/// [`CheckpointError::Mismatch`] for an unsupported version.
pub fn load(path: &Path) -> Result<DtmCheckpoint, CheckpointError> {
    let payload = load_payload(path)?;
    serde_json::from_str(&payload).map_err(|e| CheckpointError::Corrupt {
        reason: format!("payload parse failed: {e}"),
    })
}

impl DtmCheckpoint {
    /// Confirms the checkpoint belongs to the resuming run.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Mismatch`] naming the first field (grid
    /// shape, dt, config hash) that disagrees.
    pub fn validate_against(
        &self,
        grid_nx: usize,
        grid_ny: usize,
        dt: f64,
        config_hash: &str,
    ) -> Result<(), CheckpointError> {
        if (self.grid_nx, self.grid_ny) != (grid_nx, grid_ny) {
            return Err(CheckpointError::Mismatch {
                what: "grid shape",
                expected: format!("{grid_nx}x{grid_ny}"),
                found: format!("{}x{}", self.grid_nx, self.grid_ny),
            });
        }
        if self.dt.to_bits() != dt.to_bits() {
            return Err(CheckpointError::Mismatch {
                what: "time step",
                expected: format!("{dt:e}"),
                found: format!("{:e}", self.dt),
            });
        }
        if self.config_hash != config_hash {
            return Err(CheckpointError::Mismatch {
                what: "config hash",
                expected: config_hash.to_owned(),
                found: self.config_hash.clone(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_checkpoint() -> DtmCheckpoint {
        DtmCheckpoint {
            step: 17,
            grid_nx: 12,
            grid_ny: 12,
            dt: 1e-3,
            config_hash: config_hash("{\"policy\":1}"),
            temps: vec![45.0, 46.25, 47.5],
            level: 2,
            throttle_events: 3,
            above: 1,
            failsafe_events: 0,
            cg_iterations: 512,
            samples: Vec::new(),
            sensors: None,
            recovery: RecoveryReport::default(),
            adaptive: None,
        }
    }

    #[test]
    fn round_trip_is_exact() {
        let dir = std::env::temp_dir().join("xylem-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("round_trip.ckpt");
        let mut ckpt = sample_checkpoint();
        // Awkward floats that must survive bit-exactly.
        ckpt.temps = vec![0.1 + 0.2, 1.0 / 3.0, f64::MIN_POSITIVE, 95.000_000_1];
        save(&path, &ckpt).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(ckpt, back);
        for (a, b) in ckpt.temps.iter().zip(&back.temps) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn corruption_is_detected() {
        let dir = std::env::temp_dir().join("xylem-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corrupt.ckpt");
        save(&path, &sample_checkpoint()).unwrap();
        let mut text = std::fs::read_to_string(&path).unwrap();
        // Flip a digit inside the payload without breaking the JSON.
        let pos = text.find("45.0").unwrap();
        text.replace_range(pos..pos + 4, "54.0");
        std::fs::write(&path, text).unwrap();
        let err = load(&path).unwrap_err();
        assert!(matches!(err, CheckpointError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn truncation_is_detected() {
        let dir = std::env::temp_dir().join("xylem-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("truncated.ckpt");
        save(&path, &sample_checkpoint()).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() / 2]).unwrap();
        assert!(load(&path).is_err());
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = load(Path::new("/nonexistent/xylem.ckpt")).unwrap_err();
        assert!(matches!(err, CheckpointError::Io { .. }));
    }

    #[test]
    fn mismatched_run_is_rejected_field_by_field() {
        let c = sample_checkpoint();
        assert!(c.validate_against(12, 12, 1e-3, &c.config_hash).is_ok());
        assert!(matches!(
            c.validate_against(16, 16, 1e-3, &c.config_hash),
            Err(CheckpointError::Mismatch {
                what: "grid shape",
                ..
            })
        ));
        assert!(matches!(
            c.validate_against(12, 12, 2e-3, &c.config_hash),
            Err(CheckpointError::Mismatch {
                what: "time step",
                ..
            })
        ));
        assert!(matches!(
            c.validate_against(12, 12, 1e-3, "deadbeef"),
            Err(CheckpointError::Mismatch {
                what: "config hash",
                ..
            })
        ));
    }

    #[test]
    fn non_finite_state_refuses_to_serialize() {
        let dir = std::env::temp_dir().join("xylem-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("nan.ckpt");
        let mut ckpt = sample_checkpoint();
        ckpt.temps[1] = f64::NAN;
        assert!(save(&path, &ckpt).is_err());
    }

    #[test]
    fn save_is_durable_and_atomic() {
        // Regression for the missing parent-directory fsync: `save` must
        // fsync the temp file, leave no temp sibling behind, and sync
        // the directory so the rename itself survives power loss. The
        // fsync calls are on the success path, so this test failing to
        // even *reach* them (e.g. an unwritable parent) is an Io error,
        // never a silent skip.
        let dir = std::env::temp_dir().join("xylem-ckpt-durable-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("durable.ckpt");
        save(&path, &sample_checkpoint()).unwrap();
        assert!(path.exists());
        assert!(
            !path.with_extension("tmp").exists(),
            "temp sibling must be renamed away"
        );
        // Overwrite in place: still atomic, still no temp left.
        let mut second = sample_checkpoint();
        second.step += 1;
        save(&path, &second).unwrap();
        assert!(!path.with_extension("tmp").exists());
        assert_eq!(load(&path).unwrap().step, second.step);
        // A parent that cannot be opened for the directory sync (or the
        // write) is a clean Io error, not a panic.
        let bad = dir.join("no-such-subdir").join("x.ckpt");
        assert!(matches!(
            save(&bad, &sample_checkpoint()),
            Err(CheckpointError::Io { .. })
        ));
    }

    #[test]
    fn generic_payload_round_trips_and_rejects_tampering() {
        let dir = std::env::temp_dir().join("xylem-ckpt-durable-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("payload.ckpt");
        let payload = "{\"session\":\"s-0007\",\"step\":41,\"temps\":[45.5,46.25]}";
        save_payload(&path, payload).unwrap();
        assert_eq!(load_payload(&path).unwrap(), payload);
        // Flip one payload byte: checksum must catch it.
        let mut text = std::fs::read_to_string(&path).unwrap();
        let pos = text.find("41").unwrap();
        text.replace_range(pos..pos + 2, "14");
        std::fs::write(&path, text).unwrap();
        assert!(matches!(
            load_payload(&path),
            Err(CheckpointError::Corrupt { .. })
        ));
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_eq!(fnv1a(b"foobar"), 0x85944171F73967E8);
    }
}
