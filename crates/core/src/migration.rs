//! Lambda-aware thread migration (paper Sec. 5.2.3, Fig. 17).
//!
//! Two threads of an application run at a fixed frequency and migrate
//! every 30 ms around a 4-core ring — either the inner cores or the outer
//! cores. The experiment integrates the transient RC network through the
//! migration schedule and reports the processor hotspot statistics; the
//! inner ring keeps the die cooler on aligned-and-shorted schemes because
//! every landing spot sits near high-conductivity pillars.

use serde::{Deserialize, Serialize};

use xylem_power::{CoreActivity, UncoreActivity};
use xylem_thermal::grid::GridSpec;
use xylem_thermal::power::PowerMap;
use xylem_thermal::units::{Celsius, Watts};
use xylem_workloads::Benchmark;

use crate::placement::ThreadPlacement;
use crate::system::XylemSystem;
use crate::Result;

/// Fixed leakage-temperature estimate for the iso-frequency migration
/// comparisons (the error cancels between rings).
const LEAKAGE_TEMP_ESTIMATE: Celsius = Celsius::new(90.0);

/// DRAM temperature estimate for the refresh/leakage terms of the DRAM
/// energy model.
const DRAM_TEMP_ESTIMATE_C: f64 = 85.0;

/// Parameters of a migration experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MigrationConfig {
    /// Core frequency, GHz (the same for both rings, per the paper).
    pub f_ghz: f64,
    /// Migration period, s (paper: 30 ms).
    pub period_s: f64,
    /// Backward-Euler step, s.
    pub dt_s: f64,
    /// Full ring rotations to simulate (4 periods each). The first
    /// rotation is warm-up; statistics cover the rest.
    pub rotations: usize,
    /// Thermal grid for the transient solves (coarser than the
    /// steady-state experiments to keep the transient affordable).
    pub grid: GridSpec,
}

impl MigrationConfig {
    /// The paper's setup: 30 ms period at 2.4 GHz, two rotations measured
    /// after one warm-up rotation, on a 32x32 grid.
    pub fn paper_default() -> Self {
        MigrationConfig {
            f_ghz: 2.4,
            period_s: 0.030,
            dt_s: 0.005,
            rotations: 3,
            grid: GridSpec::new(32, 32),
        }
    }
}

/// Hotspot statistics over the measured rotations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MigrationResult {
    /// Peak processor hotspot, deg C.
    pub max_hotspot_c: f64,
    /// Time-averaged processor hotspot, deg C.
    pub mean_hotspot_c: f64,
    /// Migrations performed during the measured window.
    pub migrations: usize,
}

/// Runs the migration experiment for `benchmark` around `ring` (4 cores).
///
/// # Errors
///
/// Propagates model errors.
///
/// # Panics
///
/// Panics if `ring` does not contain exactly 4 cores or the config is
/// degenerate.
pub fn migration_experiment(
    system: &XylemSystem,
    benchmark: Benchmark,
    ring: &ThreadPlacement,
    cfg: &MigrationConfig,
) -> Result<MigrationResult> {
    assert_eq!(ring.len(), 4, "migration ring must have 4 cores");
    assert!(cfg.period_s > 0.0 && cfg.dt_s > 0.0 && cfg.rotations >= 2);
    let steps_per_period = (cfg.period_s / cfg.dt_s).round().max(1.0) as usize;

    let built = system.built();
    let model = built.stack().discretize(cfg.grid)?;
    let pm_layer = built.proc_metal_layer();

    // Two threads at the ring's opposite positions; performance inputs.
    let metrics = system.machine().run(benchmark, cfg.f_ghz, 2);
    let dvfs = system.power_model().dvfs().clone();
    let point = dvfs.point_at(cfg.f_ghz);

    // Power maps for the 4 ring phases (leakage at a fixed 90 C estimate:
    // the comparison is iso-frequency, so the error cancels).
    let mut phase_maps = Vec::with_capacity(4);
    for phase in 0..4 {
        let active = [ring.cores()[phase], ring.cores()[(phase + 2) % 4]];
        let mut cores = vec![CoreActivity::idle(point); 8];
        for &c in &active {
            cores[c - 1] = CoreActivity {
                activity: metrics.activity,
                memory_intensity: metrics.memory_intensity,
                point,
            };
        }
        let uncore = UncoreActivity {
            llc: metrics.llc_activity * 0.25,
            mc: metrics.mc_utilization.map(|u| u * 0.25),
            noc: metrics.noc_activity * 0.25,
            point,
        };
        let blocks = system
            .power_model()
            .block_powers(&cores, &uncore, LEAKAGE_TEMP_ESTIMATE);
        let mut map = PowerMap::zeros(&model);
        for (name, w) in &blocks {
            map.add_block_power(&model, pm_layer, name, *w)?;
        }
        // DRAM background+refresh+the two threads' traffic.
        let n_dies = built.dram_metal_layers().len();
        let die_w = xylem_dram::DramEnergyModel::paper_default().die_power(
            metrics.dram_read_rate,
            metrics.dram_write_rate,
            metrics.dram_activate_rate,
            DRAM_TEMP_ESTIMATE_C,
            n_dies,
        );
        for &l in built.dram_metal_layers() {
            map.add_uniform_layer_power(l, Watts::new(die_w));
        }
        phase_maps.push(map);
    }

    // Warm start: steady state of phase 0.
    let mut field = model.steady_state(&phase_maps[0])?;
    let mut max_hot = f64::NEG_INFINITY;
    let mut sum_hot = 0.0;
    let mut samples = 0usize;
    let mut migrations = 0usize;

    for rotation in 0..cfg.rotations {
        for map in &phase_maps {
            for _ in 0..steps_per_period {
                field = model.transient(map, &field, cfg.dt_s, 1)?;
                if rotation > 0 {
                    let hot = field.max_of_layer(pm_layer).get();
                    max_hot = max_hot.max(hot);
                    sum_hot += hot;
                    samples += 1;
                }
            }
            if rotation > 0 {
                migrations += 1;
            }
        }
    }

    Ok(MigrationResult {
        max_hotspot_c: max_hot,
        mean_hotspot_c: sum_hot / samples.max(1) as f64,
        migrations,
    })
}

/// Result of a threshold-triggered migration run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThresholdMigrationResult {
    /// Migrations needed to finish the run.
    pub migrations: usize,
    /// Total simulated time, s.
    pub duration_s: f64,
    /// Peak hotspot, deg C.
    pub max_hotspot_c: f64,
    /// Whether the run completed within the step budget.
    pub completed: bool,
}

/// Threshold-triggered migration (the paper's Sec. 5.2.3 claim: "we will
/// need fewer migrations to complete the program" on rings closer to the
/// high-conductivity sites).
///
/// One thread runs at `f_ghz` on a ring core until the hotspot reaches
/// `trip`, then hops to the coolest idle ring core; the run lasts
/// `duration_s`. Returns how many hops were needed — fewer hops on the
/// inner ring of an aligned-and-shorted stack.
///
/// # Errors
///
/// Propagates model errors.
///
/// # Panics
///
/// Panics if `ring` does not contain exactly 4 cores.
pub fn threshold_migration_experiment(
    system: &XylemSystem,
    benchmark: Benchmark,
    ring: &ThreadPlacement,
    f_ghz: f64,
    trip: Celsius,
    duration_s: f64,
    grid: GridSpec,
) -> Result<ThresholdMigrationResult> {
    assert_eq!(ring.len(), 4, "migration ring must have 4 cores");
    let built = system.built();
    let model = built.stack().discretize(grid)?;
    let pm_layer = built.proc_metal_layer();
    let metrics = system.machine().run(benchmark, f_ghz, 1);
    let dvfs = system.power_model().dvfs().clone();
    let point = dvfs.point_at(f_ghz);

    // One power map per ring position (single active thread).
    let mut maps = Vec::with_capacity(4);
    for &active in ring.cores() {
        let mut cores = vec![CoreActivity::idle(point); 8];
        cores[active - 1] = CoreActivity {
            activity: metrics.activity,
            memory_intensity: metrics.memory_intensity,
            point,
        };
        let uncore = UncoreActivity {
            llc: metrics.llc_activity * 0.125,
            mc: metrics.mc_utilization.map(|u| u * 0.125),
            noc: metrics.noc_activity * 0.125,
            point,
        };
        let blocks = system
            .power_model()
            .block_powers(&cores, &uncore, LEAKAGE_TEMP_ESTIMATE);
        let mut map = PowerMap::zeros(&model);
        for (name, w) in &blocks {
            map.add_block_power(&model, pm_layer, name, *w)?;
        }
        let n_dies = built.dram_metal_layers().len();
        let die_w = xylem_dram::DramEnergyModel::paper_default().die_power(
            metrics.dram_read_rate,
            metrics.dram_write_rate,
            metrics.dram_activate_rate,
            DRAM_TEMP_ESTIMATE_C,
            n_dies,
        );
        for &l in built.dram_metal_layers() {
            map.add_uniform_layer_power(l, Watts::new(die_w));
        }
        maps.push(map);
    }

    let dt = 2e-3;
    let max_steps = (duration_s / dt).ceil() as usize;
    let mut field = xylem_thermal::temperature::TemperatureField::uniform(&model, model.ambient());
    let mut pos = 0usize;
    let mut migrations = 0usize;
    let mut max_hot = f64::NEG_INFINITY;
    // Cell sets per ring core for per-core temperature reads.
    let core_cells: Vec<Vec<usize>> = ring
        .cores()
        .iter()
        .map(|&id| {
            let mut cells = Vec::new();
            for sub in xylem_stack::proc_die::CORE_BLOCKS {
                let name = xylem_stack::proc_die::ProcDieGeometry::core_block_name(id, sub);
                if let Ok(w) = model.block_weights(pm_layer, &name) {
                    cells.extend(w.iter().map(|&(c, _)| c));
                }
            }
            cells
        })
        .collect();

    let mut completed = true;
    for step in 0..max_steps {
        field = model.transient(&maps[pos], &field, dt, 1)?;
        let slice = field.layer_slice(pm_layer);
        let active_hot = core_cells[pos]
            .iter()
            .map(|&c| slice[c])
            .fold(f64::NEG_INFINITY, f64::max);
        max_hot = max_hot.max(field.max_of_layer(pm_layer).get());
        if active_hot >= trip.get() {
            // Hop to the coolest other ring core.
            let next = (0..4)
                .filter(|&i| i != pos)
                .min_by(|&a, &b| {
                    let ta: f64 = core_cells[a].iter().map(|&c| slice[c]).sum();
                    let tb: f64 = core_cells[b].iter().map(|&c| slice[c]).sum();
                    ta.partial_cmp(&tb).expect("finite temps")
                })
                .expect("three candidates");
            pos = next;
            migrations += 1;
        }
        if step + 1 == max_steps {
            completed = true;
        }
    }

    Ok(ThresholdMigrationResult {
        migrations,
        duration_s,
        max_hotspot_c: max_hot,
        completed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SystemConfig;
    use xylem_stack::XylemScheme;

    fn system(scheme: XylemScheme) -> XylemSystem {
        let mut cfg = SystemConfig::fast(scheme);
        cfg.cache_dir = Some(std::env::temp_dir().join("xylem-system-test-cache"));
        XylemSystem::new(cfg).unwrap()
    }

    fn quick_cfg() -> MigrationConfig {
        MigrationConfig {
            f_ghz: 2.4,
            period_s: 0.030,
            dt_s: 0.010,
            rotations: 2,
            grid: GridSpec::new(12, 12),
        }
    }

    #[test]
    fn inner_ring_cooler_on_banke() {
        let s = system(XylemScheme::BankEnhanced);
        let cfg = quick_cfg();
        let inner =
            migration_experiment(&s, Benchmark::Cholesky, &ThreadPlacement::inner(), &cfg).unwrap();
        let outer =
            migration_experiment(&s, Benchmark::Cholesky, &ThreadPlacement::outer(), &cfg).unwrap();
        assert!(
            inner.mean_hotspot_c < outer.mean_hotspot_c,
            "inner {} vs outer {}",
            inner.mean_hotspot_c,
            outer.mean_hotspot_c
        );
    }

    #[test]
    fn threshold_migration_counts_hops() {
        let s = system(XylemScheme::BankEnhanced);
        // A trip level slightly above ambient forces hops quickly.
        let r = threshold_migration_experiment(
            &s,
            Benchmark::Cholesky,
            &ThreadPlacement::inner(),
            3.4,
            Celsius::new(70.0),
            0.2,
            GridSpec::new(12, 12),
        )
        .unwrap();
        assert!(r.migrations > 0, "{r:?}");
        assert!(r.completed);
        // A trip level no run reaches means no hops.
        let calm = threshold_migration_experiment(
            &s,
            Benchmark::Is,
            &ThreadPlacement::inner(),
            2.4,
            Celsius::new(150.0),
            0.05,
            GridSpec::new(12, 12),
        )
        .unwrap();
        assert_eq!(calm.migrations, 0);
    }

    #[test]
    fn inner_ring_needs_no_more_hops_on_banke() {
        let s = system(XylemScheme::BankEnhanced);
        let run = |ring: &ThreadPlacement| {
            threshold_migration_experiment(
                &s,
                Benchmark::Cholesky,
                ring,
                3.4,
                Celsius::new(72.0),
                0.3,
                GridSpec::new(12, 12),
            )
            .unwrap()
            .migrations
        };
        let inner = run(&ThreadPlacement::inner());
        let outer = run(&ThreadPlacement::outer());
        assert!(inner <= outer, "inner {inner} vs outer {outer}");
    }

    #[test]
    fn migration_count_and_bounds() {
        let s = system(XylemScheme::Base);
        let cfg = quick_cfg();
        let r = migration_experiment(&s, Benchmark::Fft, &ThreadPlacement::inner(), &cfg).unwrap();
        assert_eq!(r.migrations, 4); // one measured rotation
        assert!(r.max_hotspot_c >= r.mean_hotspot_c);
        assert!(r.mean_hotspot_c > 45.0 && r.mean_hotspot_c < 120.0);
    }
}
