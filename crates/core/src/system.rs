//! [`XylemSystem`]: the full evaluation chain for one stack.
//!
//! `workload -> archsim metrics -> block powers (+ DRAM power) -> thermal
//! field`, with a short fixed-point loop because leakage depends on
//! temperature. Thermal fields come from the cached unit responses of
//! [`crate::response`], so an evaluation costs microseconds after the
//! one-time per-scheme solve.

use std::path::PathBuf;

use serde::{Deserialize, Serialize};

use xylem_archsim::{AppMetrics, Machine};
use xylem_dram::DramEnergyModel;
use xylem_power::{CoreActivity, ProcessorPowerModel, UncoreActivity};
use xylem_stack::builder::{BuiltStack, StackConfig};
use xylem_stack::XylemScheme;
use xylem_thermal::error::ThermalError;
use xylem_thermal::grid::GridSpec;
use xylem_thermal::units::Celsius;
use xylem_workloads::Benchmark;

use crate::evaluation::{Evaluation, WorkloadResult};
use crate::placement::ThreadPlacement;
use crate::response::ThermalResponse;
use crate::Result;

/// One application instance inside a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Instance {
    /// The application.
    pub benchmark: Benchmark,
    /// Where its threads run.
    pub placement: ThreadPlacement,
    /// Core frequency for this instance's cores, GHz.
    pub f_ghz: f64,
}

/// A run: one or more application instances on disjoint cores.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSpec {
    /// The instances.
    pub instances: Vec<Instance>,
    /// Uncore (LLC/bus/MC) frequency, GHz.
    pub uncore_f_ghz: f64,
}

impl RunSpec {
    /// The standard 8-thread run: one application on all cores at `f_ghz`.
    pub fn uniform(benchmark: Benchmark, f_ghz: f64) -> Self {
        RunSpec {
            instances: vec![Instance {
                benchmark,
                placement: ThreadPlacement::all_eight(),
                f_ghz,
            }],
            uncore_f_ghz: f_ghz,
        }
    }

    /// Checks that instances occupy disjoint cores.
    ///
    /// # Errors
    ///
    /// [`ThermalError::BadStack`] describing the conflict.
    pub fn validate(&self) -> Result<()> {
        let mut used = [false; 9];
        for inst in &self.instances {
            for &c in inst.placement.cores() {
                if used[c] {
                    return Err(ThermalError::BadStack {
                        reason: format!("core {c} assigned to two instances"),
                    }
                    .into());
                }
                used[c] = true;
            }
        }
        Ok(())
    }
}

/// Configuration of a [`XylemSystem`].
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// The stack (scheme, dies, geometry, package).
    pub stack: StackConfig,
    /// Thermal grid resolution (the experiments use 64x64; tests use
    /// smaller grids).
    pub grid: GridSpec,
    /// Directory for the unit-response disk cache (`None` disables
    /// caching).
    pub cache_dir: Option<PathBuf>,
    /// Leakage/temperature fixed-point iterations.
    pub leakage_iterations: usize,
}

impl SystemConfig {
    /// The paper's evaluation configuration for `scheme` at 64x64.
    pub fn paper_default(scheme: XylemScheme) -> Self {
        SystemConfig {
            stack: StackConfig::paper_default(scheme),
            grid: GridSpec::new(64, 64),
            cache_dir: Some(default_cache_dir()),
            leakage_iterations: 2,
        }
    }

    /// Same, at a reduced grid (for tests and quick runs).
    pub fn fast(scheme: XylemScheme) -> Self {
        SystemConfig {
            grid: GridSpec::new(16, 16),
            ..SystemConfig::paper_default(scheme)
        }
    }
}

/// Default on-disk location for unit-response caches: the
/// `XYLEM_CACHE_DIR` environment variable, or `xylem-response-cache`
/// under the system temp directory.
pub fn default_cache_dir() -> PathBuf {
    std::env::var_os("XYLEM_CACHE_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join("xylem-response-cache"))
}

/// The assembled system: stack + models + cached thermal responses.
#[derive(Debug)]
pub struct XylemSystem {
    config: SystemConfig,
    built: BuiltStack,
    response: ThermalResponse,
    machine: Machine,
    power: ProcessorPowerModel,
    dram_energy: DramEnergyModel,
}

impl XylemSystem {
    /// Builds the stack and computes (or loads) its unit responses.
    ///
    /// # Errors
    ///
    /// Propagates stack construction and solver errors.
    pub fn new(config: SystemConfig) -> Result<Self> {
        let built = config.stack.build()?;
        let response = match &config.cache_dir {
            Some(dir) => ThermalResponse::load_or_compute(dir, &built, config.grid)?,
            None => ThermalResponse::compute(&built, config.grid)?,
        };
        Ok(XylemSystem {
            config,
            built,
            response,
            machine: Machine::paper_default(),
            power: ProcessorPowerModel::paper_default(),
            dram_energy: DramEnergyModel::paper_default(),
        })
    }

    /// The stack configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The built stack (geometry + metadata).
    pub fn built(&self) -> &BuiltStack {
        &self.built
    }

    /// The TTSV scheme.
    pub fn scheme(&self) -> XylemScheme {
        self.config.stack.scheme
    }

    /// The unit-response table.
    pub fn response(&self) -> &ThermalResponse {
        &self.response
    }

    /// The performance model.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// The processor power model.
    pub fn power_model(&self) -> &ProcessorPowerModel {
        &self.power
    }

    /// Evaluates the standard 8-thread run of `benchmark` at `f_ghz`.
    ///
    /// # Errors
    ///
    /// Propagates model errors.
    pub fn evaluate_uniform(&mut self, benchmark: Benchmark, f_ghz: f64) -> Result<Evaluation> {
        self.evaluate(&RunSpec::uniform(benchmark, f_ghz))
    }

    /// Evaluates an arbitrary run.
    ///
    /// # Errors
    ///
    /// Propagates model errors; rejects overlapping placements.
    pub fn evaluate(&mut self, run: &RunSpec) -> Result<Evaluation> {
        run.validate()?;
        let dvfs = self.power.dvfs().clone();
        let uncore_point = dvfs.point_at(run.uncore_f_ghz);

        // Performance metrics per instance (independent of temperature).
        let per_instance: Vec<AppMetrics> = run
            .instances
            .iter()
            .map(|inst| {
                self.machine
                    .run(inst.benchmark, inst.f_ghz, inst.placement.len())
            })
            .collect();

        // Leakage <-> temperature fixed point.
        let mut t_proc = 85.0;
        let mut t_dram = 80.0;
        let mut proc_field = Vec::new();
        let mut dram_field = Vec::new();
        let mut proc_power_w = 0.0;
        let mut dram_power_w = 0.0;
        let iters = self.config.leakage_iterations.max(1);
        for _ in 0..iters {
            // Per-core inputs.
            let mut cores = vec![CoreActivity::idle(uncore_point); 8];
            for (inst, metrics) in run.instances.iter().zip(&per_instance) {
                let point = dvfs.point_at(inst.f_ghz);
                for &c in inst.placement.cores() {
                    cores[c - 1] = CoreActivity {
                        activity: metrics.activity,
                        memory_intensity: metrics.memory_intensity,
                        point,
                    };
                }
            }
            // Uncore inputs: sum of instance demands, clamped.
            let mut llc = 0.0;
            let mut mc = [0.0; 4];
            let mut noc = 0.0;
            for m in &per_instance {
                llc += m.llc_activity * m.threads as f64 / 8.0;
                for (acc, &u) in mc.iter_mut().zip(&m.mc_utilization) {
                    *acc += u;
                }
                noc += m.noc_activity;
            }
            let uncore = UncoreActivity {
                llc: llc.min(1.0),
                mc: mc.map(|u| u.min(1.0)),
                noc: noc.min(1.0),
                point: uncore_point,
            };

            let blocks = self
                .power
                .block_powers(&cores, &uncore, Celsius::new(t_proc));
            let mut proc_powers = vec![0.0; self.response.proc_blocks().len()];
            proc_power_w = 0.0;
            for (name, w) in &blocks {
                let idx = self.response.proc_block_index(name).ok_or_else(|| {
                    ThermalError::BadFloorplan {
                        reason: format!("power block '{name}' not in floorplan"),
                    }
                })?;
                proc_powers[idx] += w.get();
                proc_power_w += w.get();
            }

            // DRAM power per die from summed command rates.
            let n_dies = self.response.n_dram_dies();
            let (mut rd, mut wr, mut act) = (0.0, 0.0, 0.0);
            for m in &per_instance {
                rd += m.dram_read_rate;
                wr += m.dram_write_rate;
                act += m.dram_activate_rate;
            }
            let die_w = self.dram_energy.die_power(rd, wr, act, t_dram, n_dies);
            let dram_powers = vec![die_w; n_dies];
            dram_power_w = die_w * n_dies as f64;

            let (pf, df) = self.response.temperatures(&proc_powers, &dram_powers)?;
            t_proc = ThermalResponse::hotspot(&pf);
            t_dram = ThermalResponse::hotspot(&df);
            proc_field = pf;
            dram_field = df;
        }

        let mut core_hotspot_c = [0.0; 8];
        for id in 1..=8 {
            core_hotspot_c[id - 1] = self.response.core_hotspot(&proc_field, id);
        }

        Ok(Evaluation {
            proc_hotspot_c: ThermalResponse::hotspot(&proc_field),
            core_hotspot_c,
            dram_hotspot_c: ThermalResponse::hotspot(&dram_field),
            proc_power_w,
            dram_power_w,
            total_power_w: proc_power_w + dram_power_w,
            workloads: run
                .instances
                .iter()
                .zip(per_instance)
                .map(|(inst, metrics)| WorkloadResult {
                    benchmark: inst.benchmark,
                    cores: inst.placement.cores().to_vec(),
                    f_ghz: inst.f_ghz,
                    metrics,
                })
                .collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn system(scheme: XylemScheme) -> XylemSystem {
        let mut cfg = SystemConfig::fast(scheme);
        cfg.cache_dir = Some(std::env::temp_dir().join("xylem-system-test-cache"));
        XylemSystem::new(cfg).unwrap()
    }

    #[test]
    fn uniform_run_is_physically_sane() {
        let mut s = system(XylemScheme::Base);
        let e = s.evaluate_uniform(Benchmark::Cholesky, 2.4).unwrap();
        assert!(
            e.proc_hotspot_c > 60.0 && e.proc_hotspot_c < 130.0,
            "{}",
            e.proc_hotspot_c
        );
        assert!(e.dram_hotspot_c < e.proc_hotspot_c);
        assert!((8.0..30.0).contains(&e.proc_power_w), "{}", e.proc_power_w);
        assert!((1.0..6.0).contains(&e.dram_power_w), "{}", e.dram_power_w);
        assert_eq!(e.workloads.len(), 1);
    }

    #[test]
    fn higher_frequency_is_hotter_and_faster() {
        let mut s = system(XylemScheme::Base);
        let a = s.evaluate_uniform(Benchmark::Fft, 2.4).unwrap();
        let b = s.evaluate_uniform(Benchmark::Fft, 3.2).unwrap();
        assert!(b.proc_hotspot_c > a.proc_hotspot_c + 3.0);
        assert!(b.exec_time_s() < a.exec_time_s());
        assert!(b.total_power_w > a.total_power_w);
    }

    #[test]
    fn banke_is_cooler_than_base() {
        let mut base = system(XylemScheme::Base);
        let mut banke = system(XylemScheme::BankEnhanced);
        let eb = base.evaluate_uniform(Benchmark::Barnes, 2.4).unwrap();
        let ee = banke.evaluate_uniform(Benchmark::Barnes, 2.4).unwrap();
        assert!(
            ee.proc_hotspot_c < eb.proc_hotspot_c - 1.0,
            "banke {} vs base {}",
            ee.proc_hotspot_c,
            eb.proc_hotspot_c
        );
    }

    #[test]
    fn compute_bound_hotter_than_memory_bound() {
        let mut s = system(XylemScheme::Base);
        let hot = s.evaluate_uniform(Benchmark::LuNas, 2.4).unwrap();
        let cool = s.evaluate_uniform(Benchmark::Is, 2.4).unwrap();
        assert!(hot.proc_hotspot_c > cool.proc_hotspot_c + 5.0);
        assert!(hot.proc_power_w > cool.proc_power_w + 5.0);
    }

    #[test]
    fn overlapping_instances_rejected() {
        let mut s = system(XylemScheme::Base);
        let run = RunSpec {
            instances: vec![
                Instance {
                    benchmark: Benchmark::Fft,
                    placement: ThreadPlacement::inner(),
                    f_ghz: 2.4,
                },
                Instance {
                    benchmark: Benchmark::Is,
                    placement: ThreadPlacement::new(vec![2, 5]),
                    f_ghz: 2.4,
                },
            ],
            uncore_f_ghz: 2.4,
        };
        assert!(s.evaluate(&run).is_err());
    }

    #[test]
    fn mixed_run_reports_both_workloads() {
        let mut s = system(XylemScheme::Base);
        let run = RunSpec {
            instances: vec![
                Instance {
                    benchmark: Benchmark::LuNas,
                    placement: ThreadPlacement::inner(),
                    f_ghz: 2.4,
                },
                Instance {
                    benchmark: Benchmark::Is,
                    placement: ThreadPlacement::outer(),
                    f_ghz: 2.4,
                },
            ],
            uncore_f_ghz: 2.4,
        };
        let e = s.evaluate(&run).unwrap();
        assert_eq!(e.workloads.len(), 2);
        // Idle-free: all 8 cores busy; inner cores run the hot code.
        assert!(e.core_hotspot_c[1] > e.core_hotspot_c[0] - 10.0);
    }

    #[test]
    fn partial_occupancy_cooler_than_full() {
        let mut s = system(XylemScheme::Base);
        let four = RunSpec {
            instances: vec![Instance {
                benchmark: Benchmark::Cholesky,
                placement: ThreadPlacement::inner(),
                f_ghz: 2.4,
            }],
            uncore_f_ghz: 2.4,
        };
        let e4 = s.evaluate(&four).unwrap();
        let e8 = s.evaluate_uniform(Benchmark::Cholesky, 2.4).unwrap();
        assert!(e4.proc_hotspot_c < e8.proc_hotspot_c);
    }
}
