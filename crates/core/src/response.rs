//! Per-block unit thermal responses (discrete Green's functions).
//!
//! The RC network is linear, so the temperature field is an affine
//! function of block powers:
//!
//! ```text
//! T(cell) = T_ambient_field(cell) + sum_b P_b * R_b(cell)
//! ```
//!
//! [`ThermalResponse::compute`] solves one steady-state problem per power
//! source (81 processor blocks + one uniform source per DRAM die) and
//! stores the responses at the two sensor layers the experiments read:
//! the processor metal layer and the bottom-most DRAM metal layer. Every
//! subsequent evaluation is then a dense dot product instead of a solve —
//! this is what makes sweeping 17 applications x 5 schemes x 12
//! frequencies practical.
//!
//! Responses are cached on disk (JSON under a caller-supplied directory)
//! keyed by a hash of the full stack configuration.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use xylem_stack::builder::BuiltStack;
use xylem_thermal::error::ThermalError;
use xylem_thermal::grid::GridSpec;
use xylem_thermal::power::PowerMap;
use xylem_thermal::units::{Celsius, Watts};

use crate::Result;

/// Sensor-layer responses to unit power in each source.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThermalResponse {
    grid_nx: usize,
    grid_ny: usize,
    ambient_c: f64,
    /// Processor-block names, in source order.
    proc_blocks: Vec<String>,
    /// `proc_response[source][cell]`: K/W at the processor metal layer.
    /// Sources: processor blocks first, then one per DRAM die (top
    /// first).
    proc_response: Vec<Vec<f64>>,
    /// Same sources, sensed at the bottom DRAM metal layer.
    dram_response: Vec<Vec<f64>>,
    /// Number of DRAM-die sources.
    n_dram_dies: usize,
    /// Cells of each core's 9 blocks at the processor metal layer
    /// (core id 1..=8 -> index 0..8).
    core_cells: Vec<Vec<usize>>,
}

impl ThermalResponse {
    /// Solves the unit problems for `built` on `grid`.
    ///
    /// # Errors
    ///
    /// Propagates discretization/solver errors.
    pub fn compute(built: &BuiltStack, grid: GridSpec) -> Result<Self> {
        let model = built.stack().discretize(grid)?;
        let pm_layer = built.proc_metal_layer();
        let bd_layer = built.bottom_dram_metal_layer();

        let proc_blocks: Vec<String> = model.block_names(pm_layer).to_vec();
        let n_dram = built.dram_metal_layers().len();

        let mut proc_response = Vec::with_capacity(proc_blocks.len() + n_dram);
        let mut dram_response = Vec::with_capacity(proc_blocks.len() + n_dram);

        // Ambient field: zero power everywhere -> everything at ambient.
        // (The affine term is just the ambient constant for this package.)
        let ambient_c = model.ambient().get();
        let unit = Watts::new(1.0);

        // One workspace for all ~91 unit solves, each warm-started from
        // the previous source's field: neighbouring blocks produce
        // similar unit responses, so the chain converges in a fraction
        // of the cold per-solve iteration count.
        let mut ws = xylem_thermal::SolverWorkspace::new();
        let mut prev: Option<xylem_thermal::TemperatureField> = None;
        for block in &proc_blocks {
            let mut p = PowerMap::zeros(&model);
            p.add_block_power(&model, pm_layer, block, unit)?;
            let t = model.steady_state_from(&p, prev.as_ref(), &mut ws)?;
            proc_response.push(
                t.layer_slice(pm_layer)
                    .iter()
                    .map(|x| x - ambient_c)
                    .collect(),
            );
            dram_response.push(
                t.layer_slice(bd_layer)
                    .iter()
                    .map(|x| x - ambient_c)
                    .collect(),
            );
            prev = Some(t);
        }
        for &die_layer in built.dram_metal_layers() {
            let mut p = PowerMap::zeros(&model);
            p.add_uniform_layer_power(die_layer, unit);
            let t = model.steady_state_from(&p, prev.as_ref(), &mut ws)?;
            proc_response.push(
                t.layer_slice(pm_layer)
                    .iter()
                    .map(|x| x - ambient_c)
                    .collect(),
            );
            dram_response.push(
                t.layer_slice(bd_layer)
                    .iter()
                    .map(|x| x - ambient_c)
                    .collect(),
            );
            prev = Some(t);
        }

        // Core cell sets for per-core hotspot queries.
        let mut core_cells = Vec::with_capacity(8);
        for core in 1..=8usize {
            let mut cells = Vec::new();
            for sub in xylem_stack::proc_die::CORE_BLOCKS {
                let name = xylem_stack::proc_die::ProcDieGeometry::core_block_name(core, sub);
                if let Ok(w) = model.block_weights(pm_layer, &name) {
                    cells.extend(w.iter().map(|&(c, _)| c));
                }
            }
            cells.sort_unstable();
            cells.dedup();
            core_cells.push(cells);
        }

        Ok(ThermalResponse {
            grid_nx: grid.nx(),
            grid_ny: grid.ny(),
            ambient_c,
            proc_blocks,
            proc_response,
            dram_response,
            n_dram_dies: n_dram,
            core_cells,
        })
    }

    /// Loads a cached response for `built`+`grid` from `cache_dir`, or
    /// computes and stores it. Pass a directory like
    /// `target/xylem-cache`; it is created if missing.
    ///
    /// # Errors
    ///
    /// Propagates computation errors. Cache I/O failures fall back to
    /// recomputation (and are reported only if recomputation also fails).
    pub fn load_or_compute(
        cache_dir: impl AsRef<Path>,
        built: &BuiltStack,
        grid: GridSpec,
    ) -> Result<Self> {
        let path = Self::cache_path(cache_dir.as_ref(), built, grid);
        if let Ok(bytes) = std::fs::read(&path) {
            if let Ok(r) = serde_json::from_slice::<ThermalResponse>(&bytes) {
                if r.grid_nx == grid.nx() && r.grid_ny == grid.ny() {
                    return Ok(r);
                }
            }
        }
        let r = Self::compute(built, grid)?;
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        if let Ok(bytes) = serde_json::to_vec(&r) {
            let _ = std::fs::write(&path, bytes);
        }
        Ok(r)
    }

    /// Bump when solver numerics or derived geometry (anything not
    /// captured by the config serialization, e.g. scheme site-placement
    /// logic) change, so stale caches are never served.
    // v3: CSR solver core with AMG preconditioning and warm-started
    // unit solves — numerically equivalent within tolerance, but not
    // bit-identical to v2 fields.
    const CACHE_VERSION: u32 = 3;

    fn cache_path(dir: &Path, built: &BuiltStack, grid: GridSpec) -> PathBuf {
        let mut h = DefaultHasher::new();
        Self::CACHE_VERSION.hash(&mut h);
        // Hash the full configuration (geometry, scheme, package) via its
        // JSON serialization, the *derived* TTSV site list (placement
        // logic lives outside the config), and the grid.
        let cfg = serde_json::to_string(built.config()).unwrap_or_default();
        cfg.hash(&mut h);
        let sites = serde_json::to_string(built.sites()).unwrap_or_default();
        sites.hash(&mut h);
        grid.nx().hash(&mut h);
        grid.ny().hash(&mut h);
        dir.join(format!("response-{:016x}.json", h.finish()))
    }

    /// Whether two responses have identical processor-side unit
    /// responses (used by cache tests).
    pub fn proc_response_eq(&self, other: &ThermalResponse) -> bool {
        self.proc_response == other.proc_response
    }

    /// Ambient temperature.
    pub fn ambient(&self) -> Celsius {
        Celsius::new(self.ambient_c)
    }

    /// The processor-block source names.
    pub fn proc_blocks(&self) -> &[String] {
        &self.proc_blocks
    }

    /// Number of DRAM-die sources.
    pub fn n_dram_dies(&self) -> usize {
        self.n_dram_dies
    }

    /// Index of a processor block source.
    pub fn proc_block_index(&self, name: &str) -> Option<usize> {
        self.proc_blocks.iter().position(|b| b == name)
    }

    /// Temperature fields at the two sensor layers for the given powers:
    /// `(processor metal cells, bottom DRAM metal cells)`, deg C.
    ///
    /// `proc_powers[i]` matches [`ThermalResponse::proc_blocks`]`[i]`;
    /// `dram_powers[d]` is the total power of DRAM die `d` (top first).
    ///
    /// # Errors
    ///
    /// [`ThermalError::PowerMapMismatch`] if the vectors have the wrong
    /// lengths.
    pub fn temperatures(
        &self,
        proc_powers: &[f64],
        dram_powers: &[f64],
    ) -> Result<(Vec<f64>, Vec<f64>)> {
        if proc_powers.len() != self.proc_blocks.len() || dram_powers.len() != self.n_dram_dies {
            return Err(ThermalError::PowerMapMismatch {
                map_nodes: proc_powers.len() + dram_powers.len(),
                model_nodes: self.proc_blocks.len() + self.n_dram_dies,
            }
            .into());
        }
        let cells = self.grid_nx * self.grid_ny;
        let mut proc = vec![self.ambient_c; cells];
        let mut dram = vec![self.ambient_c; cells];
        for (s, &p) in proc_powers.iter().chain(dram_powers.iter()).enumerate() {
            if p == 0.0 {
                continue;
            }
            let rp = &self.proc_response[s];
            let rd = &self.dram_response[s];
            for c in 0..cells {
                proc[c] += p * rp[c];
                dram[c] += p * rd[c];
            }
        }
        Ok((proc, dram))
    }

    /// Maximum of a cell field.
    pub fn hotspot(field: &[f64]) -> f64 {
        field.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Maximum temperature over core `id`'s cells (1..=8).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not in `1..=8`.
    pub fn core_hotspot(&self, proc_field: &[f64], id: usize) -> f64 {
        assert!((1..=8).contains(&id), "core {id} out of range");
        self.core_cells[id - 1]
            .iter()
            .map(|&c| proc_field[c])
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xylem_stack::{StackConfig, XylemScheme};

    fn small_response(scheme: XylemScheme) -> ThermalResponse {
        let built = StackConfig::paper_default(scheme).build().unwrap();
        ThermalResponse::compute(&built, GridSpec::new(16, 16)).unwrap()
    }

    #[test]
    fn source_count_is_blocks_plus_dies() {
        let r = small_response(XylemScheme::Base);
        assert_eq!(r.proc_blocks().len(), 83);
        assert_eq!(r.n_dram_dies(), 8);
        assert_eq!(r.proc_response.len(), 91);
    }

    #[test]
    fn superposition_matches_direct_solve() {
        let built = StackConfig::paper_default(XylemScheme::BankSurround)
            .build()
            .unwrap();
        let grid = GridSpec::new(16, 16);
        let r = ThermalResponse::compute(&built, grid).unwrap();

        // Direct solve with a mixed power map.
        let model = built.stack().discretize(grid).unwrap();
        let pm = built.proc_metal_layer();
        let mut p = PowerMap::zeros(&model);
        p.add_block_power(&model, pm, "core1_fpu", Watts::new(2.0))
            .unwrap();
        p.add_block_power(&model, pm, "llc_top", Watts::new(1.5))
            .unwrap();
        p.add_uniform_layer_power(built.dram_metal_layers()[7], Watts::new(0.4));
        let direct = model.steady_state(&p).unwrap();

        // Superposed.
        let mut proc_powers = vec![0.0; r.proc_blocks().len()];
        proc_powers[r.proc_block_index("core1_fpu").unwrap()] = 2.0;
        proc_powers[r.proc_block_index("llc_top").unwrap()] = 1.5;
        let mut dram_powers = vec![0.0; 8];
        dram_powers[7] = 0.4;
        let (proc, dram) = r.temperatures(&proc_powers, &dram_powers).unwrap();

        let direct_proc = direct.layer_slice(pm);
        for c in 0..proc.len() {
            assert!(
                (proc[c] - direct_proc[c]).abs() < 1e-4,
                "cell {c}: {} vs {}",
                proc[c],
                direct_proc[c]
            );
        }
        let direct_dram = direct.layer_slice(built.bottom_dram_metal_layer());
        for c in 0..dram.len() {
            assert!((dram[c] - direct_dram[c]).abs() < 1e-4);
        }
    }

    #[test]
    fn zero_power_is_ambient() {
        let r = small_response(XylemScheme::Base);
        let (proc, dram) = r.temperatures(&vec![0.0; 83], &vec![0.0; 8]).unwrap();
        assert!(proc.iter().all(|&t| (t - r.ambient().get()).abs() < 1e-12));
        assert!(dram.iter().all(|&t| (t - r.ambient().get()).abs() < 1e-12));
    }

    #[test]
    fn core_hotspot_tracks_its_own_power() {
        let r = small_response(XylemScheme::Base);
        let mut proc_powers = vec![0.0; 83];
        proc_powers[r.proc_block_index("core5_fpu").unwrap()] = 3.0;
        let (proc, _) = r.temperatures(&proc_powers, &vec![0.0; 8]).unwrap();
        let hot5 = r.core_hotspot(&proc, 5);
        let hot4 = r.core_hotspot(&proc, 4); // diagonal corner
        assert!(hot5 > hot4 + 1.0, "{hot5} vs {hot4}");
        assert!((ThermalResponse::hotspot(&proc) - hot5).abs() < 1e-9);
    }

    #[test]
    fn wrong_power_vector_length_rejected() {
        let r = small_response(XylemScheme::Base);
        assert!(r.temperatures(&vec![0.0; 3], &vec![0.0; 8]).is_err());
        assert!(r.temperatures(&vec![0.0; 83], &vec![0.0; 2]).is_err());
    }

    #[test]
    fn disk_cache_roundtrip() {
        let dir = std::env::temp_dir().join("xylem-response-test");
        let _ = std::fs::remove_dir_all(&dir);
        let built = StackConfig::paper_default(XylemScheme::Base)
            .build()
            .unwrap();
        let grid = GridSpec::new(8, 8);
        let a = ThermalResponse::load_or_compute(&dir, &built, grid).unwrap();
        let b = ThermalResponse::load_or_compute(&dir, &built, grid).unwrap();
        assert_eq!(a.proc_response, b.proc_response);
        // A different scheme hashes to a different file.
        let built2 = StackConfig::paper_default(XylemScheme::BankEnhanced)
            .build()
            .unwrap();
        let c = ThermalResponse::load_or_compute(&dir, &built2, grid).unwrap();
        assert_ne!(a.proc_response, c.proc_response);
        let files = std::fs::read_dir(&dir).unwrap().count();
        assert_eq!(files, 2);
    }
}

impl ThermalResponse {
    /// Debug helper: first difference between two responses.
    #[doc(hidden)]
    pub fn debug_diff(&self, other: &ThermalResponse) -> String {
        if self.proc_response.len() != other.proc_response.len() {
            return format!(
                "len {} vs {}",
                self.proc_response.len(),
                other.proc_response.len()
            );
        }
        for (s, (x, y)) in self
            .proc_response
            .iter()
            .zip(&other.proc_response)
            .enumerate()
        {
            if x.len() != y.len() {
                return format!("src {s}: len {} vs {}", x.len(), y.len());
            }
            for (c, (p, q)) in x.iter().zip(y).enumerate() {
                if p.to_bits() != q.to_bits() {
                    return format!(
                        "src {s} cell {c}: {p} vs {q} (bits {:x} vs {:x})",
                        p.to_bits(),
                        q.to_bits()
                    );
                }
            }
        }
        "identical".into()
    }
}
