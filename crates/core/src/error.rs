//! Workspace-level error type.
//!
//! Binaries and examples run whole experiment pipelines — system build,
//! thermal solves, DTM loops, checkpoint I/O — and a single `?`-friendly
//! error type lets their `main`s report any failure with full context
//! instead of unwrapping. [`XylemError`] wraps the substrate errors and
//! implements [`std::error::Error::source`] so callers can walk the
//! chain.

use std::fmt;

use xylem_thermal::ThermalError;

/// An invalid run or policy configuration, reported instead of panicking
/// inside the library (see [`crate::dtm::DtmPolicy::validate`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigError {
    /// Which parameter (or parameter pair) was misconfigured.
    pub what: &'static str,
    /// Why the value is invalid.
    pub reason: String,
}

impl ConfigError {
    /// Builds a configuration error for `what` with a formatted reason.
    pub fn new(what: &'static str, reason: impl Into<String>) -> Self {
        ConfigError {
            what,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid configuration: {}: {}", self.what, self.reason)
    }
}

impl std::error::Error for ConfigError {}

/// Failures of the checkpoint save/load path (see [`crate::checkpoint`]).
#[derive(Debug)]
#[non_exhaustive]
pub enum CheckpointError {
    /// The file could not be read or written.
    Io {
        /// Path involved.
        path: String,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// The file exists but is not a valid checkpoint (bad magic, version,
    /// checksum, or JSON).
    Corrupt {
        /// What failed to validate.
        reason: String,
    },
    /// The checkpoint is internally valid but belongs to a different run
    /// (grid shape, time step, or config hash differ).
    Mismatch {
        /// Which field disagreed.
        what: &'static str,
        /// Value the resuming run expects.
        expected: String,
        /// Value stored in the checkpoint.
        found: String,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io { path, source } => {
                write!(f, "checkpoint I/O failed for {path}: {source}")
            }
            CheckpointError::Corrupt { reason } => {
                write!(f, "corrupt checkpoint: {reason}")
            }
            CheckpointError::Mismatch {
                what,
                expected,
                found,
            } => write!(
                f,
                "checkpoint belongs to a different run: {what} is {found}, \
                 this run expects {expected}"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Failures of the design-space sweep engine (see the `xylem-sweep`
/// crate, which builds on this error type).
#[derive(Debug)]
#[non_exhaustive]
pub enum SweepError {
    /// The sweep journal could not be read or written.
    Io {
        /// Path involved.
        path: String,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// A journal line (other than a torn final line) failed to parse or
    /// carried an impossible record.
    Corrupt {
        /// What failed to validate.
        reason: String,
    },
    /// The journal belongs to a different sweep specification (its
    /// recorded spec hash disagrees with the resuming sweep's).
    SpecMismatch {
        /// Spec hash the resuming sweep computed.
        expected: String,
        /// Spec hash recorded in the journal header.
        found: String,
    },
    /// The sweep completed, but some tasks exhausted every retry and
    /// were quarantined. Carries the quarantine context so callers can
    /// report exactly which configurations are poisoned.
    Quarantined {
        /// Total tasks in the sweep.
        total: usize,
        /// `(task key, final error)` for each quarantined task.
        tasks: Vec<(String, String)>,
    },
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::Io { path, source } => {
                write!(f, "sweep journal I/O failed for {path}: {source}")
            }
            SweepError::Corrupt { reason } => write!(f, "corrupt sweep journal: {reason}"),
            SweepError::SpecMismatch { expected, found } => write!(
                f,
                "sweep journal belongs to a different spec: hash is {found}, \
                 this sweep expects {expected}"
            ),
            SweepError::Quarantined { total, tasks } => {
                write!(f, "sweep quarantined {}/{} tasks:", tasks.len(), total)?;
                for (key, error) in tasks {
                    write!(f, " [{key}: {error}]")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for SweepError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SweepError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// The workspace-level error: everything a Xylem experiment pipeline can
/// fail with. `From` conversions make `?` work uniformly across thermal
/// solves, configuration validation, checkpoint I/O, and sweep runs.
#[derive(Debug)]
#[non_exhaustive]
pub enum XylemError {
    /// A thermal model build or solve failed.
    Thermal(ThermalError),
    /// A run/policy configuration was rejected.
    Config(ConfigError),
    /// Checkpoint save/load failed.
    Checkpoint(CheckpointError),
    /// A design-space sweep failed (journal I/O, spec mismatch, or
    /// quarantined tasks).
    Sweep(SweepError),
}

impl fmt::Display for XylemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XylemError::Thermal(e) => write!(f, "thermal: {e}"),
            XylemError::Config(e) => write!(f, "config: {e}"),
            XylemError::Checkpoint(e) => write!(f, "checkpoint: {e}"),
            XylemError::Sweep(e) => write!(f, "sweep: {e}"),
        }
    }
}

impl std::error::Error for XylemError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            XylemError::Thermal(e) => Some(e),
            XylemError::Config(e) => Some(e),
            XylemError::Checkpoint(e) => Some(e),
            XylemError::Sweep(e) => Some(e),
        }
    }
}

impl From<ThermalError> for XylemError {
    fn from(e: ThermalError) -> Self {
        XylemError::Thermal(e)
    }
}

impl From<ConfigError> for XylemError {
    fn from(e: ConfigError) -> Self {
        XylemError::Config(e)
    }
}

impl From<CheckpointError> for XylemError {
    fn from(e: CheckpointError) -> Self {
        XylemError::Checkpoint(e)
    }
}

impl From<SweepError> for XylemError {
    fn from(e: SweepError) -> Self {
        XylemError::Sweep(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source_chain() {
        let e = XylemError::from(ThermalError::InvalidTimeStep { dt: -1.0 });
        assert!(e.to_string().starts_with("thermal:"));
        assert!(std::error::Error::source(&e).is_some());

        let e = XylemError::from(ConfigError::new("trip", "must exceed release"));
        assert!(e.to_string().contains("trip"));
        assert!(std::error::Error::source(&e).is_some());

        let e = XylemError::from(CheckpointError::Corrupt {
            reason: "checksum mismatch".into(),
        });
        assert!(e.to_string().contains("checksum"));

        let io = CheckpointError::Io {
            path: "/tmp/x".into(),
            source: std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
        };
        assert!(std::error::Error::source(&io).is_some());

        let e = XylemError::from(SweepError::SpecMismatch {
            expected: "aaaa".into(),
            found: "bbbb".into(),
        });
        assert!(e.to_string().starts_with("sweep:"));
        assert!(std::error::Error::source(&e).is_some());

        let e = XylemError::from(SweepError::Quarantined {
            total: 9,
            tasks: vec![("banke/Barnes/2.4".into(), "solver diverged".into())],
        });
        assert!(e.to_string().contains("1/9"));
        assert!(e.to_string().contains("solver diverged"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<XylemError>();
    }
}
