//! Evaluation results: temperatures, power, performance for one run.

use serde::{Deserialize, Serialize};

use xylem_archsim::AppMetrics;
use xylem_workloads::Benchmark;

/// The outcome of evaluating one run (workload + placement + frequencies)
/// on one stack.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Evaluation {
    /// Hotspot of the processor metal layer, deg C.
    pub proc_hotspot_c: f64,
    /// Per-core hotspots (core id 1..=8 -> index 0..8), deg C.
    pub core_hotspot_c: [f64; 8],
    /// Hotspot of the bottom-most DRAM die, deg C.
    pub dram_hotspot_c: f64,
    /// Processor die power, W.
    pub proc_power_w: f64,
    /// DRAM stack power, W.
    pub dram_power_w: f64,
    /// Total stack power, W.
    pub total_power_w: f64,
    /// Per-application performance results for the workloads in the run.
    pub workloads: Vec<WorkloadResult>,
}

/// Per-application performance within a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadResult {
    /// The application.
    pub benchmark: Benchmark,
    /// Cores it occupied.
    pub cores: Vec<usize>,
    /// Its frequency, GHz (cores of one instance share a frequency).
    pub f_ghz: f64,
    /// Full performance metrics.
    pub metrics: AppMetrics,
}

impl Evaluation {
    /// Execution time of the (single) workload, s.
    ///
    /// # Panics
    ///
    /// Panics if the run had zero or multiple workloads.
    pub fn exec_time_s(&self) -> f64 {
        assert_eq!(self.workloads.len(), 1, "run has multiple workloads");
        self.workloads[0].metrics.exec_time_s
    }

    /// Stack energy for the (single) workload: total power times its
    /// execution time, J.
    ///
    /// # Panics
    ///
    /// Panics if the run had zero or multiple workloads.
    pub fn stack_energy_j(&self) -> f64 {
        self.total_power_w * self.exec_time_s()
    }

    /// Hottest core id (1..=8).
    pub fn hottest_core(&self) -> usize {
        let mut best = (1, f64::NEG_INFINITY);
        for (i, &t) in self.core_hotspot_c.iter().enumerate() {
            if t > best.1 {
                best = (i + 1, t);
            }
        }
        best.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_metrics() -> AppMetrics {
        AppMetrics {
            f_ghz: 2.4,
            threads: 8,
            cpi: xylem_archsim::CpiBreakdown {
                base: 0.5,
                l1i_stall: 0.0,
                l2_access: 0.1,
                coherence: 0.0,
                dram: 0.2,
            },
            exec_time_s: 0.05,
            dram_latency_ns: 42.0,
            activity: 0.8,
            memory_intensity: 0.2,
            llc_activity: 0.3,
            mc_utilization: [0.2; 4],
            noc_activity: 0.1,
            dram_read_rate: 1e8,
            dram_write_rate: 5e7,
            dram_activate_rate: 6e7,
            dram_bandwidth_gbps: 9.6,
        }
    }

    #[test]
    fn energy_is_power_times_time() {
        let e = Evaluation {
            proc_hotspot_c: 95.0,
            core_hotspot_c: [90.0, 91.0, 95.0, 89.0, 88.0, 87.0, 86.0, 85.0],
            dram_hotspot_c: 88.0,
            proc_power_w: 20.0,
            dram_power_w: 4.0,
            total_power_w: 24.0,
            workloads: vec![WorkloadResult {
                benchmark: Benchmark::Fft,
                cores: (1..=8).collect(),
                f_ghz: 2.4,
                metrics: dummy_metrics(),
            }],
        };
        assert!((e.stack_energy_j() - 24.0 * 0.05).abs() < 1e-12);
        assert_eq!(e.hottest_core(), 3);
    }
}
