//! Frequency boosting into the thermal headroom (paper Sec. 5.1, 7.3).
//!
//! Xylem's headline optimization: improved vertical conduction lowers the
//! processor temperature, and the freed headroom is spent by raising the
//! DVFS point until the temperature returns to the limit. Two search
//! modes exist:
//!
//! * **iso-temperature** (Fig. 9-12): the limit is the temperature the
//!   *base* stack reached for the same application at 2.4 GHz;
//! * **DTM limits** (Figs. 15-16): the limit is `T_j,max` = 100 deg C for
//!   the processor and 95 deg C for the DRAM — what a dynamic thermal
//!   management system enforces on a real machine.

use serde::{Deserialize, Serialize};

use xylem_thermal::grid::GridSpec;
use xylem_thermal::units::Celsius;
use xylem_thermal::SolverWorkspace;
use xylem_workloads::Benchmark;

use crate::dtm::dvfs_power_maps;
use crate::evaluation::Evaluation;
use crate::system::{RunSpec, XylemSystem};
use crate::Result;

/// Thermal limits for a frequency search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalLimits {
    /// Processor hotspot limit.
    pub proc: Celsius,
    /// DRAM hotspot limit (`None` = unconstrained).
    pub dram: Option<Celsius>,
}

impl ThermalLimits {
    /// The paper's DTM limits: 100 deg C processor, 95 deg C DRAM.
    pub fn paper_dtm() -> Self {
        ThermalLimits {
            proc: Celsius::new(100.0),
            dram: Some(Celsius::new(95.0)),
        }
    }

    /// Iso-temperature limits: match a reference processor temperature
    /// (DRAM unconstrained, as in the paper's Sec. 7.3 methodology).
    pub fn iso_temperature(reference_proc: Celsius) -> Self {
        ThermalLimits {
            proc: reference_proc,
            dram: None,
        }
    }

    /// Whether an evaluation satisfies the limits.
    pub fn admits(&self, e: &Evaluation) -> bool {
        e.proc_hotspot_c <= self.proc.get() + 1e-9
            && self.dram.is_none_or(|d| e.dram_hotspot_c <= d.get() + 1e-9)
    }
}

/// Result of a frequency search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoostOutcome {
    /// Highest admissible frequency, GHz.
    pub f_ghz: f64,
    /// The evaluation at that frequency.
    pub evaluation: Evaluation,
}

/// Finds the highest DVFS point whose run (built by `make_run`) satisfies
/// `limits`. Scans the table bottom-up (12 points; evaluations are cheap
/// through the response cache). Returns `None` if even the lowest point
/// violates the limits.
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn max_frequency_for_run(
    system: &mut XylemSystem,
    limits: ThermalLimits,
    mut make_run: impl FnMut(f64) -> RunSpec,
) -> Result<Option<BoostOutcome>> {
    let points: Vec<f64> = system
        .power_model()
        .dvfs()
        .points()
        .map(|p| p.frequency_ghz)
        .collect();
    let mut best: Option<BoostOutcome> = None;
    for f in points {
        let run = make_run(f);
        let e = system.evaluate(&run)?;
        if limits.admits(&e) {
            best = Some(BoostOutcome {
                f_ghz: f,
                evaluation: e,
            });
        } else {
            break; // temperature is monotone in frequency
        }
    }
    Ok(best)
}

/// Highest frequency for the standard 8-thread run of `benchmark` whose
/// processor hotspot stays at or below the base stack's temperature for
/// the same application at 2.4 GHz (`reference_c`).
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn max_frequency_at_iso_temperature(
    system: &mut XylemSystem,
    benchmark: Benchmark,
    reference: Celsius,
) -> Result<Option<BoostOutcome>> {
    max_frequency_for_run(system, ThermalLimits::iso_temperature(reference), |f| {
        RunSpec::uniform(benchmark, f)
    })
}

/// Highest frequency for the standard 8-thread run under the paper's DTM
/// limits (T_j,max = 100 deg C, DRAM <= 95 deg C).
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn max_frequency_under_limits(
    system: &mut XylemSystem,
    benchmark: Benchmark,
) -> Result<Option<BoostOutcome>> {
    max_frequency_for_run(system, ThermalLimits::paper_dtm(), |f| {
        RunSpec::uniform(benchmark, f)
    })
}

/// Result of a [`max_frequency_direct`] search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DirectBoostOutcome {
    /// Highest admissible frequency, GHz.
    pub f_ghz: f64,
    /// Processor hotspot at that frequency.
    pub proc_hotspot: Celsius,
    /// Bottom-DRAM hotspot at that frequency.
    pub dram_hotspot: Celsius,
    /// Total CG iterations across all frequencies scanned. Each solve
    /// warm-starts from the previous (slightly cooler) frequency's
    /// field, so the whole scan costs little more than one cold solve.
    pub cg_iterations: usize,
}

/// Frequency search by *direct* steady-state solves instead of the
/// superposed response cache: scans the DVFS table bottom-up, solving
/// the full thermal system at each point and warm-starting each solve
/// from the previous frequency's temperature field. Cross-validates the
/// response-cache search (same model, no superposition error) and is
/// the natural consumer of the solver's warm-start contract — adjacent
/// DVFS points differ by a few degrees, so each subsequent solve
/// converges in a fraction of the cold iteration count.
///
/// Returns `None` if even the lowest point violates `limits`.
///
/// # Errors
///
/// Propagates model errors.
pub fn max_frequency_direct(
    system: &XylemSystem,
    benchmark: Benchmark,
    limits: ThermalLimits,
    grid: GridSpec,
) -> Result<Option<DirectBoostOutcome>> {
    let built = system.built();
    let model = built.stack().discretize(grid)?;
    let pm_layer = built.proc_metal_layer();
    let bd_layer = built.bottom_dram_metal_layer();
    let (points, maps) = dvfs_power_maps(system, benchmark, f64::INFINITY, &model)?;

    let mut ws = SolverWorkspace::new();
    let mut prev: Option<xylem_thermal::TemperatureField> = None;
    let mut best: Option<DirectBoostOutcome> = None;
    let mut cg_iterations = 0usize;
    for (f, map) in points.iter().zip(&maps) {
        let field = model.steady_state_from(map, prev.as_ref(), &mut ws)?;
        cg_iterations += field.stats().iterations;
        let proc_hot = field.max_of_layer(pm_layer);
        let dram_hot = field.max_of_layer(bd_layer);
        let admitted = proc_hot.get() <= limits.proc.get() + 1e-9
            && limits.dram.is_none_or(|d| dram_hot.get() <= d.get() + 1e-9);
        if admitted {
            best = Some(DirectBoostOutcome {
                f_ghz: *f,
                proc_hotspot: proc_hot,
                dram_hotspot: dram_hot,
                cg_iterations,
            });
        } else {
            break; // temperature is monotone in frequency
        }
        prev = Some(field);
    }
    if let Some(b) = &mut best {
        b.cg_iterations = cg_iterations;
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SystemConfig;
    use xylem_stack::XylemScheme;

    fn system(scheme: XylemScheme) -> XylemSystem {
        let mut cfg = SystemConfig::fast(scheme);
        cfg.cache_dir = Some(std::env::temp_dir().join("xylem-system-test-cache"));
        XylemSystem::new(cfg).unwrap()
    }

    #[test]
    fn iso_temperature_boost_is_higher_on_banke() {
        let mut base = system(XylemScheme::Base);
        let reference = base
            .evaluate_uniform(Benchmark::Radiosity, 2.4)
            .unwrap()
            .proc_hotspot_c;
        let mut banke = system(XylemScheme::BankEnhanced);
        let boost = max_frequency_at_iso_temperature(
            &mut banke,
            Benchmark::Radiosity,
            Celsius::new(reference),
        )
        .unwrap()
        .expect("banke admits at least 2.4 GHz");
        assert!(boost.f_ghz > 2.4, "{}", boost.f_ghz);
        assert!(boost.evaluation.proc_hotspot_c <= reference + 1e-9);
    }

    #[test]
    fn base_at_its_own_reference_stays_at_2_4() {
        let mut base = system(XylemScheme::Base);
        let reference = base
            .evaluate_uniform(Benchmark::Cholesky, 2.4)
            .unwrap()
            .proc_hotspot_c;
        let boost = max_frequency_at_iso_temperature(
            &mut base,
            Benchmark::Cholesky,
            Celsius::new(reference),
        )
        .unwrap()
        .expect("the reference point itself is admissible");
        assert!((boost.f_ghz - 2.4).abs() < 1e-9, "{}", boost.f_ghz);
    }

    #[test]
    fn direct_search_tracks_the_cached_search() {
        let mut s = system(XylemScheme::BankEnhanced);
        let cached = max_frequency_under_limits(&mut s, Benchmark::Is)
            .unwrap()
            .unwrap();
        let direct = max_frequency_direct(
            &s,
            Benchmark::Is,
            ThermalLimits::paper_dtm(),
            GridSpec::new(16, 16),
        )
        .unwrap()
        .unwrap();
        // Same model, different grid resolution than the cached path
        // (SystemConfig::fast) -> allow one DVFS step of disagreement.
        let points: Vec<f64> = s
            .power_model()
            .dvfs()
            .points()
            .map(|p| p.frequency_ghz)
            .collect();
        let ci = points.iter().position(|&f| f == cached.f_ghz).unwrap();
        let di = points.iter().position(|&f| f == direct.f_ghz).unwrap();
        assert!(ci.abs_diff(di) <= 1, "{} vs {}", cached.f_ghz, direct.f_ghz);
        assert!(direct.proc_hotspot.get() <= 100.0 + 1e-9);
        assert!(direct.cg_iterations > 0);
    }

    #[test]
    fn warm_started_scan_beats_cold_solves() {
        // The direct search's warm-start chain must use fewer CG
        // iterations than solving every scanned point from ambient.
        let s = system(XylemScheme::BankEnhanced);
        let grid = GridSpec::new(16, 16);
        let direct = max_frequency_direct(&s, Benchmark::Is, ThermalLimits::paper_dtm(), grid)
            .unwrap()
            .unwrap();
        let built = s.built();
        let model = built.stack().discretize(grid).unwrap();
        let (points, maps) = dvfs_power_maps(&s, Benchmark::Is, f64::INFINITY, &model).unwrap();
        let mut ws = xylem_thermal::SolverWorkspace::new();
        let mut cold = 0usize;
        for (f, map) in points.iter().zip(&maps) {
            // The search visits the admissible prefix plus the first
            // violator; replicate exactly that set of solves.
            let field = model.steady_state_from(map, None, &mut ws).unwrap();
            cold += field.stats().iterations;
            if *f > direct.f_ghz {
                break;
            }
        }
        assert!(
            direct.cg_iterations < cold,
            "warm {} vs cold {}",
            direct.cg_iterations,
            cold
        );
    }

    #[test]
    fn impossible_limits_return_none() {
        let mut s = system(XylemScheme::Base);
        let out = max_frequency_for_run(
            &mut s,
            ThermalLimits {
                proc: Celsius::new(10.0),
                dram: Some(Celsius::new(10.0)),
            },
            |f| RunSpec::uniform(Benchmark::Fft, f),
        )
        .unwrap();
        assert!(out.is_none());
    }

    #[test]
    fn memory_bound_gets_a_larger_dtm_boost_than_compute_bound() {
        // Cooler applications leave more headroom below T_j,max.
        let mut s = system(XylemScheme::BankEnhanced);
        let cool = max_frequency_under_limits(&mut s, Benchmark::Is)
            .unwrap()
            .unwrap();
        let hot = max_frequency_under_limits(&mut s, Benchmark::LuNas)
            .unwrap()
            .unwrap();
        assert!(cool.f_ghz >= hot.f_ghz, "{} vs {}", cool.f_ghz, hot.f_ghz);
    }
}
