//! Closed-loop dynamic thermal management (DTM).
//!
//! Fig. 7 reports unthrottled steady-state temperatures and notes that "a
//! real machine, a Dynamic Thermal Management (DTM) system would throttle
//! frequencies to prevent excessive temperatures" (Sec. 7.2). This module
//! makes that loop executable: a reactive controller samples the hotspot
//! every control period during a transient simulation and steps the DVFS
//! point down when the trip temperature is exceeded (up again below the
//! release temperature, with hysteresis).

use serde::{Deserialize, Serialize};

use xylem_power::{CoreActivity, UncoreActivity};
use xylem_thermal::grid::GridSpec;
use xylem_thermal::model::ThermalModel;
use xylem_thermal::power::PowerMap;
use xylem_thermal::units::{Celsius, Watts};
use xylem_thermal::SolverWorkspace;
use xylem_workloads::Benchmark;

use crate::system::XylemSystem;
use crate::Result;

/// Leakage-temperature estimate used when precomputing per-DVFS-point
/// power maps: the die is assumed near its thermal limit.
const LEAKAGE_TEMP_ESTIMATE: Celsius = Celsius::new(95.0);

/// DRAM temperature estimate for the refresh/leakage terms of the DRAM
/// energy model (the paper's T_dram,max operating corner).
const DRAM_TEMP_ESTIMATE_C: f64 = 85.0;

/// Reactive DTM policy parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DtmPolicy {
    /// Throttle when the hotspot exceeds this (paper: T_j,max = 100 C).
    pub trip: Celsius,
    /// Re-boost when the hotspot falls below this (hysteresis).
    pub release: Celsius,
    /// Controller sampling period, s.
    pub control_period_s: f64,
}

impl DtmPolicy {
    /// The paper's limits with a 2 C hysteresis band and 1 ms control.
    pub fn paper_default() -> Self {
        DtmPolicy {
            trip: Celsius::new(100.0),
            release: Celsius::new(98.0),
            control_period_s: 1e-3,
        }
    }
}

/// One controller sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DtmSample {
    /// Simulation time, s.
    pub time_s: f64,
    /// DVFS point in force during this period, GHz.
    pub f_ghz: f64,
    /// Hotspot at the end of the period.
    pub hotspot: Celsius,
}

/// Result of a DTM transient run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DtmResult {
    /// Controller trace.
    pub samples: Vec<DtmSample>,
    /// DVFS point at the end of the run, GHz.
    pub final_f_ghz: f64,
    /// Downward frequency steps taken.
    pub throttle_events: usize,
    /// Fraction of samples above the trip temperature.
    pub time_above_trip: f64,
    /// Total conjugate-gradient iterations spent across all transient
    /// steps. Each step warm-starts from the previous field, so this is
    /// far below `samples * cold_iterations`; benchmarks use it to
    /// quantify the warm-start saving.
    pub cg_iterations: usize,
}

impl DtmResult {
    /// Mean frequency over the run, GHz — the effective (DTM-limited)
    /// operating point.
    pub fn mean_f_ghz(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|s| s.f_ghz).sum::<f64>() / self.samples.len() as f64
    }

    /// Peak hotspot seen.
    pub fn peak_hotspot(&self) -> Celsius {
        Celsius::new(
            self.samples
                .iter()
                .map(|s| s.hotspot.get())
                .fold(f64::NEG_INFINITY, f64::max),
        )
    }
}

/// Runs `benchmark` (8 threads) for `duration_s` starting from a cold
/// die, requesting `requested_f_ghz`; the DTM controller throttles as
/// needed. The transient runs on `grid` (coarser than the steady-state
/// experiments).
///
/// # Errors
///
/// Propagates model errors.
///
/// # Panics
///
/// Panics on a degenerate duration/policy.
pub fn dtm_transient(
    system: &XylemSystem,
    benchmark: Benchmark,
    requested_f_ghz: f64,
    duration_s: f64,
    policy: &DtmPolicy,
    grid: GridSpec,
) -> Result<DtmResult> {
    assert!(duration_s > 0.0 && policy.control_period_s > 0.0);
    assert!(policy.release <= policy.trip);
    let built = system.built();
    let model = built.stack().discretize(grid)?;
    let pm_layer = built.proc_metal_layer();
    let (points, maps) = dvfs_power_maps(system, benchmark, requested_f_ghz, &model)?;

    let mut level = maps.len() - 1; // start at the requested point
    let mut field = xylem_thermal::temperature::TemperatureField::uniform(&model, model.ambient());
    let steps = (duration_s / policy.control_period_s).round() as usize;
    let mut samples = Vec::with_capacity(steps);
    let mut throttle_events = 0usize;
    let mut above = 0usize;
    let mut ws = SolverWorkspace::new();
    let mut cg_iterations = 0usize;

    for k in 0..steps {
        // Each step seeds CG with the previous field (warm start) and
        // reuses the workspace + cached backward-Euler operator.
        field = model.transient_with(
            &maps[level],
            &field,
            policy.control_period_s,
            1,
            None,
            &mut ws,
        )?;
        cg_iterations += field.stats().iterations;
        let hot = field.max_of_layer(pm_layer);
        samples.push(DtmSample {
            time_s: (k + 1) as f64 * policy.control_period_s,
            f_ghz: points[level],
            hotspot: hot,
        });
        if hot > policy.trip {
            above += 1;
            if level > 0 {
                level -= 1;
                throttle_events += 1;
            }
        } else if hot < policy.release && level + 1 < maps.len() {
            level += 1;
        }
    }

    Ok(DtmResult {
        final_f_ghz: points[level],
        throttle_events,
        time_above_trip: above as f64 / steps.max(1) as f64,
        samples,
        cg_iterations,
    })
}

/// Precomputes one power map per DVFS point at or below
/// `requested_f_ghz` for `benchmark` running 8 threads on `model`.
/// Returns the admitted frequencies (ascending, matching the DVFS table
/// order) and their maps. Shared by the DTM transient loops, the direct
/// headroom search, and the solver benchmarks.
///
/// # Errors
///
/// Propagates model errors.
///
/// # Panics
///
/// Panics if `requested_f_ghz` is below the whole DVFS range.
pub fn dvfs_power_maps(
    system: &XylemSystem,
    benchmark: Benchmark,
    requested_f_ghz: f64,
    model: &ThermalModel,
) -> Result<(Vec<f64>, Vec<PowerMap>)> {
    let built = system.built();
    let pm_layer = built.proc_metal_layer();
    let dvfs = system.power_model().dvfs().clone();
    let points: Vec<f64> = dvfs
        .points()
        .map(|p| p.frequency_ghz)
        .filter(|&f| f <= requested_f_ghz + 1e-9)
        .collect();
    assert!(
        !points.is_empty(),
        "requested frequency below the DVFS range"
    );
    let mut maps = Vec::with_capacity(points.len());
    for &f in &points {
        let metrics = system.machine().run(benchmark, f, 8);
        let point = dvfs.point_at(f);
        let cores = vec![
            CoreActivity {
                activity: metrics.activity,
                memory_intensity: metrics.memory_intensity,
                point,
            };
            8
        ];
        let uncore = UncoreActivity {
            llc: metrics.llc_activity,
            mc: metrics.mc_utilization,
            noc: metrics.noc_activity,
            point,
        };
        let blocks = system
            .power_model()
            .block_powers(&cores, &uncore, LEAKAGE_TEMP_ESTIMATE);
        let mut map = PowerMap::zeros(model);
        for (name, w) in &blocks {
            map.add_block_power(model, pm_layer, name, *w)?;
        }
        let n_dies = built.dram_metal_layers().len();
        let die_w = xylem_dram::DramEnergyModel::paper_default().die_power(
            metrics.dram_read_rate,
            metrics.dram_write_rate,
            metrics.dram_activate_rate,
            DRAM_TEMP_ESTIMATE_C,
            n_dies,
        );
        for &l in built.dram_metal_layers() {
            map.add_uniform_layer_power(l, Watts::new(die_w));
        }
        maps.push(map);
    }
    Ok((points, maps))
}

/// Runs a **phased** workload (warm-up / main / tail, see
/// [`xylem_workloads::PhasedWorkload`]) under the DTM controller: each
/// phase contributes its instruction-weighted share of `duration_s` with
/// its own power map, so the controller sees a thermal step when the hot
/// main phase begins — the scenario where reactive throttling actually
/// engages on a real machine.
///
/// # Errors
///
/// Propagates model errors.
///
/// # Panics
///
/// Panics on degenerate duration/policy.
pub fn dtm_transient_phased(
    system: &XylemSystem,
    workload: &xylem_workloads::PhasedWorkload,
    requested_f_ghz: f64,
    duration_s: f64,
    policy: &DtmPolicy,
    grid: GridSpec,
) -> Result<DtmResult> {
    assert!(duration_s > 0.0 && policy.control_period_s > 0.0);
    let built = system.built();
    let model = built.stack().discretize(grid)?;
    let pm_layer = built.proc_metal_layer();
    let dvfs = system.power_model().dvfs().clone();
    let points: Vec<f64> = dvfs
        .points()
        .map(|p| p.frequency_ghz)
        .filter(|&f| f <= requested_f_ghz + 1e-9)
        .collect();
    assert!(
        !points.is_empty(),
        "requested frequency below the DVFS range"
    );

    // Power maps per (phase, DVFS point), built from the phase profiles.
    let mut phase_maps: Vec<Vec<PowerMap>> = Vec::new();
    for (pi, _) in workload.phases().iter().enumerate() {
        let profile = workload.phase_profile(pi);
        let mut maps = Vec::with_capacity(points.len());
        for &f in &points {
            let lat = system.machine().dram_latency_under_load(&profile, f, 8);
            let cpi =
                xylem_archsim::interval::cpi_breakdown(system.machine().arch(), &profile, f, lat);
            let activity = profile.activity_peak * (cpi.core() / cpi.total());
            let point = dvfs.point_at(f);
            let cores = vec![
                CoreActivity {
                    activity,
                    memory_intensity: profile.memory_intensity,
                    point,
                };
                8
            ];
            let uncore = UncoreActivity {
                llc: (profile.l1d_mpki / 25.0).min(1.0),
                mc: [(profile.dram_apki() / 8.0).min(1.0); 4],
                noc: (profile.l2_mpki / 10.0).min(1.0),
                point,
            };
            let blocks = system
                .power_model()
                .block_powers(&cores, &uncore, LEAKAGE_TEMP_ESTIMATE);
            let mut map = PowerMap::zeros(&model);
            for (name, w) in &blocks {
                map.add_block_power(&model, pm_layer, name, *w)?;
            }
            let n_dies = built.dram_metal_layers().len();
            let instr_rate = f * 1e9 / cpi.total() * 8.0;
            let acc = instr_rate * profile.dram_apki() / 1000.0;
            let die_w = xylem_dram::DramEnergyModel::paper_default().die_power(
                acc * profile.read_fraction,
                acc * (1.0 - profile.read_fraction),
                acc * (1.0 - profile.row_hit_fraction),
                DRAM_TEMP_ESTIMATE_C,
                n_dies,
            );
            for &l in built.dram_metal_layers() {
                map.add_uniform_layer_power(l, Watts::new(die_w));
            }
            maps.push(map);
        }
        phase_maps.push(maps);
    }

    // Phase boundaries by instruction weight over the wall-clock run.
    let mut boundaries = Vec::new();
    let mut acc = 0.0;
    for ph in workload.phases() {
        acc += ph.weight;
        boundaries.push(acc * duration_s);
    }

    let mut level = points.len() - 1;
    let mut field = xylem_thermal::temperature::TemperatureField::uniform(&model, model.ambient());
    let steps = (duration_s / policy.control_period_s).round() as usize;
    let mut samples = Vec::with_capacity(steps);
    let mut throttle_events = 0usize;
    let mut above = 0usize;
    let mut ws = SolverWorkspace::new();
    let mut cg_iterations = 0usize;
    for k in 0..steps {
        let t = (k + 1) as f64 * policy.control_period_s;
        let phase = boundaries
            .iter()
            .position(|&b| t <= b + 1e-12)
            .unwrap_or(workload.phases().len() - 1);
        field = model.transient_with(
            &phase_maps[phase][level],
            &field,
            policy.control_period_s,
            1,
            None,
            &mut ws,
        )?;
        cg_iterations += field.stats().iterations;
        let hot = field.max_of_layer(pm_layer);
        samples.push(DtmSample {
            time_s: t,
            f_ghz: points[level],
            hotspot: hot,
        });
        if hot > policy.trip {
            above += 1;
            if level > 0 {
                level -= 1;
                throttle_events += 1;
            }
        } else if hot < policy.release && level + 1 < points.len() {
            level += 1;
        }
    }

    Ok(DtmResult {
        final_f_ghz: points[level],
        throttle_events,
        time_above_trip: above as f64 / steps.max(1) as f64,
        samples,
        cg_iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SystemConfig;
    use xylem_stack::XylemScheme;

    fn system(scheme: XylemScheme) -> XylemSystem {
        let mut cfg = SystemConfig::fast(scheme);
        cfg.cache_dir = Some(std::env::temp_dir().join("xylem-system-test-cache"));
        XylemSystem::new(cfg).unwrap()
    }

    fn quick_policy() -> DtmPolicy {
        DtmPolicy {
            trip: Celsius::new(100.0),
            release: Celsius::new(98.0),
            control_period_s: 20e-3,
        }
    }

    #[test]
    fn hot_workload_gets_throttled_on_base() {
        let s = system(XylemScheme::Base);
        let r = dtm_transient(
            &s,
            Benchmark::LuNas,
            3.5,
            3.0,
            &quick_policy(),
            GridSpec::new(12, 12),
        )
        .unwrap();
        assert!(r.throttle_events > 0, "{r:?}");
        assert!(r.final_f_ghz < 3.5);
        // The trip level is only exceeded transiently.
        let tail = &r.samples[r.samples.len() / 2..];
        let tail_above = tail.iter().filter(|s| s.hotspot > 100.5).count();
        assert!(
            tail_above < tail.len() / 4,
            "still hot in steady state: {tail_above}/{}",
            tail.len()
        );
    }

    #[test]
    fn cool_workload_keeps_its_request() {
        let s = system(XylemScheme::BankEnhanced);
        let r = dtm_transient(
            &s,
            Benchmark::Is,
            2.8,
            2.0,
            &quick_policy(),
            GridSpec::new(12, 12),
        )
        .unwrap();
        assert_eq!(r.throttle_events, 0, "{:?}", r.final_f_ghz);
        assert!((r.final_f_ghz - 2.8).abs() < 1e-9);
        assert!(r.peak_hotspot() < 100.0);
    }

    #[test]
    fn dtm_warm_stepping_beats_cold_restarts() {
        use xylem_thermal::temperature::TemperatureField;
        // A cool workload never throttles, so the DTM run is a fixed
        // power map stepped `samples` times — replicate it with the CG
        // iterate forced back to ambient each step and compare costs.
        let s = system(XylemScheme::BankEnhanced);
        let policy = quick_policy();
        let grid = GridSpec::new(12, 12);
        let r = dtm_transient(&s, Benchmark::Is, 2.8, 1.0, &policy, grid).unwrap();
        assert_eq!(r.throttle_events, 0);

        let built = s.built();
        let model = built.stack().discretize(grid).unwrap();
        let (_, maps) = dvfs_power_maps(&s, Benchmark::Is, 2.8, &model).unwrap();
        let map = maps.last().unwrap();
        let ambient = TemperatureField::uniform(&model, model.ambient());
        let mut field = ambient.clone();
        let mut ws = SolverWorkspace::new();
        let mut cold = 0usize;
        for _ in 0..r.samples.len() {
            field = model
                .transient_with(
                    map,
                    &field,
                    policy.control_period_s,
                    1,
                    Some(&ambient),
                    &mut ws,
                )
                .unwrap();
            cold += field.stats().iterations;
        }
        assert!(
            r.cg_iterations < cold,
            "warm {} vs cold {}",
            r.cg_iterations,
            cold
        );
    }

    #[test]
    fn phased_run_throttles_in_the_hot_phase() {
        use xylem_workloads::PhasedWorkload;
        let s = system(XylemScheme::Base);
        let w = PhasedWorkload::standard(Benchmark::Cholesky);
        let r =
            dtm_transient_phased(&s, &w, 3.5, 2.4, &quick_policy(), GridSpec::new(12, 12)).unwrap();
        assert_eq!(
            r.samples.len(),
            (2.4 / quick_policy().control_period_s).round() as usize
        );
        // The warm-up phase (first 15%) is cooler than the main phase.
        let n = r.samples.len();
        let warmup_max = r.samples[..n * 15 / 100]
            .iter()
            .map(|s| s.hotspot.get())
            .fold(f64::NEG_INFINITY, f64::max);
        let main_max = r.samples[n * 20 / 100..n * 80 / 100]
            .iter()
            .map(|s| s.hotspot.get())
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(main_max > warmup_max, "{main_max} vs {warmup_max}");
    }

    #[test]
    fn pillars_raise_the_dtm_limited_frequency() {
        let policy = quick_policy();
        let grid = GridSpec::new(12, 12);
        let base = dtm_transient(
            &system(XylemScheme::Base),
            Benchmark::Cholesky,
            3.5,
            3.0,
            &policy,
            grid,
        )
        .unwrap();
        let banke = dtm_transient(
            &system(XylemScheme::BankEnhanced),
            Benchmark::Cholesky,
            3.5,
            3.0,
            &policy,
            grid,
        )
        .unwrap();
        assert!(
            banke.mean_f_ghz() > base.mean_f_ghz(),
            "banke {} vs base {}",
            banke.mean_f_ghz(),
            base.mean_f_ghz()
        );
    }
}
