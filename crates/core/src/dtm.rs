//! Closed-loop dynamic thermal management (DTM).
//!
//! Fig. 7 reports unthrottled steady-state temperatures and notes that "a
//! real machine, a Dynamic Thermal Management (DTM) system would throttle
//! frequencies to prevent excessive temperatures" (Sec. 7.2). This module
//! makes that loop executable: a reactive controller samples the hotspot
//! every control period during a transient simulation and steps the DVFS
//! point down when the trip temperature is exceeded (up again below the
//! release temperature, with hysteresis).
//!
//! Beyond the seed's perfect-telemetry loop, [`dtm_transient_configured`]
//! runs the controller against an imperfect [`SensorModel`] with
//! injectable faults, throttles to the DVFS floor when no sensor reading
//! is credible (fail-safe), survives solver trouble through the fallback
//! ladder (the per-field [`RecoveryReport`]s are aggregated into
//! [`DtmResult::recovery`]), and periodically checkpoints its full state
//! so a killed run resumes bit-identically (see [`crate::checkpoint`]).

use std::path::PathBuf;

use serde::{Deserialize, Serialize};

use xylem_power::{CoreActivity, UncoreActivity};
use xylem_thermal::grid::GridSpec;
use xylem_thermal::model::ThermalModel;
use xylem_thermal::power::PowerMap;
use xylem_thermal::temperature::TemperatureField;
use xylem_thermal::units::{Celsius, Watts};
use xylem_thermal::{
    AdaptiveController, AdaptiveOptions, AdaptiveSummary, DeadlineGuard, RecoveryReport,
    SolverOptions, SolverWorkspace,
};
use xylem_workloads::Benchmark;

use crate::checkpoint::{self, DtmCheckpoint};
use crate::error::{CheckpointError, ConfigError};
use crate::sensor::{SensorArray, SensorFault, SensorModel};
use crate::system::XylemSystem;
use crate::Result;

/// Leakage-temperature estimate used when precomputing per-DVFS-point
/// power maps: the die is assumed near its thermal limit.
const LEAKAGE_TEMP_ESTIMATE: Celsius = Celsius::new(95.0);

/// DRAM temperature estimate for the refresh/leakage terms of the DRAM
/// energy model (the paper's T_dram,max operating corner).
const DRAM_TEMP_ESTIMATE_C: f64 = 85.0;

/// Transient stepping mode of the DTM control loop.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum SteppingMode {
    /// One fixed backward-Euler step per control period — the historical
    /// behavior, and bit-compatible with pre-adaptive runs.
    #[default]
    Fixed,
    /// Error-controlled adaptive sub-stepping within each control period
    /// (see [`xylem_thermal::adaptive`]): the engine step-doubles,
    /// rejects over-tolerance or diverging steps, and refines the step
    /// after every DVFS level change so control decisions land on
    /// accurately resolved temperatures.
    Adaptive(AdaptiveOptions),
}

impl SteppingMode {
    /// True for the fixed (pre-adaptive) mode.
    pub fn is_fixed(&self) -> bool {
        matches!(self, SteppingMode::Fixed)
    }
}

// The vendored serde stub cannot derive data-carrying enums or skip
// fields, so `SteppingMode` and `DtmPolicy` serialize by hand. The
// `stepping` key is omitted entirely for fixed runs: the serialized
// policy — and therefore every run fingerprint and config hash a
// pre-adaptive (format v1) checkpoint recorded — stays byte-identical.
impl Serialize for SteppingMode {
    fn to_value(&self) -> serde::Value {
        match self {
            SteppingMode::Fixed => serde::Value::String("fixed".to_owned()),
            SteppingMode::Adaptive(o) => o.to_value(),
        }
    }
}

impl Deserialize for SteppingMode {
    fn from_value(v: &serde::Value) -> std::result::Result<Self, serde::DeError> {
        match v {
            serde::Value::Null => Ok(SteppingMode::Fixed),
            serde::Value::String(s) if s == "fixed" => Ok(SteppingMode::Fixed),
            serde::Value::Object(_) => AdaptiveOptions::from_value(v).map(SteppingMode::Adaptive),
            other => Err(serde::DeError::new(format!(
                "expected stepping mode, got {}",
                other.kind()
            ))),
        }
    }
}

/// Reactive DTM policy parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DtmPolicy {
    /// Throttle when the hotspot exceeds this (paper: T_j,max = 100 C).
    pub trip: Celsius,
    /// Re-boost when the hotspot falls below this (hysteresis).
    pub release: Celsius,
    /// Controller sampling period, s.
    pub control_period_s: f64,
    /// How the thermal state advances across each control period.
    pub stepping: SteppingMode,
}

impl Serialize for DtmPolicy {
    fn to_value(&self) -> serde::Value {
        let mut m = serde::Map::new();
        m.insert("trip".to_owned(), self.trip.to_value());
        m.insert("release".to_owned(), self.release.to_value());
        m.insert(
            "control_period_s".to_owned(),
            self.control_period_s.to_value(),
        );
        if !self.stepping.is_fixed() {
            m.insert("stepping".to_owned(), self.stepping.to_value());
        }
        serde::Value::Object(m)
    }
}

impl Deserialize for DtmPolicy {
    fn from_value(v: &serde::Value) -> std::result::Result<Self, serde::DeError> {
        let o = v.as_object().ok_or_else(|| {
            serde::DeError::new(format!("expected object for DtmPolicy, got {}", v.kind()))
        })?;
        let null = serde::Value::Null;
        Ok(DtmPolicy {
            trip: Deserialize::from_value(o.get("trip").unwrap_or(&null))
                .map_err(|e| e.in_field("trip"))?,
            release: Deserialize::from_value(o.get("release").unwrap_or(&null))
                .map_err(|e| e.in_field("release"))?,
            control_period_s: Deserialize::from_value(o.get("control_period_s").unwrap_or(&null))
                .map_err(|e| e.in_field("control_period_s"))?,
            stepping: Deserialize::from_value(o.get("stepping").unwrap_or(&null))
                .map_err(|e| e.in_field("stepping"))?,
        })
    }
}

impl DtmPolicy {
    /// The paper's limits with a 2 C hysteresis band and 1 ms control.
    pub fn paper_default() -> Self {
        DtmPolicy {
            trip: Celsius::new(100.0),
            release: Celsius::new(98.0),
            control_period_s: 1e-3,
            stepping: SteppingMode::Fixed,
        }
    }

    /// This policy with adaptive stepping enabled under `opts`.
    #[must_use]
    pub fn with_adaptive(mut self, opts: AdaptiveOptions) -> Self {
        self.stepping = SteppingMode::Adaptive(opts);
        self
    }

    /// Checks the policy is physically meaningful: finite temperatures,
    /// `release <= trip` (the hysteresis band must not invert), and a
    /// positive, finite control period.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] naming the offending field.
    pub fn validate(&self) -> std::result::Result<(), ConfigError> {
        if !self.trip.get().is_finite() || !self.release.get().is_finite() {
            return Err(ConfigError::new(
                "trip/release",
                format!(
                    "temperatures must be finite, got trip {} release {}",
                    self.trip, self.release
                ),
            ));
        }
        if self.release > self.trip {
            return Err(ConfigError::new(
                "release",
                format!(
                    "release {} must not exceed trip {} (inverted hysteresis)",
                    self.release, self.trip
                ),
            ));
        }
        if !(self.control_period_s.is_finite() && self.control_period_s > 0.0) {
            return Err(ConfigError::new(
                "control_period_s",
                format!(
                    "control period {} s must be positive and finite",
                    self.control_period_s
                ),
            ));
        }
        if let SteppingMode::Adaptive(o) = &self.stepping {
            if let Err(e) = o.validate() {
                return Err(ConfigError::new("stepping", e.to_string()));
            }
        }
        Ok(())
    }
}

/// One controller sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DtmSample {
    /// Simulation time, s.
    pub time_s: f64,
    /// DVFS point in force during this period, GHz.
    pub f_ghz: f64,
    /// Hotspot at the end of the period.
    pub hotspot: Celsius,
}

/// Result of a DTM transient run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DtmResult {
    /// Controller trace.
    pub samples: Vec<DtmSample>,
    /// DVFS point at the end of the run, GHz.
    pub final_f_ghz: f64,
    /// Downward frequency steps taken.
    pub throttle_events: usize,
    /// Fraction of samples above the trip temperature.
    pub time_above_trip: f64,
    /// Total conjugate-gradient iterations spent across all transient
    /// steps. Each step warm-starts from the previous field, so this is
    /// far below `samples * cold_iterations`; benchmarks use it to
    /// quantify the warm-start saving.
    pub cg_iterations: usize,
    /// Control periods where no sensor reading was credible and the
    /// controller fail-safed to the DVFS floor. Always 0 for a
    /// perfect-telemetry run.
    pub failsafe_events: usize,
    /// Solver fallback-ladder activity aggregated over every transient
    /// step. Empty when every solve converged on the configured path.
    pub recovery: RecoveryReport,
    /// Adaptive-stepping summary (accept/reject/hold counts, BE solves,
    /// final step size). `None` for fixed-step runs.
    pub adaptive: Option<AdaptiveSummary>,
}

impl DtmResult {
    /// Mean frequency over the run, GHz — the effective (DTM-limited)
    /// operating point.
    pub fn mean_f_ghz(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let freqs: Vec<f64> = self.samples.iter().map(|s| s.f_ghz).collect();
        xylem_thermal::reduce::pairwise_sum(&freqs) / self.samples.len() as f64
    }

    /// Peak hotspot seen.
    pub fn peak_hotspot(&self) -> Celsius {
        Celsius::new(
            self.samples
                .iter()
                .map(|s| s.hotspot.get())
                .fold(f64::NEG_INFINITY, f64::max),
        )
    }
}

/// Renders a coarse frequency-over-time strip for a controller trace:
/// one digit per sampled step, `0` = 2.4 GHz (DVFS floor) up to `9` =
/// 3.5 GHz (design point), at most `width` glyphs. Shared by the CLI
/// `dtm` command and the `dtm_trace` example so the two render the same
/// format.
#[must_use]
pub fn frequency_strip(samples: &[DtmSample], width: usize) -> String {
    const F_FLOOR_GHZ: f64 = 2.4;
    const F_RANGE_GHZ: f64 = 1.1;
    let stride = (samples.len() / width.max(1)).max(1);
    samples
        .iter()
        .step_by(stride)
        .map(|s| {
            let t = ((s.f_ghz - F_FLOOR_GHZ) / F_RANGE_GHZ * 9.0).round() as u32;
            char::from_digit(t.min(9), 10).unwrap_or('?')
        })
        .collect()
}

/// Periodic checkpointing of a DTM run.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointConfig {
    /// File the state is written to (atomically replaced each time).
    pub path: PathBuf,
    /// Save every this many control steps (0 disables saving).
    pub every_steps: usize,
    /// If the file already exists and matches this run's configuration,
    /// continue from it instead of starting cold.
    pub resume: bool,
}

/// Full configuration of a fault-tolerant DTM run. The seed behavior —
/// perfect telemetry, no checkpointing, the model's own solver options —
/// is [`DtmRunConfig::new`] with everything else left default.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DtmRunConfig {
    /// Controller policy.
    pub policy: DtmPolicy,
    /// Sensor array the controller reads through; `None` reads the true
    /// hotspot directly.
    pub sensors: Option<SensorModel>,
    /// Faults injected into the sensors (ignored without `sensors`).
    pub faults: Vec<SensorFault>,
    /// Solver options override for the transient model (e.g. to force
    /// ladder escalations in fault drills).
    pub solver: Option<SolverOptions>,
    /// Periodic checkpoint/resume.
    pub checkpoint: Option<CheckpointConfig>,
    /// Wall-clock budget for the whole run, enforced by a
    /// [`xylem_thermal::DeadlineGuard`] around the control loop: an
    /// expired deadline aborts the in-flight CG solve with a clean
    /// [`xylem_thermal::ThermalError::DeadlineExceeded`] — never a hang.
    /// `None` (the default) runs unbounded. Excluded from the resume
    /// fingerprint: a re-run with a different budget may resume the
    /// same checkpoint.
    pub deadline_ms: Option<u64>,
}

impl Default for DtmPolicy {
    fn default() -> Self {
        DtmPolicy::paper_default()
    }
}

impl DtmRunConfig {
    /// A plain run under `policy`: perfect telemetry, no faults, no
    /// checkpointing.
    #[must_use]
    pub fn new(policy: DtmPolicy) -> Self {
        DtmRunConfig {
            policy,
            sensors: None,
            faults: Vec::new(),
            solver: None,
            checkpoint: None,
            deadline_ms: None,
        }
    }
}

/// The run parameters a checkpoint must agree on before a resume is
/// accepted; serialized canonically and hashed into
/// [`DtmCheckpoint::config_hash`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct RunFingerprint {
    benchmark: String,
    requested_f_ghz: f64,
    duration_s: f64,
    policy: DtmPolicy,
    sensors: Option<SensorModel>,
    faults: Vec<SensorFault>,
    solver_tolerance: f64,
    solver_max_iterations: usize,
    grid_nx: usize,
    grid_ny: usize,
}

/// Runs `benchmark` (8 threads) for `duration_s` starting from a cold
/// die, requesting `requested_f_ghz`; the DTM controller throttles as
/// needed. The transient runs on `grid` (coarser than the steady-state
/// experiments). Equivalent to [`dtm_transient_configured`] with a plain
/// [`DtmRunConfig`].
///
/// # Errors
///
/// [`crate::XylemError::Config`] for a degenerate duration or policy;
/// otherwise propagates model errors.
pub fn dtm_transient(
    system: &XylemSystem,
    benchmark: Benchmark,
    requested_f_ghz: f64,
    duration_s: f64,
    policy: &DtmPolicy,
    grid: GridSpec,
) -> Result<DtmResult> {
    dtm_transient_configured(
        system,
        benchmark,
        requested_f_ghz,
        duration_s,
        &DtmRunConfig::new(*policy),
        grid,
    )
}

/// The fault-tolerant DTM engine: [`dtm_transient`] plus sensor-driven
/// control, fail-safe throttling, solver-recovery aggregation, and
/// checkpoint/resume, all selected through `run`.
///
/// Controller input: with `run.sensors` set, each period samples the
/// array (noise, quantization, latency, injected faults) and fuses the
/// delivered frame; if no reading is credible the controller assumes
/// the worst and drops to the DVFS floor, counting a
/// [`DtmResult::failsafe_events`]. The recorded
/// [`DtmSample::hotspot`] is always the **true** hotspot, so
/// [`DtmResult::time_above_trip`] measures physical reality, not sensor
/// belief.
///
/// Checkpointing: with `run.checkpoint` set, the loop atomically writes
/// its full state every `every_steps` periods, and with `resume` starts
/// from a matching existing file. Counter-based sensor noise and the
/// deterministic CG core make a resumed run bit-identical to an
/// uninterrupted one — the fault-injection suite asserts exactly that.
///
/// # Errors
///
/// [`crate::XylemError::Config`] for invalid policy/sensor/duration
/// configuration; [`crate::XylemError::Checkpoint`] for an unreadable,
/// corrupt, or mismatched checkpoint; thermal errors only if the solver
/// fallback ladder itself is exhausted.
pub fn dtm_transient_configured(
    system: &XylemSystem,
    benchmark: Benchmark,
    requested_f_ghz: f64,
    duration_s: f64,
    run: &DtmRunConfig,
    grid: GridSpec,
) -> Result<DtmResult> {
    run.policy.validate()?;
    if !(duration_s.is_finite() && duration_s > 0.0) {
        return Err(ConfigError::new(
            "duration_s",
            format!("duration {duration_s} s must be positive and finite"),
        )
        .into());
    }
    if let Some(sm) = &run.sensors {
        sm.validate(grid.nx(), grid.ny())?;
    }

    let built = system.built();
    let mut model = built.stack().discretize(grid)?;
    if let Some(opts) = run.solver {
        model.set_solver_options(opts);
    }
    let pm_layer = built.proc_metal_layer();
    let (points, maps) = dvfs_power_maps(system, benchmark, requested_f_ghz, &model)?;

    let dt = run.policy.control_period_s;
    let steps = (duration_s / dt).round() as usize;
    let opts = model.solver_options();
    let fingerprint = RunFingerprint {
        benchmark: format!("{benchmark:?}"),
        requested_f_ghz,
        duration_s,
        policy: run.policy,
        sensors: run.sensors.clone(),
        faults: run.faults.clone(),
        solver_tolerance: opts.tolerance,
        solver_max_iterations: opts.max_iterations,
        grid_nx: grid.nx(),
        grid_ny: grid.ny(),
    };
    let cfg_hash = checkpoint::config_hash(
        &serde_json::to_string(&fingerprint)
            .map_err(|e| ConfigError::new("fingerprint", format!("serialization failed: {e}")))?,
    );

    let mut field = TemperatureField::uniform(&model, model.ambient());
    let mut level = maps.len() - 1; // start at the requested point
    let mut start_step = 0usize;
    let mut samples: Vec<DtmSample> = Vec::with_capacity(steps);
    let mut throttle_events = 0usize;
    let mut above = 0usize;
    let mut failsafe_events = 0usize;
    let mut cg_iterations = 0usize;
    let mut recovery = RecoveryReport::default();
    let mut sensors = run
        .sensors
        .as_ref()
        .map(|sm| SensorArray::new(sm.clone(), model.ambient()));
    let mut adaptive = match run.policy.stepping {
        SteppingMode::Fixed => None,
        SteppingMode::Adaptive(o) => Some(AdaptiveController::new(o)?),
    };

    if let Some(ck) = &run.checkpoint {
        if ck.resume && ck.path.exists() {
            let c = checkpoint::load(&ck.path)?;
            // An adaptive run cannot resume a pre-adaptive (format v1)
            // checkpoint: the controller state it needs was never saved.
            // Catch this before the config-hash comparison so the error
            // names the real incompatibility instead of a hash mismatch.
            if adaptive.is_some() && c.adaptive.is_none() {
                return Err(CheckpointError::Mismatch {
                    what: "stepping mode",
                    expected: "adaptive controller state (a checkpoint written by an \
                               adaptive-stepping run)"
                        .to_string(),
                    found: "a fixed-step checkpoint without controller state; rerun without \
                            --adaptive to resume it, or restart the adaptive run cold"
                        .to_string(),
                }
                .into());
            }
            c.validate_against(grid.nx(), grid.ny(), dt, &cfg_hash)?;
            if c.level >= maps.len() || c.step > steps {
                return Err(CheckpointError::Corrupt {
                    reason: format!(
                        "state out of range: level {} of {}, step {} of {steps}",
                        c.level,
                        maps.len(),
                        c.step
                    ),
                }
                .into());
            }
            field = TemperatureField::from_raw(&model, c.temps)?;
            start_step = c.step;
            level = c.level;
            samples = c.samples;
            throttle_events = c.throttle_events;
            above = c.above;
            failsafe_events = c.failsafe_events;
            cg_iterations = c.cg_iterations;
            recovery = c.recovery;
            sensors = c.sensors;
            if let Some(ctrl) = c.adaptive {
                adaptive = Some(ctrl);
            }
        }
    }

    // Wall-clock budget for everything below, including resumed runs:
    // the guard is thread-local and checked inside the CG loop, so an
    // expired deadline surfaces as a clean `DeadlineExceeded` from the
    // in-flight solve instead of a hang. RAII drop uninstalls it on
    // every exit path.
    let _deadline = run.deadline_ms.map(|ms| {
        DeadlineGuard::install(std::time::Instant::now() + std::time::Duration::from_millis(ms))
    });

    let mut ws = SolverWorkspace::new();
    for k in start_step..steps {
        // Step latency (solve + sense + decide) lands in the DtmStepMs
        // histogram; checkpoint I/O below is deliberately excluded.
        let step_span = xylem_obs::span("dtm_step", Some(xylem_obs::Hist::DtmStepMs));
        let f_step = points[level];
        // Each step seeds CG with the previous field (warm start) and
        // reuses the workspace + cached backward-Euler operators.
        field = match adaptive.as_mut() {
            Some(ctrl) => model.transient_adaptive(&maps[level], &field, dt, ctrl, &mut ws)?,
            None => model.transient_with(&maps[level], &field, dt, 1, None, &mut ws)?,
        };
        let step_iters = field.stats().iterations;
        cg_iterations += step_iters;
        recovery.merge(field.recovery());
        let true_hot = field.max_of_layer(pm_layer);
        // The controller sees the die through the sensor path (if any);
        // the recorded trace keeps the physical truth.
        let estimate = match &mut sensors {
            Some(arr) => {
                let _fuse_span =
                    xylem_obs::span("sensor_fuse", Some(xylem_obs::Hist::SensorFuseMs));
                let frame = arr.sample(&field, pm_layer, k, &run.faults);
                let fused = arr.fuse(&frame, model.ambient());
                fused.valid.then(|| Celsius::new(fused.value_c))
            }
            None => Some(true_hot),
        };
        samples.push(DtmSample {
            time_s: (k + 1) as f64 * dt,
            f_ghz: f_step,
            hotspot: true_hot,
        });
        if true_hot > run.policy.trip {
            above += 1;
        }
        let level_before = level;
        let action = match estimate {
            None => {
                // Fail-safe: nothing credible to act on — assume the
                // worst and drop to the floor until telemetry returns.
                failsafe_events += 1;
                xylem_obs::incr(xylem_obs::Counter::FailsafeEvents);
                if level > 0 {
                    level = 0;
                    throttle_events += 1;
                    xylem_obs::incr(xylem_obs::Counter::ThrottleEvents);
                }
                "failsafe"
            }
            Some(hot) => {
                if hot > run.policy.trip {
                    if level > 0 {
                        level -= 1;
                        throttle_events += 1;
                        xylem_obs::incr(xylem_obs::Counter::ThrottleEvents);
                        "throttle"
                    } else {
                        "hold"
                    }
                } else if hot < run.policy.release && level + 1 < maps.len() {
                    level += 1;
                    xylem_obs::incr(xylem_obs::Counter::BoostEvents);
                    "boost"
                } else {
                    "hold"
                }
            }
        };
        if level != level_before {
            // A DVFS transition is a power-input discontinuity: refine
            // the adaptive step back to its initial rung so the first
            // periods after the change are resolved accurately.
            if let Some(ctrl) = adaptive.as_mut() {
                ctrl.notify_discontinuity();
            }
        }
        xylem_obs::incr(xylem_obs::Counter::DtmSteps);
        xylem_obs::set_gauge(xylem_obs::Gauge::DtmFreqGhz, points[level]);
        xylem_obs::set_gauge(xylem_obs::Gauge::DtmMaxTempC, true_hot.get());
        if xylem_obs::enabled() {
            let mut ev = xylem_obs::event("dtm_step")
                .u64("step", k as u64)
                .f64("f_ghz", f_step)
                .f64("t_c", true_hot.get())
                .u64("iters", step_iters as u64)
                .f64("residual", field.stats().residual)
                .u64("recovery_attempts", recovery.attempts as u64)
                .str("action", action)
                .u64("level", level as u64);
            ev = match estimate {
                Some(hot) => ev.f64("est_c", hot.get()),
                None => ev.bool("est_lost", true),
            };
            ev.emit();
        }
        drop(step_span);

        if let Some(ck) = &run.checkpoint {
            if ck.every_steps > 0 && (k + 1) % ck.every_steps == 0 {
                let c = DtmCheckpoint {
                    step: k + 1,
                    grid_nx: grid.nx(),
                    grid_ny: grid.ny(),
                    dt,
                    config_hash: cfg_hash.clone(),
                    temps: field.raw().to_vec(),
                    level,
                    throttle_events,
                    above,
                    failsafe_events,
                    cg_iterations,
                    samples: samples.clone(),
                    sensors: sensors.clone(),
                    recovery: recovery.clone(),
                    adaptive: adaptive.clone(),
                };
                checkpoint::save(&ck.path, &c)?;
                xylem_obs::incr(xylem_obs::Counter::CheckpointsWritten);
                if xylem_obs::enabled() {
                    xylem_obs::event("checkpoint")
                        .u64("step", (k + 1) as u64)
                        .emit();
                }
            }
        }
    }

    Ok(DtmResult {
        final_f_ghz: points[level],
        throttle_events,
        time_above_trip: above as f64 / steps.max(1) as f64,
        samples,
        cg_iterations,
        failsafe_events,
        recovery,
        adaptive: adaptive.as_ref().map(|c| c.summary()),
    })
}

/// Precomputes one power map per DVFS point at or below
/// `requested_f_ghz` for `benchmark` running 8 threads on `model`.
/// Returns the admitted frequencies (ascending, matching the DVFS table
/// order) and their maps. Shared by the DTM transient loops, the direct
/// headroom search, and the solver benchmarks.
///
/// # Errors
///
/// [`crate::XylemError::Config`] if `requested_f_ghz` is below the whole
/// DVFS range; otherwise propagates model errors.
pub fn dvfs_power_maps(
    system: &XylemSystem,
    benchmark: Benchmark,
    requested_f_ghz: f64,
    model: &ThermalModel,
) -> Result<(Vec<f64>, Vec<PowerMap>)> {
    let built = system.built();
    let pm_layer = built.proc_metal_layer();
    let dvfs = system.power_model().dvfs().clone();
    let points: Vec<f64> = dvfs
        .points()
        .map(|p| p.frequency_ghz)
        .filter(|&f| f <= requested_f_ghz + 1e-9)
        .collect();
    if points.is_empty() {
        return Err(ConfigError::new(
            "requested_f_ghz",
            format!("requested frequency {requested_f_ghz} GHz is below the whole DVFS range"),
        )
        .into());
    }
    let mut maps = Vec::with_capacity(points.len());
    for &f in &points {
        let metrics = system.machine().run(benchmark, f, 8);
        let point = dvfs.point_at(f);
        let cores = vec![
            CoreActivity {
                activity: metrics.activity,
                memory_intensity: metrics.memory_intensity,
                point,
            };
            8
        ];
        let uncore = UncoreActivity {
            llc: metrics.llc_activity,
            mc: metrics.mc_utilization,
            noc: metrics.noc_activity,
            point,
        };
        let blocks = system
            .power_model()
            .block_powers(&cores, &uncore, LEAKAGE_TEMP_ESTIMATE);
        let mut map = PowerMap::zeros(model);
        for (name, w) in &blocks {
            map.add_block_power(model, pm_layer, name, *w)?;
        }
        let n_dies = built.dram_metal_layers().len();
        let die_w = xylem_dram::DramEnergyModel::paper_default().die_power(
            metrics.dram_read_rate,
            metrics.dram_write_rate,
            metrics.dram_activate_rate,
            DRAM_TEMP_ESTIMATE_C,
            n_dies,
        );
        for &l in built.dram_metal_layers() {
            map.add_uniform_layer_power(l, Watts::new(die_w));
        }
        maps.push(map);
    }
    Ok((points, maps))
}

/// Runs a **phased** workload (warm-up / main / tail, see
/// [`xylem_workloads::PhasedWorkload`]) under the DTM controller: each
/// phase contributes its instruction-weighted share of `duration_s` with
/// its own power map, so the controller sees a thermal step when the hot
/// main phase begins — the scenario where reactive throttling actually
/// engages on a real machine.
///
/// # Errors
///
/// [`crate::XylemError::Config`] for a degenerate duration or policy;
/// otherwise propagates model errors.
pub fn dtm_transient_phased(
    system: &XylemSystem,
    workload: &xylem_workloads::PhasedWorkload,
    requested_f_ghz: f64,
    duration_s: f64,
    policy: &DtmPolicy,
    grid: GridSpec,
) -> Result<DtmResult> {
    policy.validate()?;
    if !(duration_s.is_finite() && duration_s > 0.0) {
        return Err(ConfigError::new(
            "duration_s",
            format!("duration {duration_s} s must be positive and finite"),
        )
        .into());
    }
    let built = system.built();
    let model = built.stack().discretize(grid)?;
    let pm_layer = built.proc_metal_layer();
    let dvfs = system.power_model().dvfs().clone();
    let points: Vec<f64> = dvfs
        .points()
        .map(|p| p.frequency_ghz)
        .filter(|&f| f <= requested_f_ghz + 1e-9)
        .collect();
    if points.is_empty() {
        return Err(ConfigError::new(
            "requested_f_ghz",
            format!("requested frequency {requested_f_ghz} GHz is below the whole DVFS range"),
        )
        .into());
    }

    // Power maps per (phase, DVFS point), built from the phase profiles.
    let mut phase_maps: Vec<Vec<PowerMap>> = Vec::new();
    for (pi, _) in workload.phases().iter().enumerate() {
        let profile = workload.phase_profile(pi);
        let mut maps = Vec::with_capacity(points.len());
        for &f in &points {
            let lat = system.machine().dram_latency_under_load(&profile, f, 8);
            let cpi =
                xylem_archsim::interval::cpi_breakdown(system.machine().arch(), &profile, f, lat);
            let activity = profile.activity_peak * (cpi.core() / cpi.total());
            let point = dvfs.point_at(f);
            let cores = vec![
                CoreActivity {
                    activity,
                    memory_intensity: profile.memory_intensity,
                    point,
                };
                8
            ];
            let uncore = UncoreActivity {
                llc: (profile.l1d_mpki / 25.0).min(1.0),
                mc: [(profile.dram_apki() / 8.0).min(1.0); 4],
                noc: (profile.l2_mpki / 10.0).min(1.0),
                point,
            };
            let blocks = system
                .power_model()
                .block_powers(&cores, &uncore, LEAKAGE_TEMP_ESTIMATE);
            let mut map = PowerMap::zeros(&model);
            for (name, w) in &blocks {
                map.add_block_power(&model, pm_layer, name, *w)?;
            }
            let n_dies = built.dram_metal_layers().len();
            let instr_rate = f * 1e9 / cpi.total() * 8.0;
            let acc = instr_rate * profile.dram_apki() / 1000.0;
            let die_w = xylem_dram::DramEnergyModel::paper_default().die_power(
                acc * profile.read_fraction,
                acc * (1.0 - profile.read_fraction),
                acc * (1.0 - profile.row_hit_fraction),
                DRAM_TEMP_ESTIMATE_C,
                n_dies,
            );
            for &l in built.dram_metal_layers() {
                map.add_uniform_layer_power(l, Watts::new(die_w));
            }
            maps.push(map);
        }
        phase_maps.push(maps);
    }

    // Phase boundaries by instruction weight over the wall-clock run.
    let mut boundaries = Vec::new();
    let mut acc = 0.0;
    for ph in workload.phases() {
        acc += ph.weight;
        boundaries.push(acc * duration_s);
    }

    let mut level = points.len() - 1;
    let mut field = TemperatureField::uniform(&model, model.ambient());
    let steps = (duration_s / policy.control_period_s).round() as usize;
    let mut samples = Vec::with_capacity(steps);
    let mut throttle_events = 0usize;
    let mut above = 0usize;
    let mut ws = SolverWorkspace::new();
    let mut cg_iterations = 0usize;
    let mut recovery = RecoveryReport::default();
    for k in 0..steps {
        let t = (k + 1) as f64 * policy.control_period_s;
        let phase = boundaries
            .iter()
            .position(|&b| t <= b + 1e-12)
            .unwrap_or(workload.phases().len() - 1);
        field = model.transient_with(
            &phase_maps[phase][level],
            &field,
            policy.control_period_s,
            1,
            None,
            &mut ws,
        )?;
        cg_iterations += field.stats().iterations;
        recovery.merge(field.recovery());
        let hot = field.max_of_layer(pm_layer);
        samples.push(DtmSample {
            time_s: t,
            f_ghz: points[level],
            hotspot: hot,
        });
        if hot > policy.trip {
            above += 1;
            if level > 0 {
                level -= 1;
                throttle_events += 1;
            }
        } else if hot < policy.release && level + 1 < points.len() {
            level += 1;
        }
    }

    Ok(DtmResult {
        final_f_ghz: points[level],
        throttle_events,
        time_above_trip: above as f64 / steps.max(1) as f64,
        samples,
        cg_iterations,
        failsafe_events: 0,
        recovery,
        adaptive: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sensor::{FaultKind, SensorSite};
    use crate::system::SystemConfig;
    use xylem_stack::XylemScheme;

    fn system(scheme: XylemScheme) -> XylemSystem {
        let mut cfg = SystemConfig::fast(scheme);
        cfg.cache_dir = Some(std::env::temp_dir().join("xylem-system-test-cache"));
        XylemSystem::new(cfg).unwrap()
    }

    fn quick_policy() -> DtmPolicy {
        DtmPolicy {
            trip: Celsius::new(100.0),
            release: Celsius::new(98.0),
            control_period_s: 20e-3,
            stepping: SteppingMode::Fixed,
        }
    }

    #[test]
    fn policy_validation_rejects_degenerate_configs() {
        assert!(DtmPolicy::paper_default().validate().is_ok());
        let inverted = DtmPolicy {
            trip: Celsius::new(90.0),
            release: Celsius::new(95.0),
            control_period_s: 1e-3,
            stepping: SteppingMode::Fixed,
        };
        assert!(inverted.validate().is_err());
        let bad_adaptive = DtmPolicy::paper_default().with_adaptive(AdaptiveOptions {
            rtol: -1.0,
            ..AdaptiveOptions::default()
        });
        assert!(bad_adaptive.validate().is_err());
        let frozen = DtmPolicy {
            control_period_s: 0.0,
            ..DtmPolicy::paper_default()
        };
        assert!(frozen.validate().is_err());
        let eternal = DtmPolicy {
            control_period_s: f64::INFINITY,
            ..DtmPolicy::paper_default()
        };
        assert!(eternal.validate().is_err());
        // And the run entry points surface it as an error, not a panic.
        let s = system(XylemScheme::Base);
        let r = dtm_transient(
            &s,
            Benchmark::Is,
            2.8,
            1.0,
            &inverted,
            GridSpec::new(12, 12),
        );
        assert!(r.is_err());
    }

    #[test]
    fn hot_workload_gets_throttled_on_base() {
        let s = system(XylemScheme::Base);
        let r = dtm_transient(
            &s,
            Benchmark::LuNas,
            3.5,
            3.0,
            &quick_policy(),
            GridSpec::new(12, 12),
        )
        .unwrap();
        assert!(r.throttle_events > 0, "{r:?}");
        assert!(r.final_f_ghz < 3.5);
        assert_eq!(r.failsafe_events, 0);
        assert!(r.recovery.is_empty(), "healthy run needs no ladder");
        // The trip level is only exceeded transiently.
        let tail = &r.samples[r.samples.len() / 2..];
        let tail_above = tail.iter().filter(|s| s.hotspot > 100.5).count();
        assert!(
            tail_above < tail.len() / 4,
            "still hot in steady state: {tail_above}/{}",
            tail.len()
        );
    }

    #[test]
    fn cool_workload_keeps_its_request() {
        let s = system(XylemScheme::BankEnhanced);
        let r = dtm_transient(
            &s,
            Benchmark::Is,
            2.8,
            2.0,
            &quick_policy(),
            GridSpec::new(12, 12),
        )
        .unwrap();
        assert_eq!(r.throttle_events, 0, "{:?}", r.final_f_ghz);
        assert!((r.final_f_ghz - 2.8).abs() < 1e-9);
        assert!(r.peak_hotspot() < 100.0);
    }

    #[test]
    fn sensored_run_matches_perfect_telemetry_when_ideal() {
        // An ideal sensor on every cell reads exactly the true hotspot,
        // so the controller trace must match the perfect-telemetry loop.
        let s = system(XylemScheme::BankEnhanced);
        let grid = GridSpec::new(12, 12);
        let policy = quick_policy();
        let perfect = dtm_transient(&s, Benchmark::Is, 2.8, 1.0, &policy, grid).unwrap();
        let sites: Vec<SensorSite> = (0..12)
            .flat_map(|ix| (0..12).map(move |iy| SensorSite { ix, iy }))
            .collect();
        let run = DtmRunConfig {
            sensors: Some(SensorModel::ideal(sites, 1)),
            ..DtmRunConfig::new(policy)
        };
        let sensed = dtm_transient_configured(&s, Benchmark::Is, 2.8, 1.0, &run, grid).unwrap();
        assert_eq!(perfect, sensed);
    }

    #[test]
    fn dropout_of_all_sensors_failsafes_to_the_floor() {
        let s = system(XylemScheme::BankEnhanced);
        let grid = GridSpec::new(12, 12);
        let policy = quick_policy();
        let model = SensorModel::ideal(vec![SensorSite { ix: 6, iy: 6 }], 9);
        let run = DtmRunConfig {
            sensors: Some(model),
            faults: vec![SensorFault {
                sensor: 0,
                kind: FaultKind::Dropout,
                from_step: 10,
                to_step: 20,
                value_c: 0.0,
            }],
            ..DtmRunConfig::new(policy)
        };
        let r = dtm_transient_configured(&s, Benchmark::Is, 2.8, 1.0, &run, grid).unwrap();
        assert_eq!(r.failsafe_events, 10);
        // During the blackout the controller sits at the DVFS floor.
        let floor = r
            .samples
            .iter()
            .map(|s| s.f_ghz)
            .fold(f64::INFINITY, f64::min);
        assert!(r.samples[11..20].iter().all(|s| s.f_ghz == floor));
        // Telemetry returns, the controller re-boosts.
        assert!((r.final_f_ghz - 2.8).abs() < 1e-9, "{}", r.final_f_ghz);
    }

    #[test]
    fn dtm_warm_stepping_beats_cold_restarts() {
        // A cool workload never throttles, so the DTM run is a fixed
        // power map stepped `samples` times — replicate it with the CG
        // iterate forced back to ambient each step and compare costs.
        let s = system(XylemScheme::BankEnhanced);
        let policy = quick_policy();
        let grid = GridSpec::new(12, 12);
        let r = dtm_transient(&s, Benchmark::Is, 2.8, 1.0, &policy, grid).unwrap();
        assert_eq!(r.throttle_events, 0);

        let built = s.built();
        let model = built.stack().discretize(grid).unwrap();
        let (_, maps) = dvfs_power_maps(&s, Benchmark::Is, 2.8, &model).unwrap();
        let map = maps.last().unwrap();
        let ambient = TemperatureField::uniform(&model, model.ambient());
        let mut field = ambient.clone();
        let mut ws = SolverWorkspace::new();
        let mut cold = 0usize;
        for _ in 0..r.samples.len() {
            field = model
                .transient_with(
                    map,
                    &field,
                    policy.control_period_s,
                    1,
                    Some(&ambient),
                    &mut ws,
                )
                .unwrap();
            cold += field.stats().iterations;
        }
        assert!(
            r.cg_iterations < cold,
            "warm {} vs cold {}",
            r.cg_iterations,
            cold
        );
    }

    #[test]
    fn phased_run_throttles_in_the_hot_phase() {
        use xylem_workloads::PhasedWorkload;
        let s = system(XylemScheme::Base);
        let w = PhasedWorkload::standard(Benchmark::Cholesky);
        let r =
            dtm_transient_phased(&s, &w, 3.5, 2.4, &quick_policy(), GridSpec::new(12, 12)).unwrap();
        assert_eq!(
            r.samples.len(),
            (2.4 / quick_policy().control_period_s).round() as usize
        );
        // The warm-up phase (first 15%) is cooler than the main phase.
        let n = r.samples.len();
        let warmup_max = r.samples[..n * 15 / 100]
            .iter()
            .map(|s| s.hotspot.get())
            .fold(f64::NEG_INFINITY, f64::max);
        let main_max = r.samples[n * 20 / 100..n * 80 / 100]
            .iter()
            .map(|s| s.hotspot.get())
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(main_max > warmup_max, "{main_max} vs {warmup_max}");
    }

    #[test]
    fn pillars_raise_the_dtm_limited_frequency() {
        let policy = quick_policy();
        let grid = GridSpec::new(12, 12);
        let base = dtm_transient(
            &system(XylemScheme::Base),
            Benchmark::Cholesky,
            3.5,
            3.0,
            &policy,
            grid,
        )
        .unwrap();
        let banke = dtm_transient(
            &system(XylemScheme::BankEnhanced),
            Benchmark::Cholesky,
            3.5,
            3.0,
            &policy,
            grid,
        )
        .unwrap();
        assert!(
            banke.mean_f_ghz() > base.mean_f_ghz(),
            "banke {} vs base {}",
            banke.mean_f_ghz(),
            base.mean_f_ghz()
        );
    }
}
