//! Calibration sweep: all 17 apps x schemes at 2.4 GHz, paper grid.
//!
//! Prints base temperature per app, the bank/banke/isoCount deltas, and
//! the iso-temperature frequency boosts — the quantities DESIGN.md
//! calibrates against (paper: bank -5.0 C / +400 MHz, banke -8.4 C /
//! +720 MHz, isoCount -3.7 C vs bank, prior ~ base).

use xylem::headroom::max_frequency_at_iso_temperature;
use xylem::system::{SystemConfig, XylemSystem};
use xylem_stack::XylemScheme;
use xylem_thermal::units::Celsius;
use xylem_workloads::Benchmark;

fn main() {
    let mut systems: Vec<(XylemScheme, XylemSystem)> = [
        XylemScheme::Base,
        XylemScheme::BankSurround,
        XylemScheme::BankEnhanced,
        XylemScheme::IsoCount,
        XylemScheme::Prior,
    ]
    .into_iter()
    .map(|s| (s, XylemSystem::new(SystemConfig::paper_default(s)).unwrap()))
    .collect();

    println!(
        "{:12} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} | {:>6} {:>6}",
        "app", "P(W)", "base", "d-bank", "d-bnke", "d-iso", "d-prior", "f-bank", "f-bnke"
    );
    let mut sums = [0.0f64; 6];
    for b in Benchmark::ALL {
        let mut temps = Vec::new();
        let mut power = 0.0;
        for (_, sys) in systems.iter_mut() {
            let e = sys.evaluate_uniform(b, 2.4).unwrap();
            power = e.total_power_w;
            temps.push(e.proc_hotspot_c);
        }
        let base = temps[0];
        let boost = |sys: &mut XylemSystem| {
            max_frequency_at_iso_temperature(sys, b, Celsius::new(base))
                .unwrap()
                .map_or(0.0, |o| o.f_ghz)
        };
        let f_bank = boost(&mut systems[1].1);
        let f_banke = boost(&mut systems[2].1);
        println!(
            "{:12} {:7.1} {:7.2} {:7.2} {:7.2} {:7.2} {:7.2} | {:6.1} {:6.1}",
            b.name(),
            power,
            base,
            base - temps[1],
            base - temps[2],
            base - temps[3],
            base - temps[4],
            f_bank,
            f_banke
        );
        sums[0] += base;
        sums[1] += base - temps[1];
        sums[2] += base - temps[2];
        sums[3] += base - temps[3];
        sums[4] += f_bank - 2.4;
        sums[5] += f_banke - 2.4;
    }
    let n = Benchmark::ALL.len() as f64;
    println!(
        "MEAN base {:.2} | d-bank {:.2} d-banke {:.2} d-iso {:.2} | boost bank {:.0} MHz banke {:.0} MHz",
        sums[0] / n,
        sums[1] / n,
        sums[2] / n,
        sums[3] / n,
        sums[4] / n * 1000.0,
        sums[5] / n * 1000.0
    );
}
