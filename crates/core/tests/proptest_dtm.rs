//! Property-based tests for the fault-tolerant DTM runtime: arbitrary
//! sensor-fault schedules must never corrupt the simulation state, and
//! checkpoints must round-trip bit-identically whatever they hold.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use proptest::prelude::*;

use xylem::checkpoint::{self, DtmCheckpoint};
use xylem::dtm::{dtm_transient_configured, DtmPolicy, DtmRunConfig, DtmSample};
use xylem::sensor::{FaultKind, SensorArray, SensorFault, SensorModel};
use xylem::system::{SystemConfig, XylemSystem};
use xylem_stack::XylemScheme;
use xylem_thermal::grid::GridSpec;
use xylem_thermal::units::Celsius;
use xylem_thermal::RecoveryReport;

const STEPS: usize = 30;

/// One system for every case: building it is the dominant cost.
fn system() -> &'static XylemSystem {
    static SYS: OnceLock<XylemSystem> = OnceLock::new();
    SYS.get_or_init(|| {
        let mut cfg = SystemConfig::fast(XylemScheme::Base);
        cfg.cache_dir = Some(std::env::temp_dir().join("xylem-system-test-cache"));
        XylemSystem::new(cfg).unwrap()
    })
}

fn kind_of(tag: u32) -> FaultKind {
    match tag % 3 {
        0 => FaultKind::StuckAt,
        1 => FaultKind::Dropout,
        _ => FaultKind::Spike,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// However the sensors are corrupted — any kind, any window, any
    /// magnitude (including wildly implausible ones), even out-of-range
    /// sensor indices — the DTM loop completes, every recorded
    /// temperature and frequency is finite, and the accounting stays in
    /// range.
    #[test]
    fn fault_schedules_never_corrupt_the_run(
        seed in 0u64..1000,
        noise in 0.0f64..1.0,
        latency in 0usize..3,
        faults in proptest::collection::vec(
            (0usize..6, 0u32..3, 0usize..STEPS, 1usize..STEPS, -200.0f64..300.0),
            0..4,
        ),
    ) {
        let policy = DtmPolicy {
            trip: Celsius::new(100.0),
            release: Celsius::new(98.0),
            control_period_s: 20e-3,
            ..DtmPolicy::paper_default()
        };
        let mut sensors = SensorModel::default_array(12, 12, seed);
        sensors.noise_sigma_c = noise;
        sensors.latency_steps = latency;
        let run = DtmRunConfig {
            sensors: Some(sensors),
            faults: faults
                .iter()
                .map(|&(sensor, tag, from, len, value_c)| SensorFault {
                    sensor,
                    kind: kind_of(tag),
                    from_step: from,
                    to_step: from + len,
                    value_c,
                })
                .collect(),
            ..DtmRunConfig::new(policy)
        };
        let duration = STEPS as f64 * policy.control_period_s;
        let r = dtm_transient_configured(
            system(),
            xylem_workloads::Benchmark::LuNas,
            3.5,
            duration,
            &run,
            GridSpec::new(12, 12),
        )
        .unwrap();
        prop_assert_eq!(r.samples.len(), STEPS);
        for s in &r.samples {
            prop_assert!(s.hotspot.get().is_finite(), "hotspot {:?}", s);
            prop_assert!(s.f_ghz.is_finite() && s.f_ghz > 0.0, "f {:?}", s);
        }
        prop_assert!(r.time_above_trip >= 0.0 && r.time_above_trip <= 1.0,
            "time_above_trip {}", r.time_above_trip);
        prop_assert!(r.failsafe_events <= STEPS);
        prop_assert!(r.mean_f_ghz().is_finite());
        // Observability lock: however hostile the injected readings
        // (NaN-adjacent spikes, dropouts, stuck sensors), no gauge in
        // the metrics registry ever holds a non-finite value.
        for (label, value) in xylem_obs::gauges_snapshot() {
            prop_assert!(value.is_finite(), "gauge {label} non-finite: {value}");
        }
    }

    /// A checkpoint holding arbitrary (finite) state round-trips through
    /// disk bit-identically — floats, nested samples, in-flight sensor
    /// readings and all.
    #[test]
    fn checkpoints_round_trip_bit_identically(
        step in 0usize..1000,
        dt in 1e-6f64..1.0,
        temps in proptest::collection::vec(-40.0f64..140.0, 4..40),
        samples in proptest::collection::vec(
            (0.0f64..10.0, 0.5f64..4.0, 20.0f64..130.0),
            0..10,
        ),
        with_sensors in 0u32..2,
    ) {
        static CASE: AtomicUsize = AtomicUsize::new(0);
        let id = CASE.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!("xylem-prop-ckpt-{id}.json"));
        let sensors = (with_sensors == 1).then(|| {
            let mut sm = SensorModel::default_array(12, 12, step as u64);
            sm.latency_steps = 2;
            SensorArray::new(sm, Celsius::new(45.0))
        });
        let ckpt = DtmCheckpoint {
            step,
            grid_nx: 12,
            grid_ny: 12,
            dt,
            config_hash: checkpoint::config_hash(&format!("case-{id}")),
            temps,
            level: step % 7,
            throttle_events: step / 2,
            above: step / 3,
            failsafe_events: step / 5,
            cg_iterations: step * 11,
            samples: samples
                .iter()
                .map(|&(time_s, f_ghz, hot)| DtmSample {
                    time_s,
                    f_ghz,
                    hotspot: Celsius::new(hot),
                })
                .collect(),
            sensors,
            recovery: RecoveryReport::default(),
            adaptive: None,
        };
        checkpoint::save(&path, &ckpt).unwrap();
        let back = checkpoint::load(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        prop_assert_eq!(ckpt, back);
    }
}
