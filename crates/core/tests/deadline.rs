//! Wall-clock deadlines on the DTM engine (`DtmRunConfig::deadline_ms`,
//! surfaced on the CLI as `--deadline-ms`).
//!
//! The contract mirrors the sweep engine's: an expired deadline aborts
//! the in-flight CG solve with a clean `DeadlineExceeded` error — never
//! a hang, never a partial panic — and a generous deadline changes
//! nothing about the result.

use xylem::dtm::{dtm_transient, dtm_transient_configured, DtmPolicy, DtmRunConfig};
use xylem::system::{SystemConfig, XylemSystem};
use xylem::XylemError;
use xylem_stack::XylemScheme;
use xylem_thermal::grid::GridSpec;
use xylem_thermal::units::Celsius;
use xylem_thermal::ThermalError;
use xylem_workloads::Benchmark;

const GRID: usize = 12;

fn system() -> XylemSystem {
    let mut cfg = SystemConfig::fast(XylemScheme::BankEnhanced);
    cfg.cache_dir = Some(std::env::temp_dir().join("xylem-system-test-cache"));
    XylemSystem::new(cfg).unwrap()
}

fn policy() -> DtmPolicy {
    DtmPolicy {
        trip: Celsius::new(100.0),
        release: Celsius::new(98.0),
        control_period_s: 20e-3,
        ..DtmPolicy::paper_default()
    }
}

#[test]
fn expired_deadline_fails_cleanly_not_hangs() {
    let sys = system();
    let run = DtmRunConfig {
        deadline_ms: Some(0),
        ..DtmRunConfig::new(policy())
    };
    let err = dtm_transient_configured(
        &sys,
        Benchmark::Fft,
        3.4,
        0.4,
        &run,
        GridSpec::new(GRID, GRID),
    )
    .expect_err("a deadline already in the past must abort the run");
    match err {
        XylemError::Thermal(ThermalError::DeadlineExceeded { .. }) => {}
        other => panic!("expected DeadlineExceeded, got {other}"),
    }
}

#[test]
fn generous_deadline_matches_unbounded_run() {
    let sys = system();
    let duration = 0.2;
    let unbounded = dtm_transient(
        &sys,
        Benchmark::Fft,
        3.4,
        duration,
        &policy(),
        GridSpec::new(GRID, GRID),
    )
    .unwrap();
    let run = DtmRunConfig {
        deadline_ms: Some(600_000),
        ..DtmRunConfig::new(policy())
    };
    let bounded = dtm_transient_configured(
        &sys,
        Benchmark::Fft,
        3.4,
        duration,
        &run,
        GridSpec::new(GRID, GRID),
    )
    .unwrap();
    assert_eq!(unbounded.samples.len(), bounded.samples.len());
    for (a, b) in unbounded.samples.iter().zip(&bounded.samples) {
        assert_eq!(a.hotspot.get().to_bits(), b.hotspot.get().to_bits());
        assert_eq!(a.f_ghz.to_bits(), b.f_ghz.to_bits());
    }
    assert_eq!(unbounded.final_f_ghz, bounded.final_f_ghz);
}
