//! Deterministic fault-injection sweep for the DTM runtime.
//!
//! `./ci.sh faults` runs this suite. Every scenario is derived from a
//! seed, so a failure reproduces exactly: sensor arrays with random
//! noise/latency, random stuck-at/dropout/spike fault schedules, and a
//! forced-solver-failure subset that starves the CG iteration cap so
//! every step has to climb the fallback ladder. The invariants:
//!
//! * the DTM loop never panics and never returns non-finite state;
//! * `time_above_trip` stays bounded — masked or missing telemetry must
//!   not let the die sit above trip;
//! * every forced solver failure recovers through the ladder with a
//!   non-empty `RecoveryReport`;
//! * a mid-run checkpoint resume reproduces the uninterrupted
//!   `DtmResult` exactly (bit-identical).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use xylem::dtm::{dtm_transient_configured, CheckpointConfig, DtmPolicy, DtmRunConfig};
use xylem::sensor::{FaultKind, SensorFault, SensorModel, SensorSite};
use xylem::system::{SystemConfig, XylemSystem};
use xylem::XylemError;
use xylem_stack::XylemScheme;
use xylem_thermal::grid::GridSpec;
use xylem_thermal::units::Celsius;
use xylem_thermal::SolverOptions;
use xylem_workloads::Benchmark;

const GRID: usize = 12;
const STEPS: usize = 60;

fn system(scheme: XylemScheme) -> XylemSystem {
    let mut cfg = SystemConfig::fast(scheme);
    cfg.cache_dir = Some(std::env::temp_dir().join("xylem-system-test-cache"));
    XylemSystem::new(cfg).unwrap()
}

fn policy() -> DtmPolicy {
    DtmPolicy {
        trip: Celsius::new(100.0),
        release: Celsius::new(98.0),
        control_period_s: 20e-3,
        ..DtmPolicy::paper_default()
    }
}

/// A dense 4x4 sensor grid: every cell of the 12x12 grid is within ~1.5
/// cells of a sensor, so a handful of faulted sensors cannot mask the
/// hotspot from the max-fusion.
fn dense_sensors(seed: u64, rng: &mut StdRng) -> SensorModel {
    let mut sites = Vec::new();
    for qx in 0..4 {
        for qy in 0..4 {
            sites.push(SensorSite {
                ix: qx * 3 + 1,
                iy: qy * 3 + 1,
            });
        }
    }
    SensorModel {
        sites,
        quantization_c: 0.25,
        noise_sigma_c: rng.gen_range(0.0..0.5),
        latency_steps: rng.gen_range(0..3usize),
        seed,
        plausible_max_c: 150.0,
    }
}

/// Up to three random faults, never touching sensor 0 — the guarantee
/// needs at least most of the array healthy (a plausible-but-wrong
/// reading on every sensor is undetectable by construction).
fn random_faults(rng: &mut StdRng, n_sensors: usize) -> Vec<SensorFault> {
    let n = rng.gen_range(1..4usize);
    (0..n)
        .map(|_| {
            let kind = match rng.gen_range(0..3u32) {
                0 => FaultKind::StuckAt,
                1 => FaultKind::Dropout,
                _ => FaultKind::Spike,
            };
            let from = rng.gen_range(0..STEPS);
            SensorFault {
                sensor: rng.gen_range(1..n_sensors),
                kind,
                from_step: from,
                to_step: from + rng.gen_range(1..STEPS),
                value_c: match kind {
                    FaultKind::StuckAt => rng.gen_range(-50.0..250.0),
                    FaultKind::Spike => rng.gen_range(-80.0..80.0),
                    FaultKind::Dropout => 0.0,
                },
            }
        })
        .collect()
}

fn scenario(seed: u64) -> (Benchmark, f64, DtmRunConfig) {
    let mut rng = StdRng::seed_from_u64(seed);
    let (benchmark, f_ghz) = if seed % 2 == 0 {
        (Benchmark::LuNas, 3.5) // hot: the controller genuinely throttles
    } else {
        (Benchmark::Is, 2.8) // cool: the controller should stay put
    };
    let sensors = dense_sensors(seed, &mut rng);
    let faults = random_faults(&mut rng, sensors.sites.len());
    let solver = (seed % 10 == 0).then_some(SolverOptions {
        // Starved cap: the configured attempt fails every step and the
        // fallback ladder has to recover each solve.
        max_iterations: 2,
        ..SolverOptions::default()
    });
    let run = DtmRunConfig {
        sensors: Some(sensors),
        faults,
        solver,
        ..DtmRunConfig::new(policy())
    };
    (benchmark, f_ghz, run)
}

#[test]
fn seeded_sweep_never_panics_and_stays_bounded() {
    let hot = system(XylemScheme::Base);
    let cool = system(XylemScheme::BankEnhanced);
    let duration = STEPS as f64 * policy().control_period_s;
    let grid = GridSpec::new(GRID, GRID);
    let mut forced_failures = 0usize;
    for seed in 0..50u64 {
        let (benchmark, f_ghz, run) = scenario(seed);
        let sys = if seed % 2 == 0 { &hot } else { &cool };
        // Control: the same sensor array with no faults injected. A hot
        // workload regulated through discrete sensors sits above trip
        // for a sizable fraction of the run by construction (hysteresis
        // oscillation plus the sensor-to-hotspot gradient); the faulted
        // run is held to that same level, so the delta measures only
        // what the faults cost.
        let mut clean = run.clone();
        clean.faults.clear();
        let base = dtm_transient_configured(sys, benchmark, f_ghz, duration, &clean, grid)
            .unwrap()
            .time_above_trip;
        let r = dtm_transient_configured(sys, benchmark, f_ghz, duration, &run, grid)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(r.samples.len(), STEPS, "seed {seed}");
        for s in &r.samples {
            assert!(
                s.hotspot.get().is_finite() && s.f_ghz.is_finite(),
                "seed {seed}: non-finite sample {s:?}"
            );
        }
        assert!(
            (0.0..=1.0).contains(&r.time_above_trip),
            "seed {seed}: time_above_trip {}",
            r.time_above_trip
        );
        // Max-fusion means a fault either over-throttles (safe), gets
        // discarded as implausible, or drops out (fail-safe throttle).
        // The worst undetectable case — a plausible-but-low reading on
        // the sensor nearest the hotspot — degrades regulation by the
        // inter-sensor gradient, worth at most a handful of extra steps
        // above trip; anything beyond that margin is a masking bug.
        assert!(
            r.time_above_trip <= base + 0.2,
            "seed {seed}: die above trip for {} of the run vs {base} fault-free",
            r.time_above_trip
        );
        if run.solver.is_some() {
            forced_failures += 1;
            assert!(
                !r.recovery.is_empty(),
                "seed {seed}: starved solver must show ladder activity"
            );
            assert!(
                r.recovery.recoveries >= 1,
                "seed {seed}: ladder never recovered: {:?}",
                r.recovery
            );
        }
    }
    assert!(forced_failures >= 5, "sweep must include forced failures");
}

#[test]
fn checkpointing_does_not_perturb_the_run() {
    let s = system(XylemScheme::Base);
    let duration = STEPS as f64 * policy().control_period_s;
    let grid = GridSpec::new(GRID, GRID);
    let (benchmark, f_ghz, mut run) = scenario(4);
    let plain = dtm_transient_configured(&s, benchmark, f_ghz, duration, &run, grid).unwrap();

    let path = std::env::temp_dir().join("xylem-fi-perturb.ckpt");
    let _ = std::fs::remove_file(&path);
    run.checkpoint = Some(CheckpointConfig {
        path: path.clone(),
        every_steps: 7,
        resume: false,
    });
    let saved = dtm_transient_configured(&s, benchmark, f_ghz, duration, &run, grid).unwrap();
    assert_eq!(plain, saved, "checkpoint writes must be observation-only");
    assert!(path.exists());
}

#[test]
fn resume_from_mid_run_checkpoint_is_bit_identical() {
    let s = system(XylemScheme::Base);
    let duration = STEPS as f64 * policy().control_period_s;
    let grid = GridSpec::new(GRID, GRID);
    // A noisy, faulted, sensored scenario: resume must restore the
    // sensor delay lines and the counter-based noise must replay.
    let (benchmark, f_ghz, mut run) = scenario(2);
    let uninterrupted =
        dtm_transient_configured(&s, benchmark, f_ghz, duration, &run, grid).unwrap();

    // `every_steps` deliberately does not divide STEPS: the last file is
    // written at step 56, so the resumed run recomputes a real suffix.
    let path = std::env::temp_dir().join("xylem-fi-resume.ckpt");
    let _ = std::fs::remove_file(&path);
    run.checkpoint = Some(CheckpointConfig {
        path: path.clone(),
        every_steps: 7,
        resume: false,
    });
    dtm_transient_configured(&s, benchmark, f_ghz, duration, &run, grid).unwrap();

    // "Kill" the run: resume from the leftover step-56 file.
    let loaded = xylem::checkpoint::load(&path).unwrap();
    assert_eq!(loaded.step, 56, "mid-run checkpoint expected");
    run.checkpoint = Some(CheckpointConfig {
        path,
        every_steps: 7,
        resume: true,
    });
    let resumed = dtm_transient_configured(&s, benchmark, f_ghz, duration, &run, grid).unwrap();
    assert_eq!(
        uninterrupted, resumed,
        "resumed run must be bit-identical to the uninterrupted one"
    );
}

#[test]
fn corrupt_checkpoint_is_rejected_not_trusted() {
    let s = system(XylemScheme::Base);
    let duration = STEPS as f64 * policy().control_period_s;
    let grid = GridSpec::new(GRID, GRID);
    let (benchmark, f_ghz, mut run) = scenario(6);
    let path = std::env::temp_dir().join("xylem-fi-corrupt.ckpt");
    let _ = std::fs::remove_file(&path);
    run.checkpoint = Some(CheckpointConfig {
        path: path.clone(),
        every_steps: 7,
        resume: false,
    });
    dtm_transient_configured(&s, benchmark, f_ghz, duration, &run, grid).unwrap();

    // Flip payload bytes; the checksum must catch it on resume.
    let mut text = std::fs::read_to_string(&path).unwrap();
    let pos = text.len() / 2;
    text.replace_range(pos..pos + 1, "7");
    std::fs::write(&path, text).unwrap();
    run.checkpoint = Some(CheckpointConfig {
        path,
        every_steps: 7,
        resume: true,
    });
    let err = dtm_transient_configured(&s, benchmark, f_ghz, duration, &run, grid).unwrap_err();
    assert!(matches!(err, XylemError::Checkpoint(_)), "{err}");
}

#[test]
fn checkpoint_from_a_different_run_is_rejected() {
    let s = system(XylemScheme::Base);
    let duration = STEPS as f64 * policy().control_period_s;
    let grid = GridSpec::new(GRID, GRID);
    let (benchmark, f_ghz, mut run) = scenario(8);
    let path = std::env::temp_dir().join("xylem-fi-mismatch.ckpt");
    let _ = std::fs::remove_file(&path);
    run.checkpoint = Some(CheckpointConfig {
        path: path.clone(),
        every_steps: 7,
        resume: false,
    });
    dtm_transient_configured(&s, benchmark, f_ghz, duration, &run, grid).unwrap();

    // Same file, different (still valid) policy: the config hash must
    // not match.
    let mut other = run.clone();
    other.policy.trip = Celsius::new(105.0);
    other.checkpoint = Some(CheckpointConfig {
        path,
        every_steps: 7,
        resume: true,
    });
    let err = dtm_transient_configured(&s, benchmark, f_ghz, duration, &other, grid).unwrap_err();
    assert!(matches!(err, XylemError::Checkpoint(_)), "{err}");
}
