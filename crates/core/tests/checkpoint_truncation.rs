//! Fuzz-style checkpoint-loader hardening: a valid checkpoint file
//! truncated at *every* byte boundary must come back as a clean
//! [`CheckpointError`] — never a panic, never a partially-parsed
//! [`DtmCheckpoint`]. This is the on-disk analogue of the sweep
//! journal's torn-tail rule: arbitrary prefix loss is a recoverable
//! condition, not undefined behavior.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

use xylem::checkpoint::{config_hash, load, save, DtmCheckpoint};
use xylem::dtm::DtmSample;
use xylem::error::CheckpointError;
use xylem::XylemError;
use xylem_thermal::units::Celsius;
use xylem_thermal::RecoveryReport;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xylem-ckpt-trunc-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir creates");
    dir.join(name)
}

fn rich_checkpoint() -> DtmCheckpoint {
    DtmCheckpoint {
        step: 4821,
        grid_nx: 24,
        grid_ny: 24,
        dt: 1e-3,
        config_hash: config_hash("{\"policy\":2,\"trip\":85.0}"),
        // Awkward floats: shortest-repr printing must round-trip these,
        // and their serialized text exercises digits, signs, exponents.
        temps: vec![
            0.1 + 0.2,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            95.000_000_1,
            -273.149_999,
            8.25e6,
        ],
        level: 3,
        throttle_events: 12,
        above: 7,
        failsafe_events: 1,
        cg_iterations: 180_421,
        samples: vec![
            DtmSample {
                time_s: 0.25,
                f_ghz: 2.4,
                hotspot: Celsius::new(83.75),
            },
            DtmSample {
                time_s: 0.5,
                f_ghz: 1.8,
                hotspot: Celsius::new(79.125),
            },
        ],
        sensors: None,
        recovery: RecoveryReport::default(),
        adaptive: None,
    }
}

/// Asserts that loading `bytes` written to disk fails cleanly: no
/// panic, and a truncation-shaped error (`Io` or `Corrupt` — never
/// `Mismatch`, which would mean a half-validated envelope was trusted
/// far enough to read its version field from garbage).
fn assert_clean_failure(path: &PathBuf, bytes: &[u8], label: &str) {
    std::fs::write(path, bytes).expect("prefix writes");
    let outcome = catch_unwind(AssertUnwindSafe(|| load(path)));
    let result = outcome.unwrap_or_else(|_| panic!("{label}: load must not panic"));
    let err = match result {
        Ok(partial) => panic!("{label}: truncated file must not load: {partial:?}"),
        Err(e) => e,
    };
    assert!(
        matches!(
            err,
            CheckpointError::Corrupt { .. } | CheckpointError::Io { .. }
        ),
        "{label}: unexpected error shape: {err}"
    );
    // The public surface wraps it as the checkpoint failure domain.
    assert!(
        matches!(XylemError::from(err), XylemError::Checkpoint(_)),
        "{label}: must map into XylemError::Checkpoint"
    );
}

#[test]
fn every_byte_boundary_truncation_fails_cleanly() {
    let full_path = scratch("full.ckpt");
    save(&full_path, &rich_checkpoint()).expect("checkpoint saves");
    let bytes = std::fs::read(&full_path).expect("checkpoint reads back");
    assert!(
        bytes.len() > 400,
        "fixture too small to be an interesting fuzz corpus: {} bytes",
        bytes.len()
    );

    // Sanity: the untruncated file round-trips.
    assert_eq!(
        load(&full_path).expect("full file loads"),
        rich_checkpoint()
    );

    let prefix_path = scratch("prefix.ckpt");
    for cut in 0..bytes.len() {
        assert_clean_failure(&prefix_path, &bytes[..cut], &format!("cut at byte {cut}"));
    }
}

#[test]
fn truncation_inside_a_multibyte_char_fails_cleanly() {
    // A checkpoint whose config-hash string carries multi-byte UTF-8:
    // cutting inside a code point must surface as a clean error from
    // the read layer, not a panic in string handling.
    let mut ckpt = rich_checkpoint();
    ckpt.config_hash = "λ-aware-config-0°C-±σ".to_owned();
    let full_path = scratch("utf8.ckpt");
    save(&full_path, &ckpt).expect("checkpoint saves");
    let bytes = std::fs::read(&full_path).expect("checkpoint reads back");
    assert_eq!(load(&full_path).expect("full file loads"), ckpt);

    let prefix_path = scratch("utf8-prefix.ckpt");
    for cut in 0..bytes.len() {
        assert_clean_failure(&prefix_path, &bytes[..cut], &format!("utf8 cut {cut}"));
    }
}
