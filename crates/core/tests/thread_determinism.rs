//! Thread-count determinism: two identical `dtm_transient_configured`
//! runs (same seed, same faults) must produce bit-identical temperature
//! trajectories AND identical metric counter totals regardless of how
//! many threads the solver uses.
//!
//! The vendored thread pool is sized once per process from
//! `RAYON_NUM_THREADS`, so the two runs must live in separate
//! processes: each test re-executes itself (filtered to that one test)
//! with the env var set to 1 and then 4, and each child writes a
//! digest of its run — FNV-1a over every sample's raw f64 bits, plus
//! every deterministic observability counter. The parent asserts the
//! two digests are byte-identical.
//!
//! Two solver configurations are locked: the model's own default pick
//! (GMG at this grid size) and an explicitly forced GMG run, so the
//! geometric-multigrid cycle — smoothers, restriction, and its
//! finest-level parallel matvec — stays inside the determinism digest
//! even if the default pick ever changes.
//!
//! This is the lock on xylem-obs design rule 2 (counters count
//! deterministic quantities, never wall-clock) and on the solver's
//! deterministic parallel reductions.

use std::fmt::Write as _;
use std::process::Command;

use xylem::dtm::{dtm_transient_configured, DtmPolicy, DtmRunConfig};
use xylem::sensor::{FaultKind, SensorFault, SensorModel};
use xylem::system::{SystemConfig, XylemSystem};
use xylem_obs::fnv1a;
use xylem_stack::XylemScheme;
use xylem_sweep::{run_sweep, SweepOptions, SweepSpec};
use xylem_thermal::grid::GridSpec;
use xylem_thermal::solve::{PreconditionerKind, SolverOptions};
use xylem_workloads::Benchmark;

const CHILD_ENV: &str = "XYLEM_DETERMINISM_CHILD_OUT";
/// 32x32 keeps the node count (~30k) above the solver's parallel
/// threshold, so the multi-threaded child really exercises the
/// parallel CSR/stencil path.
const GRID: usize = 32;

/// Solver override for one digest pair: `None` locks whatever the
/// model picks for itself; `Some` pins a preconditioner explicitly.
fn solver_override(tag: &str) -> Option<SolverOptions> {
    match tag {
        "gmg" => Some(SolverOptions {
            preconditioner: PreconditionerKind::Gmg,
            ..SolverOptions::default()
        }),
        _ => None,
    }
}

/// Child body for the sweep digest pair: a small but multi-axis batch
/// through `run_sweep`, with the shard count tied to the thread count
/// so BOTH parallelism knobs vary between the two children. The digest
/// covers every result f64 bit-for-bit, every record's status and
/// attempt count, and every deterministic counter; wall-clock fields
/// (elapsed, tasks/sec, latency histogram) are deliberately excluded.
fn run_sweep_child(out_path: &str) {
    let threads = std::env::var("RAYON_NUM_THREADS").unwrap_or_default();
    let spec = SweepSpec {
        schemes: vec![XylemScheme::Base, XylemScheme::BankEnhanced],
        benchmarks: vec![Benchmark::Cholesky],
        f_ghz: vec![2.4, 3.0],
        die_thickness_um: vec![50.0, 100.0],
        grid: 16,
        ..SweepSpec::default()
    };
    let opts = SweepOptions {
        shards: threads.parse().unwrap_or(1),
        // Per-thread-count cache dir, same reasoning as run_child.
        cache_dir: Some(
            std::env::temp_dir().join(format!("xylem-determinism-cache-sweep-{threads}")),
        ),
        ..SweepOptions::default()
    };
    let report = run_sweep(&spec, &opts).expect("sweep runs");
    report.require_complete().expect("no chaos: all tasks ok");

    let mut text = String::new();
    let _ = writeln!(
        text,
        "spec={} tasks={} ok={} quarantined={}",
        report.spec_hash, report.total, report.ok, report.quarantined
    );
    let mut bytes = Vec::new();
    for rec in &report.records {
        let r = rec.result.as_ref().expect("ok record carries a result");
        bytes.extend_from_slice(&r.proc_hotspot_c.to_bits().to_le_bytes());
        bytes.extend_from_slice(&r.dram_hotspot_c.to_bits().to_le_bytes());
        bytes.extend_from_slice(&r.total_power_w.to_bits().to_le_bytes());
        bytes.extend_from_slice(&r.exec_time_s.to_bits().to_le_bytes());
        bytes.extend_from_slice(&r.dtm_f_ghz.map_or(0, f64::to_bits).to_le_bytes());
        for c in &r.core_hotspot_c {
            bytes.extend_from_slice(&c.to_bits().to_le_bytes());
        }
        let _ = writeln!(
            text,
            "task {} {} status={} attempts={}",
            rec.id,
            rec.key,
            rec.status.label(),
            rec.attempts
        );
    }
    let _ = writeln!(text, "result_digest={:016x}", fnv1a(&bytes));
    for (label, value) in xylem_obs::counters_snapshot() {
        let _ = writeln!(text, "counter {label}={value}");
    }
    std::fs::write(out_path, text).expect("child writes digest");
}

/// Child body for the scenario-DSL digest pair: compile and solve the
/// checked-in `xylem-paper.stk` (parse -> validate -> lower ->
/// discretize -> steady solve) and digest every bit of the result. The
/// lowering itself is single-threaded by construction; the solve is the
/// parallel part, and the `scenario_lowered` counter in the digest
/// proves the DSL path (not a cached artifact) produced the stack.
fn run_scenario_child(out_path: &str) {
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../scenarios/valid/xylem-paper.stk");
    let src = std::fs::read_to_string(&path).expect("xylem-paper.stk reads");
    let lowered = xylem_scenario::compile(&src).expect("paper scenario compiles");
    let report = xylem_scenario::run(&lowered).expect("paper scenario solves");

    let mut text = String::new();
    let _ = writeln!(
        text,
        "nodes={} conductance={:016x} temperature={:016x} hotspot={:016x}",
        report.nodes,
        report.conductance_digest,
        report.temperature_digest,
        report.global_hotspot_c.to_bits()
    );
    for p in &report.probes {
        let _ = writeln!(
            text,
            "probe {} {}={:016x}",
            p.name,
            p.layer,
            p.celsius.to_bits()
        );
    }
    for (label, value) in xylem_obs::counters_snapshot() {
        let _ = writeln!(text, "counter {label}={value}");
    }
    std::fs::write(out_path, text).expect("child writes digest");
}

fn run_child(tag: &str, out_path: &str) {
    if tag == "sweep" {
        run_sweep_child(out_path);
        return;
    }
    if tag == "scenario" {
        run_scenario_child(out_path);
        return;
    }
    // Per-thread-count, per-tag cache dir: both children of a pair must
    // do the *same* response-cache work (build or load), or solve_calls
    // would differ for cache-warming reasons rather than thread-count
    // ones.
    let threads = std::env::var("RAYON_NUM_THREADS").unwrap_or_default();
    let mut cfg = SystemConfig::fast(XylemScheme::Base);
    cfg.cache_dir =
        Some(std::env::temp_dir().join(format!("xylem-determinism-cache-{tag}-{threads}")));
    let sys = XylemSystem::new(cfg).expect("system builds");
    let run = DtmRunConfig {
        policy: DtmPolicy::paper_default(),
        sensors: Some(SensorModel::default_array(GRID, GRID, 42)),
        faults: vec![
            SensorFault {
                sensor: 0,
                kind: FaultKind::Dropout,
                from_step: 10,
                to_step: 20,
                value_c: 0.0,
            },
            SensorFault {
                sensor: 2,
                kind: FaultKind::Spike,
                from_step: 25,
                to_step: 30,
                value_c: 40.0,
            },
        ],
        solver: solver_override(tag),
        checkpoint: None,
        deadline_ms: None,
    };
    let policy = DtmPolicy::paper_default();
    let duration = 50.0 * policy.control_period_s;
    let r = dtm_transient_configured(
        &sys,
        Benchmark::Cholesky,
        3.5,
        duration,
        &run,
        GridSpec::new(GRID, GRID),
    )
    .expect("dtm run succeeds");

    // Digest every bit the run produced: the sampled trajectory (time,
    // frequency, hotspot temperature) and the run-level aggregates.
    let mut bytes = Vec::new();
    for s in &r.samples {
        bytes.extend_from_slice(&s.time_s.to_bits().to_le_bytes());
        bytes.extend_from_slice(&s.f_ghz.to_bits().to_le_bytes());
        bytes.extend_from_slice(&s.hotspot.get().to_bits().to_le_bytes());
    }
    bytes.extend_from_slice(&r.final_f_ghz.to_bits().to_le_bytes());

    let mut text = String::new();
    let _ = writeln!(
        text,
        "samples={} digest={:016x}",
        r.samples.len(),
        fnv1a(&bytes)
    );
    let _ = writeln!(
        text,
        "cg_iterations={} throttles={} failsafes={}",
        r.cg_iterations, r.throttle_events, r.failsafe_events
    );
    // Every counter is deterministic by design (obs rule 2); latency
    // histograms are wall-clock and deliberately excluded.
    for (label, value) in xylem_obs::counters_snapshot() {
        let _ = writeln!(text, "counter {label}={value}");
    }
    for (label, value) in xylem_obs::gauges_snapshot() {
        let _ = writeln!(text, "gauge {label}={:016x}", value.to_bits());
    }
    std::fs::write(out_path, text).expect("child writes digest");
}

/// Runs the 1-thread/4-thread child pair for one solver configuration
/// and asserts their digests are byte-identical. `test_name` must be
/// the exact name of the calling test so the re-executed binary lands
/// back in it.
fn run_pair(test_name: &str, tag: &str) {
    if let Ok(out) = std::env::var(CHILD_ENV) {
        run_child(tag, &out);
        return;
    }
    let exe = std::env::current_exe().expect("test binary path");
    let dir = std::env::temp_dir();
    let mut digests = Vec::new();
    for threads in ["1", "4"] {
        let out = dir.join(format!("xylem-determinism-{tag}-{threads}.txt"));
        let status = Command::new(&exe)
            .args([test_name, "--exact", "--test-threads=1"])
            .env(CHILD_ENV, &out)
            .env("RAYON_NUM_THREADS", threads)
            .status()
            .expect("child spawns");
        assert!(
            status.success(),
            "{tag} child with {threads} threads failed"
        );
        let digest = std::fs::read_to_string(&out).expect("child digest readable");
        // Sanity: the child actually did the work it digests. A sweep
        // child with a warm response cache legitimately solves nothing
        // (steady-state evaluation is superposition over cached unit
        // responses), so its marker is the task counter instead.
        if tag == "sweep" {
            assert!(digest.contains("counter sweep_tasks_ok="), "{digest}");
            assert!(!digest.contains("sweep_tasks_ok=0\n"), "{digest}");
        } else if tag == "scenario" {
            assert!(digest.contains("counter scenario_lowered="), "{digest}");
            assert!(!digest.contains("scenario_lowered=0\n"), "{digest}");
        } else {
            assert!(digest.contains("counter cg_iterations="), "{digest}");
            assert!(!digest.contains("cg_iterations=0\n"), "{digest}");
        }
        digests.push((threads, digest));
    }
    assert_eq!(
        digests[0].1, digests[1].1,
        "{tag}: 1-thread and 4-thread runs diverged:\n--- 1 thread ---\n{}\n--- 4 threads ---\n{}",
        digests[0].1, digests[1].1
    );
}

#[test]
fn dtm_run_is_bit_identical_across_thread_counts() {
    run_pair("dtm_run_is_bit_identical_across_thread_counts", "default");
}

#[test]
fn gmg_run_is_bit_identical_across_thread_counts() {
    run_pair("gmg_run_is_bit_identical_across_thread_counts", "gmg");
}

#[test]
fn scenario_solve_is_bit_identical_across_thread_counts() {
    // The `.stk` pipeline end to end: the lowered xylem-paper stack's
    // conductance matrix, steady solve, and probe readings must not
    // notice the solver's thread count.
    run_pair(
        "scenario_solve_is_bit_identical_across_thread_counts",
        "scenario",
    );
}

#[test]
fn sweep_is_bit_identical_across_thread_and_shard_counts() {
    // Shards follow the thread count inside the child, so the 1-thread
    // child runs a single-worker sweep and the 4-thread child a
    // four-shard one; results, statuses, and counters must not notice.
    run_pair(
        "sweep_is_bit_identical_across_thread_and_shard_counts",
        "sweep",
    );
}
