//! Integration tests for adaptive stepping in the DTM loop: result
//! plumbing, checkpoint format v2, backward compatibility with
//! pre-adaptive (format v1) files, and bit-identical adaptive resume.

use std::path::{Path, PathBuf};

use xylem::checkpoint::{self, CHECKPOINT_VERSION};
use xylem::dtm::{dtm_transient_configured, CheckpointConfig, DtmPolicy, DtmRunConfig};
use xylem::system::{SystemConfig, XylemSystem};
use xylem::XylemError;
use xylem_stack::XylemScheme;
use xylem_thermal::grid::GridSpec;
use xylem_thermal::AdaptiveOptions;
use xylem_workloads::Benchmark;

const GRID: usize = 12;
const DURATION_S: f64 = 0.6;

fn system() -> XylemSystem {
    let mut cfg = SystemConfig::fast(XylemScheme::BankEnhanced);
    cfg.cache_dir = Some(std::env::temp_dir().join("xylem-system-test-cache"));
    XylemSystem::new(cfg).unwrap()
}

fn adaptive_policy() -> DtmPolicy {
    DtmPolicy {
        control_period_s: 20e-3,
        ..DtmPolicy::paper_default()
    }
    .with_adaptive(AdaptiveOptions {
        rtol: 1e-3,
        atol: 1e-3,
        dt_min: 1e-4,
        dt_max: 20e-3,
        dt_init: 2e-3,
        ..AdaptiveOptions::default()
    })
}

fn tmp_ckpt(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("xylem-adaptive-dtm-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let _ = std::fs::remove_file(&path);
    path
}

/// Rewrites a current-format checkpoint file into a faithful v1 file:
/// drops the `adaptive` payload key (v1 never had it) and stamps the
/// envelope version to 1, re-deriving the checksum over the new payload.
fn downgrade_to_v1(path: &Path) {
    let text = std::fs::read_to_string(path).unwrap();
    // The payload is a JSON-escaped string field; the adaptive key of a
    // fixed-step run is always the literal null.
    let text = text.replace("\\\"adaptive\\\":null,", "");
    let text = text.replace(
        &format!("\"version\":{CHECKPOINT_VERSION}"),
        "\"version\":1",
    );
    std::fs::write(path, &text).unwrap();
    // Fix up the checksum: load cares that it matches the payload.
    let start = text.find("\"payload\":\"").unwrap() + "\"payload\":\"".len();
    let end = text.rfind("\",\"version\"").unwrap();
    let payload = text[start..end].replace("\\\"", "\"");
    let sum = format!("{:016x}", checkpoint::fnv1a(payload.as_bytes()));
    let csum_start = text.find("\"checksum\":\"").unwrap() + "\"checksum\":\"".len();
    let mut fixed = text.clone();
    fixed.replace_range(csum_start..csum_start + 16, &sum);
    std::fs::write(path, fixed).unwrap();
}

#[test]
fn adaptive_run_completes_and_reports_a_summary() {
    let s = system();
    let run = DtmRunConfig::new(adaptive_policy());
    let r = dtm_transient_configured(
        &s,
        Benchmark::Is,
        2.8,
        DURATION_S,
        &run,
        GridSpec::new(GRID, GRID),
    )
    .unwrap();
    let a = r.adaptive.expect("adaptive run must carry a summary");
    assert!(a.accepted > 0, "{a:?}");
    assert!(a.be_solves >= a.accepted, "{a:?}");
    assert!(a.final_dt_s > 0.0, "{a:?}");
    assert!(!a.economy, "unbudgeted run entered economy mode: {a:?}");
    assert!(r.peak_hotspot().get() < 120.0, "{r:?}");
    // A fixed-step run of the same scenario reports no summary.
    let fixed = dtm_transient_configured(
        &s,
        Benchmark::Is,
        2.8,
        DURATION_S,
        &DtmRunConfig::new(DtmPolicy {
            control_period_s: 20e-3,
            ..DtmPolicy::paper_default()
        }),
        GridSpec::new(GRID, GRID),
    )
    .unwrap();
    assert!(fixed.adaptive.is_none());
}

#[test]
fn adaptive_resume_is_bit_identical() {
    let s = system();
    let grid = GridSpec::new(GRID, GRID);
    let policy = adaptive_policy();

    // Uninterrupted reference (checkpointing on, resume off — saving
    // must not perturb the trajectory).
    let path = tmp_ckpt("adaptive_resume.ckpt");
    let run = DtmRunConfig {
        checkpoint: Some(CheckpointConfig {
            path: path.clone(),
            every_steps: 10,
            resume: false,
        }),
        ..DtmRunConfig::new(policy)
    };
    let full = dtm_transient_configured(&s, Benchmark::Is, 2.8, DURATION_S, &run, grid).unwrap();

    // The file on disk is the state at the last multiple of 10 steps;
    // a resuming run must finish with the identical result, controller
    // state included.
    let ck = checkpoint::load(&path).unwrap();
    assert!(ck.adaptive.is_some(), "adaptive state missing from v2 file");
    let resumed_run = DtmRunConfig {
        checkpoint: Some(CheckpointConfig {
            path: path.clone(),
            every_steps: 10,
            resume: true,
        }),
        ..run
    };
    let resumed =
        dtm_transient_configured(&s, Benchmark::Is, 2.8, DURATION_S, &resumed_run, grid).unwrap();
    assert_eq!(full, resumed, "resumed adaptive run diverged");
    for (a, b) in full.samples.iter().zip(&resumed.samples) {
        assert_eq!(a.hotspot.get().to_bits(), b.hotspot.get().to_bits());
    }
}

#[test]
fn fixed_run_resumes_from_a_v1_checkpoint() {
    let s = system();
    let grid = GridSpec::new(GRID, GRID);
    let policy = DtmPolicy {
        control_period_s: 20e-3,
        ..DtmPolicy::paper_default()
    };
    let path = tmp_ckpt("v1_fixed_resume.ckpt");
    let run = DtmRunConfig {
        checkpoint: Some(CheckpointConfig {
            path: path.clone(),
            every_steps: 10,
            resume: false,
        }),
        ..DtmRunConfig::new(policy)
    };
    let full = dtm_transient_configured(&s, Benchmark::Is, 2.8, DURATION_S, &run, grid).unwrap();

    // Rewrite the last checkpoint as a faithful pre-adaptive v1 file:
    // resuming from it must still work and reproduce the reference.
    downgrade_to_v1(&path);
    let ck = checkpoint::load(&path).unwrap();
    assert!(ck.adaptive.is_none(), "v1 file cannot carry adaptive state");
    let resumed_run = DtmRunConfig {
        checkpoint: Some(CheckpointConfig {
            path: path.clone(),
            every_steps: 0,
            resume: true,
        }),
        ..run
    };
    let resumed =
        dtm_transient_configured(&s, Benchmark::Is, 2.8, DURATION_S, &resumed_run, grid).unwrap();
    assert_eq!(full, resumed, "fixed-step resume from v1 diverged");
}

#[test]
fn adaptive_resume_from_v1_fails_with_a_clear_error() {
    let s = system();
    let grid = GridSpec::new(GRID, GRID);
    let path = tmp_ckpt("v1_adaptive_resume.ckpt");
    // Write a genuine fixed-step checkpoint, then age it to v1.
    let fixed_run = DtmRunConfig {
        checkpoint: Some(CheckpointConfig {
            path: path.clone(),
            every_steps: 10,
            resume: false,
        }),
        ..DtmRunConfig::new(DtmPolicy {
            control_period_s: 20e-3,
            ..DtmPolicy::paper_default()
        })
    };
    dtm_transient_configured(&s, Benchmark::Is, 2.8, DURATION_S, &fixed_run, grid).unwrap();
    downgrade_to_v1(&path);

    let adaptive_run = DtmRunConfig {
        checkpoint: Some(CheckpointConfig {
            path: path.clone(),
            every_steps: 10,
            resume: true,
        }),
        ..DtmRunConfig::new(adaptive_policy())
    };
    let err = dtm_transient_configured(&s, Benchmark::Is, 2.8, DURATION_S, &adaptive_run, grid)
        .unwrap_err();
    let msg = err.to_string();
    assert!(
        matches!(err, XylemError::Checkpoint(_)),
        "wrong error kind: {err:?}"
    );
    assert!(
        msg.contains("stepping mode"),
        "error does not name the stepping-mode mismatch: {msg}"
    );
}

/// The checked-in pre-adaptive fixture still loads: guards the format
/// against accidental breakage of v1 compatibility. Regenerate with
/// `cargo test -p xylem-core --test adaptive_dtm -- --ignored` after a
/// deliberate format change (and bump the version history docs).
#[test]
fn checked_in_v1_fixture_loads_with_no_adaptive_state() {
    let path = Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/pre_adaptive_v1.ckpt"
    ));
    let ck = checkpoint::load(path).unwrap();
    assert_eq!(ck.step, 20);
    assert_eq!((ck.grid_nx, ck.grid_ny), (GRID, GRID));
    assert!(ck.adaptive.is_none(), "v1 fixture must carry no controller");
    assert!(ck.temps.iter().all(|t| t.is_finite()));
    assert_eq!(ck.samples.len(), 20);
}

/// Regenerates the checked-in v1 fixture. Ignored by default — run it
/// only when the fixture must change, then commit the new file.
#[test]
#[ignore]
fn regenerate_v1_fixture() {
    let s = system();
    let grid = GridSpec::new(GRID, GRID);
    let path = PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/pre_adaptive_v1.ckpt"
    ));
    let run = DtmRunConfig {
        checkpoint: Some(CheckpointConfig {
            path: path.clone(),
            every_steps: 20,
            resume: false,
        }),
        ..DtmRunConfig::new(DtmPolicy {
            control_period_s: 20e-3,
            ..DtmPolicy::paper_default()
        })
    };
    // 0.4 s / 20 ms = 20 steps: exactly one checkpoint at step 20.
    dtm_transient_configured(&s, Benchmark::Is, 2.8, 0.4, &run, grid).unwrap();
    downgrade_to_v1(&path);
    checkpoint::load(&path).expect("regenerated fixture must load");
}
