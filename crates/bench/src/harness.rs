//! Shared experiment infrastructure: tables, CSV output, system cache.

use std::fmt::Write as _;
use std::path::PathBuf;

use xylem::system::{SystemConfig, XylemSystem};
use xylem_stack::XylemScheme;

/// Workspace-relative directory for experiment CSVs
/// (`target/xylem-results`), overridable with `XYLEM_RESULTS_DIR`.
pub fn results_dir() -> PathBuf {
    if let Some(d) = std::env::var_os("XYLEM_RESULTS_DIR") {
        return PathBuf::from(d);
    }
    workspace_target().join("xylem-results")
}

/// Workspace-relative directory for unit-response caches
/// (`target/xylem-cache`), overridable with `XYLEM_CACHE_DIR`.
pub fn cache_dir() -> PathBuf {
    if let Some(d) = std::env::var_os("XYLEM_CACHE_DIR") {
        return PathBuf::from(d);
    }
    workspace_target().join("xylem-cache")
}

fn workspace_target() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target")
}

/// Builds the paper-default system for `scheme` with the shared response
/// cache (first use per scheme solves ~89 unit problems; later uses load
/// from disk).
///
/// # Panics
///
/// Panics on construction errors (experiment binaries fail loudly).
pub fn system(scheme: XylemScheme) -> XylemSystem {
    let mut cfg = SystemConfig::paper_default(scheme);
    cfg.cache_dir = Some(cache_dir());
    XylemSystem::new(cfg).unwrap_or_else(|e| panic!("building {scheme} system: {e}"))
}

/// Builds a system with a modified stack configuration (sensitivity
/// sweeps and ablations), still using the shared cache. These sweeps run
/// on a **32x32** grid: every swept point needs its own unit-response
/// set, and the reported quantities are cross-scheme deltas/means whose
/// trends are grid-stable.
///
/// # Panics
///
/// Panics on construction errors.
pub fn system_with(
    scheme: XylemScheme,
    modify: impl FnOnce(&mut xylem_stack::StackConfig),
) -> XylemSystem {
    let mut cfg = SystemConfig::paper_default(scheme);
    cfg.grid = xylem_thermal::grid::GridSpec::new(32, 32);
    cfg.cache_dir = Some(cache_dir());
    modify(&mut cfg.stack);
    XylemSystem::new(cfg).unwrap_or_else(|e| panic!("building {scheme} system: {e}"))
}

/// The 32x32 counterpart of [`system`], for tables that mix default and
/// modified configurations (everything on the same grid).
///
/// # Panics
///
/// Panics on construction errors.
pub fn system_fast(scheme: XylemScheme) -> XylemSystem {
    system_with(scheme, |_| {})
}

/// A printable/saveable result table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Formats the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i == 0 {
                    let _ = write!(s, "{:<w$}", c, w = widths[i]);
                } else {
                    let _ = write!(s, "  {:>w$}", c, w = widths[i]);
                }
            }
            s
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Writes `name.csv` under [`results_dir`].
    pub fn save_csv(&self, name: &str) {
        let dir = results_dir();
        if std::fs::create_dir_all(&dir).is_err() {
            return;
        }
        let mut csv = String::new();
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let _ = writeln!(
            csv,
            "{}",
            self.headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                csv,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        let _ = std::fs::write(dir.join(format!("{name}.csv")), &csv);
        // Provenance: a manifest rides along with every CSV so a result
        // file can be traced back to the exact table that produced it
        // (and, when a metrics sink is live, lands in the JSONL too).
        let manifest = self.manifest(name, &csv);
        let _ = std::fs::write(
            dir.join(format!("{name}.manifest.json")),
            format!("{}\n", manifest.to_value()),
        );
        manifest.emit();
    }

    /// The provenance manifest for this table: title, shape, and an
    /// FNV-1a hash of the rendered CSV bytes.
    fn manifest(&self, name: &str, csv: &str) -> xylem_obs::RunManifest {
        xylem_obs::RunManifest::new("xylem-bench", name)
            .with("title", &self.title)
            .with("rows", self.rows.len())
            .with("cols", self.headers.len())
            .with(
                "csv_fnv1a",
                format!("{:016x}", xylem_obs::fnv1a(csv.as_bytes())),
            )
    }

    /// Prints and saves in one step.
    pub fn emit(&self, name: &str) {
        self.print();
        self.save_csv(name);
        println!("[saved {}/{name}.csv]", results_dir().display());
        println!();
    }
}

/// Formats a float with the given precision.
pub fn fmt(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

/// Arithmetic mean of a slice.
///
/// # Panics
///
/// Panics on empty input.
pub fn mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Geometric mean of a slice of positive values.
///
/// # Panics
///
/// Panics on empty input or non-positive values.
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    let s: f64 = xs
        .iter()
        .map(|&x| {
            assert!(x > 0.0, "geomean needs positive values, got {x}");
            x.ln()
        })
        .sum();
    (s / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_render_and_width_check() {
        let mut t = Table::new("demo", &["app", "value"]);
        t.row(vec!["FFT".into(), "1.00".into()]);
        let s = t.render();
        assert!(s.contains("demo"));
        assert!(s.contains("FFT"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["x".into()]);
    }

    #[test]
    fn means() {
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
    }
}
