//! Drivers for every table and figure of the paper's evaluation.
//!
//! Each `figNN_*`/`tableN_*` function regenerates the corresponding
//! artefact: it prints the same rows/series the paper reports and writes
//! a CSV under `target/xylem-results/`.

use xylem::headroom::{max_frequency_at_iso_temperature, BoostOutcome};
use xylem::lambda_aware::{boosting_experiment, placement_experiment};
use xylem::migration::{migration_experiment, MigrationConfig};
use xylem::placement::ThreadPlacement;
use xylem::system::XylemSystem;
use xylem_archsim::ArchConfig;
use xylem_stack::area::{AreaOverhead, RoutingOverhead, SAMSUNG_WIDE_IO_DIE_AREA};
use xylem_stack::dram_die::DramDieGeometry;
use xylem_stack::XylemScheme;
use xylem_thermal::units::Celsius;
use xylem_workloads::Benchmark;

use crate::harness::{fmt, geomean, mean, system, system_fast, system_with, Table};

/// The four frequencies Fig. 7/13/14 sweep.
pub const SWEEP_FREQS: [f64; 4] = [2.4, 2.8, 3.2, 3.5];

/// The schemes Fig. 7/13 compare.
pub const MAIN_SCHEMES: [XylemScheme; 4] = [
    XylemScheme::Base,
    XylemScheme::BankSurround,
    XylemScheme::BankEnhanced,
    XylemScheme::Prior,
];

fn temperature_sweep(
    title: &str,
    csv: &str,
    schemes: &[XylemScheme],
    sensor: impl Fn(&xylem::Evaluation) -> f64,
) {
    let mut headers: Vec<String> = vec!["app".into()];
    for s in schemes {
        for f in SWEEP_FREQS {
            headers.push(format!("{s}@{f:.1}"));
        }
    }
    let hdr: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(title, &hdr);

    let mut systems: Vec<XylemSystem> = schemes.iter().map(|&s| system(s)).collect();
    for app in Benchmark::ALL {
        let mut row = vec![app.name().to_string()];
        for sys in systems.iter_mut() {
            for f in SWEEP_FREQS {
                let e = sys.evaluate_uniform(app, f).unwrap();
                row.push(fmt(sensor(&e), 1));
            }
        }
        table.row(row);
    }
    table.emit(csv);
}

/// Fig. 7: steady-state processor-die hotspot temperature, 17 apps x
/// {base, bank, banke, prior} x {2.4, 2.8, 3.2, 3.5 GHz}. A real system
/// would throttle points above T_j,max = 100 C; temperatures above the
/// limit are reported unthrottled, as in the paper.
pub fn fig07_proc_temperature() {
    temperature_sweep(
        "Fig. 7: processor hotspot temperature (deg C)",
        "fig07_proc_temperature",
        &MAIN_SCHEMES,
        |e| e.proc_hotspot_c,
    );
}

/// Fig. 13: steady-state temperature of the bottom-most (hottest) memory
/// die, same sweep as Fig. 7. JEDEC extended range allows up to 95 C.
pub fn fig13_dram_temperature() {
    temperature_sweep(
        "Fig. 13: bottom-most DRAM die hotspot temperature (deg C)",
        "fig13_dram_temperature",
        &MAIN_SCHEMES,
        |e| e.dram_hotspot_c,
    );
}

/// Fig. 14: `bank` vs `isoCount` (same 28 TTSVs, different placement).
pub fn fig14_iso_count() {
    temperature_sweep(
        "Fig. 14: processor hotspot, iso TTSV count (deg C)",
        "fig14_iso_count",
        &[XylemScheme::BankSurround, XylemScheme::IsoCount],
        |e| e.proc_hotspot_c,
    );
    // The paper quotes the mean reduction of isoCount over bank at 2.4.
    let mut bank = system(XylemScheme::BankSurround);
    let mut iso = system(XylemScheme::IsoCount);
    let deltas: Vec<f64> = Benchmark::ALL
        .iter()
        .map(|&a| {
            bank.evaluate_uniform(a, 2.4).unwrap().proc_hotspot_c
                - iso.evaluate_uniform(a, 2.4).unwrap().proc_hotspot_c
        })
        .collect();
    println!(
        "mean isoCount reduction over bank at 2.4 GHz: {:.2} C (paper: 3.7 C)\n",
        mean(&deltas)
    );
}

/// Fig. 8: steady-state temperature reduction over `base` at 2.4 GHz.
pub fn fig08_temperature_reduction() {
    let mut table = Table::new(
        "Fig. 8: temperature reduction over base at 2.4 GHz (deg C)",
        &["app", "bank", "banke"],
    );
    let mut base = system(XylemScheme::Base);
    let mut bank = system(XylemScheme::BankSurround);
    let mut banke = system(XylemScheme::BankEnhanced);
    let mut d_bank = Vec::new();
    let mut d_banke = Vec::new();
    for app in Benchmark::ALL {
        let tb = base.evaluate_uniform(app, 2.4).unwrap().proc_hotspot_c;
        let dk = tb - bank.evaluate_uniform(app, 2.4).unwrap().proc_hotspot_c;
        let de = tb - banke.evaluate_uniform(app, 2.4).unwrap().proc_hotspot_c;
        d_bank.push(dk);
        d_banke.push(de);
        table.row(vec![app.name().into(), fmt(dk, 2), fmt(de, 2)]);
    }
    table.row(vec![
        "Mean".into(),
        fmt(mean(&d_bank), 2),
        fmt(mean(&d_banke), 2),
    ]);
    table.emit("fig08_temperature_reduction");
    println!("paper means: bank 5.0 C, banke 8.4 C\n");
}

/// One application's boost outcome for Figs. 9-12.
#[derive(Debug, Clone)]
pub struct BoostRow {
    /// The application.
    pub app: Benchmark,
    /// base @2.4 reference: (hotspot C, exec time s, stack power W).
    pub base: (f64, f64, f64),
    /// bank at its iso-temperature boost: (f GHz, exec time s, power W).
    pub bank: (f64, f64, f64),
    /// banke at its boost.
    pub banke: (f64, f64, f64),
}

/// Runs the Sec. 7.3 methodology for every application: the reference is
/// `base` at 2.4 GHz; `bank`/`banke` boost to the highest frequency whose
/// hotspot does not exceed the reference temperature.
pub fn boost_sweep() -> Vec<BoostRow> {
    let mut base = system(XylemScheme::Base);
    let mut bank = system(XylemScheme::BankSurround);
    let mut banke = system(XylemScheme::BankEnhanced);
    let mut out = Vec::new();
    for app in Benchmark::ALL {
        let eb = base.evaluate_uniform(app, 2.4).unwrap();
        let reference = eb.proc_hotspot_c;
        let boosted = |sys: &mut XylemSystem| -> (f64, f64, f64) {
            let BoostOutcome { f_ghz, evaluation } =
                max_frequency_at_iso_temperature(sys, app, Celsius::new(reference))
                    .unwrap()
                    .expect("schemes are cooler than base, so 2.4 GHz is admissible");
            (f_ghz, evaluation.exec_time_s(), evaluation.total_power_w)
        };
        let row = BoostRow {
            app,
            base: (reference, eb.exec_time_s(), eb.total_power_w),
            bank: boosted(&mut bank),
            banke: boosted(&mut banke),
        };
        out.push(row);
    }
    out
}

/// Fig. 9: frequency increase over base (MHz) at iso-temperature.
pub fn fig09_frequency_boost() {
    let rows = boost_sweep();
    let mut table = Table::new(
        "Fig. 9: system frequency increase over base (MHz)",
        &["app", "bank", "banke"],
    );
    let (mut a, mut b) = (Vec::new(), Vec::new());
    for r in &rows {
        let da = (r.bank.0 - 2.4) * 1000.0;
        let db = (r.banke.0 - 2.4) * 1000.0;
        a.push(da);
        b.push(db);
        table.row(vec![r.app.name().into(), fmt(da, 0), fmt(db, 0)]);
    }
    table.row(vec!["Mean".into(), fmt(mean(&a), 0), fmt(mean(&b), 0)]);
    table.emit("fig09_frequency_boost");
    println!("paper means: bank ~400 MHz, banke ~720 MHz\n");
}

/// Fig. 10: application performance increase over base (%).
pub fn fig10_performance_gain() {
    let rows = boost_sweep();
    let mut table = Table::new(
        "Fig. 10: application performance gain over base (%)",
        &["app", "bank", "banke"],
    );
    let (mut a, mut b) = (Vec::new(), Vec::new());
    for r in &rows {
        let ga = r.base.1 / r.bank.1;
        let gb = r.base.1 / r.banke.1;
        a.push(ga);
        b.push(gb);
        table.row(vec![
            r.app.name().into(),
            fmt((ga - 1.0) * 100.0, 1),
            fmt((gb - 1.0) * 100.0, 1),
        ]);
    }
    table.row(vec![
        "Geo.Mean".into(),
        fmt((geomean(&a) - 1.0) * 100.0, 1),
        fmt((geomean(&b) - 1.0) * 100.0, 1),
    ]);
    table.emit("fig10_performance_gain");
    println!("paper geometric means: bank 11%, banke 18%\n");
}

/// Fig. 11: stack power increase over base (%).
pub fn fig11_power_increase() {
    let rows = boost_sweep();
    let mut table = Table::new(
        "Fig. 11: stack power increase over base (%)",
        &["app", "bank", "banke"],
    );
    let (mut a, mut b) = (Vec::new(), Vec::new());
    for r in &rows {
        let pa = r.bank.2 / r.base.2;
        let pb = r.banke.2 / r.base.2;
        a.push(pa);
        b.push(pb);
        table.row(vec![
            r.app.name().into(),
            fmt((pa - 1.0) * 100.0, 1),
            fmt((pb - 1.0) * 100.0, 1),
        ]);
    }
    table.row(vec![
        "Geo.Mean".into(),
        fmt((geomean(&a) - 1.0) * 100.0, 1),
        fmt((geomean(&b) - 1.0) * 100.0, 1),
    ]);
    table.emit("fig11_power_increase");
    println!("paper geometric means: bank 12%, banke 22%\n");
}

/// Fig. 12: stack energy change over base (%) — race-to-halt territory.
pub fn fig12_energy_change() {
    let rows = boost_sweep();
    let mut table = Table::new(
        "Fig. 12: stack energy change over base (%)",
        &["app", "bank", "banke"],
    );
    let (mut a, mut b) = (Vec::new(), Vec::new());
    for r in &rows {
        let ea = (r.bank.2 * r.bank.1) / (r.base.2 * r.base.1);
        let eb = (r.banke.2 * r.banke.1) / (r.base.2 * r.base.1);
        a.push(ea);
        b.push(eb);
        table.row(vec![
            r.app.name().into(),
            fmt((ea - 1.0) * 100.0, 1),
            fmt((eb - 1.0) * 100.0, 1),
        ]);
    }
    table.row(vec![
        "Geo.Mean".into(),
        fmt((geomean(&a) - 1.0) * 100.0, 1),
        fmt((geomean(&b) - 1.0) * 100.0, 1),
    ]);
    table.emit("fig12_energy_change");
    println!("paper: roughly energy-neutral on average (race-to-halt)\n");
}

/// Fig. 15: lambda-aware thread placement — LU-NAS (hot) + IS (cool),
/// Outside vs Inside, max die-wide frequency under DTM limits.
pub fn fig15_thread_placement() {
    let mut table = Table::new(
        "Fig. 15: lambda-aware thread placement (max frequency, GHz)",
        &["scheme", "Outside", "Inside", "gain MHz"],
    );
    for scheme in [
        XylemScheme::Base,
        XylemScheme::BankSurround,
        XylemScheme::BankEnhanced,
    ] {
        let mut sys = system(scheme);
        let out = placement_experiment(&mut sys, Benchmark::LuNas, Benchmark::Is).unwrap();
        table.row(vec![
            scheme.name().into(),
            fmt(out.outside_f_ghz, 1),
            fmt(out.inside_f_ghz, 1),
            fmt((out.inside_f_ghz - out.outside_f_ghz) * 1000.0, 0),
        ]);
    }
    table.emit("fig15_thread_placement");
    println!("paper: Inside gains 100 MHz on base, 200 MHz on banke\n");
}

/// Fig. 16: lambda-aware frequency boosting — two 4-thread instances of
/// each app; single chip-wide frequency vs boosting the inner cores
/// further. Reports the mean across all applications.
pub fn fig16_frequency_boosting() {
    let mut table = Table::new(
        "Fig. 16: lambda-aware frequency boosting (mean across apps, GHz)",
        &["scheme", "Single", "Multiple(inner)", "inner gain MHz"],
    );
    for scheme in [
        XylemScheme::Base,
        XylemScheme::BankSurround,
        XylemScheme::BankEnhanced,
    ] {
        let mut sys = system(scheme);
        let mut single = Vec::new();
        let mut multi = Vec::new();
        for app in Benchmark::ALL {
            let out = boosting_experiment(&mut sys, app).unwrap();
            single.push(out.single_f_ghz);
            multi.push(out.multiple_inner_f_ghz);
        }
        let (s, m) = (mean(&single), mean(&multi));
        table.row(vec![
            scheme.name().into(),
            fmt(s, 2),
            fmt(m, 2),
            fmt((m - s) * 1000.0, 0),
        ]);
    }
    table.emit("fig16_frequency_boosting");
    println!("paper: base gains ~0, banke gains ~100 MHz on the inner cores\n");
}

/// Fig. 17: lambda-aware thread migration — two threads rotating every
/// 30 ms around the outer vs inner ring, mean processor hotspot across
/// all applications (same frequency everywhere).
pub fn fig17_thread_migration() {
    let mut table = Table::new(
        "Fig. 17: lambda-aware thread migration (mean hotspot, deg C)",
        &["scheme", "Outer", "Inner", "reduction C"],
    );
    let cfg = MigrationConfig {
        f_ghz: 3.2,
        ..MigrationConfig::paper_default()
    };
    for scheme in [
        XylemScheme::Base,
        XylemScheme::BankSurround,
        XylemScheme::BankEnhanced,
    ] {
        let sys = system(scheme);
        let mut outer = Vec::new();
        let mut inner = Vec::new();
        for app in Benchmark::ALL {
            outer.push(
                migration_experiment(&sys, app, &ThreadPlacement::outer(), &cfg)
                    .unwrap()
                    .mean_hotspot_c,
            );
            inner.push(
                migration_experiment(&sys, app, &ThreadPlacement::inner(), &cfg)
                    .unwrap()
                    .mean_hotspot_c,
            );
        }
        let (o, i) = (mean(&outer), mean(&inner));
        table.row(vec![
            scheme.name().into(),
            fmt(o, 2),
            fmt(i, 2),
            fmt(o - i, 2),
        ]);
    }
    table.emit("fig17_thread_migration");
    println!("paper: inner ring saves ~0.4 C on base, ~1.5 C on banke\n");
}

/// Fig. 18: die-thickness sensitivity (50/100/200 um), mean processor
/// hotspot across apps at 2.4 GHz.
pub fn fig18_die_thickness() {
    let mut table = Table::new(
        "Fig. 18: die-thickness sensitivity (mean hotspot at 2.4 GHz, deg C)",
        &["thickness", "base", "bank", "banke"],
    );
    for t_um in [50.0, 100.0, 200.0] {
        let mut row = vec![format!("{t_um:.0} um")];
        for scheme in [
            XylemScheme::Base,
            XylemScheme::BankSurround,
            XylemScheme::BankEnhanced,
        ] {
            let mut sys = system_with(scheme, |s| s.die_thickness = t_um * 1e-6);
            let temps: Vec<f64> = Benchmark::ALL
                .iter()
                .map(|&a| sys.evaluate_uniform(a, 2.4).unwrap().proc_hotspot_c)
                .collect();
            row.push(fmt(mean(&temps), 2));
        }
        table.row(row);
    }
    table.emit("fig18_die_thickness");
    println!("paper: thinner dies are hotter (lateral spreading loss)\n");
}

/// Fig. 19: memory-die-count sensitivity (4/8/12 dies), mean processor
/// hotspot across apps at 2.4 GHz.
pub fn fig19_memory_dies() {
    let mut table = Table::new(
        "Fig. 19: memory-die-count sensitivity (mean hotspot at 2.4 GHz, deg C)",
        &["dies", "base", "bank", "banke"],
    );
    for n in [4usize, 8, 12] {
        let mut row = vec![format!("{n}")];
        for scheme in [
            XylemScheme::Base,
            XylemScheme::BankSurround,
            XylemScheme::BankEnhanced,
        ] {
            let mut sys = system_with(scheme, |s| s.n_dram_dies = n);
            let temps: Vec<f64> = Benchmark::ALL
                .iter()
                .map(|&a| sys.evaluate_uniform(a, 2.4).unwrap().proc_hotspot_c)
                .collect();
            row.push(fmt(mean(&temps), 2));
        }
        table.row(row);
    }
    table.emit("fig19_memory_dies");
    println!("paper: more dies are hotter (more power, longer path)\n");
}

/// Table 1: layer dimensions and thermal conductivities.
pub fn table1_layers() {
    let built = xylem_stack::StackConfig::paper_default(XylemScheme::Base)
        .build()
        .unwrap();
    let mut table = Table::new(
        "Table 1: dimensions and thermal parameters",
        &["layer", "thickness", "lambda W/m-K"],
    );
    let p = built.stack().package();
    table.row(vec![
        "Heat sink".into(),
        format!(
            "{:.1} cm side, {:.1} mm",
            p.sink_side() * 100.0,
            p.sink_thickness() * 1000.0
        ),
        fmt(p.sink_material().conductivity().get(), 0),
    ]);
    table.row(vec![
        "IHS".into(),
        format!(
            "{:.1} cm side, {:.1} mm",
            p.spreader_side() * 100.0,
            p.spreader_thickness() * 1000.0
        ),
        fmt(p.spreader_material().conductivity().get(), 0),
    ]);
    table.row(vec![
        "TIM".into(),
        format!("{:.0} um", p.tim_thickness() * 1e6),
        fmt(p.tim_material().conductivity().get(), 0),
    ]);
    for idx in [0usize, 1, 2] {
        let l = built.stack().layer(idx).unwrap();
        table.row(vec![
            l.name().into(),
            format!("{:.0} um", l.thickness() * 1e6),
            fmt(l.base_material().conductivity().get(), 1),
        ]);
    }
    let proc_si = built.stack().layer(built.proc_si_layer()).unwrap();
    let proc_m = built.stack().layer(built.proc_metal_layer()).unwrap();
    for l in [proc_si, proc_m] {
        table.row(vec![
            l.name().into(),
            format!("{:.0} um", l.thickness() * 1e6),
            fmt(l.base_material().conductivity().get(), 1),
        ]);
    }
    table.emit("table1_layers");
}

/// Table 2: the evaluated schemes and their TTSV counts.
pub fn table2_schemes() {
    let g = DramDieGeometry::paper_default();
    let mut table = Table::new(
        "Table 2: Xylem schemes evaluated",
        &["scheme", "name", "TTSVs/die", "aligned+shorted"],
    );
    let label = |s: XylemScheme| match s {
        XylemScheme::Base => "Baseline (Wide I/O)",
        XylemScheme::BankSurround => "Bank Surround",
        XylemScheme::BankEnhanced => "Bank Surround Enhanced",
        XylemScheme::IsoCount => "Iso Count",
        XylemScheme::Prior => "Prior proposals",
    };
    for s in XylemScheme::ALL {
        table.row(vec![
            label(s).into(),
            s.name().into(),
            format!("{}", s.ttsv_count(&g)),
            format!("{}", s.aligned_and_shorted()),
        ]);
    }
    table.emit("table2_schemes");
}

/// Table 3: architecture parameters.
pub fn table3_arch() {
    let c = ArchConfig::paper_default();
    let mut table = Table::new("Table 3: architectural parameters", &["parameter", "value"]);
    let rows: Vec<(&str, String)> = vec![
        (
            "cores",
            format!("{} x {}-issue OoO, 2.4-3.5 GHz", c.cores, c.issue_width),
        ),
        (
            "L1I",
            format!(
                "{} KB, {}-way, {} cycles RT",
                c.l1i.size / 1024,
                c.l1i.ways,
                c.l1i.round_trip_cycles
            ),
        ),
        (
            "L1D",
            format!(
                "{} KB, {}-way, WT, {} cycles RT",
                c.l1d.size / 1024,
                c.l1d.ways,
                c.l1d.round_trip_cycles
            ),
        ),
        (
            "L2",
            format!(
                "{} KB, {}-way, WB, private, {} cycles RT",
                c.l2.size / 1024,
                c.l2.ways,
                c.l2.round_trip_cycles
            ),
        ),
        (
            "coherence",
            format!("bus-based snoopy MESI, {}-bit bus", c.bus_width_bits),
        ),
        (
            "DRAM",
            "8 dies x 4 Gb; 4 Wide I/O channels; 51.2 GB/s".into(),
        ),
        (
            "T_j,max",
            format!("{} C processor, {} C DRAM", c.t_j_max, c.t_dram_max),
        ),
    ];
    for (k, v) in rows {
        table.row(vec![k.into(), v]);
    }
    table.emit("table3_arch");
}

/// Sec. 7.1: TTSV area and routing overheads.
pub fn area_overhead() {
    let g = DramDieGeometry::paper_default();
    let mut table = Table::new(
        "Sec. 7.1: TTSV area and routing overheads",
        &[
            "scheme",
            "TTSVs",
            "area mm2",
            "% of 64.34 mm2",
            "frontside vias",
            "backside vias",
        ],
    );
    for s in XylemScheme::ALL {
        let a = AreaOverhead::for_scheme(s, &g, SAMSUNG_WIDE_IO_DIE_AREA);
        let r = RoutingOverhead::for_scheme(s, &g);
        table.row(vec![
            s.name().into(),
            format!("{}", a.ttsv_count),
            fmt(a.total_area * 1e6, 4),
            fmt(a.percent(), 2),
            format!("{}", r.frontside_vias),
            format!("{}", r.backside_vias),
        ]);
    }
    table.emit("area_overhead");
    println!("paper: bank 0.4032 mm2 (0.63%), banke 0.5184 mm2 (0.81%)\n");
}

/// Ablation: how the D2D pillar footprint (the calibration knob of
/// DESIGN.md §10) shapes the banke temperature reduction and the
/// iso-temperature frequency boost. 100 um = a single aligned microbump
/// per TTSV; larger values short in neighbouring dummy bumps.
pub fn ablation_pillar_footprint() {
    let mut table = Table::new(
        "Ablation: dummy-microbump cluster footprint (Barnes @ 2.4 GHz)",
        &[
            "footprint um",
            "banke hotspot C",
            "reduction vs base C",
            "boost MHz",
        ],
    );
    let mut base = system_fast(XylemScheme::Base);
    let reference = base
        .evaluate_uniform(Benchmark::Barnes, 2.4)
        .unwrap()
        .proc_hotspot_c;
    for um in [100.0, 250.0, 350.0, 450.0, 600.0] {
        let mut sys = system_with(XylemScheme::BankEnhanced, |s| {
            s.pillar_footprint = um * 1e-6;
        });
        let t = sys
            .evaluate_uniform(Benchmark::Barnes, 2.4)
            .unwrap()
            .proc_hotspot_c;
        let boost =
            max_frequency_at_iso_temperature(&mut sys, Benchmark::Barnes, Celsius::new(reference))
                .unwrap()
                .map_or(0.0, |b| (b.f_ghz - 2.4) * 1000.0);
        table.row(vec![
            fmt(um, 0),
            fmt(t, 2),
            fmt(reference - t, 2),
            fmt(boost, 0),
        ]);
    }
    table.emit("ablation_pillar_footprint");
}

/// Ablation: the electrical TSV-bus conduction path (Sec. 4.1's "limited
/// contribution"). Compares the default model against one where the D2D
/// bus region is left at the average 1.5 W/m-K.
pub fn ablation_electrical_bus() {
    // The bus patch is always painted; emulate "no bus" by thickening the
    // D2D equivalently? No — rebuild with a bus-free variant by setting
    // the bus length to (near) zero on both dies.
    let mut table = Table::new(
        "Ablation: electrical-bus vertical conduction (base scheme, 2.4 GHz)",
        &["app", "with bus C", "without bus C", "delta C"],
    );
    for app in [Benchmark::Cholesky, Benchmark::Fft, Benchmark::Is] {
        let mut with_bus = system_fast(XylemScheme::Base);
        let t_with = with_bus.evaluate_uniform(app, 2.4).unwrap().proc_hotspot_c;
        let mut without = system_with(XylemScheme::Base, |s| {
            // Shrink the electrical bus to a sliver: its D2D patch (and
            // the lambda-190 silicon block) becomes negligible.
            s.dram_geometry.bus_length = 1e-5;
            s.dram_geometry.bus_height = 1e-5;
        });
        let t_without = without.evaluate_uniform(app, 2.4).unwrap().proc_hotspot_c;
        table.row(vec![
            app.name().into(),
            fmt(t_with, 2),
            fmt(t_without, 2),
            fmt(t_without - t_with, 2),
        ]);
    }
    table.emit("ablation_electrical_bus");
    println!("the connected electrical bumps at the die center help, but are no substitute for pillars\n");
}

/// Extension (Sec. 7.5): temperature-derated refresh. With Xylem the
/// processor boosts at iso-temperature, so DRAM temperature — and hence
/// the JEDEC refresh interval and refresh power — stays at the base
/// level instead of degrading.
pub fn ext_refresh_derating() {
    use xylem_dram::energy::DramEnergyModel;
    use xylem_dram::timing::{refresh_interval_ms, refresh_overhead, WideIoTiming};
    let timing = WideIoTiming::paper_default();
    let energy = DramEnergyModel::paper_default();
    let mut table = Table::new(
        "Sec. 7.5 extension: refresh vs DRAM temperature under boosting",
        &[
            "config",
            "f GHz",
            "DRAM hotspot C",
            "tREFW ms",
            "refresh overhead %",
            "refresh W/die",
        ],
    );
    let rows = boost_sweep();
    // Use the hottest application (largest DRAM temperature swing).
    let hottest = Benchmark::LuNas;
    let mut base = system(XylemScheme::Base);
    let mut banke = system(XylemScheme::BankEnhanced);
    let b24 = base.evaluate_uniform(hottest, 2.4).unwrap();
    let boost_f = rows
        .iter()
        .find(|r| r.app == hottest)
        .map(|r| r.banke.0)
        .unwrap_or(2.4);
    let eb = banke.evaluate_uniform(hottest, boost_f).unwrap();
    // And base naively pushed to the same frequency (what a system
    // without Xylem would suffer).
    let b_pushed = base.evaluate_uniform(hottest, boost_f).unwrap();
    for (config, f, t) in [
        ("base @2.4", 2.4, b24.dram_hotspot_c),
        ("base pushed (no Xylem)", boost_f, b_pushed.dram_hotspot_c),
        ("banke boosted (Xylem)", boost_f, eb.dram_hotspot_c),
    ] {
        table.row(vec![
            config.into(),
            fmt(f, 1),
            fmt(t, 1),
            fmt(refresh_interval_ms(t), 0),
            fmt(refresh_overhead(&timing, t) * 100.0, 2),
            fmt(energy.refresh_power(t), 3),
        ]);
    }
    table.emit("ext_refresh_derating");
    println!("paper: refresh halves per 10 C above 85 C; Xylem boosts without paying it\n");
}

/// Extension (Sec. 3): the processor-on-top vs memory-on-top tradeoff.
/// Thermally, processor-on-top wins by a wide margin (no D2D layers
/// between the hot die and the sink); the paper still chooses
/// memory-on-top for manufacturability and fixes its thermals with
/// Xylem. This bench quantifies both sides of the tradeoff.
pub fn ext_organization() {
    use xylem_stack::Organization;
    let mut table = Table::new(
        "Sec. 3 extension: stack organization tradeoff (2.4 GHz)",
        &[
            "app",
            "mem-on-top C",
            "proc-on-top C",
            "mem-on-top + banke C",
        ],
    );
    let mut mem = system_fast(XylemScheme::Base);
    let mut proc = system_with(XylemScheme::Base, |s| {
        s.organization = Organization::ProcessorOnTop;
    });
    let mut banke = system_fast(XylemScheme::BankEnhanced);
    for app in [
        Benchmark::LuNas,
        Benchmark::Barnes,
        Benchmark::Fft,
        Benchmark::Is,
    ] {
        table.row(vec![
            app.name().into(),
            fmt(mem.evaluate_uniform(app, 2.4).unwrap().proc_hotspot_c, 2),
            fmt(proc.evaluate_uniform(app, 2.4).unwrap().proc_hotspot_c, 2),
            fmt(banke.evaluate_uniform(app, 2.4).unwrap().proc_hotspot_c, 2),
        ]);
    }
    table.emit("ext_organization");
    println!(
        "processor-on-top is coolest but needs ~500 power/ground TSVs through every \
         memory die (Sec. 3.1); Xylem recovers much of the gap without them\n"
    );
}

/// Sec. 2.5: the Rth analysis that motivates the whole paper.
pub fn rth_analysis() {
    use xylem_thermal::material::{D2D_AVERAGE, PROC_METAL, SILICON};
    let mut table = Table::new(
        "Sec. 2.5: thermal resistance per unit area (mm2-K/W)",
        &["layer", "thickness um", "lambda W/m-K", "Rth mm2-K/W"],
    );
    let rows = [
        ("D2D (bumps+underfill)", 20.0, &D2D_AVERAGE),
        ("bulk silicon", 100.0, &SILICON),
        ("processor metal", 12.0, &PROC_METAL),
    ];
    for (name, t_um, m) in rows {
        table.row(vec![
            name.into(),
            fmt(t_um, 0),
            fmt(m.conductivity().get(), 1),
            fmt(m.rth_per_area(t_um * 1e-6) * 1e6, 2),
        ]);
    }
    table.emit("rth_analysis");
    let d2d = D2D_AVERAGE.rth_per_area(20e-6);
    println!(
        "D2D is {:.1}x more resistive than bulk Si and {:.1}x more than the metal layers",
        d2d / SILICON.rth_per_area(100e-6),
        d2d / PROC_METAL.rth_per_area(12e-6)
    );
    let pillar = xylem_thermal::material::shorted_pillar_d2d(20e-6);
    println!(
        "aligned+shorted pillar site: {:.2} mm2-K/W ({:.0}x lower than the 13.33 average)\n",
        pillar.rth_per_area(20e-6) * 1e6,
        d2d / pillar.rth_per_area(20e-6)
    );
}
