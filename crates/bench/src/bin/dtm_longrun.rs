//! Long-running DTM transient with periodic checkpointing — the
//! fault-tolerance story end to end on a realistic run length.
//!
//! ```text
//! dtm_longrun [--scheme base] [--app "LU(NAS)"] [--freq 3.5]
//!             [--duration 10.0] [--grid 24]
//!             [--checkpoint PATH] [--every 200] [--resume]
//!             [--adaptive] [--rtol 1e-3]
//!             [--budget-cg N] [--budget-wall-s S] [--budget-rejects N]
//! ```
//!
//! With `--checkpoint` the full controller state is atomically written
//! every `--every` control steps; kill the process mid-run and re-invoke
//! with `--resume` to continue from the last file — the completed run is
//! bit-identical to an uninterrupted one.

use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;

use xylem::dtm::{dtm_transient_configured, CheckpointConfig, DtmPolicy, DtmRunConfig};
use xylem::sensor::SensorModel;
use xylem::system::{SystemConfig, XylemSystem};
use xylem_stack::XylemScheme;
use xylem_thermal::grid::GridSpec;
use xylem_thermal::AdaptiveOptions;
use xylem_workloads::Benchmark;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut out = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(key) = args[i].strip_prefix("--") {
            // A flag followed by another flag (or nothing) is boolean.
            if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                out.insert(key.to_string(), args[i + 1].clone());
                i += 2;
            } else {
                out.insert(key.to_string(), "true".to_string());
                i += 1;
            }
        } else {
            i += 1;
        }
    }
    out
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = parse_flags(&args);

    let scheme_name = opts.get("scheme").map(String::as_str).unwrap_or("base");
    let scheme = XylemScheme::ALL
        .into_iter()
        .find(|s| s.name().eq_ignore_ascii_case(scheme_name))
        .ok_or_else(|| format!("unknown scheme '{scheme_name}'"))?;
    let app_name = opts.get("app").map(String::as_str).unwrap_or("LU(NAS)");
    let app = Benchmark::ALL
        .into_iter()
        .find(|b| b.name().eq_ignore_ascii_case(app_name))
        .ok_or_else(|| format!("unknown application '{app_name}'"))?;
    let freq: f64 = match opts.get("freq") {
        None => 3.5,
        Some(s) => s.parse().map_err(|_| format!("bad --freq '{s}'"))?,
    };
    let duration: f64 = match opts.get("duration") {
        None => 10.0,
        Some(s) => s.parse().map_err(|_| format!("bad --duration '{s}'"))?,
    };
    let grid: usize = match opts.get("grid") {
        None => 24,
        Some(s) => s.parse().map_err(|_| format!("bad --grid '{s}'"))?,
    };
    let every: usize = match opts.get("every") {
        None => 200,
        Some(s) => s.parse().map_err(|_| format!("bad --every '{s}'"))?,
    };
    let resume = opts.contains_key("resume");
    let checkpoint = opts.get("checkpoint").map(PathBuf::from);
    if resume && checkpoint.is_none() {
        return Err("--resume needs --checkpoint PATH".to_string());
    }

    let sys = XylemSystem::new(SystemConfig::paper_default(scheme)).map_err(|e| e.to_string())?;
    let mut policy = DtmPolicy::paper_default();
    if opts.contains_key("adaptive") {
        let mut a = AdaptiveOptions::default();
        if let Some(s) = opts.get("rtol") {
            a.rtol = s.parse().map_err(|_| format!("bad --rtol '{s}'"))?;
        }
        if let Some(s) = opts.get("budget-cg") {
            a.max_cg_iterations = Some(s.parse().map_err(|_| format!("bad --budget-cg '{s}'"))?);
        }
        if let Some(s) = opts.get("budget-wall-s") {
            a.max_wall_s = Some(
                s.parse()
                    .map_err(|_| format!("bad --budget-wall-s '{s}'"))?,
            );
        }
        if let Some(s) = opts.get("budget-rejects") {
            a.max_reject_streak = s
                .parse()
                .map_err(|_| format!("bad --budget-rejects '{s}'"))?;
        }
        policy = policy.with_adaptive(a);
    }
    let grid_spec = GridSpec::new(grid, grid);
    let run = DtmRunConfig {
        sensors: Some(SensorModel::default_array(grid, grid, 1)),
        checkpoint: checkpoint.clone().map(|path| CheckpointConfig {
            path,
            every_steps: every,
            resume,
        }),
        ..DtmRunConfig::new(policy)
    };

    println!(
        "{app} on {scheme}: {freq:.1} GHz requested for {duration:.1} s \
         ({} steps of {:.0} us){}",
        (duration / policy.control_period_s).round() as usize,
        policy.control_period_s * 1e6,
        match &checkpoint {
            Some(p) if resume => format!(", resuming from {}", p.display()),
            Some(p) => format!(", checkpointing to {} every {every} steps", p.display()),
            None => String::new(),
        }
    );
    let r = dtm_transient_configured(&sys, app, freq, duration, &run, grid_spec)
        .map_err(|e| e.to_string())?;
    println!(
        "  effective {:.2} GHz, final {:.1} GHz, {} throttle steps, peak {:.1} C",
        r.mean_f_ghz(),
        r.final_f_ghz,
        r.throttle_events,
        r.peak_hotspot().get(),
    );
    println!(
        "  {:.1}% of time above trip, {} fail-safe periods, {} CG iterations",
        r.time_above_trip * 100.0,
        r.failsafe_events,
        r.cg_iterations
    );
    if !r.recovery.is_empty() {
        println!(
            "  solver ladder: {} escalations, {} recovered",
            r.recovery.attempts, r.recovery.recoveries
        );
    }
    if let Some(a) = &r.adaptive {
        println!(
            "  adaptive: {} BE solves, {} accepted ({} forced), {} rejected, {} held, \
             final dt {:.2e} s{}",
            a.be_solves,
            a.accepted,
            a.forced,
            a.rejected,
            a.holds,
            a.final_dt_s,
            if a.economy { " [economy mode]" } else { "" }
        );
    }
    Ok(())
}
