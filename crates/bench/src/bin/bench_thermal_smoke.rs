//! Solver smoke benchmark: regenerates `BENCH_thermal.json` at the
//! workspace root (run via `./ci.sh bench`).
//!
//! Measures, per grid size, the steady-state solve over the CSR+AMG
//! path and the seed-era adjacency Jacobi-CG path (wall time and CG
//! iteration counts), plus the warm- vs cold-started CG cost of one DTM
//! control-period step. The checked-in JSON is the reference record of
//! the solver-core speedup; regenerate it on solver changes and eyeball
//! the diff.

use std::time::Instant;

use serde::Serialize;
use xylem::system::{SystemConfig, XylemSystem};
use xylem_stack::{StackConfig, XylemScheme};
use xylem_thermal::grid::GridSpec;
use xylem_thermal::power::PowerMap;
use xylem_thermal::temperature::TemperatureField;
use xylem_thermal::units::Watts;
use xylem_thermal::{AdaptiveController, AdaptiveOptions, SolverWorkspace};
use xylem_workloads::Benchmark;

#[derive(Serialize)]
struct SteadyRow {
    grid: usize,
    nodes: usize,
    nnz: usize,
    csr_amg_ms: f64,
    csr_amg_iters: usize,
    seed_adjacency_ms: f64,
    seed_adjacency_iters: usize,
    speedup: f64,
}

#[derive(Serialize)]
struct DtmStep {
    grid: usize,
    dt_s: f64,
    warm_iters: usize,
    cold_iters: usize,
    warm_ms: f64,
    cold_ms: f64,
}

#[derive(Serialize)]
struct ObsOverhead {
    grid: usize,
    disabled_ms: f64,
    enabled_ms: f64,
    overhead_pct: f64,
}

#[derive(Serialize)]
struct AdaptiveCompare {
    grid: usize,
    horizon_s: f64,
    chunk_s: f64,
    rtol: f64,
    reference_dt_s: f64,
    reference_solves: usize,
    fixed_dt_s: f64,
    fixed_solves: usize,
    fixed_dev_k: f64,
    adaptive_solves: usize,
    adaptive_dev_k: f64,
    adaptive_rejected: usize,
    solve_saving_vs_reference: f64,
    solve_saving_vs_fixed: f64,
}

#[derive(Serialize)]
struct Report {
    description: &'static str,
    scheme: &'static str,
    steady_state: Vec<SteadyRow>,
    dtm_step: DtmStep,
    adaptive: AdaptiveCompare,
    obs_overhead: ObsOverhead,
}

fn time_ms<O>(reps: usize, mut f: impl FnMut() -> O) -> f64 {
    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(f());
    }
    t0.elapsed().as_secs_f64() * 1e3 / reps as f64
}

fn main() {
    let built = StackConfig::paper_default(XylemScheme::BankEnhanced)
        .build()
        .expect("paper-default stack builds");

    let mut steady = Vec::new();
    for grid in [16usize, 32, 64] {
        let model = built
            .stack()
            .discretize(GridSpec::new(grid, grid))
            .expect("grid discretizes");
        let mut p = PowerMap::zeros(&model);
        p.add_uniform_layer_power(built.proc_metal_layer(), Watts::new(20.0));
        for &l in built.dram_metal_layers() {
            p.add_uniform_layer_power(l, Watts::new(0.4));
        }
        let reps = if grid == 64 { 3 } else { 10 };
        let mut ws = SolverWorkspace::new();
        let amg_field = model
            .steady_state_from(&p, None, &mut ws)
            .expect("csr+amg solve");
        let csr_amg_ms = time_ms(reps, || {
            model.steady_state_from(&p, None, &mut ws).expect("solve")
        });
        let adj_field = model.steady_state_adjacency(&p).expect("adjacency solve");
        let seed_adjacency_ms = time_ms(reps, || model.steady_state_adjacency(&p).expect("solve"));
        steady.push(SteadyRow {
            grid,
            nodes: model.node_count(),
            nnz: model.csr().nnz(),
            csr_amg_ms,
            csr_amg_iters: amg_field.stats().iterations,
            seed_adjacency_ms,
            seed_adjacency_iters: adj_field.stats().iterations,
            speedup: seed_adjacency_ms / csr_amg_ms,
        });
    }

    // One DTM control-period step at the operating point: warm seeds CG
    // with the current field (the dtm_transient stepping pattern), cold
    // forces the iterate back to ambient.
    let model = built
        .stack()
        .discretize(GridSpec::new(32, 32))
        .expect("grid discretizes");
    let mut p = PowerMap::zeros(&model);
    p.add_uniform_layer_power(built.proc_metal_layer(), Watts::new(20.0));
    for &l in built.dram_metal_layers() {
        p.add_uniform_layer_power(l, Watts::new(0.4));
    }
    let mut ws = SolverWorkspace::new();
    let near_ss = model
        .steady_state_from(&p, None, &mut ws)
        .expect("steady state");
    let ambient = TemperatureField::uniform(&model, model.ambient());
    let dt = 1e-3;
    let warm = model
        .transient_with(&p, &near_ss, dt, 1, None, &mut ws)
        .expect("warm step");
    let warm_ms = time_ms(20, || {
        model
            .transient_with(&p, &near_ss, dt, 1, None, &mut ws)
            .expect("warm step")
    });
    let cold = model
        .transient_with(&p, &near_ss, dt, 1, Some(&ambient), &mut ws)
        .expect("cold step");
    let cold_ms = time_ms(20, || {
        model
            .transient_with(&p, &near_ss, dt, 1, Some(&ambient), &mut ws)
            .expect("cold step")
    });
    let dtm_step = DtmStep {
        grid: 32,
        dt_s: dt,
        warm_iters: warm.stats().iterations,
        cold_iters: cold.stats().iterations,
        warm_ms,
        cold_ms,
    };

    // Fixed vs adaptive stepping on the dtm_longrun workload (LU(NAS)
    // at 3.5 GHz on the base scheme, 24x24 grid): heat the die for one
    // second in 10 ms control chunks with a persistent controller — the
    // DTM usage pattern — and compare against a fixed-step reference 10x
    // finer than the 1 ms baseline. The accuracy/steps bar (<= 0.1 K at
    // rtol 1e-3 with >= 2x fewer BE solves) is the adaptive engine's
    // headline claim; EXPERIMENTS.md records this row.
    let adaptive = {
        let sys = XylemSystem::new(SystemConfig::paper_default(XylemScheme::Base))
            .expect("base system builds");
        let grid = 24usize;
        let model = sys
            .built()
            .stack()
            .discretize(GridSpec::new(grid, grid))
            .expect("grid discretizes");
        let (_, maps) = xylem::dtm::dvfs_power_maps(&sys, Benchmark::LuNas, 3.5, &model)
            .expect("power maps build");
        let power = maps.last().expect("at least one DVFS point");
        let initial = TemperatureField::uniform(&model, model.ambient());
        let horizon_s: f64 = 1.0;
        let chunk_s: f64 = 10e-3;
        let fixed_dt_s: f64 = 1e-3;
        let reference_dt_s = fixed_dt_s / 10.0;
        let mut ws = SolverWorkspace::new();

        let ref_steps = (horizon_s / reference_dt_s).round() as usize;
        let reference = model
            .transient_with(power, &initial, reference_dt_s, ref_steps, None, &mut ws)
            .expect("reference run");
        let fixed_steps = (horizon_s / fixed_dt_s).round() as usize;
        let fixed = model
            .transient_with(power, &initial, fixed_dt_s, fixed_steps, None, &mut ws)
            .expect("fixed run");

        let mut ctrl = AdaptiveController::new(AdaptiveOptions {
            rtol: 1e-3,
            atol: 1e-3,
            dt_min: 1e-5,
            dt_max: chunk_s,
            dt_init: 1e-3,
            ..AdaptiveOptions::default()
        })
        .expect("adaptive options validate");
        let chunks = (horizon_s / chunk_s).round() as usize;
        let mut state = initial;
        for _ in 0..chunks {
            state = model
                .transient_adaptive(power, &state, chunk_s, &mut ctrl, &mut ws)
                .expect("adaptive chunk");
        }
        let summary = ctrl.summary();

        let max_of =
            |f: &TemperatureField| f.raw().iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let ref_max = max_of(&reference);
        AdaptiveCompare {
            grid,
            horizon_s,
            chunk_s,
            rtol: 1e-3,
            reference_dt_s,
            reference_solves: ref_steps,
            fixed_dt_s,
            fixed_solves: fixed_steps,
            fixed_dev_k: (max_of(&fixed) - ref_max).abs(),
            adaptive_solves: summary.be_solves as usize,
            adaptive_dev_k: (max_of(&state) - ref_max).abs(),
            adaptive_rejected: summary.rejected as usize,
            solve_saving_vs_reference: ref_steps as f64 / summary.be_solves as f64,
            solve_saving_vs_fixed: fixed_steps as f64 / summary.be_solves as f64,
        }
    };

    // Observability overhead on the same 32x32 steady solve: the
    // xylem-obs budget is < 5% with a live JSONL sink (DESIGN.md §14).
    // Interleaved rounds with min aggregation: on a shared single-core
    // box, clock drift between two mean-of-N blocks easily exceeds the
    // effect being measured, while the per-mode minimum is stable.
    let mut disabled_ms = f64::INFINITY;
    let mut enabled_ms = f64::INFINITY;
    for _ in 0..6 {
        let d = time_ms(5, || {
            model.steady_state_from(&p, None, &mut ws).expect("solve")
        });
        disabled_ms = disabled_ms.min(d);
        let sink = xylem_obs::install_memory();
        let e = time_ms(5, || {
            model.steady_state_from(&p, None, &mut ws).expect("solve")
        });
        xylem_obs::shutdown();
        drop(sink);
        enabled_ms = enabled_ms.min(e);
    }
    let obs_overhead = ObsOverhead {
        grid: 32,
        disabled_ms,
        enabled_ms,
        overhead_pct: (enabled_ms / disabled_ms - 1.0) * 100.0,
    };

    let report = Report {
        description: "Solver smoke numbers: CSR+AMG steady state vs the seed adjacency \
                      Jacobi-CG path, warm- vs cold-started DTM steps, fixed- vs \
                      adaptive-stepping accuracy/solve-count on the dtm_longrun workload, \
                      and the enabled-sink observability overhead. Regenerate with \
                      ./ci.sh bench.",
        scheme: "BankEnhanced",
        steady_state: steady,
        dtm_step,
        adaptive,
        obs_overhead,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_thermal.json");
    std::fs::write(path, format!("{json}\n")).expect("write BENCH_thermal.json");
    println!("{json}");
    println!("[wrote {path}]");
}
