//! Solver smoke benchmark: regenerates `BENCH_thermal.json` at the
//! workspace root (run via `./ci.sh bench`).
//!
//! Measures, per grid size, the steady-state solve through the model's
//! default pick (matrix-free stencil + GMG on large grids, CSR+AMG on
//! small ones) against the seed-era adjacency Jacobi-CG path; a
//! preconditioner head-to-head (setup / apply / full solve, AMG vs
//! GMG) at 64x64 and 128x128; a stencil-vs-CSR matvec microbench; the
//! warm- vs cold-started CG cost of one DTM control-period step; and
//! adaptive-vs-fixed stepping at matched accuracy. The checked-in JSON
//! is the reference record of the solver-core speedups; regenerate it
//! on solver changes and eyeball the diff.

use std::time::Instant;

use serde::Serialize;
use xylem::system::{SystemConfig, XylemSystem};
use xylem_stack::{StackConfig, XylemScheme};
use xylem_thermal::grid::GridSpec;
use xylem_thermal::power::PowerMap;
use xylem_thermal::solve::{Preconditioner, PreconditionerKind, SolverOptions};
use xylem_thermal::temperature::TemperatureField;
use xylem_thermal::units::Watts;
use xylem_thermal::{AdaptiveController, AdaptiveOptions, SolverWorkspace, ThermalModel};
use xylem_workloads::Benchmark;

#[derive(Serialize)]
struct SteadyRow {
    grid: usize,
    nodes: usize,
    nnz: usize,
    /// The preconditioner the model picked for itself at this size.
    solver: &'static str,
    solver_ms: f64,
    solver_iters: usize,
    seed_adjacency_ms: f64,
    seed_adjacency_iters: usize,
    speedup: f64,
}

/// AMG-vs-GMG head-to-head over the same matrix: hierarchy setup, one
/// preconditioner apply, and the full preconditioned steady solve.
#[derive(Serialize)]
struct PrecRow {
    grid: usize,
    kind: &'static str,
    setup_ms: f64,
    apply_ms: f64,
    solve_ms: f64,
    solve_iters: usize,
}

/// Serial `y = A x` through the flat CSR rows vs the coefficient-plane
/// stencil sweep (same arithmetic, bit-identical output).
#[derive(Serialize)]
struct MatvecRow {
    grid: usize,
    nodes: usize,
    csr_ms: f64,
    stencil_ms: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct DtmStep {
    grid: usize,
    dt_s: f64,
    warm_iters: usize,
    cold_iters: usize,
    warm_ms: f64,
    cold_ms: f64,
}

#[derive(Serialize)]
struct ObsOverhead {
    grid: usize,
    disabled_ms: f64,
    enabled_ms: f64,
    overhead_pct: f64,
}

/// Adaptive vs fixed stepping, compared *at matched accuracy*: the
/// 1 ms fixed baseline and the adaptive run each carry their own
/// deviation from the 10x-finer reference, and the headline saving is
/// quoted against the first fixed-dt rung whose deviation is at or
/// below the adaptive run's — not against a baseline that is less
/// accurate than the thing it is compared to.
#[derive(Serialize)]
struct AdaptiveCompare {
    grid: usize,
    horizon_s: f64,
    chunk_s: f64,
    rtol: f64,
    reference_dt_s: f64,
    reference_solves: usize,
    fixed_dt_s: f64,
    fixed_solves: usize,
    fixed_dev_k: f64,
    matched_fixed_dt_s: f64,
    matched_fixed_solves: usize,
    matched_fixed_dev_k: f64,
    adaptive_solves: usize,
    adaptive_dev_k: f64,
    adaptive_rejected: usize,
    solve_saving_vs_reference: f64,
    solve_saving_at_matched_accuracy: f64,
}

/// Sweep-engine throughput (DESIGN.md §18): a warm-cache scheme x
/// workload x frequency grid through `run_sweep`, plus a seeded chaos
/// drill (injected panics, forced non-convergence, deadline blowouts)
/// exercising the retry and quarantine paths.
#[derive(Serialize)]
struct SweepGrid {
    grid: usize,
    tasks: usize,
    shards: usize,
    elapsed_s: f64,
    tasks_per_sec: f64,
    task_p50_ms: f64,
    task_p99_ms: f64,
    chaos_retried_attempts: u64,
    chaos_quarantined: usize,
    chaos_ok: usize,
}

#[derive(Serialize)]
struct Report {
    description: &'static str,
    scheme: &'static str,
    steady_state: Vec<SteadyRow>,
    preconditioner: Vec<PrecRow>,
    matvec: Vec<MatvecRow>,
    dtm_step: DtmStep,
    adaptive: AdaptiveCompare,
    sweep_grid: SweepGrid,
    obs_overhead: ObsOverhead,
}

fn time_ms<O>(reps: usize, mut f: impl FnMut() -> O) -> f64 {
    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(f());
    }
    t0.elapsed().as_secs_f64() * 1e3 / reps as f64
}

fn kind_label(kind: PreconditionerKind) -> &'static str {
    match kind {
        PreconditionerKind::Jacobi => "jacobi",
        PreconditionerKind::Ssor => "ssor",
        PreconditionerKind::Ic0 => "ic0",
        PreconditionerKind::Amg => "amg",
        PreconditionerKind::Gmg => "gmg",
    }
}

/// The paper-default power pattern used by every steady row.
fn paper_power(built: &xylem_stack::BuiltStack, model: &ThermalModel) -> PowerMap {
    let mut p = PowerMap::zeros(model);
    p.add_uniform_layer_power(built.proc_metal_layer(), Watts::new(20.0));
    for &l in built.dram_metal_layers() {
        p.add_uniform_layer_power(l, Watts::new(0.4));
    }
    p
}

fn main() {
    let built = StackConfig::paper_default(XylemScheme::BankEnhanced)
        .build()
        .expect("paper-default stack builds");

    let mut steady = Vec::new();
    let mut preconditioner = Vec::new();
    let mut matvec = Vec::new();
    for grid in [16usize, 32, 64, 128] {
        let mut model = built
            .stack()
            .discretize(GridSpec::new(grid, grid))
            .expect("grid discretizes");
        let p = paper_power(&built, &model);
        let reps = match grid {
            128 => 1,
            64 => 3,
            _ => 10,
        };
        let mut ws = SolverWorkspace::new();
        let default_field = model
            .steady_state_from(&p, None, &mut ws)
            .expect("default-pick solve");
        let solver_ms = time_ms(reps, || {
            model.steady_state_from(&p, None, &mut ws).expect("solve")
        });
        let adj_field = model.steady_state_adjacency(&p).expect("adjacency solve");
        let seed_adjacency_ms = time_ms(reps, || model.steady_state_adjacency(&p).expect("solve"));
        steady.push(SteadyRow {
            grid,
            nodes: model.node_count(),
            nnz: model.csr().nnz(),
            solver: kind_label(model.solver_options().preconditioner),
            solver_ms,
            solver_iters: default_field.stats().iterations,
            seed_adjacency_ms,
            seed_adjacency_iters: adj_field.stats().iterations,
            speedup: seed_adjacency_ms / solver_ms,
        });

        // Preconditioner head-to-head and the matvec microbench on the
        // grids where the geometric hierarchy is the default pick.
        if grid < 64 {
            continue;
        }
        let n_layers = 3 + model.n_user_layers();
        let x = default_field.raw().to_vec();
        let mut r = vec![0.0; x.len()];
        model.csr().matvec_serial(&x, &mut r);
        let mut z = vec![0.0; x.len()];
        let prec_reps = if grid == 128 { 5 } else { 10 };
        for kind in [PreconditionerKind::Amg, PreconditionerKind::Gmg] {
            let build_one = || match kind {
                PreconditionerKind::Gmg => Preconditioner::build_gmg(
                    model.csr(),
                    model.grid().nx(),
                    model.grid().ny(),
                    n_layers,
                )
                .expect("structured grids build a geometric hierarchy"),
                _ => Preconditioner::build(model.csr(), kind),
            };
            let prec = build_one();
            let setup_ms = time_ms(if grid == 128 { 2 } else { 5 }, build_one);
            let apply_ms = time_ms(prec_reps, || prec.apply_timed(model.csr(), &r, &mut z));
            model.set_solver_options(SolverOptions {
                preconditioner: kind,
                ..*model.solver_options()
            });
            let field = model
                .steady_state_from(&p, None, &mut ws)
                .expect("preconditioned solve");
            let solve_ms = time_ms(if grid == 128 { 2 } else { 5 }, || {
                model.steady_state_from(&p, None, &mut ws).expect("solve")
            });
            preconditioner.push(PrecRow {
                grid,
                kind: kind_label(kind),
                setup_ms,
                apply_ms,
                solve_ms,
                solve_iters: field.stats().iterations,
            });
        }

        let stencil = model.stencil().expect("paper stacks are structured");
        let mut y = vec![0.0; x.len()];
        let mv_reps = if grid == 128 { 20 } else { 50 };
        let csr_ms = time_ms(mv_reps, || model.csr().matvec_serial(&x, &mut y));
        let stencil_ms = time_ms(mv_reps, || stencil.matvec_serial(&x, &mut y));
        matvec.push(MatvecRow {
            grid,
            nodes: model.node_count(),
            csr_ms,
            stencil_ms,
            speedup: csr_ms / stencil_ms,
        });
    }

    // One DTM control-period step at the operating point: warm seeds CG
    // with the current field (the dtm_transient stepping pattern), cold
    // forces the iterate back to ambient.
    let model = built
        .stack()
        .discretize(GridSpec::new(32, 32))
        .expect("grid discretizes");
    let p = paper_power(&built, &model);
    let mut ws = SolverWorkspace::new();
    let near_ss = model
        .steady_state_from(&p, None, &mut ws)
        .expect("steady state");
    let ambient = TemperatureField::uniform(&model, model.ambient());
    let dt = 1e-3;
    let warm = model
        .transient_with(&p, &near_ss, dt, 1, None, &mut ws)
        .expect("warm step");
    let warm_ms = time_ms(20, || {
        model
            .transient_with(&p, &near_ss, dt, 1, None, &mut ws)
            .expect("warm step")
    });
    let cold = model
        .transient_with(&p, &near_ss, dt, 1, Some(&ambient), &mut ws)
        .expect("cold step");
    let cold_ms = time_ms(20, || {
        model
            .transient_with(&p, &near_ss, dt, 1, Some(&ambient), &mut ws)
            .expect("cold step")
    });
    let dtm_step = DtmStep {
        grid: 32,
        dt_s: dt,
        warm_iters: warm.stats().iterations,
        cold_iters: cold.stats().iterations,
        warm_ms,
        cold_ms,
    };

    // Fixed vs adaptive stepping on the dtm_longrun workload (LU(NAS)
    // at 3.5 GHz on the base scheme, 24x24 grid): heat the die for one
    // second in 10 ms control chunks with a persistent controller — the
    // DTM usage pattern — against a fixed-step reference 10x finer than
    // the 1 ms baseline. The saving is quoted at matched accuracy: the
    // fixed-dt ladder descends until its deviation from the reference
    // is at or below the adaptive run's, and that rung's solve count is
    // the denominator-free basis of the headline ratio. EXPERIMENTS.md
    // records this row.
    let adaptive = {
        let sys = XylemSystem::new(SystemConfig::paper_default(XylemScheme::Base))
            .expect("base system builds");
        let grid = 24usize;
        let model = sys
            .built()
            .stack()
            .discretize(GridSpec::new(grid, grid))
            .expect("grid discretizes");
        let (_, maps) = xylem::dtm::dvfs_power_maps(&sys, Benchmark::LuNas, 3.5, &model)
            .expect("power maps build");
        let power = maps.last().expect("at least one DVFS point");
        let initial = TemperatureField::uniform(&model, model.ambient());
        let horizon_s: f64 = 1.0;
        let chunk_s: f64 = 10e-3;
        let fixed_dt_s: f64 = 1e-3;
        let reference_dt_s = fixed_dt_s / 10.0;
        let mut ws = SolverWorkspace::new();

        let ref_steps = (horizon_s / reference_dt_s).round() as usize;
        let reference = model
            .transient_with(power, &initial, reference_dt_s, ref_steps, None, &mut ws)
            .expect("reference run");
        let max_of =
            |f: &TemperatureField| f.raw().iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let ref_max = max_of(&reference);

        let run_fixed = |dt: f64, ws: &mut SolverWorkspace| {
            let steps = (horizon_s / dt).round() as usize;
            let end = model
                .transient_with(power, &initial, dt, steps, None, ws)
                .expect("fixed run");
            (steps, (max_of(&end) - ref_max).abs())
        };
        let (fixed_steps, fixed_dev_k) = run_fixed(fixed_dt_s, &mut ws);

        let mut ctrl = AdaptiveController::new(AdaptiveOptions {
            rtol: 1e-3,
            atol: 1e-3,
            dt_min: 1e-5,
            dt_max: chunk_s,
            dt_init: 1e-3,
            ..AdaptiveOptions::default()
        })
        .expect("adaptive options validate");
        let chunks = (horizon_s / chunk_s).round() as usize;
        let mut state = initial.clone();
        for _ in 0..chunks {
            state = model
                .transient_adaptive(power, &state, chunk_s, &mut ctrl, &mut ws)
                .expect("adaptive chunk");
        }
        let summary = ctrl.summary();
        let adaptive_dev_k = (max_of(&state) - ref_max).abs();

        // Descend the fixed-dt ladder until the fixed run is at least
        // as accurate as the adaptive one (the last rung counts even if
        // it falls short — the JSON carries its actual deviation).
        let mut matched = (fixed_dt_s, fixed_steps, fixed_dev_k);
        for rung in [1e-3f64, 5e-4, 2.5e-4, 1.25e-4] {
            let (steps, dev) = if rung.to_bits() == fixed_dt_s.to_bits() {
                (fixed_steps, fixed_dev_k)
            } else {
                run_fixed(rung, &mut ws)
            };
            matched = (rung, steps, dev);
            if dev <= adaptive_dev_k {
                break;
            }
        }

        AdaptiveCompare {
            grid,
            horizon_s,
            chunk_s,
            rtol: 1e-3,
            reference_dt_s,
            reference_solves: ref_steps,
            fixed_dt_s,
            fixed_solves: fixed_steps,
            fixed_dev_k,
            matched_fixed_dt_s: matched.0,
            matched_fixed_solves: matched.1,
            matched_fixed_dev_k: matched.2,
            adaptive_solves: summary.be_solves as usize,
            adaptive_dev_k,
            adaptive_rejected: summary.rejected as usize,
            solve_saving_vs_reference: ref_steps as f64 / summary.be_solves as f64,
            solve_saving_at_matched_accuracy: matched.1 as f64 / summary.be_solves as f64,
        }
    };

    // Sweep-engine throughput: an 18-task scheme x workload x frequency
    // grid at 16x16. The warm-up run populates the response cache so
    // the timed run measures engine overhead plus evaluation math, not
    // first-build cost; the chaos drill re-runs the same grid under a
    // seeded 50% per-attempt fault rate to record the retry/quarantine
    // behavior the resilience lane depends on.
    let sweep_grid = {
        use xylem_sweep::{run_sweep, BackoffPolicy, ChaosConfig, SweepOptions, SweepSpec};
        let spec = SweepSpec {
            schemes: vec![XylemScheme::Base, XylemScheme::BankEnhanced],
            benchmarks: vec![Benchmark::Cholesky, Benchmark::Barnes, Benchmark::Fft],
            f_ghz: vec![2.0, 2.4, 3.0],
            grid: 16,
            ..SweepSpec::default()
        };
        let shards = 4usize;
        let opts = SweepOptions {
            shards,
            cache_dir: Some(std::env::temp_dir().join("xylem-bench-sweep-cache")),
            backoff: BackoffPolicy {
                base_ms: 0,
                max_ms: 0,
            },
            ..SweepOptions::default()
        };
        run_sweep(&spec, &opts).expect("warm-up sweep");
        xylem_obs::reset_metrics();
        let timed = run_sweep(&spec, &opts).expect("timed sweep");

        // Chaos drill: keep the injected panics from spraying
        // backtraces into the bench output.
        std::panic::set_hook(Box::new(|info| {
            let payload = info.payload();
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !msg.contains("chaos: injected panic") {
                eprintln!("{info}");
            }
        }));
        let mut chaos_opts = opts;
        chaos_opts.max_attempts = 2;
        chaos_opts.chaos = Some(ChaosConfig {
            seed: 7,
            panic_per_mille: 200,
            error_per_mille: 200,
            deadline_per_mille: 100,
        });
        let drill = run_sweep(&spec, &chaos_opts).expect("chaos drill sweep");
        let _ = std::panic::take_hook();

        SweepGrid {
            grid: 16,
            tasks: timed.total,
            shards,
            elapsed_s: timed.elapsed_s,
            tasks_per_sec: timed.tasks_per_sec,
            task_p50_ms: timed.task_latency.p50_ms,
            task_p99_ms: timed.task_latency.p99_ms,
            chaos_retried_attempts: drill.retried_attempts,
            chaos_quarantined: drill.quarantined,
            chaos_ok: drill.ok,
        }
    };

    // Observability overhead on the same 32x32 steady solve: the
    // xylem-obs budget is < 5% with a live JSONL sink (DESIGN.md §14).
    // Interleaved rounds with min aggregation: on a shared single-core
    // box, clock drift between two mean-of-N blocks easily exceeds the
    // effect being measured, while the per-mode minimum is stable.
    let mut disabled_ms = f64::INFINITY;
    let mut enabled_ms = f64::INFINITY;
    for _ in 0..6 {
        let d = time_ms(5, || {
            model.steady_state_from(&p, None, &mut ws).expect("solve")
        });
        disabled_ms = disabled_ms.min(d);
        let sink = xylem_obs::install_memory();
        let e = time_ms(5, || {
            model.steady_state_from(&p, None, &mut ws).expect("solve")
        });
        xylem_obs::shutdown();
        drop(sink);
        enabled_ms = enabled_ms.min(e);
    }
    let obs_overhead = ObsOverhead {
        grid: 32,
        disabled_ms,
        enabled_ms,
        overhead_pct: (enabled_ms / disabled_ms - 1.0) * 100.0,
    };

    let report = Report {
        description: "Solver smoke numbers: steady state through the model's default \
                      pick (matrix-free stencil + geometric multigrid at 32x32 and up, \
                      CSR+AMG below) vs the seed adjacency Jacobi-CG path, the AMG-vs-GMG \
                      preconditioner head-to-head (setup/apply/solve at 64x64 and 128x128), \
                      the stencil-vs-CSR matvec microbench, warm- vs cold-started DTM \
                      steps, adaptive- vs fixed-stepping at matched accuracy on the \
                      dtm_longrun workload, sweep-engine throughput with a chaos \
                      retry/quarantine drill, and the enabled-sink observability \
                      overhead. Regenerate with ./ci.sh bench.",
        scheme: "BankEnhanced",
        steady_state: steady,
        preconditioner,
        matvec,
        dtm_step,
        adaptive,
        sweep_grid,
        obs_overhead,
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_thermal.json");
    let json = merged_with_foreign_rows(&report, path);
    std::fs::write(path, format!("{json}\n")).expect("write BENCH_thermal.json");
    println!("{json}");
    println!("[wrote {path}]");
}

/// Serializes the report, carrying over any top-level rows in the
/// existing file that other lanes own (e.g. the `serve` row written by
/// `./ci.sh serve`) — regenerating the solver numbers must not erase
/// another lane's benchmark.
fn merged_with_foreign_rows(report: &Report, path: &str) -> String {
    let serde::Value::Object(mut merged) = report.to_value() else {
        unreachable!("report is a struct")
    };
    if let Ok(old) = std::fs::read_to_string(path) {
        if let Ok(serde::Value::Object(existing)) = serde_json::from_str::<serde::Value>(&old) {
            for (key, row) in existing {
                merged.entry(key).or_insert(row);
            }
        }
    }
    serde_json::to_string_pretty(&serde::Value::Object(merged)).expect("report serializes")
}
