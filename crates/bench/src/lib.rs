//! Experiment harness regenerating every table and figure of the paper.
//!
//! Each `benches/*.rs` target (run via `cargo bench`) is a thin `main`
//! over the drivers in [`experiments`]; shared infrastructure (result
//! tables, CSV output, system construction with a workspace-wide response
//! cache) lives in [`harness`].
//!
//! Results are printed in the paper's units/series and also written as
//! CSV under `target/xylem-results/`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// Experiment drivers abort on the first failure by design (same stance as
// a test harness); xylem-lint carries the matching allowlist entry.
#![allow(clippy::unwrap_used)]

pub mod experiments;
pub mod harness;
