//! `cargo bench --bench fig15_thread_placement` — regenerates this artefact of the paper.

fn main() {
    xylem_bench::experiments::fig15_thread_placement();
}
