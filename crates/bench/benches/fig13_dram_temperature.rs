//! `cargo bench --bench fig13_dram_temperature` — regenerates this artefact of the paper.

fn main() {
    xylem_bench::experiments::fig13_dram_temperature();
}
