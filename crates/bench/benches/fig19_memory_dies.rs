//! `cargo bench --bench fig19_memory_dies` — regenerates this artefact of the paper.

fn main() {
    xylem_bench::experiments::fig19_memory_dies();
}
