//! `cargo bench --bench fig16_frequency_boosting` — regenerates this artefact of the paper.

fn main() {
    xylem_bench::experiments::fig16_frequency_boosting();
}
