//! `cargo bench --bench ablation_electrical_bus` — ablation/extension experiment.

fn main() {
    xylem_bench::experiments::ablation_electrical_bus();
}
