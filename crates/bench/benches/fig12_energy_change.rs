//! `cargo bench --bench fig12_energy_change` — regenerates this artefact of the paper.

fn main() {
    xylem_bench::experiments::fig12_energy_change();
}
