//! `cargo bench --bench fig11_power_increase` — regenerates this artefact of the paper.

fn main() {
    xylem_bench::experiments::fig11_power_increase();
}
