//! `cargo bench --bench ext_refresh_derating` — ablation/extension experiment.

fn main() {
    xylem_bench::experiments::ext_refresh_derating();
}
