//! Criterion micro-benchmarks of the thermal substrate: model assembly,
//! steady-state solves at several grid resolutions, transient steps, and
//! the superposition fast path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use xylem::response::ThermalResponse;
use xylem_stack::{StackConfig, XylemScheme};
use xylem_thermal::grid::GridSpec;
use xylem_thermal::power::PowerMap;
use xylem_thermal::temperature::TemperatureField;

fn bench_steady_state(c: &mut Criterion) {
    let built = StackConfig::paper_default(XylemScheme::BankEnhanced)
        .build()
        .unwrap();
    let mut group = c.benchmark_group("steady_state");
    group.sample_size(10);
    for n in [16usize, 32, 64] {
        let model = built.stack().discretize(GridSpec::new(n, n)).unwrap();
        let mut p = PowerMap::zeros(&model);
        p.add_uniform_layer_power(built.proc_metal_layer(), 20.0);
        for &l in built.dram_metal_layers() {
            p.add_uniform_layer_power(l, 0.4);
        }
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| model.steady_state(&p).unwrap())
        });
    }
    group.finish();
}

fn bench_model_build(c: &mut Criterion) {
    let built = StackConfig::paper_default(XylemScheme::BankEnhanced)
        .build()
        .unwrap();
    c.bench_function("discretize_64x64", |b| {
        b.iter(|| built.stack().discretize(GridSpec::new(64, 64)).unwrap())
    });
}

fn bench_transient_step(c: &mut Criterion) {
    let built = StackConfig::paper_default(XylemScheme::BankSurround)
        .build()
        .unwrap();
    let model = built.stack().discretize(GridSpec::new(32, 32)).unwrap();
    let mut p = PowerMap::zeros(&model);
    p.add_uniform_layer_power(built.proc_metal_layer(), 18.0);
    let init = TemperatureField::uniform(&model, model.ambient());
    c.bench_function("transient_step_32x32_5ms", |b| {
        b.iter(|| model.transient(&p, &init, 5e-3, 1).unwrap())
    });
}

fn bench_superposition(c: &mut Criterion) {
    let built = StackConfig::paper_default(XylemScheme::BankEnhanced)
        .build()
        .unwrap();
    let response = ThermalResponse::compute(&built, GridSpec::new(16, 16)).unwrap();
    let proc_powers = vec![0.25; response.proc_blocks().len()];
    let dram_powers = vec![0.4; response.n_dram_dies()];
    c.bench_function("superposition_evaluate_16x16", |b| {
        b.iter(|| response.temperatures(&proc_powers, &dram_powers).unwrap())
    });
}

criterion_group!(
    benches,
    bench_steady_state,
    bench_model_build,
    bench_transient_step,
    bench_superposition
);
criterion_main!(benches);
