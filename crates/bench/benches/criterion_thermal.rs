//! Criterion micro-benchmarks of the thermal substrate: model assembly,
//! sparse matvec kernels (adjacency vs flat CSR, serial vs parallel),
//! steady-state solves over the CSR+AMG and seed adjacency paths,
//! transient steps (warm- vs cold-started CG), and the superposition
//! fast path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use xylem::response::ThermalResponse;
use xylem_stack::{builder::BuiltStack, StackConfig, XylemScheme};
use xylem_thermal::grid::GridSpec;
use xylem_thermal::power::PowerMap;
use xylem_thermal::temperature::TemperatureField;
use xylem_thermal::units::Watts;
use xylem_thermal::{SolverWorkspace, ThermalModel};

fn paper_built() -> BuiltStack {
    StackConfig::paper_default(XylemScheme::BankEnhanced)
        .build()
        .unwrap()
}

fn paper_load(built: &BuiltStack, model: &ThermalModel) -> PowerMap {
    let mut p = PowerMap::zeros(model);
    p.add_uniform_layer_power(built.proc_metal_layer(), Watts::new(20.0));
    for &l in built.dram_metal_layers() {
        p.add_uniform_layer_power(l, Watts::new(0.4));
    }
    p
}

fn bench_matvec(c: &mut Criterion) {
    let built = paper_built();
    let mut group = c.benchmark_group("matvec");
    for n in [16usize, 32, 64] {
        let model = built.stack().discretize(GridSpec::new(n, n)).unwrap();
        let nn = model.node_count();
        let x = vec![1.0f64; nn];
        let mut y = vec![0.0f64; nn];
        group.bench_with_input(BenchmarkId::new("adjacency", n), &n, |b, _| {
            b.iter(|| model.matvec_adjacency(&x, &mut y))
        });
        group.bench_with_input(BenchmarkId::new("csr_serial", n), &n, |b, _| {
            b.iter(|| model.csr().matvec_serial(&x, &mut y))
        });
        // With one rayon thread the parallel path inlines; with more it
        // chunks rows. Either way the result is bit-identical to serial.
        group.bench_with_input(BenchmarkId::new("csr_parallel", n), &n, |b, _| {
            b.iter(|| model.csr().matvec_parallel(&x, &mut y))
        });
    }
    group.finish();
}

fn bench_steady_state(c: &mut Criterion) {
    let built = paper_built();
    let mut group = c.benchmark_group("steady_state");
    group.sample_size(10);
    for n in [16usize, 32, 64] {
        let model = built.stack().discretize(GridSpec::new(n, n)).unwrap();
        let p = paper_load(&built, &model);
        let mut ws = SolverWorkspace::new();
        group.bench_with_input(BenchmarkId::new("csr_amg", n), &n, |b, _| {
            b.iter(|| model.steady_state_from(&p, None, &mut ws).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("seed_adjacency", n), &n, |b, _| {
            b.iter(|| model.steady_state_adjacency(&p).unwrap())
        });
    }
    group.finish();
}

fn bench_model_build(c: &mut Criterion) {
    let built = StackConfig::paper_default(XylemScheme::BankEnhanced)
        .build()
        .unwrap();
    c.bench_function("discretize_64x64", |b| {
        b.iter(|| built.stack().discretize(GridSpec::new(64, 64)).unwrap())
    });
}

fn bench_transient_step(c: &mut Criterion) {
    let built = StackConfig::paper_default(XylemScheme::BankSurround)
        .build()
        .unwrap();
    let model = built.stack().discretize(GridSpec::new(32, 32)).unwrap();
    let mut p = PowerMap::zeros(&model);
    p.add_uniform_layer_power(built.proc_metal_layer(), Watts::new(18.0));
    let init = TemperatureField::uniform(&model, model.ambient());
    c.bench_function("transient_step_32x32_5ms", |b| {
        b.iter(|| model.transient(&p, &init, 5e-3, 1).unwrap())
    });
}

fn bench_dtm_step_warm_vs_cold(c: &mut Criterion) {
    // One DTM control-period step at the thermal operating point: the
    // warm path seeds CG with the current field (what dtm_transient
    // does every step); the cold path forces the iterate back to
    // ambient. The physics is identical, only the CG starting point
    // differs.
    let built = paper_built();
    let model = built.stack().discretize(GridSpec::new(32, 32)).unwrap();
    let p = paper_load(&built, &model);
    let near_ss = model.steady_state(&p).unwrap();
    let ambient = TemperatureField::uniform(&model, model.ambient());
    let mut ws = SolverWorkspace::new();
    c.bench_function("dtm_step_32x32_1ms_warm", |b| {
        b.iter(|| {
            model
                .transient_with(&p, &near_ss, 1e-3, 1, None, &mut ws)
                .unwrap()
        })
    });
    c.bench_function("dtm_step_32x32_1ms_cold", |b| {
        b.iter(|| {
            model
                .transient_with(&p, &near_ss, 1e-3, 1, Some(&ambient), &mut ws)
                .unwrap()
        })
    });
}

fn bench_superposition(c: &mut Criterion) {
    let built = StackConfig::paper_default(XylemScheme::BankEnhanced)
        .build()
        .unwrap();
    let response = ThermalResponse::compute(&built, GridSpec::new(16, 16)).unwrap();
    let proc_powers = vec![0.25; response.proc_blocks().len()];
    let dram_powers = vec![0.4; response.n_dram_dies()];
    c.bench_function("superposition_evaluate_16x16", |b| {
        b.iter(|| response.temperatures(&proc_powers, &dram_powers).unwrap())
    });
}

criterion_group!(
    benches,
    bench_matvec,
    bench_steady_state,
    bench_model_build,
    bench_transient_step,
    bench_dtm_step_warm_vs_cold,
    bench_superposition
);
criterion_main!(benches);
