//! `cargo bench --bench ablation_pillar_footprint` — ablation/extension experiment.

fn main() {
    xylem_bench::experiments::ablation_pillar_footprint();
}
