//! `cargo bench --bench table1_layers` — regenerates this artefact of the paper.

fn main() {
    xylem_bench::experiments::table1_layers();
}
