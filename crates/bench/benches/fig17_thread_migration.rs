//! `cargo bench --bench fig17_thread_migration` — regenerates this artefact of the paper.

fn main() {
    xylem_bench::experiments::fig17_thread_migration();
}
