//! `cargo bench --bench fig10_performance_gain` — regenerates this artefact of the paper.

fn main() {
    xylem_bench::experiments::fig10_performance_gain();
}
