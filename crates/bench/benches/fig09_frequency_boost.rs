//! `cargo bench --bench fig09_frequency_boost` — regenerates this artefact of the paper.

fn main() {
    xylem_bench::experiments::fig09_frequency_boost();
}
