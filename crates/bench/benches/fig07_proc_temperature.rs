//! `cargo bench --bench fig07_proc_temperature` — regenerates this artefact of the paper.

fn main() {
    xylem_bench::experiments::fig07_proc_temperature();
}
