//! `cargo bench --bench table3_arch` — regenerates this artefact of the paper.

fn main() {
    xylem_bench::experiments::table3_arch();
}
