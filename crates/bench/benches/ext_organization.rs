//! `cargo bench --bench ext_organization` — stack-organization tradeoff.

fn main() {
    xylem_bench::experiments::ext_organization();
}
