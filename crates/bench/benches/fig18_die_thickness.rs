//! `cargo bench --bench fig18_die_thickness` — regenerates this artefact of the paper.

fn main() {
    xylem_bench::experiments::fig18_die_thickness();
}
