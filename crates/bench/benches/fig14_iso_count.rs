//! `cargo bench --bench fig14_iso_count` — regenerates this artefact of the paper.

fn main() {
    xylem_bench::experiments::fig14_iso_count();
}
