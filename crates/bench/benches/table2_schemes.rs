//! `cargo bench --bench table2_schemes` — regenerates this artefact of the paper.

fn main() {
    xylem_bench::experiments::table2_schemes();
}
