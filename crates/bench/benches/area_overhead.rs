//! `cargo bench --bench area_overhead` — regenerates this artefact of the paper.

fn main() {
    xylem_bench::experiments::area_overhead();
}
