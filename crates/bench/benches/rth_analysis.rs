//! `cargo bench --bench rth_analysis` — regenerates this artefact of the paper.

fn main() {
    xylem_bench::experiments::rth_analysis();
}
