//! `cargo bench --bench fig08_temperature_reduction` — regenerates this artefact of the paper.

fn main() {
    xylem_bench::experiments::fig08_temperature_reduction();
}
