//! Scratch calibration: base vs bank vs banke hotspot temperatures.

use xylem_stack::builder::StackConfig;
use xylem_stack::proc_die::ProcDieGeometry;
use xylem_stack::scheme::XylemScheme;
use xylem_thermal::grid::GridSpec;
use xylem_thermal::power::PowerMap;
use xylem_thermal::units::Watts;

fn main() {
    let grid = GridSpec::new(64, 64);
    let footprint: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(250e-6);
    for scheme in [
        XylemScheme::Base,
        XylemScheme::BankSurround,
        XylemScheme::BankEnhanced,
        XylemScheme::Prior,
    ] {
        let mut cfg = StackConfig::paper_default(scheme);
        cfg.pillar_footprint = footprint;
        let built = cfg.build().unwrap();
        let model = built.stack().discretize(grid).unwrap();
        let mut p = PowerMap::zeros(&model);
        // Processor: 20 W total; 2.2 W per core concentrated, LLC 2.4 W.
        let pm = built.proc_metal_layer();
        for core in 1..=8 {
            for b in ProcDieGeometry::core_block_names(core) {
                p.add_block_power(&model, pm, &b, Watts::new(2.2 / 9.0))
                    .unwrap();
            }
        }
        p.add_block_power(&model, pm, "llc_top", Watts::new(1.0))
            .unwrap();
        p.add_block_power(&model, pm, "llc_bot", Watts::new(1.0))
            .unwrap();
        for mc in ["mc0", "mc1", "mc2", "mc3"] {
            p.add_block_power(&model, pm, mc, Watts::new(0.1)).unwrap();
        }
        // DRAM: 0.4 W per die.
        for &l in built.dram_metal_layers() {
            p.add_uniform_layer_power(l, Watts::new(0.4));
        }
        let t = model.steady_state(&p).unwrap();
        let hot = t.max_of_layer(pm);
        let dram_hot = t.max_of_layer(built.bottom_dram_metal_layer());
        println!(
            "{:10} P={:5.1} W  proc hotspot {:6.2} C  bottom-DRAM {:6.2} C  iters {}",
            scheme.name(),
            p.total(),
            hot,
            dram_hot,
            t.stats().iterations
        );
    }
}
