//! The Xylem TTSV placement schemes (paper Table 2, Fig. 5).
//!
//! | Scheme | Name | TTSVs/die | aligned & shorted |
//! |---|---|---|---|
//! | Baseline (Wide I/O)     | `base`     | 0  | — |
//! | Bank Surround           | `bank`     | 28 | yes |
//! | Bank Surround Enhanced  | `banke`    | 36 | yes |
//! | Iso Count               | `isoCount` | 28 | yes |
//! | Prior proposals         | `prior`    | 36 | **no** |
//!
//! `bank` places TTSVs in the peripheral logic at the vertices of each
//! bank; the wider central stripe carries **two** TTSVs at each interior
//! vertex. `banke` adds 8 sites near the processor cores. `isoCount` is
//! `banke` minus the 8 TTSVs of the central stripe. `prior` uses `banke`'s
//! placement but leaves the dummy microbumps unaligned and unshorted, so
//! the D2D layers keep their average (poor) conductivity.

use serde::{Deserialize, Serialize};

use xylem_thermal::floorplan::Rect;

use crate::dram_die::DramDieGeometry;
use crate::tsv::TsvTech;

/// A TTSV site: a location in the peripheral logic holding 1 or 2 TTSVs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TtsvSite {
    /// Site center x, m.
    pub x: f64,
    /// Site center y, m.
    pub y: f64,
    /// TTSVs at this site (1, or 2 in the central stripe).
    pub ttsvs: u8,
}

impl TtsvSite {
    /// The individual TTSV footprints at this site (one or two squares of
    /// the TTSV size, doubled sites stacked vertically with a small gap).
    pub fn rects(&self, tech: &TsvTech) -> Vec<Rect> {
        let s = tech.diameter;
        match self.ttsvs {
            1 => vec![Rect::new(self.x - s / 2.0, self.y - s / 2.0, s, s)],
            2 => {
                let off = s / 2.0 + tech.koz;
                vec![
                    Rect::new(self.x - s / 2.0, self.y - off - s / 2.0, s, s),
                    Rect::new(self.x - s / 2.0, self.y + off - s / 2.0, s, s),
                ]
            }
            n => panic!("site with {n} TTSVs is not representable"),
        }
    }

    /// Center coordinates as a tuple.
    pub fn center(&self) -> (f64, f64) {
        (self.x, self.y)
    }
}

/// The five evaluated TTSV placement schemes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum XylemScheme {
    /// Plain Wide I/O stack, no TTSVs.
    Base,
    /// Generic placement: TTSVs at bank vertices (28).
    BankSurround,
    /// `bank` plus 8 TTSVs near the processor cores (36, co-designed).
    BankEnhanced,
    /// `banke` minus the 8 central-stripe TTSVs (28).
    IsoCount,
    /// `banke` placement without microbump alignment/shorting (models
    /// prior TTSV-only proposals).
    Prior,
}

impl XylemScheme {
    /// All schemes, in the paper's Table 2 order.
    pub const ALL: [XylemScheme; 5] = [
        XylemScheme::Base,
        XylemScheme::BankSurround,
        XylemScheme::BankEnhanced,
        XylemScheme::IsoCount,
        XylemScheme::Prior,
    ];

    /// The short name used in the paper's plots.
    pub fn name(&self) -> &'static str {
        match self {
            XylemScheme::Base => "base",
            XylemScheme::BankSurround => "bank",
            XylemScheme::BankEnhanced => "banke",
            XylemScheme::IsoCount => "isoCount",
            XylemScheme::Prior => "prior",
        }
    }

    /// Whether dummy microbumps are aligned with the TTSVs and shorted to
    /// them through backside-metal vias (Sec. 4.1.2). Only then do the D2D
    /// layers gain local high-conductivity pillars.
    pub fn aligned_and_shorted(&self) -> bool {
        match self {
            XylemScheme::Base | XylemScheme::Prior => false,
            XylemScheme::BankSurround | XylemScheme::BankEnhanced | XylemScheme::IsoCount => true,
        }
    }

    /// TTSV sites for this scheme on the given DRAM die geometry.
    pub fn sites(&self, geom: &DramDieGeometry) -> Vec<TtsvSite> {
        match self {
            XylemScheme::Base => Vec::new(),
            XylemScheme::BankSurround => bank_vertex_sites(geom),
            XylemScheme::BankEnhanced | XylemScheme::Prior => {
                let mut s = bank_vertex_sites(geom);
                s.extend(core_adjacent_sites(geom));
                s
            }
            XylemScheme::IsoCount => {
                // The generic placement minus its 8 central-row TTSVs
                // (3 doubled interior vertices + 2 edge singles), which
                // move "closer to the processor die hotspots" (Sec. 7.4):
                // the hottest spots are the inner cores' FPU junctions at
                // the stripe, so the relocated TTSVs take the same
                // co-designed positions the `banke` scheme adds.
                let center_y = geom.vertex_ys()[2];
                let mut s = bank_vertex_sites(geom);
                s.retain(|site| (site.y - center_y).abs() > 1e-12);
                s.extend(core_adjacent_sites(geom));
                s
            }
        }
    }

    /// Total TTSVs per die (Table 2).
    pub fn ttsv_count(&self, geom: &DramDieGeometry) -> usize {
        self.sites(geom).iter().map(|s| s.ttsvs as usize).sum()
    }
}

impl std::fmt::Display for XylemScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The 25 bank-vertex sites; the 3 interior central-stripe vertices carry
/// two TTSVs each (total 28 TTSVs).
fn bank_vertex_sites(geom: &DramDieGeometry) -> Vec<TtsvSite> {
    let xs = geom.vertex_xs();
    let ys = geom.vertex_ys();
    let mut sites = Vec::with_capacity(25);
    for (yi, &y) in ys.iter().enumerate() {
        for (xi, &x) in xs.iter().enumerate() {
            let interior_x = (1..=3).contains(&xi);
            let center_row = yi == 2;
            let ttsvs = if center_row && interior_x { 2 } else { 1 };
            sites.push(TtsvSite { x, y, ttsvs });
        }
    }
    sites
}

/// The 8 core-adjacent TTSVs added by `banke`, co-designed against the
/// processor floorplan (two columns of 4 cores, execution clusters facing
/// the central band): all 8 go into the wide central stripe, as two
/// **doubled** sites over each core column, straddling the junction where
/// the two inner cores' FPU/ALU clusters meet. 2 columns x 2 sites x 2
/// TTSVs = 8. This is the knowing-the-hotspots co-design of Sec. 4.2: the
/// stripe is the only peripheral region wide enough for doubles, and the
/// inner cores' execution clusters are the closest hotspots to it.
fn core_adjacent_sites(geom: &DramDieGeometry) -> Vec<TtsvSite> {
    let xs = geom.bank_center_xs();
    let ys = geom.vertex_ys();
    let offset = 0.25e-3;
    let mut sites = Vec::with_capacity(4);
    for &x in &[xs[0], xs[3]] {
        for dx in [-offset, offset] {
            sites.push(TtsvSite {
                x: x + dx,
                y: ys[2],
                ttsvs: 2,
            });
        }
    }
    sites
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> DramDieGeometry {
        DramDieGeometry::paper_default()
    }

    #[test]
    fn ttsv_counts_match_table2() {
        let g = geom();
        assert_eq!(XylemScheme::Base.ttsv_count(&g), 0);
        assert_eq!(XylemScheme::BankSurround.ttsv_count(&g), 28);
        assert_eq!(XylemScheme::BankEnhanced.ttsv_count(&g), 36);
        assert_eq!(XylemScheme::IsoCount.ttsv_count(&g), 28);
        assert_eq!(XylemScheme::Prior.ttsv_count(&g), 36);
    }

    #[test]
    fn shorting_flags_match_table2() {
        assert!(!XylemScheme::Base.aligned_and_shorted());
        assert!(XylemScheme::BankSurround.aligned_and_shorted());
        assert!(XylemScheme::BankEnhanced.aligned_and_shorted());
        assert!(XylemScheme::IsoCount.aligned_and_shorted());
        assert!(!XylemScheme::Prior.aligned_and_shorted());
    }

    #[test]
    fn iso_count_drops_the_generic_central_row() {
        let g = geom();
        let cy = g.vertex_ys()[2];
        let bank_center: Vec<_> = XylemScheme::BankSurround
            .sites(&g)
            .into_iter()
            .filter(|s| (s.y - cy).abs() < 1e-12)
            .collect();
        assert_eq!(
            bank_center.iter().map(|s| s.ttsvs as usize).sum::<usize>(),
            8
        );
        let iso = XylemScheme::IsoCount.sites(&g);
        for s in &bank_center {
            assert!(!iso.contains(s), "generic center site {s:?} kept");
        }
        // The relocated TTSVs take the co-designed positions over the
        // inner FPU junctions (still on the stripe, different sites).
        assert_eq!(
            iso.iter()
                .filter(|s| (s.y - cy).abs() < 1e-12)
                .map(|s| s.ttsvs as usize)
                .sum::<usize>(),
            8
        );
    }

    #[test]
    fn prior_and_banke_share_placement() {
        let g = geom();
        assert_eq!(
            XylemScheme::Prior.sites(&g),
            XylemScheme::BankEnhanced.sites(&g)
        );
    }

    #[test]
    fn sites_are_within_the_die() {
        let g = geom();
        let tech = TsvTech::thermal();
        for scheme in XylemScheme::ALL {
            for site in scheme.sites(&g) {
                for r in site.rects(&tech) {
                    assert!(r.x() >= 0.0 && r.x_max() <= g.width, "{scheme} {site:?}");
                    assert!(r.y() >= 0.0 && r.y_max() <= g.height, "{scheme} {site:?}");
                }
            }
        }
    }

    #[test]
    fn doubled_sites_have_disjoint_rects() {
        let g = geom();
        let tech = TsvTech::thermal();
        for site in XylemScheme::BankSurround.sites(&g) {
            let rects = site.rects(&tech);
            if rects.len() == 2 {
                assert!(!rects[0].overlaps(&rects[1]));
            }
        }
    }

    #[test]
    fn sites_avoid_banks() {
        // TTSVs live in the peripheral logic, never inside a bank array.
        let g = geom();
        for site in XylemScheme::BankEnhanced.sites(&g) {
            for row in 0..4 {
                for col in 0..4 {
                    let b = g.bank_rect(row, col);
                    assert!(
                        !b.contains_point(site.x, site.y),
                        "site {site:?} inside bank {row}{col}"
                    );
                }
            }
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(XylemScheme::IsoCount.to_string(), "isoCount");
        assert_eq!(XylemScheme::BankEnhanced.to_string(), "banke");
    }
}
