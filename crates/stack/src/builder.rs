//! Assembling the full 3D stack into a solvable thermal model.
//!
//! Layer order (top = heat-sink side, per the memory-on-top organization):
//!
//! ```text
//! [package: sink / IHS / TIM]            (added by xylem-thermal)
//! dram0_si    100 um   bulk Si + TSV bus + TTSVs        \
//! dram0_metal   2 um   DRAM frontside metal (power)      | x n_dram_dies
//! d2d0         20 um   microbumps/underfill (+pillars)  /
//! ...
//! proc_si     100 um   bulk Si + TSV bus + TTSVs
//! proc_metal   12 um   metal + active logic (power)
//! [C4 / board]                           (secondary path in the package)
//! ```
//!
//! TTSVs are painted as copper patches into every silicon layer. For
//! aligned-and-shorted schemes, matching patches of effective conductivity
//! `t_d2d / (t_bump/lambda_bump + t_short/lambda_cu)` are painted into
//! every D2D layer at the same sites — the thermal pillars of Sec. 4.1.2.
//! `prior` paints the silicon patches only.

use serde::{Deserialize, Serialize};

use xylem_thermal::error::ThermalError;
use xylem_thermal::layer::{Layer, MaterialPatch};
use xylem_thermal::material::{
    self, shorted_pillar_d2d, COPPER, D2D_AVERAGE, DRAM_METAL, PROC_METAL, SILICON,
};
use xylem_thermal::package::Package;
use xylem_thermal::stack::Stack;

use crate::dram_die::DramDieGeometry;
use crate::proc_die::ProcDieGeometry;
use crate::scheme::{TtsvSite, XylemScheme};
use crate::tsv::TsvTech;

/// Which die faces the heat sink (paper Sec. 3, Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Organization {
    /// The paper's choice: DRAM dies between the processor and the sink.
    /// Manufacturing-friendly (power/ground/I/O need no TSVs) but
    /// thermally hard — the configuration Xylem fixes.
    MemoryOnTop,
    /// Processor adjacent to the sink (Fig. 2a): thermally easy, but the
    /// memory dies must provision TSVs for all processor power/ground/IO
    /// and the PDN suffers IR drop (Sec. 3.1). Modeled for comparison.
    ProcessorOnTop,
}

/// Configuration of a processor-memory stack.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StackConfig {
    /// TTSV placement scheme.
    pub scheme: XylemScheme,
    /// Stack organization (paper default: memory on top).
    pub organization: Organization,
    /// Number of DRAM dies on top of the processor (paper default: 8).
    pub n_dram_dies: usize,
    /// Bulk-silicon thickness of every die, m (paper default: 100 um;
    /// Fig. 18 sweeps 50/100/200 um).
    pub die_thickness: f64,
    /// D2D layer thickness, m (paper: 20 um).
    pub d2d_thickness: f64,
    /// DRAM frontside-metal thickness, m (paper: 2 um).
    pub dram_metal_thickness: f64,
    /// Processor metal+logic thickness, m (paper: 12 um).
    pub proc_metal_thickness: f64,
    /// DRAM die geometry.
    pub dram_geometry: DramDieGeometry,
    /// Processor die geometry.
    pub proc_geometry: ProcDieGeometry,
    /// Package (TIM/IHS/sink/convection).
    pub package: Package,
    /// Side length (m) of the shorted dummy-microbump cluster painted into
    /// the D2D layers around each TTSV. The backside-metal short that ties
    /// the TTSV to its aligned dummy microbump can tie in the neighboring
    /// dummy microbumps as well (they are plentiful — Sec. 4.2), widening
    /// each pillar's thermal footprint through the D2D layer. The default
    /// (450 um, a 3-4 bump neighborhood at the 25% dummy-bump density) is
    /// the calibration that puts the bank/banke frequency boosts at the
    /// paper's operating point; see DESIGN.md.
    pub pillar_footprint: f64,
}

impl StackConfig {
    /// The paper's evaluation configuration: 8 DRAM dies, 100 um dies,
    /// Table 1 dimensions, default package.
    pub fn paper_default(scheme: XylemScheme) -> Self {
        let dram_geometry = DramDieGeometry::paper_default();
        StackConfig {
            scheme,
            organization: Organization::MemoryOnTop,
            n_dram_dies: 8,
            die_thickness: 100e-6,
            d2d_thickness: 20e-6,
            dram_metal_thickness: 2e-6,
            proc_metal_thickness: 12e-6,
            dram_geometry,
            proc_geometry: ProcDieGeometry::paper_default(),
            package: Package::default_for_die(dram_geometry.width, dram_geometry.height),
            pillar_footprint: 450e-6,
        }
    }

    /// Whether the ITRS electrical TSV (10 um Cu, 10:1 aspect ratio) can
    /// traverse dies of the configured thickness. The Fig. 18 sensitivity
    /// sweep deliberately violates this at 200 um.
    pub fn electrical_tsv_feasible(&self) -> bool {
        TsvTech::electrical().supports_die_thickness(self.die_thickness)
    }

    /// Builds the stack: creates all layers, paints TTSV and pillar
    /// patches per the scheme, and records layer-role metadata.
    ///
    /// # Errors
    ///
    /// Propagates floorplan/geometry errors; [`ThermalError::BadStack`]
    /// if `n_dram_dies == 0`.
    pub fn build(&self) -> Result<BuiltStack, ThermalError> {
        if self.n_dram_dies == 0 {
            return Err(ThermalError::BadStack {
                reason: "stack needs at least one DRAM die".into(),
            });
        }
        let g = &self.dram_geometry;
        let tech = TsvTech::thermal();
        let sites = self.scheme.sites(g);
        let paint_si = !sites.is_empty();
        let paint_d2d = self.scheme.aligned_and_shorted() && paint_si;

        let pillar_material = shorted_pillar_d2d(self.d2d_thickness);

        // Per-layer constructors shared by the two organizations.
        let dram_si = |die: usize| -> Result<Layer, ThermalError> {
            let mut si =
                Layer::uniform(format!("dram{die}_si"), self.die_thickness, SILICON.clone())
                    .with_floorplan(g.floorplan()?);
            si.set_block_material("tsv_bus", material::tsv_bus())?;
            if paint_si {
                paint_ttsvs(&mut si, &sites, &tech, &COPPER)?;
            }
            Ok(si)
        };
        let dram_metal = |die: usize| -> Result<Layer, ThermalError> {
            Ok(Layer::uniform(
                format!("dram{die}_metal"),
                self.dram_metal_thickness,
                DRAM_METAL.clone(),
            )
            .with_floorplan(g.floorplan()?))
        };
        // D2D: average microbump/underfill blend. The electrical-bump bus
        // region at the die center is better: its bumps are connected to
        // TSVs through the backside metal by construction (Fig. 4),
        // forming weak vertical paths in *every* scheme — the "limited
        // contribution" of electrical TSVs (Sec. 4.1). Aligned-and-shorted
        // schemes additionally gain pillar patches.
        let d2d_layer = |die: usize| -> Result<Layer, ThermalError> {
            let mut d2d =
                Layer::uniform(format!("d2d{die}"), self.d2d_thickness, D2D_AVERAGE.clone());
            d2d.add_patch(MaterialPatch::new(
                "electrical-bus",
                g.tsv_bus_rect(),
                material::electrical_bus_d2d(self.d2d_thickness),
            ))?;
            if paint_d2d {
                let grow = ((self.pillar_footprint - tech.diameter) / 2.0).max(0.0);
                paint_pillars(&mut d2d, &sites, &tech, &pillar_material, grow)?;
            }
            Ok(d2d)
        };
        let pg = &self.proc_geometry;
        // In "processor-on-top" the processor die carries no TSVs at all
        // (Sec. 3.1): neither the bus composite nor TTSVs enter its bulk.
        let proc_si = |with_tsvs: bool| -> Result<Layer, ThermalError> {
            let mut si = Layer::uniform("proc_si", self.die_thickness, SILICON.clone())
                .with_floorplan(pg.floorplan()?);
            if with_tsvs {
                si.set_block_material("tsv_bus", material::tsv_bus())?;
                if paint_si {
                    paint_ttsvs(&mut si, &sites, &tech, &COPPER)?;
                }
            }
            Ok(si)
        };
        let proc_metal = || -> Result<Layer, ThermalError> {
            Ok(
                Layer::uniform("proc_metal", self.proc_metal_thickness, PROC_METAL.clone())
                    .with_floorplan(pg.floorplan()?),
            )
        };

        let mut layers: Vec<Layer> = Vec::with_capacity(self.n_dram_dies * 3 + 2);
        let mut dram_si_layers = Vec::new();
        let mut dram_metal_layers = Vec::new();
        let mut d2d_layers = Vec::new();
        let proc_si_layer;
        let proc_metal_layer;

        match self.organization {
            Organization::MemoryOnTop => {
                for die in 0..self.n_dram_dies {
                    dram_si_layers.push(layers.len());
                    layers.push(dram_si(die)?);
                    dram_metal_layers.push(layers.len());
                    layers.push(dram_metal(die)?);
                    d2d_layers.push(layers.len());
                    layers.push(d2d_layer(die)?);
                }
                proc_si_layer = layers.len();
                layers.push(proc_si(true)?);
                proc_metal_layer = layers.len();
                layers.push(proc_metal()?);
            }
            Organization::ProcessorOnTop => {
                proc_si_layer = layers.len();
                layers.push(proc_si(false)?);
                proc_metal_layer = layers.len();
                layers.push(proc_metal()?);
                for die in 0..self.n_dram_dies {
                    d2d_layers.push(layers.len());
                    layers.push(d2d_layer(die)?);
                    dram_si_layers.push(layers.len());
                    layers.push(dram_si(die)?);
                    dram_metal_layers.push(layers.len());
                    layers.push(dram_metal(die)?);
                }
            }
        }

        let stack = Stack::builder(g.width, g.height)
            .package(self.package.clone())
            .layers(layers)
            .build()?;

        Ok(BuiltStack {
            stack,
            config: self.clone(),
            sites,
            dram_si_layers,
            dram_metal_layers,
            d2d_layers,
            proc_si_layer,
            proc_metal_layer,
        })
    }
}

/// Paints one copper patch per TTSV of `sites` into a silicon layer.
/// Exposed so scenario lowering (the `.stk` DSL) paints the exact same
/// patches — in the same order, with the same labels — as the
/// hard-wired paper builder.
pub fn paint_ttsvs(
    layer: &mut Layer,
    sites: &[TtsvSite],
    tech: &TsvTech,
    mat: &xylem_thermal::material::Material,
) -> Result<(), ThermalError> {
    paint_pillars(layer, sites, tech, mat, 0.0)
}

/// Paints a patch per TTSV, each grown by `grow` on every side (used for
/// the D2D dummy-microbump clusters). Grown patches may extend past the
/// die edge; the rasterizer clips them.
pub fn paint_pillars(
    layer: &mut Layer,
    sites: &[TtsvSite],
    tech: &TsvTech,
    mat: &xylem_thermal::material::Material,
    grow: f64,
) -> Result<(), ThermalError> {
    for (si, site) in sites.iter().enumerate() {
        for (ri, rect) in site.rects(tech).into_iter().enumerate() {
            layer.add_patch(MaterialPatch::new(
                format!("ttsv{si}_{ri}"),
                rect.expanded(grow),
                mat.clone(),
            ))?;
        }
    }
    Ok(())
}

/// A built stack plus the metadata needed to drive experiments.
#[derive(Debug, Clone)]
pub struct BuiltStack {
    stack: Stack,
    config: StackConfig,
    sites: Vec<TtsvSite>,
    dram_si_layers: Vec<usize>,
    dram_metal_layers: Vec<usize>,
    d2d_layers: Vec<usize>,
    proc_si_layer: usize,
    proc_metal_layer: usize,
}

impl BuiltStack {
    /// The underlying thermal stack.
    pub fn stack(&self) -> &Stack {
        &self.stack
    }

    /// The configuration this stack was built from.
    pub fn config(&self) -> &StackConfig {
        &self.config
    }

    /// The TTSV sites of the scheme (empty for `base`).
    pub fn sites(&self) -> &[TtsvSite] {
        &self.sites
    }

    /// Site center coordinates — the "high vertical conductivity sites"
    /// that the conductivity-aware techniques reason about. For `prior`
    /// this is empty: its TTSVs exist but create no vertical pillars.
    pub fn high_conductivity_sites(&self) -> Vec<(f64, f64)> {
        if self.config.scheme.aligned_and_shorted() {
            self.sites.iter().map(|s| s.center()).collect()
        } else {
            Vec::new()
        }
    }

    /// Layer indices of the DRAM bulk-silicon layers, top die first.
    pub fn dram_si_layers(&self) -> &[usize] {
        &self.dram_si_layers
    }

    /// Layer indices of the DRAM metal (power) layers, top die first.
    pub fn dram_metal_layers(&self) -> &[usize] {
        &self.dram_metal_layers
    }

    /// Layer indices of the D2D layers, top first.
    pub fn d2d_layers(&self) -> &[usize] {
        &self.d2d_layers
    }

    /// Layer index of the processor bulk silicon.
    pub fn proc_si_layer(&self) -> usize {
        self.proc_si_layer
    }

    /// Layer index of the processor metal+logic layer — where processor
    /// power dissipates and where the hotspot temperature is read.
    pub fn proc_metal_layer(&self) -> usize {
        self.proc_metal_layer
    }

    /// Layer index of the bottom-most (hottest) DRAM die's metal layer —
    /// the sensor for the paper's Fig. 13.
    pub fn bottom_dram_metal_layer(&self) -> usize {
        *self
            .dram_metal_layers
            .last()
            .expect("stack always has DRAM dies")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xylem_thermal::grid::GridSpec;

    #[test]
    fn paper_default_builds_26_layers() {
        let b = StackConfig::paper_default(XylemScheme::Base)
            .build()
            .unwrap();
        assert_eq!(b.stack().len(), 26);
        assert_eq!(b.dram_metal_layers().len(), 8);
        assert_eq!(b.d2d_layers().len(), 8);
        assert_eq!(b.proc_metal_layer(), 25);
        assert_eq!(b.proc_si_layer(), 24);
        assert_eq!(b.bottom_dram_metal_layer(), 22);
    }

    #[test]
    fn zero_dies_rejected() {
        let mut c = StackConfig::paper_default(XylemScheme::Base);
        c.n_dram_dies = 0;
        assert!(c.build().is_err());
    }

    #[test]
    fn shorted_schemes_paint_d2d() {
        let banke = StackConfig::paper_default(XylemScheme::BankEnhanced)
            .build()
            .unwrap();
        let d2d = banke.stack().layer(banke.d2d_layers()[0]).unwrap();
        // One electrical-bus patch + one patch per TTSV (33 sites, 3
        // doubled).
        assert_eq!(d2d.patches().len(), 1 + 36);
        let prior = StackConfig::paper_default(XylemScheme::Prior)
            .build()
            .unwrap();
        let d2d_prior = prior.stack().layer(prior.d2d_layers()[0]).unwrap();
        assert_eq!(d2d_prior.patches().len(), 1); // bus only, no pillars
                                                  // ... but prior does paint the silicon.
        let si_prior = prior.stack().layer(prior.dram_si_layers()[0]).unwrap();
        assert!(!si_prior.patches().is_empty());
    }

    #[test]
    fn base_paints_no_ttsvs() {
        let b = StackConfig::paper_default(XylemScheme::Base)
            .build()
            .unwrap();
        // Silicon layers untouched; D2D layers carry only the
        // electrical-bus patch shared by every scheme.
        for &l in b.dram_si_layers() {
            assert!(b.stack().layer(l).unwrap().patches().is_empty());
        }
        assert!(b
            .stack()
            .layer(b.proc_si_layer())
            .unwrap()
            .patches()
            .is_empty());
        for &l in b.d2d_layers() {
            assert_eq!(b.stack().layer(l).unwrap().patches().len(), 1);
        }
        assert!(b.high_conductivity_sites().is_empty());
    }

    #[test]
    fn prior_reports_no_high_conductivity_sites() {
        let b = StackConfig::paper_default(XylemScheme::Prior)
            .build()
            .unwrap();
        assert!(!b.sites().is_empty());
        assert!(b.high_conductivity_sites().is_empty());
        let banke = StackConfig::paper_default(XylemScheme::BankEnhanced)
            .build()
            .unwrap();
        // 25 bank-vertex sites + 4 core-adjacent doubled sites.
        assert_eq!(banke.high_conductivity_sites().len(), 29);
    }

    #[test]
    fn stack_discretizes() {
        let b = StackConfig::paper_default(XylemScheme::BankSurround)
            .build()
            .unwrap();
        let m = b.stack().discretize(GridSpec::new(16, 16)).unwrap();
        assert_eq!(m.n_user_layers(), 26);
    }

    #[test]
    fn die_count_scales_layers() {
        for n in [4, 8, 12] {
            let mut c = StackConfig::paper_default(XylemScheme::Base);
            c.n_dram_dies = n;
            let b = c.build().unwrap();
            assert_eq!(b.stack().len(), 3 * n + 2);
        }
    }

    #[test]
    fn processor_on_top_reverses_the_stack() {
        let mut c = StackConfig::paper_default(XylemScheme::BankSurround);
        c.organization = Organization::ProcessorOnTop;
        let b = c.build().unwrap();
        assert_eq!(b.stack().len(), 26);
        // Processor layers first (nearest the sink).
        assert_eq!(b.proc_si_layer(), 0);
        assert_eq!(b.proc_metal_layer(), 1);
        assert_eq!(b.bottom_dram_metal_layer(), 25);
        // No TSVs in the processor die.
        assert!(b.stack().layer(0).unwrap().patches().is_empty());
        // DRAM silicon still carries the TTSVs.
        assert!(!b
            .stack()
            .layer(b.dram_si_layers()[0])
            .unwrap()
            .patches()
            .is_empty());
    }

    #[test]
    fn processor_on_top_runs_cooler() {
        use xylem_thermal::grid::GridSpec;
        use xylem_thermal::power::PowerMap;
        use xylem_thermal::units::Watts;
        let hotspot = |org: Organization| {
            let mut c = StackConfig::paper_default(XylemScheme::Base);
            c.organization = org;
            let b = c.build().unwrap();
            let m = b.stack().discretize(GridSpec::new(16, 16)).unwrap();
            let mut p = PowerMap::zeros(&m);
            p.add_uniform_layer_power(b.proc_metal_layer(), Watts::new(20.0));
            for &l in b.dram_metal_layers() {
                p.add_uniform_layer_power(l, Watts::new(0.4));
            }
            m.steady_state(&p)
                .unwrap()
                .max_of_layer(b.proc_metal_layer())
                .get()
        };
        let mem_top = hotspot(Organization::MemoryOnTop);
        let proc_top = hotspot(Organization::ProcessorOnTop);
        // The Sec. 3.1 thermal advantage: the processor no longer sits
        // below eight D2D layers.
        assert!(
            proc_top < mem_top - 10.0,
            "proc-on-top {proc_top} vs memory-on-top {mem_top}"
        );
    }

    #[test]
    fn tsv_feasibility_flags_thick_dies() {
        let mut c = StackConfig::paper_default(XylemScheme::Base);
        assert!(c.electrical_tsv_feasible());
        c.die_thickness = 200e-6;
        assert!(!c.electrical_tsv_feasible());
        c.die_thickness = 50e-6;
        assert!(c.electrical_tsv_feasible());
    }
}
