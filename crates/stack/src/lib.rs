//! 3D processor-memory stack geometry and Xylem TTSV placement schemes.
//!
//! This crate builds the physical structure the Xylem paper (MICRO 2017)
//! evaluates: a Wide I/O-compliant stack of 8 DRAM dies on top of an 8-core
//! processor die (the "memory-on-top" organization of Sec. 3.2), including:
//!
//! * the Wide I/O DRAM die floorplan (16 banks, central TSV bus,
//!   peripheral-logic strips) — [`dram_die`];
//! * the processor die floorplan (8 cores on the periphery, LLC + memory
//!   controllers + TSV bus in the center, Fig. 6) — [`proc_die`];
//! * TSV/TTSV/microbump technology parameters and density math — [`tsv`];
//! * the five TTSV placement schemes of Table 2 (`base`, `bank`, `banke`,
//!   `isoCount`, `prior`) — [`scheme`];
//! * the stack builder that assembles everything into a solvable
//!   [`xylem_thermal::Stack`], painting TTSV pillars into the silicon
//!   layers and — for aligned-and-shorted schemes — high-conductivity
//!   microbump sites into the D2D layers (Sec. 4.1.2) — [`builder`];
//! * TTSV area/overhead accounting (Sec. 7.1) — [`area`].
//!
//! # Example
//!
//! ```
//! use xylem_stack::builder::StackConfig;
//! use xylem_stack::scheme::XylemScheme;
//!
//! # fn main() -> Result<(), xylem_thermal::ThermalError> {
//! let config = StackConfig::paper_default(XylemScheme::BankEnhanced);
//! let built = config.build()?;
//! assert_eq!(built.stack().len(), 8 * 3 + 2); // 8 DRAM dies x 3 layers + proc Si + metal
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod area;
pub mod builder;
pub mod dram_die;
pub mod proc_die;
pub mod scheme;
pub mod tsv;

pub use builder::{BuiltStack, Organization, StackConfig};
pub use scheme::XylemScheme;
