//! TTSV area and routing overhead accounting (paper Sec. 7.1).
//!
//! One TTSV plus its keep-out zone occupies `(100 um + 2 x 10 um)^2 =
//! 0.0144 mm^2`. Against the 64.34 mm^2 Samsung Wide I/O prototype die,
//! `bank` (28 TTSVs) costs 0.63% and `banke` (36) costs 0.81%. TTSVs are
//! passive (no energy overhead) and terminate below the frontside metal
//! (no routing congestion there).

use serde::{Deserialize, Serialize};

use crate::dram_die::DramDieGeometry;
use crate::scheme::XylemScheme;
use crate::tsv::TsvTech;

/// Die area of Samsung's Wide I/O DRAM prototype (Kim et al., ISSCC 2011),
/// the reference the paper computes overheads against, m^2.
pub const SAMSUNG_WIDE_IO_DIE_AREA: f64 = 64.34e-6;

/// Area-overhead report for one scheme.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaOverhead {
    /// TTSVs per die.
    pub ttsv_count: usize,
    /// Area of one TTSV site including KOZ, m^2.
    pub site_area: f64,
    /// Total TTSV area, m^2.
    pub total_area: f64,
    /// Fraction of the reference die area (0..=1).
    pub fraction_of_die: f64,
}

impl AreaOverhead {
    /// Computes the overhead of `scheme` on `geom`, against the reference
    /// die area (use [`SAMSUNG_WIDE_IO_DIE_AREA`] to match the paper).
    pub fn for_scheme(scheme: XylemScheme, geom: &DramDieGeometry, reference_area: f64) -> Self {
        let tech = TsvTech::thermal();
        let count = scheme.ttsv_count(geom);
        let site = tech.site_area();
        let total = count as f64 * site;
        AreaOverhead {
            ttsv_count: count,
            site_area: site,
            total_area: total,
            fraction_of_die: total / reference_area,
        }
    }

    /// Overhead as a percentage.
    pub fn percent(&self) -> f64 {
        self.fraction_of_die * 100.0
    }
}

/// Routing-overhead summary: TTSVs never enter the frontside metal layers
/// (Fig. 3), so the frontside routing overhead is structurally zero; the
/// shorting via lives in the 0-2 backside metal layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoutingOverhead {
    /// Vias added to the frontside metal layers (always 0).
    pub frontside_vias: usize,
    /// Shorting vias added to the backside metal layers (one per TTSV for
    /// aligned-and-shorted schemes).
    pub backside_vias: usize,
}

impl RoutingOverhead {
    /// Computes the routing overhead of `scheme`.
    pub fn for_scheme(scheme: XylemScheme, geom: &DramDieGeometry) -> Self {
        RoutingOverhead {
            frontside_vias: 0,
            backside_vias: if scheme.aligned_and_shorted() {
                scheme.ttsv_count(geom)
            } else {
                0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_percentages() {
        let g = DramDieGeometry::paper_default();
        let bank =
            AreaOverhead::for_scheme(XylemScheme::BankSurround, &g, SAMSUNG_WIDE_IO_DIE_AREA);
        assert!((bank.total_area * 1e6 - 0.4032).abs() < 1e-9);
        assert!((bank.percent() - 0.63).abs() < 0.01, "{}", bank.percent());
        let banke =
            AreaOverhead::for_scheme(XylemScheme::BankEnhanced, &g, SAMSUNG_WIDE_IO_DIE_AREA);
        assert!((banke.total_area * 1e6 - 0.5184).abs() < 1e-9);
        assert!((banke.percent() - 0.81).abs() < 0.01, "{}", banke.percent());
    }

    #[test]
    fn base_has_zero_overhead() {
        let g = DramDieGeometry::paper_default();
        let a = AreaOverhead::for_scheme(XylemScheme::Base, &g, SAMSUNG_WIDE_IO_DIE_AREA);
        assert_eq!(a.ttsv_count, 0);
        assert_eq!(a.percent(), 0.0);
    }

    #[test]
    fn frontside_routing_is_always_zero() {
        let g = DramDieGeometry::paper_default();
        for s in XylemScheme::ALL {
            let r = RoutingOverhead::for_scheme(s, &g);
            assert_eq!(r.frontside_vias, 0);
        }
        let r = RoutingOverhead::for_scheme(XylemScheme::Prior, &g);
        assert_eq!(r.backside_vias, 0); // prior never shorts
        let r = RoutingOverhead::for_scheme(XylemScheme::BankSurround, &g);
        assert_eq!(r.backside_vias, 28);
    }
}
