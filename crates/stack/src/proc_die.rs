//! Processor die floorplan (paper Fig. 6, Sec. 4.2).
//!
//! A typical commercial layout: 8 cores on the periphery — two columns of
//! four along the left and right die edges — with the last-level cache,
//! the Wide I/O memory controllers, and the TSV bus in the center. The
//! central horizontal band (y = die middle) carries the TSV bus and
//! aligns with the DRAM dies' wide central peripheral stripe, where the
//! Xylem schemes concentrate TTSVs. The **inner cores** (2, 3, 6, 7 —
//! the middle of each column) are adjacent to that band, giving them a
//! smaller average distance to the high-vertical-conductivity sites than
//! the **outer cores** (1, 4, 5, 8 — the corners). This is the spatial
//! heterogeneity the conductivity-aware techniques exploit (Sec. 5.2).
//!
//! Each core's execution cluster (ALU/FPU — the hotspots) occupies the
//! core row facing the die midline, next to the stripe's TTSV sites; the
//! FPUs of vertically adjacent cores meet at the stripe, where the
//! `banke` scheme co-designs a doubled TTSV site between them.

use serde::{Deserialize, Serialize};

use xylem_thermal::error::ThermalError;
use xylem_thermal::floorplan::{Floorplan, Rect};

/// Number of cores on the processor die.
pub const NUM_CORES: usize = 8;

/// Core identifiers are 1-based to match the paper's Fig. 6.
pub type CoreId = usize;

/// The per-core architectural sub-blocks, each one cell of a 3x3 grid
/// inside the core. Listed exec row first (ALU/FPU/L1D), then the
/// scheduling row, then the front end; the exec row is placed facing the
/// die midline.
pub const CORE_BLOCKS: [&str; 9] = [
    "alu", "fpu", "l1d", "rf", "issue", "lsu", "fetch", "decode", "l1i",
];

/// Parametric geometry of the processor die.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProcDieGeometry {
    /// Die width, m.
    pub width: f64,
    /// Die height, m.
    pub height: f64,
    /// Width of each core column (cores span `core_width` x `height/4`),
    /// m.
    pub core_width: f64,
    /// Half-height of the central uncore band (MCs, NoC, TSV bus), m.
    pub center_band_half: f64,
}

impl ProcDieGeometry {
    /// The paper's 8x8 mm processor die: two 2 mm core columns around a
    /// 4 mm center region, with a 0.8 mm uncore band (MCs, NoC, TSV bus)
    /// running across the **full die width** at the midline — the band
    /// both carries the Wide I/O bus and separates the inner cores of
    /// each column, placing the central TTSV stripe directly between
    /// their execution clusters.
    pub fn paper_default() -> Self {
        ProcDieGeometry {
            width: 8e-3,
            height: 8e-3,
            core_width: 2.4e-3,
            center_band_half: 0.4e-3,
        }
    }

    /// Height of one core (4 per column around the central band).
    pub fn core_height(&self) -> f64 {
        (self.height - 2.0 * self.center_band_half) / 4.0
    }

    /// Geometry of core `id` (1..=8). Cores 1-4 run top-to-bottom along
    /// the left edge; cores 5-8 along the right edge; rows 2 and 3 of
    /// each column sit below the central band.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not in `1..=8`.
    pub fn core_rect(&self, id: CoreId) -> Rect {
        assert!((1..=NUM_CORES).contains(&id), "core {id} out of range");
        let row = (id - 1) % 4; // 0 = top
        let x = if id <= 4 {
            0.0
        } else {
            self.width - self.core_width
        };
        let ch = self.core_height();
        let mid = self.height / 2.0;
        let b = self.center_band_half;
        let y = match row {
            0 => self.height - ch,
            1 => mid + b,
            2 => mid - b - ch,
            _ => 0.0,
        };
        Rect::new(x, y, self.core_width, ch)
    }

    /// Whether `id` is an inner core (2, 3, 6, 7): the middle of its
    /// column, adjacent to the central high-conductivity band.
    pub fn is_inner_core(id: CoreId) -> bool {
        matches!(id, 2 | 3 | 6 | 7)
    }

    /// The inner cores, in id order.
    pub fn inner_cores() -> [CoreId; 4] {
        [2, 3, 6, 7]
    }

    /// The outer cores, in id order.
    pub fn outer_cores() -> [CoreId; 4] {
        [1, 4, 5, 8]
    }

    /// Name of a core sub-block: `"core{id}_{block}"`.
    pub fn core_block_name(id: CoreId, block: &str) -> String {
        format!("core{id}_{block}")
    }

    /// Geometry of the center region between the core columns.
    pub fn center_region(&self) -> Rect {
        Rect::new(
            self.core_width,
            0.0,
            self.width - 2.0 * self.core_width,
            self.height,
        )
    }

    /// Geometry of the TSV bus: 48 blocks of 5x5 TSVs as a 24x2 grid of
    /// 100 um blocks (2.4 x 0.2 mm), centered on the die — matching the
    /// DRAM dies' bus footprint.
    pub fn tsv_bus_rect(&self) -> Rect {
        let len = 2.4e-3;
        let h = 0.2e-3;
        Rect::new((self.width - len) / 2.0, (self.height - h) / 2.0, len, h)
    }

    /// Builds the full floorplan: 8 cores x 9 sub-blocks, 4 memory
    /// controllers, NoC blocks, TSV bus, and the LLC filling the rest of
    /// the center region.
    ///
    /// # Errors
    ///
    /// Propagates floorplan-construction errors (cannot occur for valid
    /// geometry).
    pub fn floorplan(&self) -> Result<Floorplan, ThermalError> {
        let mut fp = Floorplan::new(self.width, self.height);

        // Cores: 3x3 sub-block grid; the exec row (blocks 0-2) faces the
        // die midline.
        for id in 1..=NUM_CORES {
            let r = self.core_rect(id);
            let cw = r.width() / 3.0;
            let ch = r.height() / 3.0;
            let upper_half = r.center().1 > self.height / 2.0;
            for (bi, block) in CORE_BLOCKS.iter().enumerate() {
                let col = bi % 3;
                let row = bi / 3;
                // Upper-half cores: exec row at the core's bottom; lower
                // half: mirrored.
                let row = if upper_half { row } else { 2 - row };
                fp.add_block(
                    Self::core_block_name(id, block),
                    Rect::new(r.x() + col as f64 * cw, r.y() + row as f64 * ch, cw, ch),
                )?;
            }
        }

        // Center region: LLC columns above and below the central band.
        let c = self.center_region();
        let band = self.center_band_half;
        let mid = self.height / 2.0;
        fp.add_block(
            "llc_top",
            Rect::new(c.x(), mid + band, c.width(), c.y_max() - mid - band),
        )?;
        fp.add_block(
            "llc_bot",
            Rect::new(c.x(), c.y(), c.width(), mid - band - c.y()),
        )?;

        // Full-width central band: MCs at the ends (under the core
        // columns, next to the cores they serve), NoC wrapping the TSV
        // bus, peripheral pads between.
        let bus = self.tsv_bus_rect();
        let mc_w = 1.4e-3_f64.min(bus.x() / 2.0);
        fp.add_block("mc0", Rect::new(0.0, mid - band, mc_w, band))?;
        fp.add_block("mc1", Rect::new(0.0, mid, mc_w, band))?;
        fp.add_block("mc2", Rect::new(self.width - mc_w, mid - band, mc_w, band))?;
        fp.add_block("mc3", Rect::new(self.width - mc_w, mid, mc_w, band))?;
        let inner_w = self.width - 2.0 * mc_w;
        fp.add_block(
            "noc0",
            Rect::new(mc_w, mid - band, inner_w, band - bus.height() / 2.0),
        )?;
        fp.add_block(
            "noc1",
            Rect::new(mc_w, bus.y_max(), inner_w, band - bus.height() / 2.0),
        )?;
        fp.add_block(
            "bus_pad_l",
            Rect::new(mc_w, bus.y(), bus.x() - mc_w, bus.height()),
        )?;
        fp.add_block(
            "bus_pad_r",
            Rect::new(
                bus.x_max(),
                bus.y(),
                self.width - mc_w - bus.x_max(),
                bus.height(),
            ),
        )?;
        fp.add_block("tsv_bus", bus)?;

        fp.require_full_coverage(1e-6)?;
        Ok(fp)
    }

    /// All core sub-block names for core `id`.
    pub fn core_block_names(id: CoreId) -> Vec<String> {
        CORE_BLOCKS
            .iter()
            .map(|b| Self::core_block_name(id, b))
            .collect()
    }

    /// Mean Euclidean distance (m) from the center of core `id` to a set of
    /// site coordinates — the metric behind "average distance to the high
    /// vertical conductivity sites" (Sec. 5.2).
    pub fn mean_distance_to_sites(&self, id: CoreId, sites: &[(f64, f64)]) -> f64 {
        if sites.is_empty() {
            return f64::INFINITY;
        }
        let (cx, cy) = self.core_rect(id).center();
        let sum: f64 = sites
            .iter()
            .map(|&(sx, sy)| ((cx - sx).powi(2) + (cy - sy).powi(2)).sqrt())
            .sum();
        sum / sites.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floorplan_tiles_the_die() {
        let g = ProcDieGeometry::paper_default();
        let fp = g.floorplan().unwrap();
        assert!(fp.require_full_coverage(1e-9).is_ok());
        // 8 cores x 9 blocks + 4 MCs + 2 NoC + 2 pads + bus + 2 LLC.
        assert_eq!(fp.len(), 8 * 9 + 4 + 2 + 2 + 1 + 2);
    }

    #[test]
    fn cores_form_two_columns() {
        let g = ProcDieGeometry::paper_default();
        for id in 1..=4 {
            assert_eq!(g.core_rect(id).x(), 0.0, "core {id}");
        }
        for id in 5..=8 {
            assert!(g.core_rect(id).x() > g.width / 2.0, "core {id}");
        }
        // Column order: 1 and 5 on top, 4 and 8 at the bottom.
        assert!(g.core_rect(1).y() > g.core_rect(4).y());
        assert!(g.core_rect(5).y() > g.core_rect(8).y());
        // No overlaps.
        for a in 1..=8 {
            for b in (a + 1)..=8 {
                assert!(!g.core_rect(a).overlaps(&g.core_rect(b)), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn inner_cores_touch_the_central_band() {
        let g = ProcDieGeometry::paper_default();
        let mid = g.height / 2.0;
        let b = g.center_band_half;
        for id in ProcDieGeometry::inner_cores() {
            let r = g.core_rect(id);
            let touches =
                (r.y() - (mid + b)).abs() < 1e-12 || (r.y_max() - (mid - b)).abs() < 1e-12;
            assert!(touches, "core {id}: {r:?}");
        }
        // Outer cores are a full core-height away from the band.
        for id in ProcDieGeometry::outer_cores() {
            let r = g.core_rect(id);
            assert!(
                r.y() > mid + b + g.core_height() / 2.0
                    || r.y_max() < mid - b - g.core_height() / 2.0,
                "core {id}"
            );
        }
    }

    #[test]
    fn inner_outer_partition() {
        let inner = ProcDieGeometry::inner_cores();
        let outer = ProcDieGeometry::outer_cores();
        let mut all: Vec<_> = inner.iter().chain(outer.iter()).collect();
        all.sort();
        assert_eq!(all, vec![&1, &2, &3, &4, &5, &6, &7, &8]);
        assert!(ProcDieGeometry::is_inner_core(2));
        assert!(!ProcDieGeometry::is_inner_core(1));
    }

    #[test]
    fn inner_cores_closer_to_center_sites() {
        let g = ProcDieGeometry::paper_default();
        // Sites along the die's central stripe.
        let sites: Vec<(f64, f64)> = (0..5)
            .map(|i| (1e-3 + i as f64 * 1.5e-3, g.height / 2.0))
            .collect();
        let d_inner = g.mean_distance_to_sites(2, &sites);
        let d_outer = g.mean_distance_to_sites(1, &sites);
        assert!(d_inner < d_outer, "{d_inner} vs {d_outer}");
    }

    #[test]
    fn execution_cluster_faces_die_midline() {
        let g = ProcDieGeometry::paper_default();
        let fp = g.floorplan().unwrap();
        // Inner cores' FPUs sit within a core-row plus the band of the
        // midline — right beside the central TTSV stripe.
        let mid = g.height / 2.0;
        let reach = g.core_height() / 3.0 + 2.0 * g.center_band_half;
        for id in [2usize, 3] {
            let fpu = fp
                .block(&ProcDieGeometry::core_block_name(id, "fpu"))
                .unwrap()
                .rect()
                .center()
                .1;
            assert!((fpu - mid).abs() < reach, "core {id}: fpu at {fpu}");
        }
        // Outer cores' FPUs face the midline too (inner edge of the core).
        let fpu1 = fp.block("core1_fpu").unwrap().rect().center().1;
        let core1 = g.core_rect(1);
        assert!(fpu1 < core1.center().1, "core1 fpu at {fpu1}");
    }

    #[test]
    fn bus_matches_dram_bus_footprint() {
        let pg = ProcDieGeometry::paper_default();
        let dg = crate::dram_die::DramDieGeometry::paper_default();
        let pb = pg.tsv_bus_rect();
        let db = dg.tsv_bus_rect();
        assert!((pb.x() - db.x()).abs() < 1e-9);
        assert!((pb.width() - db.width()).abs() < 1e-9);
        assert!((pb.center().1 - db.center().1).abs() < 1e-9);
    }

    #[test]
    fn bus_clears_the_core_columns() {
        let g = ProcDieGeometry::paper_default();
        let bus = g.tsv_bus_rect();
        for id in 1..=8 {
            assert!(!g.core_rect(id).overlaps(&bus), "core {id}");
        }
    }
}
