//! TSV / TTSV / microbump technology parameters (paper Sec. 2.1, 2.2, 6.1).
//!
//! Electrical TSVs follow ITRS: 10 um diameter, 10 um keep-out zone (KOZ),
//! giving a 20 um pitch and a 25% Cu area fraction inside the TSV bus.
//! TTSVs and dummy microbumps are thicker (100 um) "to facilitate maximum
//! heat transfer" (Sec. 6.1); each TTSV carries a 10 um KOZ on every side.

use serde::{Deserialize, Serialize};

/// Copper aspect-ratio limit (height : diameter), paper Sec. 2.1.
pub const CU_ASPECT_RATIO: f64 = 10.0;

/// Tungsten aspect-ratio limit, paper Sec. 2.1.
pub const W_ASPECT_RATIO: f64 = 30.0;

/// Geometry of one TSV class.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TsvTech {
    /// Via diameter (side of the modeled square block), m.
    pub diameter: f64,
    /// Keep-out zone on each side, m.
    pub koz: f64,
    /// Aspect-ratio limit of the fill metal (height : diameter).
    pub aspect_ratio_limit: f64,
}

impl TsvTech {
    /// The paper's electrical TSV: 10 um Cu via, 10 um KOZ (20 um pitch).
    pub fn electrical() -> Self {
        TsvTech {
            diameter: 10e-6,
            koz: 10e-6,
            aspect_ratio_limit: CU_ASPECT_RATIO,
        }
    }

    /// The paper's thermal TSV: 100 um Cu block, 10 um KOZ.
    pub fn thermal() -> Self {
        TsvTech {
            diameter: 100e-6,
            koz: 10e-6,
            aspect_ratio_limit: CU_ASPECT_RATIO,
        }
    }

    /// Pitch implied by the KOZ: diameter + KOZ (KOZs of neighboring vias
    /// overlap), m.
    pub fn pitch(&self) -> f64 {
        self.diameter + self.koz
    }

    /// Footprint of one via including its KOZ ring:
    /// `(diameter + 2*koz)^2`, m^2. For the paper's TTSV this is
    /// `(100 um + 20 um)^2 = 0.0144 mm^2` (Sec. 7.1).
    pub fn site_area(&self) -> f64 {
        let side = self.diameter + 2.0 * self.koz;
        side * side
    }

    /// Metal area fraction within a dense array at [`TsvTech::pitch`]:
    /// `(d / pitch)^2`. The paper's electrical bus: `(10/20)^2 = 0.25`.
    pub fn array_metal_fraction(&self) -> f64 {
        let p = self.pitch();
        (self.diameter / p) * (self.diameter / p)
    }

    /// Tallest die (m) this via can traverse under its aspect-ratio limit.
    pub fn max_die_thickness(&self) -> f64 {
        self.aspect_ratio_limit * self.diameter
    }

    /// Whether the via can traverse a die of the given thickness.
    pub fn supports_die_thickness(&self, thickness: f64) -> bool {
        thickness <= self.max_die_thickness() + 1e-12
    }

    /// Achievable via density (vias per m^2) for a die of `thickness`
    /// at this aspect-ratio limit: the via diameter must be at least
    /// `thickness / AR`, so density is at most `1 / pitch^2` with
    /// `pitch = d_min + koz`. Density is proportional to `(AR/t)^2`
    /// (Sec. 2.1).
    pub fn max_density_for_thickness(&self, thickness: f64) -> f64 {
        let d_min = thickness / self.aspect_ratio_limit;
        let pitch = d_min + self.koz;
        1.0 / (pitch * pitch)
    }
}

/// Microbump geometry (paper Sec. 2.2, 6.1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MicrobumpTech {
    /// Bump side for the thermal model, m.
    pub size: f64,
    /// Bump (solder + pillar) height, m.
    pub height: f64,
    /// Area density of dummy bumps in a filled D2D layer (0..=1).
    pub dummy_density: f64,
}

impl MicrobumpTech {
    /// The paper's dummy microbump: 100 um block, 18 um tall, 25% density.
    pub fn dummy() -> Self {
        MicrobumpTech {
            size: 100e-6,
            height: 18e-6,
            dummy_density: 0.25,
        }
    }

    /// The paper's electrical microbump: ~17 um diameter, 50 um pitch
    /// (Sec. 2.2), 18 um tall.
    pub fn electrical() -> Self {
        MicrobumpTech {
            size: 17e-6,
            height: 18e-6,
            dummy_density: (17.0 / 50.0) * (17.0 / 50.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn electrical_tsv_paper_numbers() {
        let t = TsvTech::electrical();
        assert_eq!(t.pitch(), 20e-6);
        assert!((t.array_metal_fraction() - 0.25).abs() < 1e-12);
        // 10:1 Cu aspect ratio supports exactly the 100 um die.
        assert!(t.supports_die_thickness(100e-6));
        assert!(!t.supports_die_thickness(101e-6));
    }

    #[test]
    fn ttsv_site_area_is_0_0144_mm2() {
        let t = TsvTech::thermal();
        let mm2 = t.site_area() * 1e6;
        assert!((mm2 - 0.0144).abs() < 1e-9, "{mm2}");
    }

    #[test]
    fn density_scales_with_inverse_square_of_thickness() {
        let t = TsvTech::electrical();
        let d100 = t.max_density_for_thickness(100e-6);
        let d200 = t.max_density_for_thickness(200e-6);
        // Thicker dies force larger vias: density drops superlinearly, and
        // in the KOZ-free limit exactly quadratically.
        let ratio = d100 / d200;
        assert!(ratio > 2.0, "ratio {ratio}");
        let no_koz = TsvTech {
            koz: 0.0,
            ..TsvTech::electrical()
        };
        let r = no_koz.max_density_for_thickness(100e-6) / no_koz.max_density_for_thickness(200e-6);
        assert!((r - 4.0).abs() < 1e-9, "{r}");
    }

    #[test]
    fn tungsten_allows_higher_aspect_ratio() {
        let w = TsvTech {
            aspect_ratio_limit: W_ASPECT_RATIO,
            ..TsvTech::electrical()
        };
        assert!(w.max_die_thickness() > TsvTech::electrical().max_die_thickness());
    }

    #[test]
    fn dummy_bump_density() {
        let b = MicrobumpTech::dummy();
        assert_eq!(b.dummy_density, 0.25);
        assert_eq!(b.height, 18e-6);
        let e = MicrobumpTech::electrical();
        assert!(e.dummy_density < 0.2);
    }
}
