//! Wide I/O DRAM die geometry (paper Fig. 1, Sec. 6.1).
//!
//! Each memory die ("slice") holds 16 banks in a 4x4 arrangement — 4 ranks
//! (one per channel, one per quadrant) of 4 banks. Peripheral logic (row and
//! column decoders, charge pumps, I/O logic, temperature sensors) runs in
//! strips between and around the banks; the horizontal strip across the die
//! center is wider because it carries the 1,200-TSV Wide I/O bus.

use serde::{Deserialize, Serialize};

use xylem_thermal::error::ThermalError;
use xylem_thermal::floorplan::{Floorplan, Rect};

/// Parametric geometry of a Wide I/O DRAM die.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramDieGeometry {
    /// Die width, m.
    pub width: f64,
    /// Die height, m.
    pub height: f64,
    /// Edge peripheral-logic margin on all four sides, m.
    pub margin: f64,
    /// Width of the 3 internal vertical peripheral strips, m.
    pub strip_v: f64,
    /// Height of the 2 internal horizontal peripheral strips, m.
    pub strip_h: f64,
    /// Height of the central horizontal stripe (holds the TSV bus), m.
    pub center_stripe: f64,
    /// Length of the TSV bus region inside the central stripe, m.
    pub bus_length: f64,
    /// Height of the TSV bus region, m.
    pub bus_height: f64,
}

impl DramDieGeometry {
    /// The paper's 8x8 mm (~64 mm^2) Wide I/O die.
    pub fn paper_default() -> Self {
        DramDieGeometry {
            width: 8e-3,
            height: 8e-3,
            margin: 0.25e-3,
            strip_v: 0.2e-3,
            strip_h: 0.2e-3,
            center_stripe: 0.8e-3,
            // 1,200 TSVs as 48 blocks of 5x5 (100 um blocks) in a 24x2
            // grid: 2.4 x 0.2 mm, centered.
            bus_length: 2.4e-3,
            bus_height: 0.2e-3,
        }
    }

    /// Bank width: 4 columns plus 3 vertical strips inside the margins.
    pub fn bank_width(&self) -> f64 {
        (self.width - 2.0 * self.margin - 3.0 * self.strip_v) / 4.0
    }

    /// Bank height: 4 rows, 2 horizontal strips and the central stripe
    /// inside the margins.
    pub fn bank_height(&self) -> f64 {
        (self.height - 2.0 * self.margin - 2.0 * self.strip_h - self.center_stripe) / 4.0
    }

    /// Geometry of bank `(row, col)`; rows 0..4 bottom to top, rows 0-1
    /// below the central stripe, 2-3 above; cols 0..4 left to right.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of range.
    pub fn bank_rect(&self, row: usize, col: usize) -> Rect {
        assert!(row < 4 && col < 4, "bank ({row},{col}) out of range");
        let bw = self.bank_width();
        let bh = self.bank_height();
        let x = self.margin + col as f64 * (bw + self.strip_v);
        let y = match row {
            0 => self.margin,
            1 => self.margin + bh + self.strip_h,
            2 => self.margin + 2.0 * bh + self.strip_h + self.center_stripe,
            _ => self.margin + 3.0 * bh + 2.0 * self.strip_h + self.center_stripe,
        };
        Rect::new(x, y, bw, bh)
    }

    /// Wide I/O channel (quadrant) of bank `(row, col)`: 0 = lower-left,
    /// 1 = lower-right, 2 = upper-left, 3 = upper-right.
    pub fn channel_of_bank(&self, row: usize, col: usize) -> usize {
        let upper = usize::from(row >= 2);
        let right = usize::from(col >= 2);
        upper * 2 + right
    }

    /// Canonical name of bank `(row, col)`: `"bank{row}{col}"`.
    pub fn bank_name(row: usize, col: usize) -> String {
        format!("bank{row}{col}")
    }

    /// Lower y of the central stripe.
    pub fn center_stripe_y0(&self) -> f64 {
        self.margin + 2.0 * self.bank_height() + self.strip_h
    }

    /// Geometry of the central stripe (full die width).
    pub fn center_stripe_rect(&self) -> Rect {
        Rect::new(0.0, self.center_stripe_y0(), self.width, self.center_stripe)
    }

    /// Geometry of the TSV bus block, centered in the central stripe.
    pub fn tsv_bus_rect(&self) -> Rect {
        Rect::new(
            (self.width - self.bus_length) / 2.0,
            self.center_stripe_y0() + (self.center_stripe - self.bus_height) / 2.0,
            self.bus_length,
            self.bus_height,
        )
    }

    /// X coordinates of the 5 bank-vertex columns: the centerlines of the
    /// edge margins and of the 3 internal vertical strips.
    pub fn vertex_xs(&self) -> [f64; 5] {
        let bw = self.bank_width();
        let first = self.margin + bw + self.strip_v / 2.0;
        let step = bw + self.strip_v;
        [
            self.margin / 2.0,
            first,
            first + step,
            first + 2.0 * step,
            self.width - self.margin / 2.0,
        ]
    }

    /// Y coordinates of the 5 bank-vertex rows: edge margins, the 2
    /// internal horizontal strips, and the central stripe centerline.
    pub fn vertex_ys(&self) -> [f64; 5] {
        let bh = self.bank_height();
        let low_strip = self.margin + bh + self.strip_h / 2.0;
        [
            self.margin / 2.0,
            low_strip,
            self.center_stripe_y0() + self.center_stripe / 2.0,
            self.height - low_strip,
            self.height - self.margin / 2.0,
        ]
    }

    /// X coordinates of the 4 bank-column centerlines (used by the
    /// `banke` scheme's core-adjacent sites).
    pub fn bank_center_xs(&self) -> [f64; 4] {
        let bw = self.bank_width();
        let step = bw + self.strip_v;
        let first = self.margin + bw / 2.0;
        [first, first + step, first + 2.0 * step, first + 3.0 * step]
    }

    /// Builds the full floorplan: 16 banks, the TSV bus, and peripheral
    /// blocks tiling the rest of the die.
    ///
    /// # Errors
    ///
    /// Propagates floorplan-construction errors (cannot occur for valid
    /// geometry).
    pub fn floorplan(&self) -> Result<Floorplan, ThermalError> {
        let mut fp = Floorplan::new(self.width, self.height);
        for row in 0..4 {
            for col in 0..4 {
                fp.add_block(Self::bank_name(row, col), self.bank_rect(row, col))?;
            }
        }
        fp.add_block("tsv_bus", self.tsv_bus_rect())?;

        // Peripheral logic: everything else, tiled as horizontal bands and
        // per-band filler rectangles.
        let bw = self.bank_width();
        let bh = self.bank_height();
        let m = self.margin;
        let w = self.width;
        // Horizontal full-width bands (bottom/top margins, internal strips).
        let y_rows = [
            m,
            m + bh + self.strip_h,
            self.center_stripe_y0() + self.center_stripe,
            self.height - m - 2.0 * bh - self.strip_h + bh + self.strip_h,
        ];
        let _ = y_rows; // band math below is explicit instead
        fp.add_block("periph_s", Rect::new(0.0, 0.0, w, m))?;
        fp.add_block("periph_h0", Rect::new(0.0, m + bh, w, self.strip_h))?;
        fp.add_block(
            "periph_h1",
            Rect::new(0.0, self.height - m - bh - self.strip_h, w, self.strip_h),
        )?;
        fp.add_block("periph_n", Rect::new(0.0, self.height - m, w, m))?;

        // Central stripe minus the bus: below, above, left, right of it.
        let stripe = self.center_stripe_rect();
        let bus = self.tsv_bus_rect();
        fp.add_block(
            "periph_c_below",
            Rect::new(0.0, stripe.y(), w, bus.y() - stripe.y()),
        )?;
        fp.add_block(
            "periph_c_above",
            Rect::new(0.0, bus.y_max(), w, stripe.y_max() - bus.y_max()),
        )?;
        fp.add_block(
            "periph_c_left",
            Rect::new(0.0, bus.y(), bus.x(), bus.height()),
        )?;
        fp.add_block(
            "periph_c_right",
            Rect::new(bus.x_max(), bus.y(), w - bus.x_max(), bus.height()),
        )?;

        // Vertical fillers in the 4 bank bands: edge margins + 3 strips.
        for (band, y) in [
            (0usize, m),
            (1, m + bh + self.strip_h),
            (2, stripe.y_max()),
            (3, stripe.y_max() + bh + self.strip_h),
        ] {
            let xs = [
                (0.0, m),
                (m + bw, self.strip_v),
                (m + 2.0 * bw + self.strip_v, self.strip_v),
                (m + 3.0 * bw + 2.0 * self.strip_v, self.strip_v),
                (w - m, m),
            ];
            for (vi, (x, width)) in xs.iter().enumerate() {
                fp.add_block(format!("periph_v{band}_{vi}"), Rect::new(*x, y, *width, bh))?;
            }
        }

        fp.require_full_coverage(1e-6)?;
        Ok(fp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_die_is_64_mm2() {
        let g = DramDieGeometry::paper_default();
        let area = g.width * g.height * 1e6;
        assert!((area - 64.0).abs() < 1e-9, "{area}");
    }

    #[test]
    fn floorplan_tiles_the_die() {
        let g = DramDieGeometry::paper_default();
        let fp = g.floorplan().unwrap();
        assert!(fp.require_full_coverage(1e-9).is_ok());
        assert_eq!(
            fp.blocks()
                .iter()
                .filter(|b| b.name().starts_with("bank"))
                .count(),
            16
        );
        assert!(fp.block("tsv_bus").is_some());
    }

    #[test]
    fn banks_dont_touch_center_stripe() {
        let g = DramDieGeometry::paper_default();
        let stripe = g.center_stripe_rect();
        for row in 0..4 {
            for col in 0..4 {
                assert!(!g.bank_rect(row, col).overlaps(&stripe));
            }
        }
    }

    #[test]
    fn channels_are_quadrants() {
        let g = DramDieGeometry::paper_default();
        assert_eq!(g.channel_of_bank(0, 0), 0);
        assert_eq!(g.channel_of_bank(1, 3), 1);
        assert_eq!(g.channel_of_bank(2, 1), 2);
        assert_eq!(g.channel_of_bank(3, 3), 3);
        // 4 banks per channel.
        for ch in 0..4 {
            let count = (0..4)
                .flat_map(|r| (0..4).map(move |c| (r, c)))
                .filter(|&(r, c)| g.channel_of_bank(r, c) == ch)
                .count();
            assert_eq!(count, 4);
        }
    }

    #[test]
    fn vertex_grid_is_symmetric() {
        let g = DramDieGeometry::paper_default();
        let xs = g.vertex_xs();
        let ys = g.vertex_ys();
        for i in 0..5 {
            assert!((xs[i] - (g.width - xs[4 - i])).abs() < 1e-12, "x{i}");
            assert!((ys[i] - (g.height - ys[4 - i])).abs() < 1e-12, "y{i}");
        }
        // Center vertex row passes through the die center.
        assert!((ys[2] - g.height / 2.0).abs() < 1e-12);
    }

    #[test]
    fn bus_sits_inside_center_stripe() {
        let g = DramDieGeometry::paper_default();
        assert!(g.center_stripe_rect().contains_rect(&g.tsv_bus_rect()));
    }
}
