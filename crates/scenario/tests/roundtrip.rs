//! The round-trip law: [`xylem_scenario::printer::print`] is a right
//! inverse of [`xylem_scenario::parser::parse`] up to spans —
//! `parse(print(ir)) == ir` — and printing is a fixpoint
//! (`print(parse(print(ir))) == print(ir)`).
//!
//! Exercised two ways: over every file in the checked-in valid corpus,
//! and over procedurally generated IRs that reach corners the corpus
//! does not (synthetic idents, degenerate sections, unresolved
//! references — legal at parse level, where names are just spelled, not
//! resolved).

use std::path::PathBuf;

use proptest::prelude::*;
use xylem_scenario::ast::{
    BlockDef, DieDef, Dimensions, FloorplanDef, HeatSinkDef, LayerDef, LayerOp, LayerRef,
    MaterialDef, PowerStmt, ProbeDef, ProbeKind, Scenario, StackEntry,
};
use xylem_scenario::parser::parse;
use xylem_scenario::printer::print;
use xylem_scenario::span::{Span, Spanned};

#[test]
fn every_valid_corpus_file_round_trips() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../scenarios/valid");
    let mut checked = 0usize;
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("cannot list {}: {e}", dir.display()))
        .map(|entry| entry.expect("corpus entry reads").path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "stk"))
        .collect();
    paths.sort();
    for path in paths {
        let src = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        let name = path.file_name().expect("has name").to_string_lossy();
        let ir =
            parse(&src).unwrap_or_else(|e| panic!("{name} must parse: {}", e.render(&name, &src)));
        let printed = print(&ir);
        let back = parse(&printed).unwrap_or_else(|e| {
            panic!(
                "{name}: printed text must re-parse: {}\nprinted:\n{printed}",
                e.render("<printed>", &printed)
            )
        });
        assert_eq!(ir, back, "{name}: IR changed across print/parse");
        assert_eq!(printed, print(&back), "{name}: print is not a fixpoint");
        checked += 1;
    }
    assert!(checked >= 12, "only {checked} valid corpus files checked");
}

/// A tiny deterministic generator (xorshift64) so each proptest case is
/// one seed; the vendored proptest has no combinator algebra, so the IR
/// is assembled imperatively.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }

    /// A lexable identifier: `[a-z_]` head, `[a-z0-9_]` tail with
    /// occasional interior hyphens (always followed by an alnum, the
    /// shape the lexer accepts). Keyword collisions get a `_x` suffix.
    fn ident(&mut self) -> Spanned<String> {
        const HEAD: &[u8] = b"abcdefghijklmnopqrstuvwxyz_";
        const TAIL: &[u8] = b"abcdefghij0123456789_";
        let mut s = String::new();
        s.push(HEAD[self.below(HEAD.len() as u64) as usize] as char);
        for _ in 0..self.below(7) {
            if self.chance(15) {
                s.push('-');
            }
            s.push(TAIL[self.below(TAIL.len() as u64) as usize] as char);
        }
        const KEYWORDS: &[&str] = &[
            "material",
            "floorplan",
            "layer",
            "die",
            "stack",
            "dimensions",
            "power",
            "solver",
            "output",
            "heat",
            "sink",
            "block",
            "patch",
            "ttsvs",
            "pillars",
            "uniform",
            "probe",
            "max",
            "mean",
            "at",
            "in",
        ];
        if KEYWORDS.contains(&s.as_str()) {
            s.push_str("_x");
        }
        Spanned::synthetic(s)
    }

    /// A finite f64 across ~24 decades, both signs, including exact
    /// zero. Shortest-repr printing must round-trip all of them.
    fn num(&mut self) -> Spanned<f64> {
        let mantissa = self.below(1_000_000) as f64 / 1000.0;
        let exp = self.below(25) as i32 - 12;
        let mut v = mantissa * 10f64.powi(exp);
        if self.chance(30) {
            v = -v;
        }
        Spanned::synthetic(v)
    }

    fn layer_ref(&mut self) -> LayerRef {
        LayerRef {
            instance: self.chance(50).then(|| self.ident()),
            layer: self.ident(),
        }
    }

    fn scheme(&mut self) -> Spanned<String> {
        // Parse-level round-trip: scheme names are just idents here;
        // only validation knows the real scheme table.
        const SCHEMES: &[&str] = &["base", "bank", "banke", "isoCount", "prior", "nonesuch"];
        Spanned::synthetic(SCHEMES[self.below(SCHEMES.len() as u64) as usize].to_owned())
    }

    fn scenario(&mut self) -> Scenario {
        let mut sc = Scenario::default();
        for _ in 0..1 + self.below(3) {
            sc.materials.push(MaterialDef {
                name: self.ident(),
                conductivity: self.num(),
                capacity: self.num(),
            });
        }
        if self.chance(90) {
            sc.dimensions = Some(Dimensions {
                length: self.num(),
                width: self.num(),
                grid: (self.num(), self.num()),
                span: Span::new(1, 1, 0),
            });
        }
        if self.chance(60) {
            let mut hs = HeatSinkDef::default();
            if self.chance(50) {
                hs.tim = Some((self.num(), self.ident()));
            }
            if self.chance(50) {
                hs.spreader = Some((self.num(), self.num(), self.ident()));
            }
            if self.chance(50) {
                hs.sink = Some((self.num(), self.num(), self.ident()));
            }
            if self.chance(50) {
                hs.convection = Some(self.num());
            }
            if self.chance(50) {
                hs.ambient = Some(self.num());
            }
            if self.chance(50) {
                hs.board = Some(self.num());
            }
            sc.heat_sink = Some(hs);
        }
        for _ in 0..self.below(3) {
            let blocks = (0..self.below(4))
                .map(|_| BlockDef {
                    name: self.ident(),
                    x: self.num(),
                    y: self.num(),
                    w: self.num(),
                    h: self.num(),
                })
                .collect();
            sc.floorplans.push(FloorplanDef {
                name: self.ident(),
                blocks,
            });
        }
        for _ in 0..1 + self.below(3) {
            let ops = (0..self.below(4))
                .map(|_| match self.below(4) {
                    0 => LayerOp::BlockMaterial {
                        block: self.ident(),
                        material: self.ident(),
                    },
                    1 => LayerOp::Patch {
                        label: self.ident(),
                        x: self.num(),
                        y: self.num(),
                        w: self.num(),
                        h: self.num(),
                        material: self.ident(),
                    },
                    2 => LayerOp::Ttsvs {
                        scheme: self.scheme(),
                        material: self.ident(),
                    },
                    _ => LayerOp::Pillars {
                        scheme: self.scheme(),
                        footprint: self.num(),
                        material: self.ident(),
                    },
                })
                .collect();
            sc.layers.push(LayerDef {
                name: self.ident(),
                height: self.num(),
                material: self.ident(),
                floorplan: self.chance(40).then(|| self.ident()),
                ops,
            });
        }
        for _ in 0..self.below(3) {
            sc.dies.push(DieDef {
                name: self.ident(),
                layers: (0..1 + self.below(3)).map(|_| self.ident()).collect(),
                discretization: self.chance(40).then(|| (self.num(), self.num())),
            });
        }
        for _ in 0..self.below(5) {
            sc.stack.push(if self.chance(50) {
                StackEntry::Die {
                    instance: self.ident(),
                    def: self.ident(),
                }
            } else {
                StackEntry::Layer { def: self.ident() }
            });
        }
        for _ in 0..self.below(4) {
            sc.power.push(if self.chance(60) {
                PowerStmt::Uniform {
                    target: self.layer_ref(),
                    watts: self.num(),
                }
            } else {
                PowerStmt::Block {
                    target: self.layer_ref(),
                    block: self.ident(),
                    watts: self.num(),
                }
            });
        }
        sc.solver_steady = self.chance(70);
        for _ in 0..self.below(4) {
            let kind = match self.below(3) {
                0 => ProbeKind::Max,
                1 => ProbeKind::Mean,
                _ => ProbeKind::At(self.num(), self.num()),
            };
            sc.probes.push(ProbeDef {
                name: self.ident(),
                kind,
                target: self.layer_ref(),
            });
        }
        sc
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Synthetic IRs round-trip: print -> parse recovers the IR
    /// exactly (spans ignored by IR equality), and print is a
    /// fixpoint.
    #[test]
    fn generated_irs_round_trip(seed in any::<u64>()) {
        let mut g = Gen(seed | 1);
        let ir = g.scenario();
        let printed = print(&ir);
        let back = match parse(&printed) {
            Ok(b) => b,
            Err(e) => panic!(
                "printed IR must re-parse (seed {seed:#x}): {}\nprinted:\n{printed}",
                e.render("<printed>", &printed)
            ),
        };
        prop_assert_eq!(&ir, &back, "seed {:#x}:\n{}", seed, printed);
        prop_assert_eq!(&printed, &print(&back));
    }
}
