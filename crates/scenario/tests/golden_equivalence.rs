//! The golden equivalence lock: `scenarios/valid/xylem-paper.stk`
//! must describe *exactly* the physics of the hard-wired paper builder
//! (`StackConfig::paper_default(BankEnhanced)`).
//!
//! Layer and material names legitimately differ between the two paths
//! (`dram0.dram_si` vs `dram0_si`), so the comparison is physical, not
//! structural: identical node counts, bit-identical conductance
//! matrices (FNV-1a over CSR), and a bit-identical steady-state solve
//! at the golden suite's 32x32 grid and power assignment.

use std::fs;
use std::path::PathBuf;

use xylem_scenario::digest::{conductance_digest, field_digest};
use xylem_scenario::paper::{PAPER_DRAM_WATTS, PAPER_GRID, PAPER_PROC_WATTS};
use xylem_stack::builder::{BuiltStack, StackConfig};
use xylem_stack::scheme::XylemScheme;
use xylem_thermal::grid::GridSpec;
use xylem_thermal::power::PowerMap;
use xylem_thermal::units::Watts;

fn paper_source() -> String {
    let path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../scenarios/valid/xylem-paper.stk");
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

fn hard_wired() -> BuiltStack {
    StackConfig::paper_default(XylemScheme::BankEnhanced)
        .build()
        .expect("paper builder builds")
}

#[test]
fn node_counts_and_conductances_match_bit_for_bit() {
    let built = hard_wired();
    let grid = GridSpec::new(PAPER_GRID, PAPER_GRID);
    let builder_model = built.stack().discretize(grid).expect("builder discretizes");

    let src = paper_source();
    let lowered = xylem_scenario::compile(&src).unwrap_or_else(|e| {
        panic!(
            "xylem-paper.stk must compile:\n{}",
            e.render("scenarios/valid/xylem-paper.stk", &src)
        )
    });
    assert_eq!(lowered.nx, PAPER_GRID);
    let dsl_model = lowered
        .stack
        .discretize(GridSpec::new(lowered.nx, lowered.ny))
        .expect("DSL stack discretizes");

    assert_eq!(
        builder_model.node_count(),
        dsl_model.node_count(),
        "node counts diverge"
    );
    assert_eq!(
        conductance_digest(&builder_model),
        conductance_digest(&dsl_model),
        "conductance matrices diverge: the .stk lowering no longer \
         reproduces the hard-wired paper stack"
    );
}

#[test]
fn steady_solve_is_bit_identical() {
    let built = hard_wired();
    let grid = GridSpec::new(PAPER_GRID, PAPER_GRID);
    let builder_model = built.stack().discretize(grid).expect("builder discretizes");
    let mut p = PowerMap::zeros(&builder_model);
    p.add_uniform_layer_power(built.proc_metal_layer(), Watts::new(PAPER_PROC_WATTS));
    for &l in built.dram_metal_layers() {
        p.add_uniform_layer_power(l, Watts::new(PAPER_DRAM_WATTS));
    }
    let builder_t = builder_model.steady_state(&p).expect("builder solves");

    let src = paper_source();
    let lowered = xylem_scenario::compile(&src).expect("paper scenario compiles");
    let report = xylem_scenario::run(&lowered).expect("paper scenario solves");

    assert_eq!(
        field_digest(builder_t.raw()),
        report.temperature_digest,
        "steady-state fields diverge bit-for-bit"
    );
    // The scenario's probes read the same physical spots the golden
    // suite reads: the processor hotspot and the bottom DRAM die.
    let proc_hot = builder_t.max_of_layer(built.proc_metal_layer()).get();
    let dram_hot = builder_t
        .max_of_layer(built.bottom_dram_metal_layer())
        .get();
    assert_eq!(report.probes[0].name, "proc_hotspot");
    assert_eq!(report.probes[0].celsius.to_bits(), proc_hot.to_bits());
    assert_eq!(report.probes[1].name, "dram_hotspot");
    assert_eq!(report.probes[1].celsius.to_bits(), dram_hot.to_bits());
}
