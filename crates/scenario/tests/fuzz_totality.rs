//! Parser-totality fuzzing: no input bytes may make the `.stk`
//! pipeline (lex -> parse -> validate -> lower) panic. This is the
//! scenario-DSL analogue of `checkpoint_truncation.rs` in xylem-core:
//! every valid corpus file is cut at *every* byte boundary, mutated at
//! random positions with a deterministic xorshift stream, and finally
//! battered with proptest byte soup. A truncated or corrupted source
//! may still parse (cuts inside trailing comments are legal programs),
//! so the only universal contract is "returns `Ok` or a spanned
//! `Err` — never unwinds".

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

use proptest::prelude::*;

fn corpus_dir(kind: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(format!("../../scenarios/{kind}"))
}

/// Every `.stk` file under `scenarios/<kind>/`, with its file name.
fn corpus(kind: &str) -> Vec<(String, Vec<u8>)> {
    let dir = corpus_dir(kind);
    let mut files: Vec<(String, Vec<u8>)> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("cannot list {}: {e}", dir.display()))
        .map(|entry| entry.expect("corpus entry reads").path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "stk"))
        .map(|p| {
            let name = p
                .file_name()
                .expect("corpus file has a name")
                .to_string_lossy()
                .into_owned();
            let bytes =
                std::fs::read(&p).unwrap_or_else(|e| panic!("cannot read {}: {e}", p.display()));
            (name, bytes)
        })
        .collect();
    files.sort();
    assert!(!files.is_empty(), "empty corpus under {}", dir.display());
    files
}

/// The totality contract: `compile` on this source must return, not
/// unwind. The result value is irrelevant.
fn assert_total(source: &str, label: &str) {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let _ = xylem_scenario::compile(source);
    }));
    assert!(outcome.is_ok(), "{label}: compile panicked");
}

#[test]
fn every_byte_prefix_of_every_corpus_file_is_total() {
    for kind in ["valid", "invalid"] {
        for (name, bytes) in corpus(kind) {
            for cut in 0..=bytes.len() {
                let source = String::from_utf8_lossy(&bytes[..cut]);
                assert_total(&source, &format!("{kind}/{name} cut at byte {cut}"));
            }
        }
    }
}

/// xorshift64: a tiny deterministic PRNG so the mutation stream is
/// identical on every run and every machine (no `Math.random` flake).
struct XorShift64(u64);

impl XorShift64 {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

#[test]
fn random_single_byte_mutations_are_total() {
    let mut rng = XorShift64(0x9e37_79b9_7f4a_7c15);
    for (name, bytes) in corpus("valid") {
        for round in 0..200 {
            let mut mutated = bytes.clone();
            let pos = (rng.next() as usize) % mutated.len();
            let byte = (rng.next() & 0xff) as u8;
            mutated[pos] = byte;
            let source = String::from_utf8_lossy(&mutated);
            assert_total(
                &source,
                &format!("valid/{name} round {round}: byte {pos} -> {byte:#04x}"),
            );
        }
    }
}

#[test]
fn truncation_inside_a_multibyte_char_is_total() {
    // Multi-byte UTF-8 can only legally appear inside comments; cutting
    // the byte stream mid-code-point yields replacement characters
    // after lossy decoding, which the lexer must reject cleanly (or
    // skip, if the cut lands back inside a comment).
    let source = "// λ-config 0°C ±σ\nmaterial si :\n    thermal conductivity 120.0 ; // αβγ\n";
    let bytes = source.as_bytes();
    assert!(
        bytes.len() > source.chars().count(),
        "fixture must actually contain multi-byte characters"
    );
    for cut in 0..=bytes.len() {
        let lossy = String::from_utf8_lossy(&bytes[..cut]);
        assert_total(&lossy, &format!("utf8 cut at byte {cut}"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Raw byte soup, lossily decoded: never panics.
    #[test]
    fn byte_soup_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let source = String::from_utf8_lossy(&bytes);
        assert_total(&source, "byte soup");
    }

    /// Arbitrary well-formed unicode strings: never panic.
    #[test]
    fn unicode_soup_is_total(points in proptest::collection::vec(any::<u32>(), 0..512)) {
        let source: String = points
            .iter()
            .map(|&p| char::from_u32(p % 0x11_0000).unwrap_or('\u{FFFD}'))
            .collect();
        assert_total(&source, "unicode soup");
    }

    /// Structured-ish soup: statements assembled from DSL-adjacent
    /// tokens hit deeper parser paths than raw bytes ever reach.
    #[test]
    fn keyword_soup_is_total(
        picks in proptest::collection::vec(0usize..WORDS.len(), 0..64),
    ) {
        let source = picks
            .iter()
            .map(|&i| WORDS[i])
            .collect::<Vec<_>>()
            .join(" ");
        assert_total(&source, "keyword soup");
    }
}

/// DSL-adjacent token pool for [`keyword_soup_is_total`].
const WORDS: &[&str] = &[
    "material",
    "floorplan",
    "layer",
    "die",
    "stack",
    "dimensions",
    "power",
    "solver",
    "output",
    "heat",
    "sink",
    "chip",
    "grid",
    "block",
    "patch",
    "ttsvs",
    "pillars",
    "uniform",
    "probe",
    "max",
    "mean",
    "at",
    "in",
    "height",
    "thermal",
    "conductivity",
    "volumetric",
    "capacity",
    "steady",
    "si",
    "cu",
    "banke",
    ":",
    ";",
    ",",
    "8e-3",
    "1.5",
    "-2",
    "0",
    "1e308",
    "//",
    "\n",
];
