//! Corpus-driven conformance suite over `scenarios/`.
//!
//! * Every `scenarios/valid/*.stk` must parse, validate, lower, and
//!   solve one steady step to finite temperatures — one test per file.
//! * Every `scenarios/invalid/*.stk` must fail to compile, and its
//!   rendered rustc-style diagnostic must match the checked-in
//!   `.stderr` snapshot byte-for-byte — one test per file.
//! * `scenarios/valid/xylem-paper.stk` is locked to the generator in
//!   `xylem_scenario::paper` (the file is its printed output).
//!
//! Regenerate snapshots and the paper file with
//! `XYLEM_UPDATE_SNAPSHOTS=1 cargo test -p xylem-scenario --test conformance`.
//! Completeness tests fail if a corpus file exists on disk but is not
//! listed here (or vice versa), so adding a scenario without wiring it
//! into the suite is impossible.

use std::collections::BTreeSet;
use std::fs;
use std::path::PathBuf;

fn corpus() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

fn update_snapshots() -> bool {
    std::env::var_os("XYLEM_UPDATE_SNAPSHOTS").is_some_and(|v| v == "1")
}

fn check_valid(file: &str) {
    let path = corpus().join("valid").join(file);
    let src =
        fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let lowered = match xylem_scenario::compile(&src) {
        Ok(l) => l,
        Err(e) => panic!(
            "{file} must compile, but:\n{}",
            e.render(&format!("scenarios/valid/{file}"), &src)
        ),
    };
    let report = xylem_scenario::run(&lowered)
        .unwrap_or_else(|e| panic!("{file} must solve one steady step: {e}"));
    assert!(report.nodes > 0, "{file}: empty model");
    assert!(
        report.global_hotspot_c.is_finite(),
        "{file}: non-finite hotspot"
    );
    for p in &report.probes {
        assert!(
            p.celsius.is_finite(),
            "{file}: probe `{}` read a non-finite temperature",
            p.name
        );
    }
}

fn check_invalid(file: &str) {
    let dir = corpus().join("invalid");
    let path = dir.join(file);
    let src =
        fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let err = match xylem_scenario::compile(&src) {
        Ok(_) => panic!("{file} compiled, but the corpus says it must be rejected"),
        Err(e) => e,
    };
    let rendered = err.render(&format!("scenarios/invalid/{file}"), &src);
    let snap_path = path.with_extension("stderr");
    if update_snapshots() {
        fs::write(&snap_path, &rendered)
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", snap_path.display()));
        return;
    }
    let want = fs::read_to_string(&snap_path).unwrap_or_else(|e| {
        panic!(
            "cannot read snapshot {} ({e}); run with XYLEM_UPDATE_SNAPSHOTS=1 to create it",
            snap_path.display()
        )
    });
    assert_eq!(
        rendered, want,
        "{file}: diagnostic drifted from its .stderr snapshot;\n\
         rendered:\n{rendered}\nif the change is intentional, regenerate with \
         XYLEM_UPDATE_SNAPSHOTS=1"
    );
}

/// Asserts the on-disk corpus and the listed test set are identical.
fn assert_listed(sub: &str, listed: &[&str]) {
    let dir = corpus().join(sub);
    let on_disk: BTreeSet<String> = fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("cannot list {}: {e}", dir.display()))
        .map(|e| {
            e.expect("dir entry")
                .file_name()
                .to_string_lossy()
                .into_owned()
        })
        .filter(|n| n.ends_with(".stk"))
        .collect();
    let listed: BTreeSet<String> = listed.iter().map(|s| (*s).to_string()).collect();
    assert_eq!(
        on_disk, listed,
        "scenarios/{sub} and the conformance test list disagree; \
         add the missing test or delete the stray file"
    );
}

macro_rules! corpus_tests {
    ($modname:ident, $checker:ident, $sub:literal, { $($name:ident => $file:literal,)+ }) => {
        mod $modname {
            $(
                #[test]
                fn $name() {
                    super::$checker($file);
                }
            )+

            #[test]
            fn corpus_is_fully_listed() {
                super::assert_listed($sub, &[$($file),+]);
            }
        }
    };
}

corpus_tests!(valid, check_valid, "valid", {
    asymmetric_floorplan => "asymmetric-floorplan.stk",
    bare_layers_mix => "bare-layers-mix.stk",
    comments_torture => "comments-torture.stk",
    custom_package => "custom-package.stk",
    die_discretization => "die-discretization.stk",
    dram_cube_4high => "dram-cube-4high.stk",
    explicit_patches => "explicit-patches.stk",
    interposer_2p5d => "interposer-2p5d.stk",
    minimal => "minimal.stk",
    pillars_isocount => "pillars-isocount.stk",
    probes => "probes.stk",
    processor_on_top => "processor-on-top.stk",
    two_layer_uniform => "two-layer-uniform.stk",
    xylem_paper => "xylem-paper.stk",
});

corpus_tests!(invalid, check_invalid, "invalid", {
    bad_number => "bad-number.stk",
    block_escapes_outline => "block-escapes-outline.stk",
    discretization_mismatch => "discretization-mismatch.stk",
    duplicate_die_instance => "duplicate-die-instance.stk",
    duplicate_material => "duplicate-material.stk",
    empty_stack => "empty-stack.stk",
    grid_too_large => "grid-too-large.stk",
    missing_dimensions => "missing-dimensions.stk",
    negative_conductivity => "negative-conductivity.stk",
    overlapping_blocks => "overlapping-blocks.stk",
    power_unknown_block => "power-unknown-block.stk",
    probe_unknown_layer => "probe-unknown-layer.stk",
    scheme_wrong_outline => "scheme-wrong-outline.stk",
    unknown_material => "unknown-material.stk",
    unknown_scheme => "unknown-scheme.stk",
    unterminated_statement => "unterminated-statement.stk",
});

/// `xylem-paper.stk` is generated: its bytes must equal the printer's
/// output for the paper IR, so the corpus file can never drift from
/// the builder constants it mirrors.
#[test]
fn xylem_paper_stk_matches_the_generator() {
    let path = corpus().join("valid/xylem-paper.stk");
    let want = xylem_scenario::paper::paper_scenario_text();
    if update_snapshots() {
        fs::write(&path, &want).unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    }
    let got = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); run with XYLEM_UPDATE_SNAPSHOTS=1 to generate it",
            path.display()
        )
    });
    assert_eq!(
        got, want,
        "scenarios/valid/xylem-paper.stk drifted from paper_scenario_text(); \
         regenerate with XYLEM_UPDATE_SNAPSHOTS=1"
    );
}

/// Every invalid-corpus diagnostic ends with a newline and starts with
/// the rustc-style `error: ` prefix — the render contract the CLI
/// relies on.
#[test]
fn invalid_snapshots_have_render_shape() {
    let dir = corpus().join("invalid");
    let mut seen = 0;
    for entry in fs::read_dir(&dir).expect("list invalid corpus") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_some_and(|e| e == "stderr") {
            let text = fs::read_to_string(&path).expect("read snapshot");
            assert!(
                text.starts_with("error: "),
                "{}: missing `error: ` prefix",
                path.display()
            );
            assert!(
                text.contains("--> scenarios/invalid/"),
                "{}: missing span arrow",
                path.display()
            );
            assert!(
                text.ends_with('\n'),
                "{}: no trailing newline",
                path.display()
            );
            seen += 1;
        }
    }
    assert!(
        seen >= 10,
        "expected at least 10 .stderr snapshots, found {seen}"
    );
}
