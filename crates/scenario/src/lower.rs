//! Deterministic lowering: validated scenario IR -> `xylem_thermal::Stack`.
//!
//! This is a determinism-audited hot path (registered in xylem-lint's
//! hot-path zone): layer construction, patch painting, and power/probe
//! binding must be bit-reproducible across runs and thread counts, so
//! everything here iterates IR vectors in source order and looks
//! resolved names up in `BTreeMap`s — no hash containers, no float
//! accumulation, no I/O.
//!
//! TTSV and pillar painting call the *same* exported functions the
//! hard-wired paper builder uses ([`xylem_stack::builder::paint_ttsvs`]
//! / [`paint_pillars`]), which is what makes the golden equivalence
//! lock (`scenarios/valid/xylem-paper.stk` vs
//! `StackConfig::paper_default`) hold bit-for-bit.

use xylem_stack::builder::{paint_pillars, paint_ttsvs};
use xylem_stack::dram_die::DramDieGeometry;
use xylem_stack::scheme::XylemScheme;
use xylem_stack::tsv::TsvTech;
use xylem_thermal::floorplan::Rect;
use xylem_thermal::layer::{Layer, MaterialPatch};
use xylem_thermal::material::{Material, COPPER, TIM};
use xylem_thermal::package::{Package, DEFAULT_AMBIENT_C};
use xylem_thermal::stack::Stack;
use xylem_thermal::units::Celsius;

use crate::ast::{HeatSinkDef, LayerDef, LayerOp, PowerStmt, ProbeKind, Scenario};
use crate::error::ParseError;
use crate::span::{Span, Spanned};
use crate::validate::{check, defaults, Resolved};

/// One lowered power binding, by instantiated-layer index (top first).
#[derive(Debug, Clone, PartialEq)]
pub enum PowerBinding {
    /// Power spread uniformly over a whole layer.
    Uniform {
        /// Stack layer index.
        layer: usize,
        /// Total power, W.
        watts: f64,
    },
    /// Power spread over one floorplan block of a layer.
    Block {
        /// Stack layer index.
        layer: usize,
        /// Floorplan block name.
        block: String,
        /// Total power, W.
        watts: f64,
    },
}

/// Where a lowered probe reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeSite {
    /// Hottest cell of the layer.
    Max,
    /// Area mean of the layer.
    Mean,
    /// A specific grid cell (precomputed from the probe coordinates).
    At {
        /// Cell index along x.
        ix: usize,
        /// Cell index along y.
        iy: usize,
    },
}

/// One lowered output probe.
#[derive(Debug, Clone, PartialEq)]
pub struct LoweredProbe {
    /// Probe name (from the `output` section).
    pub name: String,
    /// Stack layer index.
    pub layer: usize,
    /// What it reads.
    pub site: ProbeSite,
}

/// The result of lowering: a solvable stack plus run bindings.
#[derive(Debug)]
pub struct LoweredScenario {
    /// The assembled thermal stack (layers top first, package attached).
    pub stack: Stack,
    /// Grid cells along x.
    pub nx: usize,
    /// Grid cells along y.
    pub ny: usize,
    /// Chip extent along x, m.
    pub length: f64,
    /// Chip extent along y, m.
    pub width: f64,
    /// Instantiated layer names, top first (index = stack layer index).
    pub layer_names: Vec<String>,
    /// Power bindings, in source order.
    pub power: Vec<PowerBinding>,
    /// Output probes, in source order.
    pub probes: Vec<LoweredProbe>,
}

fn scheme_by_name(n: &Spanned<String>) -> Result<XylemScheme, ParseError> {
    XylemScheme::ALL
        .iter()
        .copied()
        .find(|s| s.name() == n.node)
        .ok_or_else(|| ParseError::new(format!("unknown ttsv scheme `{}`", n.node), n.span))
}

fn or_default(v: &Option<Spanned<f64>>, d: f64) -> f64 {
    match v {
        Some(s) => s.node,
        None => d,
    }
}

/// Lowers a parsed scenario into a solvable stack.
///
/// Validation runs first, so every failure carries the span of the IR
/// node that caused it; lowering itself cannot panic on any input that
/// validates.
///
/// # Errors
///
/// A spanned [`ParseError`] from validation, or (defensively) from a
/// thermal-layer builder rejecting geometry.
pub fn lower(sc: &Scenario) -> Result<LoweredScenario, ParseError> {
    let r = check(sc)?;
    let package = build_package(sc, &r)?;
    let mut layers = Vec::with_capacity(r.instances.len());
    for (name, li) in &r.instances {
        layers.push(build_layer(name, &sc.layers[*li], &r)?);
    }
    let stack_span = sc.stack_span.unwrap_or_default();
    let stack = Stack::builder(r.length, r.width)
        .package(package)
        .layers(layers)
        .build()
        .map_err(|e| ParseError::new(e.to_string(), stack_span))?;

    let layer_names: Vec<String> = r.instances.iter().map(|(n, _)| n.clone()).collect();
    let index_of = |name: &str, span: Span| -> Result<usize, ParseError> {
        layer_names
            .iter()
            .position(|n| n == name)
            .ok_or_else(|| ParseError::new(format!("unknown stack layer `{name}`"), span))
    };

    let mut power = Vec::with_capacity(sc.power.len());
    for p in &sc.power {
        match p {
            PowerStmt::Uniform { target, watts } => {
                power.push(PowerBinding::Uniform {
                    layer: index_of(&target.resolved(), target.span())?,
                    watts: watts.node,
                });
            }
            PowerStmt::Block {
                target,
                block,
                watts,
            } => {
                power.push(PowerBinding::Block {
                    layer: index_of(&target.resolved(), target.span())?,
                    block: block.node.clone(),
                    watts: watts.node,
                });
            }
        }
    }

    let mut probes = Vec::with_capacity(sc.probes.len());
    for p in &sc.probes {
        let layer = index_of(&p.target.resolved(), p.target.span())?;
        let site = match &p.kind {
            ProbeKind::Max => ProbeSite::Max,
            ProbeKind::Mean => ProbeSite::Mean,
            ProbeKind::At(x, y) => {
                let ix = cell_of(x.node, r.length, r.nx);
                let iy = cell_of(y.node, r.width, r.ny);
                ProbeSite::At { ix, iy }
            }
        };
        probes.push(LoweredProbe {
            name: p.name.node.clone(),
            layer,
            site,
        });
    }

    Ok(LoweredScenario {
        stack,
        nx: r.nx,
        ny: r.ny,
        length: r.length,
        width: r.width,
        layer_names,
        power,
        probes,
    })
}

/// The grid cell containing coordinate `x` on an axis of `extent`
/// meters split into `n` cells (boundary-inclusive, end clamped).
fn cell_of(x: f64, extent: f64, n: usize) -> usize {
    let f = (x / extent * n as f64).floor();
    if f < 0.0 {
        0
    } else {
        (f as usize).min(n - 1)
    }
}

fn lookup_material(r: &Resolved, n: &Spanned<String>) -> Result<Material, ParseError> {
    r.materials
        .get(&n.node)
        .cloned()
        .ok_or_else(|| ParseError::new(format!("unknown material `{}`", n.node), n.span))
}

fn build_package(sc: &Scenario, r: &Resolved) -> Result<Package, ParseError> {
    let default_def = HeatSinkDef::default();
    let hs = match &sc.heat_sink {
        Some(h) => h,
        None => &default_def,
    };
    let (tim_t, tim_m) = match &hs.tim {
        Some((t, m)) => (t.node, lookup_material(r, m)?),
        None => (defaults::TIM_THICKNESS, TIM.clone()),
    };
    let (sp_side, sp_t, sp_m) = match &hs.spreader {
        Some((s, t, m)) => (s.node, t.node, lookup_material(r, m)?),
        None => (defaults::SPREADER.0, defaults::SPREADER.1, COPPER.clone()),
    };
    let (sk_side, sk_t, sk_m) = match &hs.sink {
        Some((s, t, m)) => (s.node, t.node, lookup_material(r, m)?),
        None => (defaults::SINK.0, defaults::SINK.1, COPPER.clone()),
    };
    let ambient_c = or_default(&hs.ambient, DEFAULT_AMBIENT_C);
    let ambient_span = match &hs.ambient {
        Some(a) => a.span,
        None => Span::default(),
    };
    let ambient =
        Celsius::try_new(ambient_c).map_err(|e| ParseError::new(e.to_string(), ambient_span))?;
    Ok(Package::one_dimensional(r.length, r.width)
        .with_tim(tim_t, tim_m)
        .with_spreader(sp_side, sp_t, sp_m)
        .with_sink(sk_side, sk_t, sk_m)
        .with_convection_resistance(or_default(&hs.convection, defaults::CONVECTION))
        .with_ambient(ambient)
        .with_board_resistance(Some(or_default(&hs.board, defaults::BOARD))))
}

fn build_layer(name: &str, proto: &LayerDef, r: &Resolved) -> Result<Layer, ParseError> {
    let mut layer = Layer::uniform(
        name,
        proto.height.node,
        lookup_material(r, &proto.material)?,
    );
    if let Some(f) = &proto.floorplan {
        let fp =
            r.floorplans.get(&f.node).cloned().ok_or_else(|| {
                ParseError::new(format!("unknown floorplan `{}`", f.node), f.span)
            })?;
        layer = layer.with_floorplan(fp);
    }
    let geom = DramDieGeometry::paper_default();
    let tech = TsvTech::thermal();
    for op in &proto.ops {
        match op {
            LayerOp::BlockMaterial { block, material } => {
                let m = lookup_material(r, material)?;
                layer
                    .set_block_material(&block.node, m)
                    .map_err(|e| ParseError::new(e.to_string(), block.span))?;
            }
            LayerOp::Patch {
                label,
                x,
                y,
                w,
                h,
                material,
            } => {
                let m = lookup_material(r, material)?;
                let rect = Rect::new(x.node, y.node, w.node, h.node);
                layer
                    .add_patch(MaterialPatch::new(label.node.clone(), rect, m))
                    .map_err(|e| ParseError::new(e.to_string(), label.span))?;
            }
            LayerOp::Ttsvs { scheme, material } => {
                let s = scheme_by_name(scheme)?;
                let m = lookup_material(r, material)?;
                let sites = s.sites(&geom);
                paint_ttsvs(&mut layer, &sites, &tech, &m)
                    .map_err(|e| ParseError::new(e.to_string(), scheme.span))?;
            }
            LayerOp::Pillars {
                scheme,
                footprint,
                material,
            } => {
                let s = scheme_by_name(scheme)?;
                let m = lookup_material(r, material)?;
                let sites = s.sites(&geom);
                let grow = ((footprint.node - tech.diameter) / 2.0).max(0.0);
                paint_pillars(&mut layer, &sites, &tech, &m, grow)
                    .map_err(|e| ParseError::new(e.to_string(), scheme.span))?;
            }
        }
    }
    Ok(layer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    const TWO_LAYER: &str = "\
material si :
    thermal conductivity 120.0 ;
    volumetric heat capacity 1.75e6 ;
material cu :
    thermal conductivity 400.0 ;
    volumetric heat capacity 3.4e6 ;
dimensions :
    chip length 8e-3 , width 8e-3 ;
    grid 8 , 8 ;
floorplan halves :
    block west at 0 , 0 size 4e-3 , 8e-3 ;
    block east at 4e-3 , 0 size 4e-3 , 8e-3 ;
layer body :
    height 100e-6 ;
    material si ;
    floorplan halves ;
    block east material cu ;
layer lid :
    height 2e-6 ;
    material cu ;
stack :
    layer lid ;
    layer body ;
power :
    uniform body 10.0 ;
    block body west 2.5 ;
solver :
    steady ;
output :
    probe hot max in body ;
    probe corner at 1e-3 , 1e-3 in body ;
";

    #[test]
    fn lowers_layers_in_stack_order() {
        let l = lower(&parse(TWO_LAYER).expect("parses")).expect("lowers");
        assert_eq!(l.layer_names, vec!["lid".to_string(), "body".to_string()]);
        assert_eq!(l.stack.layers().len(), 2);
        assert_eq!(l.stack.layers()[0].name(), "lid");
        assert_eq!(l.stack.layers()[1].thickness(), 100e-6);
        assert_eq!(
            l.power,
            vec![
                PowerBinding::Uniform {
                    layer: 1,
                    watts: 10.0
                },
                PowerBinding::Block {
                    layer: 1,
                    block: "west".to_string(),
                    watts: 2.5
                }
            ]
        );
        assert_eq!(l.probes[1].site, ProbeSite::At { ix: 1, iy: 1 });
    }

    #[test]
    fn block_override_applies_to_floorplan_block() {
        let l = lower(&parse(TWO_LAYER).expect("parses")).expect("lowers");
        let body = &l.stack.layers()[1];
        // Block 1 ("east") overridden to copper, block 0 untouched.
        assert!(body.block_material(0).is_none());
        assert_eq!(
            body.block_material(1).map(|m| m.conductivity().get()),
            Some(400.0)
        );
    }

    #[test]
    fn default_package_matches_paper_values() {
        let l = lower(&parse(TWO_LAYER).expect("parses")).expect("lowers");
        let p = l.stack.package();
        assert_eq!(p.tim_thickness(), defaults::TIM_THICKNESS);
        assert_eq!(p.spreader_side(), defaults::SPREADER.0);
        assert_eq!(p.sink_side(), defaults::SINK.0);
        assert_eq!(p.convection_resistance(), defaults::CONVECTION);
        assert_eq!(p.ambient(), DEFAULT_AMBIENT_C);
        assert_eq!(p.board_resistance(), Some(defaults::BOARD));
    }

    #[test]
    fn cell_of_clamps_boundaries() {
        assert_eq!(cell_of(0.0, 8e-3, 8), 0);
        assert_eq!(cell_of(8e-3, 8e-3, 8), 7);
        assert_eq!(cell_of(4.1e-3, 8e-3, 8), 4);
    }
}
