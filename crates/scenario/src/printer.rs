//! The canonical `.stk` pretty-printer.
//!
//! Locked by the round-trip property `parse(print(ir)) == ir` (see
//! `tests/roundtrip.rs`): every IR the parser can produce prints back
//! to text that re-parses to the same IR. Numbers use Rust's shortest
//! `{}` representation, which `str::parse::<f64>()` recovers
//! bit-exactly, so printing never loses physical precision.

use std::fmt::Write as _;

use crate::ast::{LayerOp, LayerRef, PowerStmt, ProbeKind, Scenario, StackEntry};

fn num(v: f64) -> String {
    format!("{v}")
}

fn layer_ref(r: &LayerRef) -> String {
    match &r.instance {
        Some(i) => format!("{}.{}", i.node, r.layer.node),
        None => r.layer.node.clone(),
    }
}

/// Renders a scenario IR as canonical `.stk` text.
#[must_use]
pub fn print(sc: &Scenario) -> String {
    let mut o = String::new();
    for m in &sc.materials {
        let _ = writeln!(o, "material {} :", m.name.node);
        let _ = writeln!(o, "    thermal conductivity {} ;", num(m.conductivity.node));
        let _ = writeln!(o, "    volumetric heat capacity {} ;", num(m.capacity.node));
        o.push('\n');
    }
    if let Some(d) = &sc.dimensions {
        let _ = writeln!(o, "dimensions :");
        let _ = writeln!(
            o,
            "    chip length {} , width {} ;",
            num(d.length.node),
            num(d.width.node)
        );
        let _ = writeln!(
            o,
            "    grid {} , {} ;",
            num(d.grid.0.node),
            num(d.grid.1.node)
        );
        o.push('\n');
    }
    if let Some(hs) = &sc.heat_sink {
        let _ = writeln!(o, "heat sink :");
        if let Some((t, m)) = &hs.tim {
            let _ = writeln!(o, "    tim thickness {} material {} ;", num(t.node), m.node);
        }
        if let Some((s, t, m)) = &hs.spreader {
            let _ = writeln!(
                o,
                "    spreader side {} , thickness {} , material {} ;",
                num(s.node),
                num(t.node),
                m.node
            );
        }
        if let Some((s, t, m)) = &hs.sink {
            let _ = writeln!(
                o,
                "    sink side {} , thickness {} , material {} ;",
                num(s.node),
                num(t.node),
                m.node
            );
        }
        if let Some(r) = &hs.convection {
            let _ = writeln!(o, "    convection resistance {} ;", num(r.node));
        }
        if let Some(a) = &hs.ambient {
            let _ = writeln!(o, "    ambient temperature {} ;", num(a.node));
        }
        if let Some(b) = &hs.board {
            let _ = writeln!(o, "    board resistance {} ;", num(b.node));
        }
        o.push('\n');
    }
    for f in &sc.floorplans {
        let _ = writeln!(o, "floorplan {} :", f.name.node);
        for b in &f.blocks {
            let _ = writeln!(
                o,
                "    block {} at {} , {} size {} , {} ;",
                b.name.node,
                num(b.x.node),
                num(b.y.node),
                num(b.w.node),
                num(b.h.node)
            );
        }
        o.push('\n');
    }
    for l in &sc.layers {
        let _ = writeln!(o, "layer {} :", l.name.node);
        let _ = writeln!(o, "    height {} ;", num(l.height.node));
        let _ = writeln!(o, "    material {} ;", l.material.node);
        if let Some(f) = &l.floorplan {
            let _ = writeln!(o, "    floorplan {} ;", f.node);
        }
        for op in &l.ops {
            match op {
                LayerOp::BlockMaterial { block, material } => {
                    let _ = writeln!(o, "    block {} material {} ;", block.node, material.node);
                }
                LayerOp::Patch {
                    label,
                    x,
                    y,
                    w,
                    h,
                    material,
                } => {
                    let _ = writeln!(
                        o,
                        "    patch {} at {} , {} size {} , {} material {} ;",
                        label.node,
                        num(x.node),
                        num(y.node),
                        num(w.node),
                        num(h.node),
                        material.node
                    );
                }
                LayerOp::Ttsvs { scheme, material } => {
                    let _ = writeln!(o, "    ttsvs {} material {} ;", scheme.node, material.node);
                }
                LayerOp::Pillars {
                    scheme,
                    footprint,
                    material,
                } => {
                    let _ = writeln!(
                        o,
                        "    pillars {} footprint {} material {} ;",
                        scheme.node,
                        num(footprint.node),
                        material.node
                    );
                }
            }
        }
        o.push('\n');
    }
    for d in &sc.dies {
        let _ = writeln!(o, "die {} :", d.name.node);
        for l in &d.layers {
            let _ = writeln!(o, "    layer {} ;", l.node);
        }
        if let Some((nx, ny)) = &d.discretization {
            let _ = writeln!(
                o,
                "    discretization {} , {} ;",
                num(nx.node),
                num(ny.node)
            );
        }
        o.push('\n');
    }
    if sc.stack_span.is_some() || !sc.stack.is_empty() {
        let _ = writeln!(o, "stack :");
        for e in &sc.stack {
            match e {
                StackEntry::Die { instance, def } => {
                    let _ = writeln!(o, "    die {} {} ;", instance.node, def.node);
                }
                StackEntry::Layer { def } => {
                    let _ = writeln!(o, "    layer {} ;", def.node);
                }
            }
        }
        o.push('\n');
    }
    if !sc.power.is_empty() {
        let _ = writeln!(o, "power :");
        for p in &sc.power {
            match p {
                PowerStmt::Uniform { target, watts } => {
                    let _ = writeln!(o, "    uniform {} {} ;", layer_ref(target), num(watts.node));
                }
                PowerStmt::Block {
                    target,
                    block,
                    watts,
                } => {
                    let _ = writeln!(
                        o,
                        "    block {} {} {} ;",
                        layer_ref(target),
                        block.node,
                        num(watts.node)
                    );
                }
            }
        }
        o.push('\n');
    }
    if sc.solver_steady {
        let _ = writeln!(o, "solver :");
        let _ = writeln!(o, "    steady ;");
        o.push('\n');
    }
    if !sc.probes.is_empty() {
        let _ = writeln!(o, "output :");
        for p in &sc.probes {
            match &p.kind {
                ProbeKind::Max => {
                    let _ = writeln!(
                        o,
                        "    probe {} max in {} ;",
                        p.name.node,
                        layer_ref(&p.target)
                    );
                }
                ProbeKind::Mean => {
                    let _ = writeln!(
                        o,
                        "    probe {} mean in {} ;",
                        p.name.node,
                        layer_ref(&p.target)
                    );
                }
                ProbeKind::At(x, y) => {
                    let _ = writeln!(
                        o,
                        "    probe {} at {} , {} in {} ;",
                        p.name.node,
                        num(x.node),
                        num(y.node),
                        layer_ref(&p.target)
                    );
                }
            }
        }
        o.push('\n');
    }
    o
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn shortest_repr_round_trips_bits() {
        for v in [
            8e-3,
            0.26,
            1.75e6,
            450e-6,
            -0.0,
            f64::MIN_POSITIVE,
            1.000_000_000_000_000_2,
        ] {
            let s = format!("{v}");
            let back: f64 = s.parse().expect("parses");
            assert_eq!(v.to_bits(), back.to_bits(), "{v} -> {s}");
        }
    }

    #[test]
    fn print_parse_is_identity_on_a_small_scenario() {
        let src = "\
material si :
    thermal conductivity 148.0 ;
    volumetric heat capacity 1.66e6 ;
dimensions :
    chip length 8e-3 , width 8e-3 ;
    grid 4 , 4 ;
heat sink :
    convection resistance 0.3 ;
layer body :
    height 1e-4 ;
    material si ;
stack :
    layer body ;
power :
    uniform body 5.0 ;
solver :
    steady ;
output :
    probe p mean in body ;
";
        let ir = parse(src).expect("parses");
        let printed = print(&ir);
        let back = parse(&printed).expect("printed text parses");
        assert_eq!(ir, back, "printed:\n{printed}");
        // And printing is a fixpoint.
        assert_eq!(printed, print(&back));
    }
}
