//! Source locations for the `.stk` scenario format.
//!
//! Every token, IR node, and diagnostic carries a [`Span`] — a 1-based
//! line/column plus a character length — so parse *and* validation
//! errors can point at the exact offending text, rustc-style.

/// A half-open source region on a single line: `len` characters
/// starting at column `col` of line `line` (both 1-based).
///
/// Multi-line constructs are spanned by their opening token; the rule
/// keeps rendering trivial (one source line, one caret run) without
/// giving up precision anywhere it matters — the offending token is
/// always on the first line of its construct.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// 1-based source line. Zero only for the synthetic default span.
    pub line: u32,
    /// 1-based column, counted in characters (not bytes).
    pub col: u32,
    /// Width of the region in characters; rendered as that many carets
    /// (minimum one).
    pub len: u32,
}

impl Span {
    /// A span covering `len` characters at `line:col`.
    #[must_use]
    pub fn new(line: u32, col: u32, len: u32) -> Span {
        Span { line, col, len }
    }

    /// A span merged with `other`: same start, length extended to
    /// `other`'s end when both sit on the same line (otherwise `self`
    /// unchanged — the opening token carries the blame).
    #[must_use]
    pub fn to(self, other: Span) -> Span {
        if self.line == other.line && other.col >= self.col {
            Span {
                len: other.col + other.len - self.col,
                ..self
            }
        } else {
            self
        }
    }
}

/// An IR node paired with the span it was parsed from.
///
/// Equality deliberately ignores the span: two IRs are "the same
/// scenario" when their *content* matches, which is exactly the
/// round-trip property the pretty-printer is locked against
/// (`parse(print(ir)) == ir`, spans necessarily differing).
#[derive(Debug, Clone, Copy)]
pub struct Spanned<T> {
    /// The parsed value.
    pub node: T,
    /// Where it came from.
    pub span: Span,
}

impl<T> Spanned<T> {
    /// Wraps `node` with `span`.
    pub fn new(node: T, span: Span) -> Spanned<T> {
        Spanned { node, span }
    }

    /// A spanless node (synthetic IR built in code, not parsed).
    pub fn synthetic(node: T) -> Spanned<T> {
        Spanned {
            node,
            span: Span::default(),
        }
    }
}

impl<T: PartialEq> PartialEq for Spanned<T> {
    fn eq(&self, other: &Self) -> bool {
        self.node == other.node
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spanned_equality_ignores_spans() {
        let a = Spanned::new(42u32, Span::new(1, 2, 3));
        let b = Spanned::new(42u32, Span::new(9, 9, 9));
        let c = Spanned::new(43u32, Span::new(1, 2, 3));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn span_merge_extends_on_same_line() {
        let a = Span::new(3, 5, 2);
        let b = Span::new(3, 10, 4);
        assert_eq!(a.to(b), Span::new(3, 5, 9));
        // Cross-line merge keeps the opener.
        assert_eq!(a.to(Span::new(4, 1, 1)), a);
    }
}
