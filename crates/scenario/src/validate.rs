//! Semantic validation of a parsed [`Scenario`].
//!
//! Everything the lowering stage would otherwise discover by panicking
//! is checked here, against the *spans* of the offending IR nodes:
//! reference resolution (materials, floorplans, layers, dies, blocks),
//! value domains (unit newtypes, geometry positivity), grid caps, and
//! the package's geometric ordering (chip <= spreader <= sink).
//!
//! Validation also resolves the scenario into a [`Resolved`] context —
//! interned materials, built floorplans, and the instantiated stack
//! layer list — which is exactly what [`crate::lower`] consumes, so the
//! checks and the lowering can never drift apart.

use std::collections::BTreeMap;

use xylem_stack::dram_die::DramDieGeometry;
use xylem_stack::scheme::XylemScheme;
use xylem_thermal::floorplan::Floorplan;
use xylem_thermal::material::Material;
use xylem_thermal::units::{Celsius, VolumetricHeatCapacity, WattsPerMeterKelvin};

use crate::ast::{LayerOp, LayerRef, PowerStmt, ProbeKind, Scenario, StackEntry};
use crate::error::ParseError;
use crate::span::{Span, Spanned};

/// Hard cap on grid cells per layer (`nx * ny`), an OOM guard: a parse
/// input must not be able to request gigabyte allocations.
pub const MAX_GRID_CELLS: usize = 1 << 20;

/// Hard cap on each grid axis.
pub const MAX_GRID_AXIS: usize = 4096;

/// Package defaults used when the `heat sink` section omits a field.
/// These mirror `Package::default_for_die` (paper Table 1), so a
/// scenario with no `heat sink` section lowers to the paper package.
pub(crate) mod defaults {
    /// TIM thickness, m.
    pub const TIM_THICKNESS: f64 = 50e-6;
    /// IHS (side, thickness), m.
    pub const SPREADER: (f64, f64) = (3e-2, 1e-3);
    /// Sink base (side, thickness), m.
    pub const SINK: (f64, f64) = (6e-2, 7e-3);
    /// Sink-to-ambient convection resistance, K/W.
    pub const CONVECTION: f64 = 0.26;
    /// Secondary board-path resistance, K/W.
    pub const BOARD: f64 = 20.0;
}

/// The validated, resolved context handed to the lowering stage.
#[derive(Debug)]
pub(crate) struct Resolved {
    /// Interned materials by name.
    pub materials: BTreeMap<String, Material>,
    /// Built (containment/overlap-checked) floorplans by name.
    pub floorplans: BTreeMap<String, Floorplan>,
    /// Chip extent along x, m.
    pub length: f64,
    /// Chip extent along y, m.
    pub width: f64,
    /// Grid cells along x.
    pub nx: usize,
    /// Grid cells along y.
    pub ny: usize,
    /// Instantiated stack layers, top first:
    /// (instantiated name, index into `Scenario::layers`).
    pub instances: Vec<(String, usize)>,
}

/// Validates a scenario and resolves its references.
///
/// # Errors
///
/// The first semantic problem found, as a spanned [`ParseError`].
pub fn validate(sc: &Scenario) -> Result<(), ParseError> {
    check(sc).map(|_| ())
}

fn err(message: impl Into<String>, span: Span) -> ParseError {
    ParseError::new(message, span)
}

fn positive(value: &Spanned<f64>, what: &str) -> Result<f64, ParseError> {
    if value.node.is_finite() && value.node > 0.0 {
        Ok(value.node)
    } else {
        Err(
            err(format!("{what} must be positive and finite"), value.span)
                .with_note(format!("got `{}`", value.node)),
        )
    }
}

fn finite(value: &Spanned<f64>, what: &str) -> Result<f64, ParseError> {
    if value.node.is_finite() {
        Ok(value.node)
    } else {
        Err(err(format!("{what} must be finite"), value.span))
    }
}

fn grid_axis(value: &Spanned<f64>, what: &str) -> Result<usize, ParseError> {
    let v = value.node;
    let integral = v.is_finite() && v.fract().abs() <= 0.0;
    if !integral || !(1.0..=MAX_GRID_AXIS as f64).contains(&v) {
        return Err(err(
            format!("{what} must be an integer between 1 and {MAX_GRID_AXIS}"),
            value.span,
        )
        .with_note(format!("got `{v}`")));
    }
    Ok(v as usize)
}

fn names_note(kind: &str, names: &[&str]) -> String {
    if names.is_empty() {
        format!("no {kind} are defined")
    } else {
        format!("defined {kind}: {}", names.join(", "))
    }
}

fn scheme_of(name: &Spanned<String>) -> Result<XylemScheme, ParseError> {
    XylemScheme::ALL
        .iter()
        .copied()
        .find(|s| s.name() == name.node)
        .ok_or_else(|| {
            err(format!("unknown ttsv scheme `{}`", name.node), name.span).with_note(format!(
                "schemes: {}",
                XylemScheme::ALL.map(|s| s.name()).join(", ")
            ))
        })
}

pub(crate) fn check(sc: &Scenario) -> Result<Resolved, ParseError> {
    // --- dimensions -----------------------------------------------------
    let dims = sc.dimensions.as_ref().ok_or_else(|| {
        err(
            "scenario is missing a `dimensions` section",
            Span::new(1, 1, 1),
        )
    })?;
    let length = positive(&dims.length, "chip length")?;
    let width = positive(&dims.width, "chip width")?;
    let nx = grid_axis(&dims.grid.0, "grid size")?;
    let ny = grid_axis(&dims.grid.1, "grid size")?;
    if nx * ny > MAX_GRID_CELLS {
        return Err(err(
            format!("grid {nx} x {ny} exceeds the {MAX_GRID_CELLS}-cell limit"),
            dims.grid.0.span.to(dims.grid.1.span),
        ));
    }

    // --- materials ------------------------------------------------------
    let mut materials: BTreeMap<String, Material> = BTreeMap::new();
    for m in &sc.materials {
        if materials.contains_key(&m.name.node) {
            return Err(err(
                format!("material `{}` is defined twice", m.name.node),
                m.name.span,
            ));
        }
        let k = positive(&m.conductivity, "thermal conductivity")?;
        let c = positive(&m.capacity, "volumetric heat capacity")?;
        let k =
            WattsPerMeterKelvin::try_new(k).map_err(|e| err(e.to_string(), m.conductivity.span))?;
        let c =
            VolumetricHeatCapacity::try_new(c).map_err(|e| err(e.to_string(), m.capacity.span))?;
        materials.insert(
            m.name.node.clone(),
            Material::new(m.name.node.clone(), k, c),
        );
    }
    let material_names: Vec<&str> = sc.materials.iter().map(|m| m.name.node.as_str()).collect();
    let lookup_material = |name: &Spanned<String>| -> Result<Material, ParseError> {
        materials.get(&name.node).cloned().ok_or_else(|| {
            err(format!("unknown material `{}`", name.node), name.span)
                .with_note(names_note("materials", &material_names))
        })
    };

    // --- heat sink ------------------------------------------------------
    let mut spreader_side = defaults::SPREADER.0;
    let mut sink_side = defaults::SINK.0;
    let mut spreader_span = dims.span;
    let mut sink_span = dims.span;
    if let Some(hs) = &sc.heat_sink {
        if let Some((th, m)) = &hs.tim {
            positive(th, "tim thickness")?;
            lookup_material(m)?;
        }
        if let Some((side, th, m)) = &hs.spreader {
            spreader_side = positive(side, "spreader side")?;
            spreader_span = side.span;
            positive(th, "spreader thickness")?;
            lookup_material(m)?;
        }
        if let Some((side, th, m)) = &hs.sink {
            sink_side = positive(side, "sink side")?;
            sink_span = side.span;
            positive(th, "sink thickness")?;
            lookup_material(m)?;
        }
        if let Some(r) = &hs.convection {
            positive(r, "convection resistance")?;
        }
        if let Some(a) = &hs.ambient {
            finite(a, "ambient temperature")?;
            Celsius::try_new(a.node).map_err(|e| err(e.to_string(), a.span))?;
        }
        if let Some(r) = &hs.board {
            positive(r, "board resistance")?;
        }
    }
    if length > spreader_side || width > spreader_side {
        return Err(err(
            format!(
                "chip ({:.1} x {:.1} mm) does not fit under the spreader ({:.1} mm)",
                length * 1e3,
                width * 1e3,
                spreader_side * 1e3
            ),
            spreader_span,
        ));
    }
    if spreader_side > sink_side {
        return Err(err(
            format!(
                "spreader ({:.1} mm) is larger than the sink ({:.1} mm)",
                spreader_side * 1e3,
                sink_side * 1e3
            ),
            sink_span,
        ));
    }

    // --- floorplans -----------------------------------------------------
    let mut floorplans: BTreeMap<String, Floorplan> = BTreeMap::new();
    for f in &sc.floorplans {
        if floorplans.contains_key(&f.name.node) {
            return Err(err(
                format!("floorplan `{}` is defined twice", f.name.node),
                f.name.span,
            ));
        }
        let mut fp = Floorplan::new(length, width);
        for b in &f.blocks {
            finite(&b.x, "block x")?;
            finite(&b.y, "block y")?;
            positive(&b.w, "block width")?;
            positive(&b.h, "block height")?;
            let rect = xylem_thermal::floorplan::Rect::new(b.x.node, b.y.node, b.w.node, b.h.node);
            fp.add_block(b.name.node.clone(), rect)
                .map_err(|e| err(e.to_string(), b.name.span))?;
        }
        floorplans.insert(f.name.node.clone(), fp);
    }
    let floorplan_names: Vec<&str> = sc.floorplans.iter().map(|f| f.name.node.as_str()).collect();

    // --- layer prototypes -----------------------------------------------
    let paper_geom = DramDieGeometry::paper_default();
    let paper_outline = length.to_bits() == paper_geom.width.to_bits()
        && width.to_bits() == paper_geom.height.to_bits();
    let mut layer_index: BTreeMap<&str, usize> = BTreeMap::new();
    for (i, l) in sc.layers.iter().enumerate() {
        if layer_index.insert(l.name.node.as_str(), i).is_some() {
            return Err(err(
                format!("layer `{}` is defined twice", l.name.node),
                l.name.span,
            ));
        }
        positive(&l.height, "layer height")?;
        lookup_material(&l.material)?;
        let fp = match &l.floorplan {
            Some(f) => Some(floorplans.get(&f.node).ok_or_else(|| {
                err(format!("unknown floorplan `{}`", f.node), f.span)
                    .with_note(names_note("floorplans", &floorplan_names))
            })?),
            None => None,
        };
        for op in &l.ops {
            match op {
                LayerOp::BlockMaterial { block, material } => {
                    let fp = fp.ok_or_else(|| {
                        err(
                            format!(
                                "layer `{}` has no floorplan, so `block` cannot be used",
                                l.name.node
                            ),
                            block.span,
                        )
                    })?;
                    if fp.block(&block.node).is_none() {
                        let blocks: Vec<&str> = fp.blocks().iter().map(|b| b.name()).collect();
                        return Err(err(format!("unknown block `{}`", block.node), block.span)
                            .with_note(names_note("blocks", &blocks)));
                    }
                    lookup_material(material)?;
                }
                LayerOp::Patch {
                    label,
                    x,
                    y,
                    w,
                    h,
                    material,
                } => {
                    finite(x, "patch x")?;
                    finite(y, "patch y")?;
                    positive(w, "patch width")?;
                    positive(h, "patch height")?;
                    lookup_material(material)?;
                    // Mirror Layer::add_patch: containment enforced only
                    // when a floorplan is attached (grown pillar patches
                    // may legitimately hang over the die edge otherwise).
                    if fp.is_some() {
                        let outline = xylem_thermal::floorplan::Rect::new(0.0, 0.0, length, width);
                        let rect =
                            xylem_thermal::floorplan::Rect::new(x.node, y.node, w.node, h.node);
                        if !outline.contains_rect(&rect) {
                            return Err(err(
                                format!(
                                    "patch `{}` escapes the {:.1} x {:.1} mm chip outline",
                                    label.node,
                                    length * 1e3,
                                    width * 1e3
                                ),
                                label.span,
                            ));
                        }
                    }
                }
                LayerOp::Ttsvs { scheme, material } => {
                    scheme_of(scheme)?;
                    lookup_material(material)?;
                    if !paper_outline {
                        return Err(err(
                            format!(
                                "ttsv scheme `{}` requires the paper die outline ({} x {} m)",
                                scheme.node, paper_geom.width, paper_geom.height
                            ),
                            scheme.span,
                        )
                        .with_note("scheme site coordinates are fixed to the Wide I/O die"));
                    }
                }
                LayerOp::Pillars {
                    scheme,
                    footprint,
                    material,
                } => {
                    scheme_of(scheme)?;
                    positive(footprint, "pillar footprint")?;
                    // Bounded so the grown patch arithmetic in lowering
                    // can never overflow to non-finite coordinates.
                    if footprint.node > length.max(width) {
                        return Err(err(
                            format!(
                                "pillar footprint {} m exceeds the {} x {} m chip outline",
                                footprint.node, length, width
                            ),
                            footprint.span,
                        ));
                    }
                    lookup_material(material)?;
                    if !paper_outline {
                        return Err(err(
                            format!(
                                "ttsv scheme `{}` requires the paper die outline ({} x {} m)",
                                scheme.node, paper_geom.width, paper_geom.height
                            ),
                            scheme.span,
                        )
                        .with_note("scheme site coordinates are fixed to the Wide I/O die"));
                    }
                }
            }
        }
    }
    let layer_names: Vec<&str> = sc.layers.iter().map(|l| l.name.node.as_str()).collect();

    // --- die prototypes -------------------------------------------------
    let mut die_index: BTreeMap<&str, usize> = BTreeMap::new();
    for (i, d) in sc.dies.iter().enumerate() {
        if die_index.insert(d.name.node.as_str(), i).is_some() {
            return Err(err(
                format!("die `{}` is defined twice", d.name.node),
                d.name.span,
            ));
        }
        if d.layers.is_empty() {
            return Err(err(
                format!("die `{}` has no layers", d.name.node),
                d.name.span,
            ));
        }
        let mut seen: Vec<&str> = Vec::new();
        for l in &d.layers {
            if !layer_index.contains_key(l.node.as_str()) {
                return Err(err(format!("unknown layer `{}`", l.node), l.span)
                    .with_note(names_note("layers", &layer_names)));
            }
            if seen.contains(&l.node.as_str()) {
                return Err(err(
                    format!("layer `{}` appears twice in die `{}`", l.node, d.name.node),
                    l.span,
                ));
            }
            seen.push(l.node.as_str());
        }
        if let Some((dx, dy)) = &d.discretization {
            let dnx = grid_axis(dx, "die discretization")?;
            let dny = grid_axis(dy, "die discretization")?;
            if dnx != nx || dny != ny {
                return Err(err(
                    format!(
                        "die discretization {dnx} x {dny} does not match the global grid {nx} x {ny}"
                    ),
                    dx.span.to(dy.span),
                )
                .with_note("the solver discretizes the whole stack on one grid"));
            }
        }
    }
    let die_names: Vec<&str> = sc.dies.iter().map(|d| d.name.node.as_str()).collect();

    // --- stack ----------------------------------------------------------
    let stack_span = sc
        .stack_span
        .ok_or_else(|| err("scenario is missing a `stack` section", Span::new(1, 1, 1)))?;
    if sc.stack.is_empty() {
        return Err(err("`stack` section has no entries", stack_span));
    }
    let mut instances: Vec<(String, usize)> = Vec::new();
    let mut instance_names: Vec<&str> = Vec::new();
    for entry in &sc.stack {
        match entry {
            StackEntry::Die { instance, def } => {
                let di = *die_index.get(def.node.as_str()).ok_or_else(|| {
                    err(format!("unknown die `{}`", def.node), def.span)
                        .with_note(names_note("dies", &die_names))
                })?;
                if instance_names.contains(&instance.node.as_str()) {
                    return Err(err(
                        format!("die instance `{}` is used twice", instance.node),
                        instance.span,
                    ));
                }
                instance_names.push(instance.node.as_str());
                for l in &sc.dies[di].layers {
                    let li = layer_index.get(l.node.as_str()).copied().ok_or_else(|| {
                        // Die prototypes were fully checked above.
                        err(format!("unknown layer `{}`", l.node), l.span)
                    })?;
                    instances.push((format!("{}.{}", instance.node, l.node), li));
                }
            }
            StackEntry::Layer { def } => {
                let li = layer_index.get(def.node.as_str()).copied().ok_or_else(|| {
                    err(format!("unknown layer `{}`", def.node), def.span)
                        .with_note(names_note("layers", &layer_names))
                })?;
                if instances.iter().any(|(n, _)| n == &def.node) {
                    return Err(err(
                        format!("layer `{}` is instantiated twice in the stack", def.node),
                        def.span,
                    ));
                }
                instances.push((def.node.clone(), li));
            }
        }
    }

    let resolve_target = |target: &LayerRef| -> Result<usize, ParseError> {
        let name = target.resolved();
        instances
            .iter()
            .position(|(n, _)| n == &name)
            .ok_or_else(|| {
                let names: Vec<&str> = instances.iter().map(|(n, _)| n.as_str()).collect();
                err(format!("unknown stack layer `{name}`"), target.span())
                    .with_note(names_note("stack layers", &names))
            })
    };

    // --- power ----------------------------------------------------------
    for p in &sc.power {
        match p {
            PowerStmt::Uniform { target, watts } => {
                resolve_target(target)?;
                if !(watts.node.is_finite() && watts.node >= 0.0) {
                    return Err(err("power must be finite and non-negative", watts.span)
                        .with_note(format!("got `{}`", watts.node)));
                }
            }
            PowerStmt::Block {
                target,
                block,
                watts,
            } => {
                let pos = resolve_target(target)?;
                let proto = &sc.layers[instances[pos].1];
                let fp = proto
                    .floorplan
                    .as_ref()
                    .and_then(|f| floorplans.get(&f.node))
                    .ok_or_else(|| {
                        err(
                            format!(
                                "layer `{}` has no floorplan, so block power cannot bind",
                                instances[pos].0
                            ),
                            block.span,
                        )
                    })?;
                if fp.block(&block.node).is_none() {
                    let blocks: Vec<&str> = fp.blocks().iter().map(|b| b.name()).collect();
                    return Err(err(format!("unknown block `{}`", block.node), block.span)
                        .with_note(names_note("blocks", &blocks)));
                }
                if !(watts.node.is_finite() && watts.node >= 0.0) {
                    return Err(err("power must be finite and non-negative", watts.span)
                        .with_note(format!("got `{}`", watts.node)));
                }
            }
        }
    }

    // --- solver ---------------------------------------------------------
    if !sc.solver_steady {
        return Err(
            err("scenario is missing a `solver` section", Span::new(1, 1, 1))
                .with_note("add `solver :` with `steady ;`"),
        );
    }

    // --- probes ---------------------------------------------------------
    let mut probe_names: Vec<&str> = Vec::new();
    for p in &sc.probes {
        if probe_names.contains(&p.name.node.as_str()) {
            return Err(err(
                format!("probe `{}` is defined twice", p.name.node),
                p.name.span,
            ));
        }
        probe_names.push(p.name.node.as_str());
        resolve_target(&p.target)?;
        if let ProbeKind::At(x, y) = &p.kind {
            finite(x, "probe x")?;
            finite(y, "probe y")?;
            if !(0.0..=length).contains(&x.node) || !(0.0..=width).contains(&y.node) {
                return Err(err(
                    format!(
                        "probe point ({}, {}) is outside the {} x {} m chip",
                        x.node, y.node, length, width
                    ),
                    x.span.to(y.span),
                ));
            }
        }
    }

    Ok(Resolved {
        materials,
        floorplans,
        length,
        width,
        nx,
        ny,
        instances,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn minimal() -> String {
        "\
material si :
    thermal conductivity 120.0 ;
    volumetric heat capacity 1.75e6 ;
dimensions :
    chip length 8e-3 , width 8e-3 ;
    grid 8 , 8 ;
layer body :
    height 100e-6 ;
    material si ;
stack :
    layer body ;
power :
    uniform body 10.0 ;
solver :
    steady ;
"
        .to_string()
    }

    #[test]
    fn minimal_scenario_validates() {
        let sc = parse(&minimal()).expect("parses");
        let r = check(&sc).expect("validates");
        assert_eq!(r.nx, 8);
        assert_eq!(r.instances, vec![("body".to_string(), 0)]);
    }

    #[test]
    fn unknown_material_is_caught_with_note() {
        let src = minimal().replace("material si ;", "material copper ;");
        let e = validate(&parse(&src).expect("parses")).expect_err("rejected");
        assert_eq!(e.message, "unknown material `copper`");
        assert_eq!(e.note.as_deref(), Some("defined materials: si"));
    }

    #[test]
    fn grid_cell_cap_is_enforced() {
        let src = minimal().replace("grid 8 , 8 ;", "grid 2048 , 2048 ;");
        let e = validate(&parse(&src).expect("parses")).expect_err("rejected");
        assert!(e.message.contains("exceeds"), "{}", e.message);
        let src = minimal().replace("grid 8 , 8 ;", "grid 8.5 , 8 ;");
        let e = validate(&parse(&src).expect("parses")).expect_err("rejected");
        assert!(e.message.contains("integer"), "{}", e.message);
    }

    #[test]
    fn ttsvs_require_paper_outline() {
        let src = minimal()
            .replace("chip length 8e-3", "chip length 9e-3")
            .replace(
                "material si ;\n",
                "material si ;\n    ttsvs banke material si ;\n",
            );
        let e = validate(&parse(&src).expect("parses")).expect_err("rejected");
        assert!(e.message.contains("paper die outline"), "{}", e.message);
    }

    #[test]
    fn die_discretization_must_match_grid() {
        let src = minimal().replace(
            "stack :\n",
            "die d :\n    layer body ;\n    discretization 16 , 16 ;\nstack :\n",
        );
        let e = validate(&parse(&src).expect("parses")).expect_err("rejected");
        assert!(
            e.message.contains("does not match the global grid"),
            "{}",
            e.message
        );
    }

    #[test]
    fn spreader_ordering_is_checked() {
        let src = minimal().replace(
            "layer body :",
            "heat sink :\n    spreader side 7e-2 , thickness 1e-3 , material si ;\nlayer body :",
        );
        let e = validate(&parse(&src).expect("parses")).expect_err("rejected");
        assert!(e.message.contains("larger than the sink"), "{}", e.message);
    }
}
