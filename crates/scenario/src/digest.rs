//! Bit-exact digests over lowered thermal models.
//!
//! The golden equivalence lock ("`xylem-paper.stk` lowers to the same
//! physics as the hard-wired builder") cannot use struct equality —
//! layer and material *names* legitimately differ between the two
//! paths. What must agree bit-for-bit is the discretized physics: the
//! conductance matrix and the solved temperature field. These FNV-1a
//! digests are the comparison currency, and also what the subprocess
//! thread-determinism test prints.

use xylem_thermal::model::ThermalModel;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(hash: u64, bytes: &[u8]) -> u64 {
    let mut h = hash;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a over the exact bit patterns of a float slice.
///
/// Two fields digest equal iff they are bit-identical (including the
/// sign of zero; NaNs digest by payload).
#[must_use]
pub fn field_digest(values: &[f64]) -> u64 {
    let mut h = FNV_OFFSET;
    for v in values {
        h = fnv1a(h, &v.to_bits().to_le_bytes());
    }
    h
}

/// FNV-1a over the model's assembled conductance matrix in CSR order:
/// for every row, the column indices and the coefficient bit patterns.
///
/// Captures node count, sparsity structure, and every conductance
/// value, so any geometric or material difference between two lowered
/// stacks shows up here.
#[must_use]
pub fn conductance_digest(model: &ThermalModel) -> u64 {
    let csr = model.csr();
    let mut h = FNV_OFFSET;
    h = fnv1a(h, &(csr.n() as u64).to_le_bytes());
    for i in 0..csr.n() {
        let (cols, vals) = csr.row(i);
        for (c, v) in cols.iter().zip(vals) {
            h = fnv1a(h, &c.to_le_bytes());
            h = fnv1a(h, &v.to_bits().to_le_bytes());
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_digest_is_bit_sensitive() {
        let a = field_digest(&[1.0, 2.0, 3.0]);
        assert_eq!(a, field_digest(&[1.0, 2.0, 3.0]));
        assert_ne!(a, field_digest(&[1.0, 2.0, 3.0 + 1e-15]));
        assert_ne!(a, field_digest(&[1.0, 2.0]));
        assert_ne!(field_digest(&[0.0]), field_digest(&[-0.0]));
    }

    #[test]
    fn empty_field_digests_to_offset() {
        assert_eq!(field_digest(&[]), FNV_OFFSET);
    }
}
