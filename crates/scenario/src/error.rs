//! The scenario failure domain: one error type for lexing, parsing,
//! validation, and lowering, always carrying a [`Span`] and rendering
//! a rustc-style report against the original source.

use crate::span::Span;

/// A scenario error: what went wrong, where, and (optionally) a short
/// inline help note rendered after the caret run.
///
/// Every stage of the pipeline — lexer, parser, validator, lowering —
/// produces this same shape, so a caller needs exactly one rendering
/// path no matter how deep the failure happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// One-line description (the `error:` headline).
    pub message: String,
    /// The offending source region.
    pub span: Span,
    /// Optional note rendered inline after the carets.
    pub note: Option<String>,
}

impl ParseError {
    /// An error at `span` with no inline note.
    #[must_use]
    pub fn new(message: impl Into<String>, span: Span) -> ParseError {
        ParseError {
            message: message.into(),
            span,
            note: None,
        }
    }

    /// Attaches the inline note rendered after the caret run.
    #[must_use]
    pub fn with_note(mut self, note: impl Into<String>) -> ParseError {
        self.note = Some(note.into());
        self
    }

    /// Renders the rustc-style report:
    ///
    /// ```text
    /// error: unknown material `coppr`
    ///   --> scenarios/invalid/unknown-material.stk:7:15
    ///    |
    ///  7 |     material coppr ;
    ///    |              ^^^^^ defined materials: copper, silicon
    /// ```
    ///
    /// `path` is whatever the caller wants printed (typically the
    /// relative path); `source` must be the text the error was produced
    /// from, so the quoted line matches the span.
    #[must_use]
    pub fn render(&self, path: &str, source: &str) -> String {
        let line_no = self.span.line.max(1);
        let text = source.lines().nth(line_no as usize - 1).unwrap_or_default();
        let gutter = line_no.to_string();
        let pad = " ".repeat(gutter.len());
        let mut out = String::new();
        out.push_str(&format!("error: {}\n", self.message));
        out.push_str(&format!(
            "{pad}--> {path}:{}:{}\n",
            line_no,
            self.span.col.max(1)
        ));
        out.push_str(&format!("{pad} |\n"));
        out.push_str(&format!("{gutter} | {text}\n"));
        // Caret run under the span, counted in characters. Columns past
        // the end of the line (e.g. "unexpected end of file") still get
        // one caret, just past the last character.
        let col = self.span.col.max(1) as usize - 1;
        let lead: String = text
            .chars()
            .take(col)
            .map(|c| if c == '\t' { '\t' } else { ' ' })
            .collect();
        let carets = "^".repeat(self.span.len.max(1) as usize);
        match &self.note {
            Some(n) => out.push_str(&format!("{pad} | {lead}{carets} {n}\n")),
            None => out.push_str(&format!("{pad} | {lead}{carets}\n")),
        }
        out
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} at line {}, column {}",
            self.message, self.span.line, self.span.col
        )
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_quotes_line_and_points_at_span() {
        let src = "material cu :\n    thermal conductivity -4 ;\n";
        let e = ParseError::new("thermal conductivity must be positive", Span::new(2, 26, 2))
            .with_note("got -4");
        let r = e.render("x.stk", src);
        assert!(r.contains("error: thermal conductivity must be positive\n"));
        assert!(r.contains("--> x.stk:2:26\n"));
        assert!(r.contains("2 |     thermal conductivity -4 ;\n"));
        assert!(r.contains("^^ got -4\n"));
    }

    #[test]
    fn render_survives_out_of_range_lines() {
        let e = ParseError::new("unexpected end of file", Span::new(99, 1, 1));
        let r = e.render("x.stk", "one line only\n");
        assert!(r.contains("error: unexpected end of file"));
        assert!(r.contains("99 | \n"));
    }
}
