//! The paper scenario, expressed as `.stk` text.
//!
//! [`paper_scenario_ir`] rebuilds the full Table-1 evaluation stack —
//! 8 Wide I/O DRAM dies over the 4-core processor, `banke` TTSVs,
//! default package — as a scenario IR whose every number is pulled from
//! the same constants the hard-wired builder
//! (`xylem_stack::builder::StackConfig::paper_default`) uses:
//! material tables, die geometries, paper thicknesses. Printing it
//! through [`crate::printer::print`] yields
//! `scenarios/valid/xylem-paper.stk`, and because the shortest `{}`
//! float representation round-trips bit-exactly, lowering the printed
//! text produces a stack whose conductance matrix and steady solve are
//! bit-identical to the builder's (the golden equivalence lock in
//! `tests/golden_equivalence.rs`).
//!
//! The corpus file is locked to this function: the conformance test
//! regenerates it under `XYLEM_UPDATE_SNAPSHOTS=1` and fails if the
//! checked-in bytes drift.

use xylem_stack::builder::StackConfig;
use xylem_stack::scheme::XylemScheme;
use xylem_thermal::floorplan::Floorplan;
use xylem_thermal::material::{
    self, electrical_bus_d2d, shorted_pillar_d2d, Material, COPPER, D2D_AVERAGE, DRAM_METAL,
    PROC_METAL, SILICON, TIM,
};
use xylem_thermal::package::Package;

use crate::ast::{
    BlockDef, DieDef, Dimensions, FloorplanDef, HeatSinkDef, LayerDef, LayerOp, LayerRef,
    MaterialDef, PowerStmt, ProbeDef, ProbeKind, Scenario, StackEntry,
};
use crate::span::{Span, Spanned};

/// Grid used by the golden suite (32x32, `tests/golden_paper_claims.rs`).
pub const PAPER_GRID: usize = 32;

/// Processor power of the golden suite, W.
pub const PAPER_PROC_WATTS: f64 = 20.0;

/// Per-DRAM-metal-layer power of the golden suite, W.
pub const PAPER_DRAM_WATTS: f64 = 0.4;

/// Number of DRAM dies in the paper stack.
pub const PAPER_DRAM_DIES: usize = 8;

fn s<T>(node: T) -> Spanned<T> {
    Spanned::synthetic(node)
}

fn mat(name: &str, m: &Material) -> MaterialDef {
    MaterialDef {
        name: s(name.to_string()),
        conductivity: s(m.conductivity().get()),
        capacity: s(m.volumetric_heat_capacity().get()),
    }
}

fn floorplan_def(name: &str, fp: &Floorplan) -> FloorplanDef {
    FloorplanDef {
        name: s(name.to_string()),
        blocks: fp
            .blocks()
            .iter()
            .map(|b| BlockDef {
                name: s(b.name().to_string()),
                x: s(b.rect().x()),
                y: s(b.rect().y()),
                w: s(b.rect().width()),
                h: s(b.rect().height()),
            })
            .collect(),
    }
}

fn die_ref(instance: &str, layer: &str) -> LayerRef {
    LayerRef {
        instance: Some(s(instance.to_string())),
        layer: s(layer.to_string()),
    }
}

/// The paper evaluation stack as a scenario IR (synthetic spans).
///
/// Every numeric value is read out of the hard-wired configuration, so
/// this IR — and the text printed from it — tracks the builder by
/// construction.
#[must_use]
pub fn paper_scenario_ir() -> Scenario {
    let cfg = StackConfig::paper_default(XylemScheme::BankEnhanced);
    let g = &cfg.dram_geometry;
    let pg = &cfg.proc_geometry;
    let scheme_name = cfg.scheme.name();
    let dram_fp = g.floorplan().expect("paper DRAM floorplan is valid");
    let proc_fp = pg.floorplan().expect("paper processor floorplan is valid");
    let bus = g.tsv_bus_rect();

    let materials = vec![
        mat("si", &SILICON),
        mat("cu", &COPPER),
        mat("dram_metal", &DRAM_METAL),
        mat("proc_metal", &PROC_METAL),
        mat("d2d_avg", &D2D_AVERAGE),
        mat("tim", &TIM),
        mat("tsv_bus_si", &material::tsv_bus()),
        mat("ebus_d2d", &electrical_bus_d2d(cfg.d2d_thickness)),
        mat("pillar_d2d", &shorted_pillar_d2d(cfg.d2d_thickness)),
    ];

    let dimensions = Some(Dimensions {
        length: s(g.width),
        width: s(g.height),
        grid: (s(PAPER_GRID as f64), s(PAPER_GRID as f64)),
        span: Span::default(),
    });

    let p: &Package = &cfg.package;
    let heat_sink = Some(HeatSinkDef {
        tim: Some((s(p.tim_thickness()), s("tim".to_string()))),
        spreader: Some((
            s(p.spreader_side()),
            s(p.spreader_thickness()),
            s("cu".to_string()),
        )),
        sink: Some((s(p.sink_side()), s(p.sink_thickness()), s("cu".to_string()))),
        convection: Some(s(p.convection_resistance())),
        ambient: Some(s(p.ambient())),
        board: p.board_resistance().map(s),
        span: Span::default(),
    });

    let floorplans = vec![
        floorplan_def("dram", &dram_fp),
        floorplan_def("proc", &proc_fp),
    ];

    let tsv_bus_override = LayerOp::BlockMaterial {
        block: s("tsv_bus".to_string()),
        material: s("tsv_bus_si".to_string()),
    };
    let ttsvs = LayerOp::Ttsvs {
        scheme: s(scheme_name.to_string()),
        material: s("cu".to_string()),
    };
    let layers = vec![
        LayerDef {
            name: s("dram_si".to_string()),
            height: s(cfg.die_thickness),
            material: s("si".to_string()),
            floorplan: Some(s("dram".to_string())),
            ops: vec![tsv_bus_override.clone(), ttsvs.clone()],
        },
        LayerDef {
            name: s("dram_metal".to_string()),
            height: s(cfg.dram_metal_thickness),
            material: s("dram_metal".to_string()),
            floorplan: Some(s("dram".to_string())),
            ops: vec![],
        },
        LayerDef {
            name: s("d2d".to_string()),
            height: s(cfg.d2d_thickness),
            material: s("d2d_avg".to_string()),
            floorplan: None,
            // Order matters: the builder adds the electrical-bus patch
            // before the pillar patches, and lowering preserves source
            // order, so the printed text must list the bus first.
            ops: vec![
                LayerOp::Patch {
                    label: s("electrical-bus".to_string()),
                    x: s(bus.x()),
                    y: s(bus.y()),
                    w: s(bus.width()),
                    h: s(bus.height()),
                    material: s("ebus_d2d".to_string()),
                },
                LayerOp::Pillars {
                    scheme: s(scheme_name.to_string()),
                    footprint: s(cfg.pillar_footprint),
                    material: s("pillar_d2d".to_string()),
                },
            ],
        },
        LayerDef {
            name: s("proc_si".to_string()),
            height: s(cfg.die_thickness),
            material: s("si".to_string()),
            floorplan: Some(s("proc".to_string())),
            ops: vec![tsv_bus_override, ttsvs],
        },
        LayerDef {
            name: s("proc_metal".to_string()),
            height: s(cfg.proc_metal_thickness),
            material: s("proc_metal".to_string()),
            floorplan: Some(s("proc".to_string())),
            ops: vec![],
        },
    ];

    let dies = vec![
        DieDef {
            name: s("dram".to_string()),
            layers: vec![
                s("dram_si".to_string()),
                s("dram_metal".to_string()),
                s("d2d".to_string()),
            ],
            discretization: Some((s(PAPER_GRID as f64), s(PAPER_GRID as f64))),
        },
        DieDef {
            name: s("cpu".to_string()),
            layers: vec![s("proc_si".to_string()), s("proc_metal".to_string())],
            discretization: None,
        },
    ];

    let mut stack = Vec::with_capacity(PAPER_DRAM_DIES + 1);
    for die in 0..PAPER_DRAM_DIES {
        stack.push(StackEntry::Die {
            instance: s(format!("dram{die}")),
            def: s("dram".to_string()),
        });
    }
    stack.push(StackEntry::Die {
        instance: s("cpu".to_string()),
        def: s("cpu".to_string()),
    });

    let mut power = vec![PowerStmt::Uniform {
        target: die_ref("cpu", "proc_metal"),
        watts: s(PAPER_PROC_WATTS),
    }];
    for die in 0..PAPER_DRAM_DIES {
        power.push(PowerStmt::Uniform {
            target: die_ref(&format!("dram{die}"), "dram_metal"),
            watts: s(PAPER_DRAM_WATTS),
        });
    }

    let bottom_dram = format!("dram{}", PAPER_DRAM_DIES - 1);
    let probes = vec![
        ProbeDef {
            name: s("proc_hotspot".to_string()),
            kind: ProbeKind::Max,
            target: die_ref("cpu", "proc_metal"),
        },
        ProbeDef {
            name: s("dram_hotspot".to_string()),
            kind: ProbeKind::Max,
            target: die_ref(&bottom_dram, "dram_metal"),
        },
        ProbeDef {
            name: s("proc_mean".to_string()),
            kind: ProbeKind::Mean,
            target: die_ref("cpu", "proc_metal"),
        },
    ];

    Scenario {
        materials,
        dimensions,
        heat_sink,
        floorplans,
        layers,
        dies,
        stack,
        stack_span: Some(Span::default()),
        power,
        solver_steady: true,
        probes,
    }
}

/// The canonical text of `scenarios/valid/xylem-paper.stk`.
#[must_use]
pub fn paper_scenario_text() -> String {
    let mut text = String::from(
        "// The Xylem paper evaluation stack (Table 1): 8 Wide I/O DRAM dies\n\
         // over a 4-core processor, banke TTSVs, default package.\n\
         // GENERATED from xylem_scenario::paper::paper_scenario_text() --\n\
         // regenerate with XYLEM_UPDATE_SNAPSHOTS=1, do not hand-edit.\n\n",
    );
    text.push_str(&crate::printer::print(&paper_scenario_ir()));
    text
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use crate::parser::parse;

    #[test]
    fn paper_text_parses_to_the_paper_ir() {
        let ir = paper_scenario_ir();
        let parsed = parse(&paper_scenario_text()).expect("paper text parses");
        assert_eq!(ir, parsed);
    }

    #[test]
    fn paper_scenario_lowers_to_26_layers() {
        let l = lower(&paper_scenario_ir()).expect("paper scenario lowers");
        assert_eq!(l.layer_names.len(), 3 * PAPER_DRAM_DIES + 2);
        assert_eq!(l.nx, PAPER_GRID);
        assert_eq!(l.layer_names[0], "dram0.dram_si");
        assert_eq!(l.layer_names[25], "cpu.proc_metal");
        assert_eq!(l.power.len(), 1 + PAPER_DRAM_DIES);
        assert_eq!(l.probes.len(), 3);
    }
}
