//! The scenario IR: a faithful, span-carrying representation of one
//! `.stk` file, produced by [`crate::parser`], checked by
//! [`crate::validate`], lowered by [`crate::lower`], and printed back
//! by [`crate::printer`].
//!
//! Equality ignores spans (see [`Spanned`]), which is what makes the
//! round-trip law `parse(print(ir)) == ir` expressible directly.

use crate::span::{Span, Spanned};

/// One `material` section: SI conductivity (W/m-K) and volumetric heat
/// capacity (J/m^3-K). Note the units deliberately differ from
/// 3D-ICE's per-micrometer convention: everything in this workspace is
/// strict SI.
#[derive(Debug, Clone, PartialEq)]
pub struct MaterialDef {
    /// Material name (referenced by layers, patches, and the package).
    pub name: Spanned<String>,
    /// `thermal conductivity <num> ;`, W/m-K.
    pub conductivity: Spanned<f64>,
    /// `volumetric heat capacity <num> ;`, J/m^3-K.
    pub capacity: Spanned<f64>,
}

/// The `dimensions` section: chip outline (m) and global grid.
#[derive(Debug, Clone)]
pub struct Dimensions {
    /// Chip extent along x, m.
    pub length: Spanned<f64>,
    /// Chip extent along y, m.
    pub width: Spanned<f64>,
    /// Discretization cells along x and y.
    pub grid: (Spanned<f64>, Spanned<f64>),
    /// Span of the `dimensions` keyword.
    pub span: Span,
}

// Spans are positions, not content: ignore them, like `Spanned` does,
// so the round-trip law `parse(print(ir)) == ir` holds.
impl PartialEq for Dimensions {
    fn eq(&self, other: &Self) -> bool {
        self.length == other.length && self.width == other.width && self.grid == other.grid
    }
}

/// One optional statement of the `heat sink` section. Anything left
/// `None` falls back to the paper package default.
#[derive(Debug, Clone, Default)]
pub struct HeatSinkDef {
    /// `tim thickness <m> material <name> ;`
    pub tim: Option<(Spanned<f64>, Spanned<String>)>,
    /// `spreader side <m> , thickness <m> , material <name> ;`
    pub spreader: Option<(Spanned<f64>, Spanned<f64>, Spanned<String>)>,
    /// `sink side <m> , thickness <m> , material <name> ;`
    pub sink: Option<(Spanned<f64>, Spanned<f64>, Spanned<String>)>,
    /// `convection resistance <K/W> ;`
    pub convection: Option<Spanned<f64>>,
    /// `ambient temperature <C> ;`
    pub ambient: Option<Spanned<f64>>,
    /// `board resistance <K/W> ;` (secondary path; absent = default).
    pub board: Option<Spanned<f64>>,
    /// Span of the `heat` keyword.
    pub span: Span,
}

impl PartialEq for HeatSinkDef {
    fn eq(&self, other: &Self) -> bool {
        self.tim == other.tim
            && self.spreader == other.spreader
            && self.sink == other.sink
            && self.convection == other.convection
            && self.ambient == other.ambient
            && self.board == other.board
    }
}

/// One floorplan block: `block <name> at <x> , <y> size <w> , <h> ;`.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockDef {
    /// Block name (power bindings and block-material overrides key on it).
    pub name: Spanned<String>,
    /// Lower-left corner, m.
    pub x: Spanned<f64>,
    /// Lower-left corner, m.
    pub y: Spanned<f64>,
    /// Extent, m.
    pub w: Spanned<f64>,
    /// Extent, m.
    pub h: Spanned<f64>,
}

/// A named floorplan (outline is implicitly the chip dimensions).
#[derive(Debug, Clone, PartialEq)]
pub struct FloorplanDef {
    /// Floorplan name (referenced by layers).
    pub name: Spanned<String>,
    /// The blocks, in declaration order.
    pub blocks: Vec<BlockDef>,
}

/// One body statement of a `layer` section, kept in source order
/// because patch painting order is part of the deterministic-lowering
/// contract.
#[derive(Debug, Clone, PartialEq)]
pub enum LayerOp {
    /// `block <name> material <mat> ;` — override one floorplan
    /// block's material.
    BlockMaterial {
        /// The floorplan block.
        block: Spanned<String>,
        /// The replacement material.
        material: Spanned<String>,
    },
    /// `patch <label> at <x> , <y> size <w> , <h> material <mat> ;`
    Patch {
        /// Patch label (diagnostic only).
        label: Spanned<String>,
        /// Lower-left corner, m.
        x: Spanned<f64>,
        /// Lower-left corner, m.
        y: Spanned<f64>,
        /// Extent, m.
        w: Spanned<f64>,
        /// Extent, m.
        h: Spanned<f64>,
        /// Patch material.
        material: Spanned<String>,
    },
    /// `ttsvs <scheme> material <mat> ;` — paint the named Xylem TTSV
    /// scheme's sites (paper Wide I/O geometry) into this layer.
    Ttsvs {
        /// Scheme name (`base`, `bank`, `banke`, `isoCount`, `prior`).
        scheme: Spanned<String>,
        /// Via material (copper in the paper).
        material: Spanned<String>,
    },
    /// `pillars <scheme> footprint <m> material <mat> ;` — paint the
    /// aligned-and-shorted dummy-microbump clusters of the scheme into
    /// this (D2D) layer.
    Pillars {
        /// Scheme name.
        scheme: Spanned<String>,
        /// Cluster side length, m (paper calibration: 450 um).
        footprint: Spanned<f64>,
        /// Effective pillar material.
        material: Spanned<String>,
    },
}

/// A layer prototype. Instantiated by dies or directly by the stack.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerDef {
    /// Prototype name.
    pub name: Spanned<String>,
    /// `height <m> ;`
    pub height: Spanned<f64>,
    /// `material <name> ;` — the bulk material.
    pub material: Spanned<String>,
    /// `floorplan <name> ;` — optional block structure.
    pub floorplan: Option<Spanned<String>>,
    /// Body statements, in source order.
    pub ops: Vec<LayerOp>,
}

/// A die prototype: an ordered run of layer prototypes (top first).
#[derive(Debug, Clone, PartialEq)]
pub struct DieDef {
    /// Prototype name.
    pub name: Spanned<String>,
    /// `layer <proto> ;` entries, top first.
    pub layers: Vec<Spanned<String>>,
    /// `discretization <nx> , <ny> ;` — per-die grid. The current
    /// solver discretizes the whole stack on one grid, so this must
    /// agree with the global grid (validation enforces it).
    pub discretization: Option<(Spanned<f64>, Spanned<f64>)>,
}

/// One entry of the `stack` section, top (heat-sink side) first.
#[derive(Debug, Clone, PartialEq)]
pub enum StackEntry {
    /// `die <instance> <prototype> ;` — instantiate a die; its layers
    /// are named `<instance>.<layer>`.
    Die {
        /// Instance name.
        instance: Spanned<String>,
        /// Die prototype.
        def: Spanned<String>,
    },
    /// `layer <prototype> ;` — instantiate one bare layer under its
    /// own name.
    Layer {
        /// Layer prototype.
        def: Spanned<String>,
    },
}

/// A reference to an instantiated layer: `instance.layer` for a die
/// layer, a bare prototype name for a bare stack layer.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerRef {
    /// Die instance, if qualified.
    pub instance: Option<Spanned<String>>,
    /// Layer (prototype) name.
    pub layer: Spanned<String>,
}

impl LayerRef {
    /// The instantiated layer name this reference resolves to.
    #[must_use]
    pub fn resolved(&self) -> String {
        match &self.instance {
            Some(i) => format!("{}.{}", i.node, self.layer.node),
            None => self.layer.node.clone(),
        }
    }

    /// The full span of the reference.
    #[must_use]
    pub fn span(&self) -> Span {
        match &self.instance {
            Some(i) => i.span.to(self.layer.span),
            None => self.layer.span,
        }
    }
}

/// One `power` statement.
#[derive(Debug, Clone, PartialEq)]
pub enum PowerStmt {
    /// `uniform <layerref> <watts> ;` — spread evenly over the layer.
    Uniform {
        /// Target layer.
        target: LayerRef,
        /// Total power, W.
        watts: Spanned<f64>,
    },
    /// `block <layerref> <block> <watts> ;` — spread evenly over one
    /// floorplan block of the layer (the power-trace binding).
    Block {
        /// Target layer.
        target: LayerRef,
        /// Floorplan block.
        block: Spanned<String>,
        /// Total power, W.
        watts: Spanned<f64>,
    },
}

/// What a probe reads.
#[derive(Debug, Clone, PartialEq)]
pub enum ProbeKind {
    /// `max in <layerref>` — hottest cell of the layer.
    Max,
    /// `mean in <layerref>` — area mean of the layer.
    Mean,
    /// `at <x> , <y> in <layerref>` — the cell containing (x, y).
    At(Spanned<f64>, Spanned<f64>),
}

/// One `output` probe.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeDef {
    /// Probe name (printed in `xylem run` output).
    pub name: Spanned<String>,
    /// What it reads.
    pub kind: ProbeKind,
    /// Which layer.
    pub target: LayerRef,
}

/// A whole parsed `.stk` scenario.
#[derive(Debug, Clone, Default)]
pub struct Scenario {
    /// `material` sections, in order.
    pub materials: Vec<MaterialDef>,
    /// The `dimensions` section (required; validation enforces).
    pub dimensions: Option<Dimensions>,
    /// The `heat sink` section, if present.
    pub heat_sink: Option<HeatSinkDef>,
    /// `floorplan` sections, in order.
    pub floorplans: Vec<FloorplanDef>,
    /// `layer` sections, in order.
    pub layers: Vec<LayerDef>,
    /// `die` sections, in order.
    pub dies: Vec<DieDef>,
    /// The `stack` section entries, top first.
    pub stack: Vec<StackEntry>,
    /// Span of the `stack` keyword (for whole-stack diagnostics).
    pub stack_span: Option<Span>,
    /// `power` statements, in order.
    pub power: Vec<PowerStmt>,
    /// Whether a `solver : steady ;` section appeared (the only mode).
    pub solver_steady: bool,
    /// `output` probes, in order.
    pub probes: Vec<ProbeDef>,
}

impl PartialEq for Scenario {
    fn eq(&self, other: &Self) -> bool {
        self.materials == other.materials
            && self.dimensions == other.dimensions
            && self.heat_sink == other.heat_sink
            && self.floorplans == other.floorplans
            && self.layers == other.layers
            && self.dies == other.dies
            && self.stack == other.stack
            && self.power == other.power
            && self.solver_steady == other.solver_steady
            && self.probes == other.probes
    }
}
