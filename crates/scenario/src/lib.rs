//! `xylem-scenario`: the `.stk` scenario DSL.
//!
//! A hand-rolled, zero-dependency parser for a 3D-ICE-inspired stack
//! description format, lowered through a validated IR into the
//! `xylem-thermal`/`xylem-stack` builders. One `.stk` file declares the
//! whole experiment: material tables, chip dimensions and grid, the
//! package (heat sink), floorplans, layer prototypes (with TTSV/pillar
//! painting per Xylem scheme), die prototypes, the stack itself, power
//! bindings, the solver mode, and output probes.
//!
//! Design contracts, each locked by a test suite:
//!
//! * **Spanned diagnostics** — every lexer/parser/validation error
//!   carries a line/column span and renders rustc-style via
//!   [`error::ParseError::render`]. The messages are snapshot-locked by
//!   the `scenarios/invalid/` corpus (`tests/conformance.rs`).
//! * **Totality** — no input bytes can make the pipeline panic, hang,
//!   or OOM (`tests/fuzz_totality.rs`).
//! * **Round-trip** — [`printer::print`] is a right inverse of
//!   [`parser::parse`] up to spans (`tests/roundtrip.rs`).
//! * **Golden equivalence** — `scenarios/valid/xylem-paper.stk` lowers
//!   to physics bit-identical to the hard-wired paper builder
//!   (`tests/golden_equivalence.rs`), compared through the digests of
//!   [`digest`].
//! * **Determinism** — lowering ([`lower`]) is a registered
//!   determinism zone in `xylem-lint`; identical sources produce
//!   bit-identical stacks across runs and thread counts.

pub mod ast;
pub mod digest;
pub mod error;
pub mod lexer;
pub mod lower;
pub mod paper;
pub mod parser;
pub mod printer;
pub mod span;
pub mod validate;

use xylem_obs::metrics::{incr, Counter};
use xylem_thermal::error::ThermalError;
use xylem_thermal::grid::GridSpec;
use xylem_thermal::model::ThermalModel;
use xylem_thermal::power::PowerMap;
use xylem_thermal::temperature::TemperatureField;
use xylem_thermal::units::Watts;

pub use ast::Scenario;
pub use error::ParseError;
pub use lower::{LoweredScenario, PowerBinding, ProbeSite};

/// Parses `.stk` source into a scenario IR (no validation).
///
/// Counts `scenario_parsed` / `scenario_rejected`.
///
/// # Errors
///
/// A spanned [`ParseError`] from the lexer or parser.
pub fn parse_scenario(source: &str) -> Result<Scenario, ParseError> {
    match parser::parse(source) {
        Ok(sc) => {
            incr(Counter::ScenarioParsed);
            Ok(sc)
        }
        Err(e) => {
            incr(Counter::ScenarioRejected);
            Err(e)
        }
    }
}

/// Parses, validates, and lowers `.stk` source into a solvable stack.
///
/// Counts `scenario_lowered` on success and `scenario_rejected` on any
/// failure (each source is counted rejected at most once).
///
/// # Errors
///
/// A spanned [`ParseError`] from any stage.
pub fn compile(source: &str) -> Result<LoweredScenario, ParseError> {
    let sc = parse_scenario(source)?;
    match lower::lower(&sc) {
        Ok(l) => {
            incr(Counter::ScenarioLowered);
            Ok(l)
        }
        Err(e) => {
            incr(Counter::ScenarioRejected);
            Err(e)
        }
    }
}

/// One evaluated output probe.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeReading {
    /// Probe name (from the `output` section).
    pub name: String,
    /// Instantiated layer name the probe reads.
    pub layer: String,
    /// The reading, deg C.
    pub celsius: f64,
}

/// The result of solving a lowered scenario once.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Thermal-network node count (user layers + package).
    pub nodes: usize,
    /// FNV-1a digest of the assembled conductance matrix.
    pub conductance_digest: u64,
    /// FNV-1a digest of the steady-state temperature field.
    pub temperature_digest: u64,
    /// Hottest cell across all user layers, deg C.
    pub global_hotspot_c: f64,
    /// Probe readings, in `output` order.
    pub probes: Vec<ProbeReading>,
}

/// Builds the scenario's power map against a discretized model.
fn power_map(model: &ThermalModel, l: &LoweredScenario) -> Result<PowerMap, ThermalError> {
    let mut p = PowerMap::zeros(model);
    for b in &l.power {
        match b {
            PowerBinding::Uniform { layer, watts } => {
                p.add_uniform_layer_power(*layer, Watts::new(*watts));
            }
            PowerBinding::Block {
                layer,
                block,
                watts,
            } => {
                p.add_block_power(model, *layer, block, Watts::new(*watts))?;
            }
        }
    }
    Ok(p)
}

/// Discretizes a lowered scenario into a reusable session pair: the
/// thermal model and the scenario's bound power map.
///
/// This is the compile-to-session entry for long-lived consumers
/// (xylem-serve sessions, transient drivers): the model carries the
/// shared operator caches, so building it once and stepping many times
/// — or sharing one model across sessions compiled from an identical
/// source — pays discretization and factorization once.
///
/// # Errors
///
/// [`ThermalError`] from discretization or power binding.
pub fn discretize_with_power(
    l: &LoweredScenario,
) -> Result<(ThermalModel, PowerMap), ThermalError> {
    let model = l.stack.discretize(GridSpec::new(l.nx, l.ny))?;
    let p = power_map(&model, l)?;
    Ok((model, p))
}

/// Discretizes, solves one steady state, and evaluates the probes.
///
/// # Errors
///
/// [`ThermalError`] from discretization or the linear solver.
pub fn run(l: &LoweredScenario) -> Result<RunReport, ThermalError> {
    let (model, p) = discretize_with_power(l)?;
    let t: TemperatureField = model.steady_state(&p)?;
    let probes = l
        .probes
        .iter()
        .map(|pr| {
            let c = match pr.site {
                ProbeSite::Max => t.max_of_layer(pr.layer),
                ProbeSite::Mean => t.mean_of_layer(pr.layer),
                ProbeSite::At { ix, iy } => t.cell(pr.layer, ix, iy),
            };
            ProbeReading {
                name: pr.name.clone(),
                layer: l.layer_names[pr.layer].clone(),
                celsius: c.get(),
            }
        })
        .collect();
    Ok(RunReport {
        nodes: model.node_count(),
        conductance_digest: digest::conductance_digest(&model),
        temperature_digest: digest::field_digest(t.raw()),
        global_hotspot_c: t.global_hotspot().2.get(),
        probes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINIMAL: &str = "\
material si :
    thermal conductivity 120.0 ;
    volumetric heat capacity 1.75e6 ;
dimensions :
    chip length 8e-3 , width 8e-3 ;
    grid 4 , 4 ;
layer body :
    height 1e-4 ;
    material si ;
stack :
    layer body ;
power :
    uniform body 5.0 ;
solver :
    steady ;
output :
    probe hot max in body ;
    probe avg mean in body ;
";

    #[test]
    fn compile_and_run_minimal() {
        let l = compile(MINIMAL).expect("compiles");
        let r = run(&l).expect("solves");
        assert!(r.nodes > 16);
        assert_eq!(r.probes.len(), 2);
        assert_eq!(r.probes[0].name, "hot");
        assert_eq!(r.probes[0].layer, "body");
        // 5 W over 64 mm^2 must heat the die above ambient, but only by
        // a few degrees through the default package.
        assert!(r.probes[0].celsius > 43.0, "{:?}", r.probes);
        assert!(r.probes[0].celsius < 80.0, "{:?}", r.probes);
        assert!(r.probes[0].celsius >= r.probes[1].celsius);
        assert!((r.global_hotspot_c - r.probes[0].celsius).abs() <= f64::EPSILON);
    }

    #[test]
    fn identical_sources_run_bit_identically() {
        let a = run(&compile(MINIMAL).expect("compiles")).expect("solves");
        let b = run(&compile(MINIMAL).expect("compiles")).expect("solves");
        assert_eq!(a.conductance_digest, b.conductance_digest);
        assert_eq!(a.temperature_digest, b.temperature_digest);
    }

    #[test]
    fn counters_move_on_compile() {
        use xylem_obs::metrics::counter;
        let parsed0 = counter(Counter::ScenarioParsed);
        let lowered0 = counter(Counter::ScenarioLowered);
        let rejected0 = counter(Counter::ScenarioRejected);
        let _ = compile(MINIMAL).expect("compiles");
        assert!(counter(Counter::ScenarioParsed) > parsed0);
        assert!(counter(Counter::ScenarioLowered) > lowered0);
        let _ = compile("material ;");
        assert!(counter(Counter::ScenarioRejected) > rejected0);
    }
}
