//! Recursive-descent parser for the `.stk` scenario grammar.
//!
//! ```text
//! material NAME : thermal conductivity N ; volumetric heat capacity N ;
//! dimensions : chip length N , width N ; grid N , N ;
//! heat sink : tim thickness N material ID ; spreader side N , thickness N , material ID ;
//!             sink side N , thickness N , material ID ; convection resistance N ;
//!             ambient temperature N ; board resistance N ;
//! floorplan NAME : block ID at N , N size N , N ;
//! layer NAME : height N ; material ID ; floorplan ID ; block ID material ID ;
//!              patch ID at N , N size N , N material ID ;
//!              ttsvs ID material ID ; pillars ID footprint N material ID ;
//! die NAME : layer ID ; discretization N , N ;
//! stack : die INSTANCE DIEDEF ; layer ID ;
//! power : uniform LAYERREF N ; block LAYERREF ID N ;
//! solver : steady ;
//! output : probe ID max in LAYERREF ; probe ID mean in LAYERREF ;
//!          probe ID at N , N in LAYERREF ;
//! LAYERREF := IDENT ( "." IDENT )?
//! ```
//!
//! Statements end with `;`; sections end implicitly at the next section
//! header. The keywords `material`, `floorplan`, `layer`, and `die` are
//! contextual: inside a section body they open a *new* section only
//! when followed by a name and then `:` (two-token lookahead), so
//! `layer proc_si ;` inside `stack` is a statement while
//! `layer proc_si :` starts a prototype.
//!
//! Like the lexer, the parser is total: every token stream either
//! yields a [`Scenario`] or a clean spanned [`ParseError`]. The token
//! cursor never moves backwards and every loop either consumes a token
//! or returns, so parsing terminates on all inputs.

use crate::ast::{
    BlockDef, DieDef, Dimensions, FloorplanDef, HeatSinkDef, LayerDef, LayerOp, LayerRef,
    MaterialDef, PowerStmt, ProbeDef, ProbeKind, Scenario, StackEntry,
};
use crate::error::ParseError;
use crate::lexer::{lex, Tok, TokKind};
use crate::span::Spanned;

/// Sections introduced by a bare keyword followed by `:`.
const BARE_SECTIONS: [&str; 5] = ["dimensions", "stack", "power", "solver", "output"];
/// Sections introduced by `keyword NAME :` (contextual keywords).
const NAMED_SECTIONS: [&str; 4] = ["material", "floorplan", "layer", "die"];

/// Parses `.stk` source text into the scenario IR.
///
/// # Errors
///
/// The first lexical or syntactic problem, as a spanned [`ParseError`].
pub fn parse(source: &str) -> Result<Scenario, ParseError> {
    let toks = lex(source)?;
    Parser { toks, pos: 0 }.scenario()
}

fn found(t: &Tok) -> String {
    if t.kind == TokKind::Eof {
        "end of file".to_string()
    } else {
        format!("`{}`", t.text)
    }
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        // The lexer always appends an Eof sentinel and `bump` never
        // moves past it, so this index is in range.
        &self.toks[self.pos.min(self.toks.len() - 1)]
    }

    fn peek_at(&self, n: usize) -> &Tok {
        &self.toks[(self.pos + n).min(self.toks.len() - 1)]
    }

    fn bump(&mut self) -> Tok {
        let t = self.peek().clone();
        if t.kind != TokKind::Eof {
            self.pos += 1;
        }
        t
    }

    fn expect_kw(&mut self, word: &str) -> Result<Tok, ParseError> {
        if self.peek().is_ident(word) {
            Ok(self.bump())
        } else {
            let t = self.peek();
            Err(ParseError::new(
                format!("expected `{word}`, found {}", found(t)),
                t.span,
            ))
        }
    }

    fn expect_punct(&mut self, c: char) -> Result<Tok, ParseError> {
        if self.peek().is_punct(c) {
            Ok(self.bump())
        } else {
            let t = self.peek();
            Err(ParseError::new(
                format!("expected `{c}`, found {}", found(t)),
                t.span,
            ))
        }
    }

    fn expect_name(&mut self, what: &str) -> Result<Spanned<String>, ParseError> {
        if self.peek().kind == TokKind::Ident {
            let t = self.bump();
            Ok(Spanned::new(t.text, t.span))
        } else {
            let t = self.peek();
            Err(ParseError::new(
                format!("expected {what}, found {}", found(t)),
                t.span,
            ))
        }
    }

    fn expect_number(&mut self) -> Result<Spanned<f64>, ParseError> {
        if self.peek().kind == TokKind::Number {
            let t = self.bump();
            Ok(Spanned::new(t.value, t.span))
        } else {
            let t = self.peek();
            Err(ParseError::new(
                format!("expected a number, found {}", found(t)),
                t.span,
            ))
        }
    }

    /// Whether the cursor sits on a section header (the contextual
    /// two-token lookahead described in the module docs).
    fn starts_section(&self) -> bool {
        let t = self.peek();
        if t.kind != TokKind::Ident {
            return false;
        }
        if BARE_SECTIONS.contains(&t.text.as_str()) {
            return self.peek_at(1).is_punct(':');
        }
        if t.is_ident("heat") {
            return self.peek_at(1).is_ident("sink") && self.peek_at(2).is_punct(':');
        }
        if NAMED_SECTIONS.contains(&t.text.as_str()) {
            return self.peek_at(1).kind == TokKind::Ident && self.peek_at(2).is_punct(':');
        }
        false
    }

    fn at_section_end(&self) -> bool {
        self.peek().kind == TokKind::Eof || self.starts_section()
    }

    fn unknown_stmt(&self, section: &str, expected: &str) -> ParseError {
        let t = self.peek();
        let message = if t.kind == TokKind::Ident {
            format!("unknown statement `{}` in `{section}` section", t.text)
        } else {
            format!(
                "expected a statement in `{section}` section, found {}",
                found(t)
            )
        };
        ParseError::new(message, t.span).with_note(format!("expected one of: {expected}"))
    }

    fn duplicate(&self, what: &str, t: &Tok) -> ParseError {
        ParseError::new(format!("duplicate `{what}` statement"), t.span)
    }

    fn scenario(&mut self) -> Result<Scenario, ParseError> {
        let mut sc = Scenario::default();
        while self.peek().kind != TokKind::Eof {
            if !self.starts_section() {
                let t = self.peek();
                return Err(ParseError::new(
                    format!("expected a section header, found {}", found(t)),
                    t.span,
                )
                .with_note(
                    "sections: material, dimensions, heat sink, floorplan, layer, die, \
                     stack, power, solver, output",
                ));
            }
            let head = self.peek().clone();
            match head.text.as_str() {
                "material" => {
                    let m = self.material_section()?;
                    sc.materials.push(m);
                }
                "dimensions" => {
                    if sc.dimensions.is_some() {
                        return Err(ParseError::new("duplicate `dimensions` section", head.span));
                    }
                    sc.dimensions = Some(self.dimensions_section()?);
                }
                "heat" => {
                    if sc.heat_sink.is_some() {
                        return Err(ParseError::new("duplicate `heat sink` section", head.span));
                    }
                    sc.heat_sink = Some(self.heat_sink_section()?);
                }
                "floorplan" => {
                    let f = self.floorplan_section()?;
                    sc.floorplans.push(f);
                }
                "layer" => {
                    let l = self.layer_section()?;
                    sc.layers.push(l);
                }
                "die" => {
                    let d = self.die_section()?;
                    sc.dies.push(d);
                }
                "stack" => {
                    if sc.stack_span.is_some() {
                        return Err(ParseError::new("duplicate `stack` section", head.span));
                    }
                    sc.stack_span = Some(head.span);
                    self.stack_section(&mut sc)?;
                }
                "power" => self.power_section(&mut sc)?,
                "solver" => {
                    if sc.solver_steady {
                        return Err(ParseError::new("duplicate `solver` section", head.span));
                    }
                    self.solver_section(&mut sc)?;
                }
                "output" => self.output_section(&mut sc)?,
                // starts_section() returned true, so head is one of the
                // section keywords handled above.
                _ => unreachable!("starts_section admitted a non-section keyword"),
            }
        }
        Ok(sc)
    }

    fn material_section(&mut self) -> Result<MaterialDef, ParseError> {
        self.expect_kw("material")?;
        let name = self.expect_name("a material name")?;
        self.expect_punct(':')?;
        let mut conductivity: Option<Spanned<f64>> = None;
        let mut capacity: Option<Spanned<f64>> = None;
        while !self.at_section_end() {
            let t = self.peek().clone();
            if t.is_ident("thermal") {
                self.bump();
                self.expect_kw("conductivity")?;
                let v = self.expect_number()?;
                self.expect_punct(';')?;
                if conductivity.replace(v).is_some() {
                    return Err(self.duplicate("thermal conductivity", &t));
                }
            } else if t.is_ident("volumetric") {
                self.bump();
                self.expect_kw("heat")?;
                self.expect_kw("capacity")?;
                let v = self.expect_number()?;
                self.expect_punct(';')?;
                if capacity.replace(v).is_some() {
                    return Err(self.duplicate("volumetric heat capacity", &t));
                }
            } else {
                return Err(
                    self.unknown_stmt("material", "thermal conductivity, volumetric heat capacity")
                );
            }
        }
        let conductivity = conductivity.ok_or_else(|| {
            ParseError::new(
                format!("material `{}` is missing `thermal conductivity`", name.node),
                name.span,
            )
        })?;
        let capacity = capacity.ok_or_else(|| {
            ParseError::new(
                format!(
                    "material `{}` is missing `volumetric heat capacity`",
                    name.node
                ),
                name.span,
            )
        })?;
        Ok(MaterialDef {
            name,
            conductivity,
            capacity,
        })
    }

    fn dimensions_section(&mut self) -> Result<Dimensions, ParseError> {
        let head = self.expect_kw("dimensions")?;
        self.expect_punct(':')?;
        let mut chip: Option<(Spanned<f64>, Spanned<f64>)> = None;
        let mut grid: Option<(Spanned<f64>, Spanned<f64>)> = None;
        while !self.at_section_end() {
            let t = self.peek().clone();
            if t.is_ident("chip") {
                self.bump();
                self.expect_kw("length")?;
                let l = self.expect_number()?;
                self.expect_punct(',')?;
                self.expect_kw("width")?;
                let w = self.expect_number()?;
                self.expect_punct(';')?;
                if chip.replace((l, w)).is_some() {
                    return Err(self.duplicate("chip", &t));
                }
            } else if t.is_ident("grid") {
                self.bump();
                let nx = self.expect_number()?;
                self.expect_punct(',')?;
                let ny = self.expect_number()?;
                self.expect_punct(';')?;
                if grid.replace((nx, ny)).is_some() {
                    return Err(self.duplicate("grid", &t));
                }
            } else {
                return Err(self.unknown_stmt("dimensions", "chip, grid"));
            }
        }
        let (length, width) = chip
            .ok_or_else(|| ParseError::new("`dimensions` section is missing `chip`", head.span))?;
        let grid = grid
            .ok_or_else(|| ParseError::new("`dimensions` section is missing `grid`", head.span))?;
        Ok(Dimensions {
            length,
            width,
            grid,
            span: head.span,
        })
    }

    fn heat_sink_section(&mut self) -> Result<HeatSinkDef, ParseError> {
        let head = self.expect_kw("heat")?;
        self.expect_kw("sink")?;
        self.expect_punct(':')?;
        let mut def = HeatSinkDef {
            span: head.span,
            ..HeatSinkDef::default()
        };
        while !self.at_section_end() {
            let t = self.peek().clone();
            if t.is_ident("tim") {
                self.bump();
                self.expect_kw("thickness")?;
                let th = self.expect_number()?;
                self.expect_kw("material")?;
                let m = self.expect_name("a material name")?;
                self.expect_punct(';')?;
                if def.tim.replace((th, m)).is_some() {
                    return Err(self.duplicate("tim", &t));
                }
            } else if t.is_ident("spreader") || t.is_ident("sink") {
                self.bump();
                self.expect_kw("side")?;
                let side = self.expect_number()?;
                self.expect_punct(',')?;
                self.expect_kw("thickness")?;
                let th = self.expect_number()?;
                self.expect_punct(',')?;
                self.expect_kw("material")?;
                let m = self.expect_name("a material name")?;
                self.expect_punct(';')?;
                let slot = if t.is_ident("spreader") {
                    &mut def.spreader
                } else {
                    &mut def.sink
                };
                if slot.replace((side, th, m)).is_some() {
                    return Err(self.duplicate(&t.text, &t));
                }
            } else if t.is_ident("convection") {
                self.bump();
                self.expect_kw("resistance")?;
                let v = self.expect_number()?;
                self.expect_punct(';')?;
                if def.convection.replace(v).is_some() {
                    return Err(self.duplicate("convection resistance", &t));
                }
            } else if t.is_ident("ambient") {
                self.bump();
                self.expect_kw("temperature")?;
                let v = self.expect_number()?;
                self.expect_punct(';')?;
                if def.ambient.replace(v).is_some() {
                    return Err(self.duplicate("ambient temperature", &t));
                }
            } else if t.is_ident("board") {
                self.bump();
                self.expect_kw("resistance")?;
                let v = self.expect_number()?;
                self.expect_punct(';')?;
                if def.board.replace(v).is_some() {
                    return Err(self.duplicate("board resistance", &t));
                }
            } else {
                return Err(self.unknown_stmt(
                    "heat sink",
                    "tim, spreader, sink, convection, ambient, board",
                ));
            }
        }
        Ok(def)
    }

    fn floorplan_section(&mut self) -> Result<FloorplanDef, ParseError> {
        self.expect_kw("floorplan")?;
        let name = self.expect_name("a floorplan name")?;
        self.expect_punct(':')?;
        let mut blocks = Vec::new();
        while !self.at_section_end() {
            if !self.peek().is_ident("block") {
                return Err(self.unknown_stmt("floorplan", "block"));
            }
            self.bump();
            let bname = self.expect_name("a block name")?;
            self.expect_kw("at")?;
            let x = self.expect_number()?;
            self.expect_punct(',')?;
            let y = self.expect_number()?;
            self.expect_kw("size")?;
            let w = self.expect_number()?;
            self.expect_punct(',')?;
            let h = self.expect_number()?;
            self.expect_punct(';')?;
            blocks.push(BlockDef {
                name: bname,
                x,
                y,
                w,
                h,
            });
        }
        Ok(FloorplanDef { name, blocks })
    }

    fn layer_section(&mut self) -> Result<LayerDef, ParseError> {
        self.expect_kw("layer")?;
        let name = self.expect_name("a layer name")?;
        self.expect_punct(':')?;
        let mut height: Option<Spanned<f64>> = None;
        let mut material: Option<Spanned<String>> = None;
        let mut floorplan: Option<Spanned<String>> = None;
        let mut ops = Vec::new();
        while !self.at_section_end() {
            let t = self.peek().clone();
            if t.is_ident("height") {
                self.bump();
                let v = self.expect_number()?;
                self.expect_punct(';')?;
                if height.replace(v).is_some() {
                    return Err(self.duplicate("height", &t));
                }
            } else if t.is_ident("material") {
                self.bump();
                let m = self.expect_name("a material name")?;
                self.expect_punct(';')?;
                if material.replace(m).is_some() {
                    return Err(self.duplicate("material", &t));
                }
            } else if t.is_ident("floorplan") {
                self.bump();
                let f = self.expect_name("a floorplan name")?;
                self.expect_punct(';')?;
                if floorplan.replace(f).is_some() {
                    return Err(self.duplicate("floorplan", &t));
                }
            } else if t.is_ident("block") {
                self.bump();
                let block = self.expect_name("a block name")?;
                self.expect_kw("material")?;
                let m = self.expect_name("a material name")?;
                self.expect_punct(';')?;
                ops.push(LayerOp::BlockMaterial { block, material: m });
            } else if t.is_ident("patch") {
                self.bump();
                let label = self.expect_name("a patch label")?;
                self.expect_kw("at")?;
                let x = self.expect_number()?;
                self.expect_punct(',')?;
                let y = self.expect_number()?;
                self.expect_kw("size")?;
                let w = self.expect_number()?;
                self.expect_punct(',')?;
                let h = self.expect_number()?;
                self.expect_kw("material")?;
                let m = self.expect_name("a material name")?;
                self.expect_punct(';')?;
                ops.push(LayerOp::Patch {
                    label,
                    x,
                    y,
                    w,
                    h,
                    material: m,
                });
            } else if t.is_ident("ttsvs") {
                self.bump();
                let scheme = self.expect_name("a scheme name")?;
                self.expect_kw("material")?;
                let m = self.expect_name("a material name")?;
                self.expect_punct(';')?;
                ops.push(LayerOp::Ttsvs {
                    scheme,
                    material: m,
                });
            } else if t.is_ident("pillars") {
                self.bump();
                let scheme = self.expect_name("a scheme name")?;
                self.expect_kw("footprint")?;
                let footprint = self.expect_number()?;
                self.expect_kw("material")?;
                let m = self.expect_name("a material name")?;
                self.expect_punct(';')?;
                ops.push(LayerOp::Pillars {
                    scheme,
                    footprint,
                    material: m,
                });
            } else {
                return Err(self.unknown_stmt(
                    "layer",
                    "height, material, floorplan, block, patch, ttsvs, pillars",
                ));
            }
        }
        let height = height.ok_or_else(|| {
            ParseError::new(
                format!("layer `{}` is missing `height`", name.node),
                name.span,
            )
        })?;
        let material = material.ok_or_else(|| {
            ParseError::new(
                format!("layer `{}` is missing `material`", name.node),
                name.span,
            )
        })?;
        Ok(LayerDef {
            name,
            height,
            material,
            floorplan,
            ops,
        })
    }

    fn die_section(&mut self) -> Result<DieDef, ParseError> {
        self.expect_kw("die")?;
        let name = self.expect_name("a die name")?;
        self.expect_punct(':')?;
        let mut layers = Vec::new();
        let mut discretization: Option<(Spanned<f64>, Spanned<f64>)> = None;
        while !self.at_section_end() {
            let t = self.peek().clone();
            if t.is_ident("layer") {
                self.bump();
                let l = self.expect_name("a layer name")?;
                self.expect_punct(';')?;
                layers.push(l);
            } else if t.is_ident("discretization") {
                self.bump();
                let nx = self.expect_number()?;
                self.expect_punct(',')?;
                let ny = self.expect_number()?;
                self.expect_punct(';')?;
                if discretization.replace((nx, ny)).is_some() {
                    return Err(self.duplicate("discretization", &t));
                }
            } else {
                return Err(self.unknown_stmt("die", "layer, discretization"));
            }
        }
        Ok(DieDef {
            name,
            layers,
            discretization,
        })
    }

    fn stack_section(&mut self, sc: &mut Scenario) -> Result<(), ParseError> {
        self.expect_kw("stack")?;
        self.expect_punct(':')?;
        while !self.at_section_end() {
            let t = self.peek().clone();
            if t.is_ident("die") {
                self.bump();
                let instance = self.expect_name("a die instance name")?;
                let def = self.expect_name("a die prototype name")?;
                self.expect_punct(';')?;
                sc.stack.push(StackEntry::Die { instance, def });
            } else if t.is_ident("layer") {
                self.bump();
                let def = self.expect_name("a layer name")?;
                self.expect_punct(';')?;
                sc.stack.push(StackEntry::Layer { def });
            } else {
                return Err(self.unknown_stmt("stack", "die, layer"));
            }
        }
        Ok(())
    }

    fn layer_ref(&mut self) -> Result<LayerRef, ParseError> {
        let first = self.expect_name("a layer reference")?;
        if self.peek().is_punct('.') {
            self.bump();
            let layer = self.expect_name("a layer name")?;
            Ok(LayerRef {
                instance: Some(first),
                layer,
            })
        } else {
            Ok(LayerRef {
                instance: None,
                layer: first,
            })
        }
    }

    fn power_section(&mut self, sc: &mut Scenario) -> Result<(), ParseError> {
        self.expect_kw("power")?;
        self.expect_punct(':')?;
        while !self.at_section_end() {
            let t = self.peek().clone();
            if t.is_ident("uniform") {
                self.bump();
                let target = self.layer_ref()?;
                let watts = self.expect_number()?;
                self.expect_punct(';')?;
                sc.power.push(PowerStmt::Uniform { target, watts });
            } else if t.is_ident("block") {
                self.bump();
                let target = self.layer_ref()?;
                let block = self.expect_name("a block name")?;
                let watts = self.expect_number()?;
                self.expect_punct(';')?;
                sc.power.push(PowerStmt::Block {
                    target,
                    block,
                    watts,
                });
            } else {
                return Err(self.unknown_stmt("power", "uniform, block"));
            }
        }
        Ok(())
    }

    fn solver_section(&mut self, sc: &mut Scenario) -> Result<(), ParseError> {
        let head = self.expect_kw("solver")?;
        self.expect_punct(':')?;
        while !self.at_section_end() {
            let t = self.peek().clone();
            if t.is_ident("steady") {
                self.bump();
                self.expect_punct(';')?;
                if sc.solver_steady {
                    return Err(self.duplicate("steady", &t));
                }
                sc.solver_steady = true;
            } else {
                return Err(self.unknown_stmt("solver", "steady"));
            }
        }
        if !sc.solver_steady {
            return Err(ParseError::new(
                "`solver` section must declare `steady`",
                head.span,
            ));
        }
        Ok(())
    }

    fn output_section(&mut self, sc: &mut Scenario) -> Result<(), ParseError> {
        self.expect_kw("output")?;
        self.expect_punct(':')?;
        while !self.at_section_end() {
            if !self.peek().is_ident("probe") {
                return Err(self.unknown_stmt("output", "probe"));
            }
            self.bump();
            let name = self.expect_name("a probe name")?;
            let t = self.peek().clone();
            let kind = if t.is_ident("max") {
                self.bump();
                ProbeKind::Max
            } else if t.is_ident("mean") {
                self.bump();
                ProbeKind::Mean
            } else if t.is_ident("at") {
                self.bump();
                let x = self.expect_number()?;
                self.expect_punct(',')?;
                let y = self.expect_number()?;
                ProbeKind::At(x, y)
            } else {
                return Err(ParseError::new(
                    format!("expected `max`, `mean`, or `at`, found {}", found(&t)),
                    t.span,
                ));
            };
            self.expect_kw("in")?;
            let target = self.layer_ref()?;
            self.expect_punct(';')?;
            sc.probes.push(ProbeDef { name, kind, target });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMALL: &str = "\
// a minimal two-layer stack
material si :
    thermal conductivity 120.0 ;
    volumetric heat capacity 1.75e6 ;

dimensions :
    chip length 8e-3 , width 8e-3 ;
    grid 16 , 16 ;

layer body :
    height 100e-6 ;
    material si ;

stack :
    layer body ;

power :
    uniform body 10.0 ;

solver :
    steady ;

output :
    probe hot max in body ;
";

    #[test]
    fn parses_a_minimal_scenario() {
        let sc = parse(SMALL).expect("parses");
        assert_eq!(sc.materials.len(), 1);
        assert_eq!(sc.materials[0].name.node, "si");
        let dims = sc.dimensions.expect("dimensions");
        assert_eq!(dims.grid.0.node, 16.0);
        assert_eq!(sc.layers.len(), 1);
        assert_eq!(sc.stack.len(), 1);
        assert!(sc.solver_steady);
        assert_eq!(sc.probes.len(), 1);
        assert!(matches!(sc.probes[0].kind, ProbeKind::Max));
    }

    #[test]
    fn contextual_layer_keyword_statement_vs_section() {
        // `layer x ;` inside stack is a statement; `layer x :` opens a
        // section. Both in one file.
        let src = "\
material m :
    thermal conductivity 1.0 ;
    volumetric heat capacity 1.0 ;
layer x :
    height 1e-6 ;
    material m ;
stack :
    layer x ;
";
        let sc = parse(src).expect("parses");
        assert_eq!(sc.layers.len(), 1);
        assert!(matches!(&sc.stack[0], StackEntry::Layer { def } if def.node == "x"));
    }

    #[test]
    fn qualified_layer_refs_parse() {
        let src = "\
power :
    uniform cpu.proc_metal 20.0 ;
    block cpu.proc_si core0 1.5 ;
";
        let sc = parse(src).expect("parses");
        match &sc.power[0] {
            PowerStmt::Uniform { target, watts } => {
                assert_eq!(target.resolved(), "cpu.proc_metal");
                assert_eq!(watts.node, 20.0);
            }
            PowerStmt::Block { .. } => unreachable!("first statement is uniform"),
        }
    }

    #[test]
    fn missing_semicolon_points_at_next_token() {
        let src = "\
material m :
    thermal conductivity 1.0 ;
    volumetric heat capacity 1.0
dimensions :
    chip length 1.0 , width 1.0 ;
    grid 4 , 4 ;
";
        let e = parse(src).expect_err("missing semicolon");
        assert!(e.message.contains("expected `;`"), "{}", e.message);
        assert_eq!(e.span.line, 4);
    }

    #[test]
    fn unknown_statement_names_the_section() {
        let e = parse("solver :\n    transient ;\n").expect_err("rejected");
        assert!(
            e.message.contains("unknown statement `transient`"),
            "{}",
            e.message
        );
        assert!(e.note.as_deref() == Some("expected one of: steady"));
    }

    #[test]
    fn duplicate_sections_are_rejected() {
        let src = "\
dimensions :
    chip length 1.0 , width 1.0 ;
    grid 4 , 4 ;
dimensions :
    chip length 1.0 , width 1.0 ;
    grid 4 , 4 ;
";
        let e = parse(src).expect_err("rejected");
        assert_eq!(e.message, "duplicate `dimensions` section");
    }
}
