//! A total tokenizer for the `.stk` scenario format.
//!
//! Tokens: identifiers (letters, digits, `_`, `-` after a leading
//! letter), numbers (decimal with optional fraction/exponent and an
//! optional leading `-`), the punctuation `:` `;` `,` `.`, and
//! line comments (`//` to end of line, discarded).
//!
//! Totality is a hard requirement (the fuzz suite feeds this arbitrary
//! byte soup): every input either lexes to a token vector or returns a
//! clean [`ParseError`] with a span — never a panic, never an unbounded
//! loop. Each iteration of the main loop consumes at least one
//! character.

use crate::error::ParseError;
use crate::span::Span;

/// Kind of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier/keyword: `material`, `dram0_si`, `tsv-bus`.
    Ident,
    /// Numeric literal; the parsed value rides in [`Tok::value`].
    Number,
    /// One of `:` `;` `,` `.`.
    Punct,
    /// Synthetic end-of-input marker (always the last token).
    Eof,
}

/// One token with its source text, span, and (for numbers) value.
#[derive(Debug, Clone)]
pub struct Tok {
    /// What kind of token this is.
    pub kind: TokKind,
    /// The source text (empty for [`TokKind::Eof`]).
    pub text: String,
    /// Where it sits in the source.
    pub span: Span,
    /// Parsed value for [`TokKind::Number`], `0.0` otherwise.
    pub value: f64,
}

impl Tok {
    /// Whether this is the identifier `word`.
    #[must_use]
    pub fn is_ident(&self, word: &str) -> bool {
        self.kind == TokKind::Ident && self.text == word
    }

    /// Whether this is the punctuation character `c`.
    #[must_use]
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '-'
}

/// Tokenizes `source`. Character columns (not byte offsets) feed the
/// spans, so multi-byte UTF-8 in comments cannot skew later carets.
///
/// # Errors
///
/// [`ParseError`] on the first unexpected character or malformed /
/// out-of-range numeric literal.
pub fn lex(source: &str) -> Result<Vec<Tok>, ParseError> {
    let mut toks = Vec::new();
    let mut line: u32 = 1;
    let mut col: u32 = 1;
    let mut chars = source.chars().peekable();
    while let Some(&c) = chars.peek() {
        // Newlines and whitespace.
        if c == '\n' {
            chars.next();
            line += 1;
            col = 1;
            continue;
        }
        if c.is_whitespace() {
            chars.next();
            col += 1;
            continue;
        }
        // Line comments: `//` to end of line.
        if c == '/' {
            let start = Span::new(line, col, 1);
            chars.next();
            col += 1;
            if chars.peek() == Some(&'/') {
                while let Some(&n) = chars.peek() {
                    if n == '\n' {
                        break;
                    }
                    chars.next();
                    col += 1;
                }
                continue;
            }
            return Err(ParseError::new("unexpected character `/`", start)
                .with_note("comments start with `//`"));
        }
        if is_ident_start(c) {
            let start_col = col;
            let mut text = String::new();
            while let Some(&n) = chars.peek() {
                if is_ident_continue(n) {
                    text.push(n);
                    chars.next();
                    col += 1;
                } else {
                    break;
                }
            }
            let span = Span::new(line, start_col, col - start_col);
            toks.push(Tok {
                kind: TokKind::Ident,
                text,
                span,
                value: 0.0,
            });
            continue;
        }
        if c.is_ascii_digit() || c == '-' {
            let start_col = col;
            let mut text = String::new();
            text.push(c);
            chars.next();
            col += 1;
            if c == '-' && !chars.peek().is_some_and(char::is_ascii_digit) {
                return Err(ParseError::new(
                    "unexpected character `-`",
                    Span::new(line, start_col, 1),
                )
                .with_note("`-` is only valid as a numeric sign"));
            }
            // Digits, one optional `.` fraction, one optional exponent.
            let mut seen_dot = false;
            let mut seen_exp = false;
            while let Some(&n) = chars.peek() {
                let take = n.is_ascii_digit()
                    || (n == '.' && !seen_dot && !seen_exp)
                    || ((n == 'e' || n == 'E') && !seen_exp)
                    || ((n == '+' || n == '-') && text.ends_with(['e', 'E']) && seen_exp);
                if !take {
                    break;
                }
                if n == '.' {
                    seen_dot = true;
                }
                if n == 'e' || n == 'E' {
                    seen_exp = true;
                }
                text.push(n);
                chars.next();
                col += 1;
            }
            let span = Span::new(line, start_col, col - start_col);
            let value: f64 = text
                .parse()
                .map_err(|_| ParseError::new(format!("malformed number `{text}`"), span))?;
            if !value.is_finite() {
                return Err(ParseError::new(
                    format!("number `{text}` is out of range for an IEEE double"),
                    span,
                ));
            }
            toks.push(Tok {
                kind: TokKind::Number,
                text,
                span,
                value,
            });
            continue;
        }
        if c == ':' || c == ';' || c == ',' || c == '.' {
            chars.next();
            toks.push(Tok {
                kind: TokKind::Punct,
                text: c.to_string(),
                span: Span::new(line, col, 1),
                value: 0.0,
            });
            col += 1;
            continue;
        }
        return Err(ParseError::new(
            format!("unexpected character `{}`", c.escape_default()),
            Span::new(line, col, 1),
        ));
    }
    toks.push(Tok {
        kind: TokKind::Eof,
        text: String::new(),
        span: Span::new(line, col, 1),
        value: 0.0,
    });
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_idents_numbers_punct_and_comments() {
        let toks = lex("material tsv-bus : // metal composite\n  k 1.5e-3 ;").expect("lexes");
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            texts,
            vec!["material", "tsv-bus", ":", "k", "1.5e-3", ";", ""]
        );
        assert_eq!(toks[4].kind, TokKind::Number);
        assert!((toks[4].value - 1.5e-3).abs() < 1e-18);
        assert_eq!(toks[4].span, Span::new(2, 5, 6));
    }

    #[test]
    fn negative_and_exponent_signs() {
        let toks = lex("-4 2e+6 1E-9").expect("lexes");
        assert_eq!(toks[0].value, -4.0);
        assert_eq!(toks[1].value, 2e6);
        assert_eq!(toks[2].value, 1e-9);
    }

    #[test]
    fn rejects_overflow_and_garbage() {
        assert!(lex("1e999").is_err());
        assert!(lex("@").is_err());
        assert!(lex("a / b").is_err());
        let e = lex("height - ;").expect_err("bare minus rejected");
        assert_eq!(e.span.line, 1);
    }

    #[test]
    fn every_lex_is_total_over_ascii_soup() {
        // A pile of printable ASCII: either tokens or a clean error.
        for seed in 0u64..64 {
            let mut s = String::new();
            let mut x = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
            for _ in 0..200 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                s.push((0x20 + (x % 0x5f) as u8) as char);
            }
            let _ = lex(&s);
        }
    }
}
