//! HotSpot-style 3D RC thermal simulator.
//!
//! This crate rebuilds, from scratch, the thermal-modeling substrate used by
//! the Xylem paper (MICRO 2017): a finite-volume resistor/capacitor network
//! over a stack of heterogeneous rectangular layers, equivalent to HotSpot's
//! *grid mode* with the heterogeneity extension of Meng et al. (DAC 2012).
//!
//! # Model overview
//!
//! A [`Stack`] is an ordered list of [`Layer`](layer::Layer)s,
//! top (heat-sink side) to bottom. Every layer is discretized on the same
//! `nx x ny` grid ([`GridSpec`]). Each grid cell carries a
//! thermal conductivity and a volumetric heat capacity rasterized from the
//! layer's [`Floorplan`](floorplan::Floorplan). Cells are connected:
//!
//! * vertically to the cells directly above/below (series half-cell
//!   resistances),
//! * laterally to the 4 in-layer neighbors,
//! * and, at the top of the stack, through a package model
//!   ([`Package`](package::Package)): TIM -> integrated heat spreader (with
//!   peripheral spreading nodes) -> heat sink (with peripheral nodes) ->
//!   convection to ambient.
//!
//! Steady-state temperatures solve `G T = P` (conductance matrix, power
//! vector) via preconditioned conjugate gradient; transients use backward
//! Euler. See [`solve`].
//!
//! # Example
//!
//! ```
//! use xylem_thermal::floorplan::{Floorplan, Rect};
//! use xylem_thermal::grid::GridSpec;
//! use xylem_thermal::layer::Layer;
//! use xylem_thermal::material;
//! use xylem_thermal::package::Package;
//! use xylem_thermal::power::PowerMap;
//! use xylem_thermal::stack::Stack;
//! use xylem_thermal::units::Watts;
//!
//! # fn main() -> Result<(), xylem_thermal::ThermalError> {
//! // A 10 mm x 10 mm silicon die with a single block, under a default package.
//! let die = 0.01;
//! let mut fp = Floorplan::new(die, die);
//! fp.add_block("core", Rect::new(0.0, 0.0, die, die))?;
//! let si = Layer::uniform("si", 100e-6, material::SILICON.clone()).with_floorplan(fp);
//!
//! let stack = Stack::builder(die, die)
//!     .package(Package::default_for_die(die, die))
//!     .layer(si)
//!     .build()?;
//!
//! let grid = GridSpec::new(16, 16);
//! let model = stack.discretize(grid)?;
//! let mut power = PowerMap::zeros(&model);
//! power.add_uniform_layer_power(0, Watts::new(10.0)); // 10 W over the die
//! let temps = model.steady_state(&power)?;
//! assert!(temps.hotspot_of_layer(0).1 > temps.ambient());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adaptive;
pub mod amg;
pub mod analytic;
pub mod block_model;
pub mod csr;
pub mod error;
pub mod floorplan;
pub mod gmg;
pub mod grid;
pub mod layer;
pub mod material;
pub mod model;
pub mod package;
pub mod power;
pub mod reduce;
pub mod report;
pub mod solve;
pub mod stack;
pub mod stencil;
pub mod temperature;
pub mod units;

pub use adaptive::{AdaptiveController, AdaptiveOptions, AdaptiveSummary, BudgetKind};
pub use csr::CsrMatrix;
pub use error::ThermalError;
pub use grid::GridSpec;
pub use model::ThermalModel;
pub use power::PowerMap;
pub use solve::{
    DeadlineGuard, Operator, PreconditionerKind, RecoveryEvent, RecoveryReport, SolverOptions,
    SolverWorkspace,
};
pub use stack::Stack;
pub use stencil::StencilOperator;
pub use temperature::TemperatureField;

/// Result alias for thermal operations.
pub type Result<T> = std::result::Result<T, ThermalError>;
