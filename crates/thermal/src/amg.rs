//! Aggregation-based algebraic multigrid preconditioner.
//!
//! A single preconditioner application is one symmetric V(1,1) cycle:
//!
//! 1. pre-smooth with damped Jacobi (from a zero initial guess, so the
//!    smoother reduces to `z = omega * D^-1 r`),
//! 2. restrict the residual onto pairwise aggregates and recurse,
//! 3. solve the coarsest level exactly with a dense Cholesky factor,
//! 4. prolong the coarse correction back (with a fixed over-correction
//!    factor, which for piecewise-constant aggregation amounts to the
//!    usual "smoothed aggregation lite" scaling and preserves symmetric
//!    positive definiteness of the implied operator `M^-1`),
//! 5. post-smooth with the same damped Jacobi sweep.
//!
//! Coarsening is double-pairwise: two rounds of greedy matching along
//! the strongest negative off-diagonal couplings per level, giving
//! roughly 4x node reduction per level. The coarse operators are
//! Galerkin products `A_c = P^T A P`; with piecewise-constant 0/1
//! prolongation these are computed in a single pass over the fine
//! matrix by summing entries per aggregate pair.
//!
//! The cycle is symmetric (identical pre/post smoothing, symmetric
//! coarse solves), so it is a valid preconditioner for conjugate
//! gradients. On the thermal grids produced by
//! [`crate::model::ThermalModel`] it cuts CG iteration counts by
//! roughly an order of magnitude relative to Jacobi at an apply cost
//! of a few fine-grid matvecs.

use std::sync::Mutex;

use crate::csr::CsrMatrix;

/// Damping factor for the Jacobi smoother. 2/3 is the classic choice
/// for M-matrices; slightly lower is more robust on the strongly
/// anisotropic vertical/lateral coupling ratios seen in 3D stacks.
const SMOOTH_OMEGA: f64 = 0.9;

/// Scaling applied to the prolonged coarse-grid correction.
/// Plain (unsmoothed) aggregation systematically under-corrects; a
/// fixed scalar > 1 recovers most of the lost convergence speed while
/// keeping `M^-1` symmetric positive definite.
const OVER_CORRECTION: f64 = 1.2;

/// Stop coarsening once a level has at most this many nodes and solve
/// it with a dense Cholesky factorization instead.
const COARSE_MAX: usize = 200;

/// Hard cap on hierarchy depth (also the bail-out when pairwise
/// matching stalls on a pathological matrix).
const MAX_LEVELS: usize = 25;

/// Minimum per-level shrink factor; if a coarsening round does worse
/// than this the hierarchy stops growing and the current level becomes
/// the (dense-solved) coarsest one.
const MIN_SHRINK: f64 = 0.9;

/// Dense Cholesky factorization of the coarsest-level operator.
/// Shared with the geometric hierarchy in [`crate::gmg`].
#[derive(Debug, Clone)]
pub(crate) struct DenseChol {
    n: usize,
    /// Lower-triangular factor, row-major, full `n x n` storage.
    l: Vec<f64>,
}

impl DenseChol {
    pub(crate) fn factor(a: &CsrMatrix) -> Self {
        let n = a.n();
        let mut m = vec![0.0f64; n * n];
        for i in 0..n {
            let (cols, vals) = a.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                m[i * n + j as usize] = v;
            }
        }
        // In-place left-looking Cholesky on the lower triangle.
        for i in 0..n {
            for j in 0..=i {
                let mut sum = m[i * n + j];
                for k in 0..j {
                    sum -= m[i * n + k] * m[j * n + k];
                }
                if i == j {
                    m[i * n + j] = sum.max(f64::MIN_POSITIVE).sqrt();
                } else {
                    m[i * n + j] = sum / m[j * n + j];
                }
            }
        }
        DenseChol { n, l: m }
    }

    /// Solves `L L^T x = b` in place.
    pub(crate) fn solve(&self, x: &mut [f64]) {
        let n = self.n;
        for i in 0..n {
            let row = &self.l[i * n..i * n + i];
            let mut sum = x[i];
            for (lik, xk) in row.iter().zip(&*x) {
                sum -= lik * xk;
            }
            x[i] = sum / self.l[i * n + i];
        }
        for i in (0..n).rev() {
            let mut sum = x[i];
            for (k, xk) in x.iter().enumerate().take(n).skip(i + 1) {
                sum -= self.l[k * n + i] * xk;
            }
            x[i] = sum / self.l[i * n + i];
        }
    }
}

/// One level of the hierarchy: the fine operator's inverse diagonal
/// (for smoothing), the aggregate map onto the next-coarser level, and
/// the coarse operator itself.
#[derive(Debug, Clone)]
struct AmgLevel {
    /// `agg[i]` is the coarse index of fine node `i`.
    agg: Vec<u32>,
    /// `1 / A[i][i]` on this (fine) level.
    inv_diag: Vec<f64>,
    /// Galerkin coarse operator `P^T A P`.
    coarse_a: CsrMatrix,
}

/// Per-apply scratch vectors, one set per level plus the coarsest.
#[derive(Debug, Default)]
struct Scratch {
    /// Residual / correction workspace per level (fine-level sized).
    tmp: Vec<Vec<f64>>,
    /// Right-hand side per level below the finest.
    rhs: Vec<Vec<f64>>,
    /// Solution per level below the finest.
    sol: Vec<Vec<f64>>,
}

/// Aggregation AMG hierarchy built from a fine-level [`CsrMatrix`].
#[derive(Debug)]
pub struct AmgHierarchy {
    levels: Vec<AmgLevel>,
    coarse: DenseChol,
    /// Scratch is interior-mutable so `apply` can take `&self` like
    /// the other preconditioners; the solver never applies a
    /// preconditioner concurrently with itself.
    scratch: Mutex<Scratch>,
}

impl Clone for AmgHierarchy {
    fn clone(&self) -> Self {
        AmgHierarchy {
            levels: self.levels.clone(),
            coarse: self.coarse.clone(),
            scratch: Mutex::new(Scratch::default()),
        }
    }
}

/// Greedy pairwise matching along the strongest negative off-diagonal
/// coupling. Returns `(agg, n_coarse)` where `agg[i]` is the aggregate
/// index of node `i`. Unmatched nodes become singleton aggregates.
fn pairwise_aggregate(a: &CsrMatrix) -> (Vec<u32>, usize) {
    let n = a.n();
    const UNSET: u32 = u32::MAX;
    let mut agg = vec![UNSET; n];
    let mut next = 0u32;
    for i in 0..n {
        if agg[i] != UNSET {
            continue;
        }
        // Strongest (most negative) unaggregated neighbour.
        let (cols, vals) = a.row(i);
        let mut best: Option<(usize, f64)> = None;
        for (&j, &v) in cols.iter().zip(vals) {
            let j = j as usize;
            if j == i || agg[j] != UNSET || v >= 0.0 {
                continue;
            }
            if best.is_none_or(|(_, bv)| v < bv) {
                best = Some((j, v));
            }
        }
        agg[i] = next;
        if let Some((j, _)) = best {
            agg[j] = next;
        }
        next += 1;
    }
    (agg, next as usize)
}

/// Galerkin product `P^T A P` for piecewise-constant `P` given by the
/// aggregate map: sums fine entries per (coarse row, coarse col) pair.
/// For a 0/1 restriction this is identical to rediscretizing the
/// conductance network on the aggregated cells, which is how
/// [`crate::gmg`] reuses it for its geometric coarse operators.
pub(crate) fn galerkin(a: &CsrMatrix, agg: &[u32], n_coarse: usize) -> CsrMatrix {
    let mut triplets = Vec::with_capacity(a.nnz());
    for i in 0..a.n() {
        let ci = agg[i];
        let (cols, vals) = a.row(i);
        for (&j, &v) in cols.iter().zip(vals) {
            triplets.push((ci, agg[j as usize], v));
        }
    }
    CsrMatrix::from_triplets_summed(n_coarse, &triplets)
}

/// Composes two aggregate maps (fine -> mid, mid -> coarse).
fn compose(first: &[u32], second: &[u32]) -> Vec<u32> {
    first.iter().map(|&m| second[m as usize]).collect()
}

impl AmgHierarchy {
    /// Builds the full hierarchy from the fine operator.
    #[must_use]
    pub fn build(a: &CsrMatrix) -> Self {
        let mut levels: Vec<AmgLevel> = Vec::new();
        loop {
            // The fine matrix is borrowed; each pushed level owns its
            // coarse operator, which becomes the next round's input.
            let (agg, inv_diag, coarse_a) = {
                let cur = levels.last().map_or(a, |l| &l.coarse_a);
                if cur.n() <= COARSE_MAX || levels.len() >= MAX_LEVELS {
                    break;
                }
                // Double-pairwise coarsening: match once, form the
                // intermediate operator, match again, then compose.
                let (agg1, n1) = pairwise_aggregate(cur);
                let mid = galerkin(cur, &agg1, n1);
                let (agg2, n2) = pairwise_aggregate(&mid);
                if (n2 as f64) > MIN_SHRINK * (cur.n() as f64) {
                    break; // coarsening stalled
                }
                let agg = compose(&agg1, &agg2);
                let coarse_a = galerkin(&mid, &agg2, n2);
                let inv_diag: Vec<f64> = cur.diagonal().iter().map(|&d| 1.0 / d).collect();
                (agg, inv_diag, coarse_a)
            };
            levels.push(AmgLevel {
                agg,
                inv_diag,
                coarse_a,
            });
        }
        let coarse = DenseChol::factor(levels.last().map_or(a, |l| &l.coarse_a));
        AmgHierarchy {
            levels,
            coarse,
            scratch: Mutex::new(Scratch::default()),
        }
    }

    /// Applies one symmetric V(1,1) cycle: `z ≈ A^-1 r`.
    ///
    /// # Panics
    ///
    /// Panics if the internal scratch mutex is poisoned (a prior apply
    /// panicked mid-cycle).
    pub fn apply(&self, a: &CsrMatrix, r: &[f64], z: &mut [f64]) {
        let mut scratch = self.scratch.lock().expect("amg scratch poisoned");
        let s = &mut *scratch;
        // (Re)size scratch lazily.
        if s.tmp.len() != self.levels.len() + 1 {
            s.tmp.clear();
            s.rhs.clear();
            s.sol.clear();
            let mut n = a.n();
            for lvl in &self.levels {
                s.tmp.push(vec![0.0; n]);
                n = lvl.coarse_a.n();
                s.rhs.push(vec![0.0; n]);
                s.sol.push(vec![0.0; n]);
            }
            s.tmp.push(vec![0.0; n]);
        }
        self.cycle(0, a, r, z, s);
    }

    /// Recursive V-cycle on level `lvl`; `a` is that level's operator.
    fn cycle(&self, lvl: usize, a: &CsrMatrix, r: &[f64], z: &mut [f64], s: &mut Scratch) {
        if lvl == self.levels.len() {
            z.copy_from_slice(r);
            self.coarse.solve(z);
            return;
        }
        let level = &self.levels[lvl];
        let n = a.n();

        // Pre-smooth from zero: z = omega * D^-1 r.
        for i in 0..n {
            z[i] = SMOOTH_OMEGA * level.inv_diag[i] * r[i];
        }

        // Residual tmp = r - A z, restricted onto aggregates.
        let (mut tmp, mut rhs, mut sol) = (
            std::mem::take(&mut s.tmp[lvl]),
            std::mem::take(&mut s.rhs[lvl]),
            std::mem::take(&mut s.sol[lvl]),
        );
        a.matvec_serial(z, &mut tmp);
        rhs.iter_mut().for_each(|v| *v = 0.0);
        for i in 0..n {
            rhs[level.agg[i] as usize] += r[i] - tmp[i];
        }

        self.cycle(lvl + 1, &level.coarse_a, &rhs, &mut sol, s);

        // Prolong with over-correction.
        for i in 0..n {
            z[i] += OVER_CORRECTION * sol[level.agg[i] as usize];
        }

        // Post-smooth: z += omega * D^-1 (r - A z).
        a.matvec_serial(z, &mut tmp);
        for i in 0..n {
            z[i] += SMOOTH_OMEGA * level.inv_diag[i] * (r[i] - tmp[i]);
        }

        s.tmp[lvl] = tmp;
        s.rhs[lvl] = rhs;
        s.sol[lvl] = sol;
    }

    /// Number of levels including the dense-solved coarsest one.
    #[must_use]
    pub fn num_levels(&self) -> usize {
        self.levels.len() + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 1D Poisson-like SPD matrix with an ambient leak on the diagonal.
    fn tridiag(n: usize) -> CsrMatrix {
        let mut adjacency: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
        let mut diagonal = vec![0.1; n];
        for i in 0..n {
            if i + 1 < n {
                adjacency[i].push((i as u32 + 1, 1.0));
                adjacency[i + 1].push((i as u32, 1.0));
            }
        }
        for (i, row) in adjacency.iter().enumerate() {
            diagonal[i] += row.iter().map(|&(_, g)| g).sum::<f64>();
        }
        CsrMatrix::from_adjacency(&adjacency, &diagonal)
    }

    #[test]
    fn dense_cholesky_solves_exactly() {
        let a = tridiag(12);
        let chol = DenseChol::factor(&a);
        let x_true: Vec<f64> = (0..12).map(|i| (i as f64).sin() + 2.0).collect();
        let mut b = vec![0.0; 12];
        a.matvec_serial(&x_true, &mut b);
        chol.solve(&mut b);
        for (got, want) in b.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-10);
        }
    }

    #[test]
    fn pairwise_matching_covers_all_nodes() {
        let a = tridiag(101);
        let (agg, nc) = pairwise_aggregate(&a);
        assert!(nc < 101);
        assert!(nc >= 51); // pairs at best
        let mut seen = vec![false; nc];
        for &g in &agg {
            seen[g as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn galerkin_preserves_symmetry_and_spd_diagonal() {
        let a = tridiag(64);
        let (agg, nc) = pairwise_aggregate(&a);
        let c = galerkin(&a, &agg, nc);
        assert_eq!(c.n(), nc);
        for i in 0..nc {
            let (cols, vals) = c.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                // Symmetric: find (j, i).
                let (jc, jv) = c.row(j as usize);
                let pos = jc.iter().position(|&k| k == i as u32).expect("symmetric");
                assert!((jv[pos] - v).abs() < 1e-12);
            }
            assert!(c.row(i).1[c.diag_pos(i)] > 0.0);
        }
    }

    #[test]
    fn small_matrix_builds_single_dense_level() {
        let a = tridiag(10);
        let h = AmgHierarchy::build(&a);
        assert_eq!(h.num_levels(), 1);
        let b: Vec<f64> = (0..10).map(|i| (i as f64) * 0.3 + 1.0).collect();
        let mut z = vec![0.0; 10];
        h.apply(&a, &b, &mut z);
        // Single-level hierarchy = exact solve.
        let mut az = vec![0.0; 10];
        a.matvec_serial(&z, &mut az);
        for (got, want) in az.iter().zip(&b) {
            assert!((got - want).abs() < 1e-9);
        }
    }

    #[test]
    fn v_cycle_contracts_the_error() {
        // Richardson iteration with the V-cycle as the preconditioner
        // must contract on a large 1D problem.
        let n = 5000;
        let a = tridiag(n);
        let h = AmgHierarchy::build(&a);
        assert!(h.num_levels() > 1);
        let x_true: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.01).cos()).collect();
        let mut b = vec![0.0; n];
        a.matvec_serial(&x_true, &mut b);
        let mut x = vec![0.0; n];
        let mut r = b.clone();
        let norm0: f64 = r.iter().map(|v| v * v).sum::<f64>().sqrt();
        let mut z = vec![0.0; n];
        let mut ax = vec![0.0; n];
        for _ in 0..30 {
            h.apply(&a, &r, &mut z);
            for i in 0..n {
                x[i] += z[i];
            }
            a.matvec_serial(&x, &mut ax);
            for i in 0..n {
                r[i] = b[i] - ax[i];
            }
        }
        let norm: f64 = r.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(
            norm < 1e-6 * norm0,
            "V-cycle Richardson failed to contract: {norm:.3e} vs {norm0:.3e}"
        );
    }
}
