//! Geometric multigrid preconditioner for the structured stack grid.
//!
//! Where [`crate::amg`] discovers its coarse spaces by pairwise matching
//! on matrix entries, this hierarchy exploits the geometry a
//! [`crate::model::ThermalModel`] matrix is known to have: `nl` layers
//! of `nx x ny` cells plus a handful of irregular package tail nodes.
//!
//! * **Coarsening is in-plane only** (`nx`, `ny` halve per level, each
//!   cell aggregating a 2x2 in-plane patch); the heterogeneous z-stack —
//!   thin D2D interfaces next to thick silicon dies, orders of magnitude
//!   apart in vertical conductance — stays fully resolved on every
//!   level, so no level ever mixes materials across layer boundaries.
//!   Tail nodes are carried through unaggregated. Coarse operators come
//!   from [`crate::amg::galerkin`] with this geometric 0/1 aggregate
//!   map, which for piecewise-constant restriction *is* the
//!   rediscretized conductance network on the coarsened cells (parallel
//!   conductances sum) — one pass over the fine matrix, no
//!   matrix-matrix product and no matching heuristics.
//! * **Smoothing is damped z-line block Jacobi**: each in-plane cell
//!   column owns a tridiagonal block (the vertical couplings through
//!   the stack), factored once as `L D L^T` at build time and solved
//!   per sweep. Point smoothers degrade badly under pure in-plane
//!   coarsening because the vertical coupling dominates; solving whole
//!   z-lines exactly is the standard semicoarsening companion and keeps
//!   each sweep a fixed, deterministic sequence of plane-local
//!   operations (no cross-node reductions, so thread count can never
//!   reorder a sum).
//! * **The cycle is a symmetric V(1,1)** — identical pre/post smoothing
//!   around an over-corrected coarse-grid correction, dense Cholesky on
//!   the coarsest level — so `M^-1` is symmetric positive definite and
//!   valid for conjugate gradients, exactly like the AMG cycle it
//!   plugs in beside (see [`crate::solve`]).
//!
//! Compared to AMG on the same matrix the setup does no matching, no
//! triple products beyond one summed pass per level, and the z-line
//! factorization is O(n); apply trades the point-Jacobi sweeps for
//! tridiagonal solves at the same memory traffic. The win criterion
//! (BENCH_thermal.json) is setup+apply beating AMG at 64x64 and up.

use std::sync::Mutex;

use crate::amg::{galerkin, DenseChol};
use crate::csr::CsrMatrix;

/// Damping for the z-line block-Jacobi smoother. Block smoothers
/// tolerate less damping than point Jacobi; 0.9 matches the AMG choice
/// and is safe for the M-matrices the model produces.
const SMOOTH_OMEGA: f64 = 0.9;

/// Scaling applied to the prolonged coarse-grid correction; see
/// [`crate::amg`] — piecewise-constant aggregation under-corrects and a
/// fixed scalar > 1 recovers most of it while preserving SPD.
const OVER_CORRECTION: f64 = 1.2;

/// Stop coarsening once a level has at most this many in-plane cells;
/// the remaining `nl * cells + tails` system goes to dense Cholesky.
const COARSE_CELLS_MAX: usize = 16;

/// Hard cap on hierarchy depth.
const MAX_LEVELS: usize = 16;

/// One level: the fine-side smoother factors, the geometric aggregate
/// map, and the rediscretized coarse operator.
#[derive(Debug, Clone)]
struct GmgLevel {
    /// In-plane dimensions of *this* (fine) level.
    nx: usize,
    ny: usize,
    /// `nx * ny`.
    cells: usize,
    /// Structured nodes on this level (`nl * cells`).
    grid_nodes: usize,
    /// Total nodes on this level (structured + tails).
    n: usize,
    /// `1 / D_l` of each cell column's `L D L^T` factor, indexed by
    /// node (`l * cells + c`) — same plane layout as the operator.
    inv_d: Vec<f64>,
    /// Sub-diagonal multipliers `L`: `sub[l * cells + c]` couples layer
    /// `l` to `l + 1` in column `c`; length `(nl - 1) * cells`.
    sub: Vec<f64>,
    /// `1 / diag` of the tail rows (smoothed pointwise).
    tail_inv_diag: Vec<f64>,
    /// `agg[i]` is the coarse node of fine node `i`.
    agg: Vec<u32>,
    /// Rediscretized coarse operator.
    coarse_a: CsrMatrix,
}

/// Per-apply scratch vectors, one set per level.
#[derive(Debug, Default)]
struct Scratch {
    /// Residual workspace per level (fine-level sized).
    tmp: Vec<Vec<f64>>,
    /// Smoother output per level (fine-level sized).
    cor: Vec<Vec<f64>>,
    /// Restricted right-hand side per level below the finest.
    rhs: Vec<Vec<f64>>,
    /// Coarse solution per level below the finest.
    sol: Vec<Vec<f64>>,
}

/// Geometric multigrid hierarchy over the structured stack grid.
#[derive(Debug)]
pub struct GmgHierarchy {
    /// Number of z-layers, constant across levels.
    nl: usize,
    levels: Vec<GmgLevel>,
    coarse: DenseChol,
    /// Interior-mutable so `apply` can take `&self` like the other
    /// preconditioners; the solver never applies one concurrently with
    /// itself.
    scratch: Mutex<Scratch>,
}

impl Clone for GmgHierarchy {
    fn clone(&self) -> Self {
        GmgHierarchy {
            nl: self.nl,
            levels: self.levels.clone(),
            coarse: self.coarse.clone(),
            scratch: Mutex::new(Scratch::default()),
        }
    }
}

/// Factors every z-line tridiagonal block of `a` (dims `nx x ny`, `nl`
/// layers) as `L D L^T`, plus inverse diagonals for the tail rows.
fn zline_factors(a: &CsrMatrix, nx: usize, ny: usize, nl: usize) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let cells = nx * ny;
    let grid_nodes = nl * cells;
    let mut inv_d = vec![0.0; grid_nodes];
    let mut sub = vec![0.0; cells * nl.saturating_sub(1)];
    for c in 0..cells {
        let mut prev_d = 1.0;
        let mut prev_b = 0.0;
        for l in 0..nl {
            let i = l * cells + c;
            let (cols, vals) = a.row(i);
            let d = vals[a.diag_pos(i)];
            let dl = if l == 0 {
                d
            } else {
                let m = prev_b / prev_d;
                sub[(l - 1) * cells + c] = m;
                d - m * prev_b
            };
            // SPD tridiagonal blocks of an M-matrix keep D > 0; the
            // clamp only guards degenerate hand-built matrices.
            let dl = dl.max(f64::MIN_POSITIVE);
            inv_d[i] = 1.0 / dl;
            prev_d = dl;
            if l + 1 < nl {
                let below = (i + cells) as u32;
                prev_b = cols
                    .iter()
                    .position(|&cc| cc == below)
                    .map_or(0.0, |p| vals[p]);
            }
        }
    }
    let tail_inv_diag = (grid_nodes..a.n())
        .map(|i| 1.0 / a.row(i).1[a.diag_pos(i)].max(f64::MIN_POSITIVE))
        .collect();
    (inv_d, sub, tail_inv_diag)
}

impl GmgLevel {
    /// `z = M^-1 r` for the block-Jacobi matrix `M` (z-line tridiagonal
    /// blocks + tail diagonals). Plane-by-plane sweeps: forward
    /// substitution down the stack, diagonal scale, back substitution
    /// up — every operation is node-local within its plane, so the
    /// order is fixed and thread-count independent.
    fn block_solve(&self, nl: usize, r: &[f64], z: &mut [f64]) {
        let cells = self.cells;
        z[..cells].copy_from_slice(&r[..cells]);
        for l in 1..nl {
            let base = l * cells;
            for c in 0..cells {
                z[base + c] = r[base + c] - self.sub[base - cells + c] * z[base - cells + c];
            }
        }
        for (zi, di) in z[..self.grid_nodes].iter_mut().zip(&self.inv_d) {
            *zi *= di;
        }
        for l in (0..nl.saturating_sub(1)).rev() {
            let base = l * cells;
            for c in 0..cells {
                z[base + c] -= self.sub[base + c] * z[base + cells + c];
            }
        }
        for (t, di) in self.tail_inv_diag.iter().enumerate() {
            z[self.grid_nodes + t] = r[self.grid_nodes + t] * di;
        }
    }
}

impl GmgHierarchy {
    /// Builds the hierarchy for a structured matrix with `nl` layers of
    /// `nx x ny` cells (plus tail rows, if any).
    ///
    /// Returns `None` on a dimension mismatch (`a` smaller than the
    /// structured block implies the geometry description is wrong).
    #[must_use]
    pub fn build(a: &CsrMatrix, nx: usize, ny: usize, nl: usize) -> Option<Self> {
        if nx == 0 || ny == 0 || nl == 0 {
            return None;
        }
        let grid_nodes = nl.checked_mul(nx.checked_mul(ny)?)?;
        if a.n() < grid_nodes {
            return None;
        }
        let n_tail = a.n() - grid_nodes;

        let mut levels: Vec<GmgLevel> = Vec::new();
        let (mut lnx, mut lny) = (nx, ny);
        loop {
            let cur = levels.last().map_or(a, |l| &l.coarse_a);
            let cells = lnx * lny;
            if cells <= COARSE_CELLS_MAX || levels.len() >= MAX_LEVELS {
                break;
            }
            let cnx = lnx.div_ceil(2);
            let cny = lny.div_ceil(2);
            if cnx == lnx && cny == lny {
                break;
            }
            let ccells = cnx * cny;
            let cgrid = nl * ccells;
            let mut agg = Vec::with_capacity(cur.n());
            for l in 0..nl {
                for iy in 0..lny {
                    for ix in 0..lnx {
                        agg.push((l * ccells + (iy / 2) * cnx + ix / 2) as u32);
                    }
                }
            }
            for t in 0..n_tail {
                agg.push((cgrid + t) as u32);
            }
            let coarse_a = galerkin(cur, &agg, cgrid + n_tail);
            let (inv_d, sub, tail_inv_diag) = zline_factors(cur, lnx, lny, nl);
            levels.push(GmgLevel {
                nx: lnx,
                ny: lny,
                cells,
                grid_nodes: nl * cells,
                n: cur.n(),
                inv_d,
                sub,
                tail_inv_diag,
                agg,
                coarse_a,
            });
            lnx = cnx;
            lny = cny;
        }
        let coarse = DenseChol::factor(levels.last().map_or(a, |l| &l.coarse_a));
        Some(GmgHierarchy {
            nl,
            levels,
            coarse,
            scratch: Mutex::new(Scratch::default()),
        })
    }

    /// Applies one symmetric V(1,1) cycle: `z ≈ A^-1 r`. `a` must be
    /// the matrix the hierarchy was built from (the finest operator).
    ///
    /// # Panics
    ///
    /// Panics if the internal scratch mutex is poisoned (a prior apply
    /// panicked mid-cycle).
    pub fn apply(&self, a: &CsrMatrix, r: &[f64], z: &mut [f64]) {
        let mut scratch = self.scratch.lock().expect("gmg scratch poisoned");
        let s = &mut *scratch;
        if s.tmp.len() != self.levels.len() + 1 {
            s.tmp.clear();
            s.cor.clear();
            s.rhs.clear();
            s.sol.clear();
            let mut n = a.n();
            for lvl in &self.levels {
                s.tmp.push(vec![0.0; n]);
                s.cor.push(vec![0.0; n]);
                n = lvl.coarse_a.n();
                s.rhs.push(vec![0.0; n]);
                s.sol.push(vec![0.0; n]);
            }
            s.tmp.push(vec![0.0; n]);
            s.cor.push(vec![0.0; n]);
        }
        self.cycle(0, a, r, z, s);
    }

    /// Recursive V-cycle on level `lvl`; `a` is that level's operator.
    fn cycle(&self, lvl: usize, a: &CsrMatrix, r: &[f64], z: &mut [f64], s: &mut Scratch) {
        if lvl == self.levels.len() {
            z.copy_from_slice(r);
            self.coarse.solve(z);
            return;
        }
        let level = &self.levels[lvl];
        let n = level.n;

        let (mut tmp, mut cor, mut rhs, mut sol) = (
            std::mem::take(&mut s.tmp[lvl]),
            std::mem::take(&mut s.cor[lvl]),
            std::mem::take(&mut s.rhs[lvl]),
            std::mem::take(&mut s.sol[lvl]),
        );

        // Pre-smooth from zero: z = omega * M^-1 r.
        level.block_solve(self.nl, r, z);
        for zi in z.iter_mut() {
            *zi *= SMOOTH_OMEGA;
        }

        // Residual, restricted onto the geometric aggregates. `matvec`
        // parallelizes on the finest level when large enough; it is
        // bitwise identical to the serial sweep, and the restriction
        // itself runs in fixed fine-node order.
        a.matvec(z, &mut tmp);
        rhs.iter_mut().for_each(|v| *v = 0.0);
        for i in 0..n {
            rhs[level.agg[i] as usize] += r[i] - tmp[i];
        }

        self.cycle(lvl + 1, &level.coarse_a, &rhs, &mut sol, s);

        // Prolong with over-correction.
        for i in 0..n {
            z[i] += OVER_CORRECTION * sol[level.agg[i] as usize];
        }

        // Post-smooth: z += omega * M^-1 (r - A z).
        a.matvec(z, &mut tmp);
        for i in 0..n {
            tmp[i] = r[i] - tmp[i];
        }
        level.block_solve(self.nl, &tmp, &mut cor);
        for i in 0..n {
            z[i] += SMOOTH_OMEGA * cor[i];
        }

        s.tmp[lvl] = tmp;
        s.cor[lvl] = cor;
        s.rhs[lvl] = rhs;
        s.sol[lvl] = sol;
    }

    /// Number of levels including the dense-solved coarsest one.
    #[must_use]
    pub fn num_levels(&self) -> usize {
        self.levels.len() + 1
    }

    /// In-plane dimensions `(nx, ny)` of the finest coarsened level, or
    /// `None` when the whole system went straight to the dense solve.
    #[must_use]
    pub fn fine_dims(&self) -> Option<(usize, usize)> {
        self.levels.first().map(|l| (l.nx, l.ny))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Structured stack matrix with strongly anisotropic coupling
    /// (vertical conductance ~100x lateral, like a thin-layer stack)
    /// and an ambient leak on the top layer.
    fn stack_matrix(nx: usize, ny: usize, nl: usize) -> CsrMatrix {
        let cells = nx * ny;
        let n = nl * cells;
        let mut nbrs: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
        let mut link = |nbrs: &mut Vec<Vec<(u32, f64)>>, i: usize, j: usize, g: f64| {
            nbrs[i].push((j as u32, g));
            nbrs[j].push((i as u32, g));
        };
        for l in 0..nl {
            // Alternate "thick" and "thin" layers for heterogeneity.
            let gv = if l % 2 == 0 { 120.0 } else { 900.0 };
            for iy in 0..ny {
                for ix in 0..nx {
                    let i = l * cells + iy * nx + ix;
                    if ix + 1 < nx {
                        link(&mut nbrs, i, i + 1, 1.0 + 0.1 * (l as f64));
                    }
                    if iy + 1 < ny {
                        link(&mut nbrs, i, i + nx, 1.3);
                    }
                    if l + 1 < nl {
                        link(&mut nbrs, i, i + cells, gv);
                    }
                }
            }
        }
        let mut diagonal = vec![0.0; n];
        for (i, row) in nbrs.iter().enumerate() {
            let leak = if i < cells { 2.0 } else { 0.0 };
            let mut s = leak;
            for &(_, g) in row {
                s += g;
            }
            diagonal[i] = s;
        }
        CsrMatrix::from_adjacency(&nbrs, &diagonal)
    }

    #[test]
    fn small_grid_is_a_single_dense_level() {
        let a = stack_matrix(4, 4, 3);
        let h = GmgHierarchy::build(&a, 4, 4, 3).expect("build");
        assert_eq!(h.num_levels(), 1);
        let b: Vec<f64> = (0..a.n()).map(|i| (i as f64) * 0.1 + 1.0).collect();
        let mut z = vec![0.0; a.n()];
        h.apply(&a, &b, &mut z);
        let mut az = vec![0.0; a.n()];
        a.matvec_serial(&z, &mut az);
        for (got, want) in az.iter().zip(&b) {
            assert!((got - want).abs() < 1e-8 * want.abs().max(1.0));
        }
    }

    #[test]
    fn coarsening_keeps_every_z_layer() {
        let a = stack_matrix(32, 32, 5);
        let h = GmgHierarchy::build(&a, 32, 32, 5).expect("build");
        assert!(h.num_levels() >= 3, "expected real coarsening");
        for lvl in &h.levels {
            assert_eq!(lvl.grid_nodes, 5 * lvl.cells);
            assert_eq!(lvl.coarse_a.n() % 5, 0, "coarse level lost a layer");
        }
    }

    #[test]
    fn zline_solve_inverts_the_block_matrix() {
        let (nx, ny, nl) = (3, 2, 6);
        let a = stack_matrix(nx, ny, nl);
        let (inv_d, sub, tail_inv_diag) = zline_factors(&a, nx, ny, nl);
        let lvl = GmgLevel {
            nx,
            ny,
            cells: nx * ny,
            grid_nodes: nl * nx * ny,
            n: a.n(),
            inv_d,
            sub,
            tail_inv_diag,
            agg: Vec::new(),
            coarse_a: CsrMatrix::from_triplets(1, &[(0, 0, 1.0)]),
        };
        // M z = r where M keeps only diagonal + vertical couplings.
        let r: Vec<f64> = (0..a.n()).map(|i| ((i as f64) * 0.4).cos() + 2.0).collect();
        let mut z = vec![0.0; a.n()];
        lvl.block_solve(nl, &r, &mut z);
        let cells = nx * ny;
        for i in 0..a.n() {
            let (cols, vals) = a.row(i);
            let mut acc = 0.0;
            for (&j, &v) in cols.iter().zip(vals) {
                let j = j as usize;
                let vertical = j == i || j + cells == i || i + cells == j;
                if vertical {
                    acc += v * z[j];
                }
            }
            assert!(
                (acc - r[i]).abs() < 1e-10 * r[i].abs().max(1.0),
                "row {i}: {acc} vs {}",
                r[i]
            );
        }
    }

    #[test]
    fn v_cycle_contracts_on_an_anisotropic_stack() {
        let (nx, ny, nl) = (24, 24, 7);
        let a = stack_matrix(nx, ny, nl);
        let h = GmgHierarchy::build(&a, nx, ny, nl).expect("build");
        assert!(h.num_levels() > 2);
        let n = a.n();
        let x_true: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.013).sin()).collect();
        let mut b = vec![0.0; n];
        a.matvec_serial(&x_true, &mut b);
        let mut x = vec![0.0; n];
        let mut r = b.clone();
        let norm0: f64 = r.iter().map(|v| v * v).sum::<f64>().sqrt();
        let mut z = vec![0.0; n];
        let mut ax = vec![0.0; n];
        for _ in 0..40 {
            h.apply(&a, &r, &mut z);
            for i in 0..n {
                x[i] += z[i];
            }
            a.matvec_serial(&x, &mut ax);
            for i in 0..n {
                r[i] = b[i] - ax[i];
            }
        }
        let norm: f64 = r.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(
            norm < 1e-8 * norm0,
            "V-cycle Richardson failed to contract: {norm:.3e} vs {norm0:.3e}"
        );
    }

    #[test]
    fn mismatched_geometry_is_rejected() {
        let a = stack_matrix(4, 4, 2);
        assert!(GmgHierarchy::build(&a, 8, 8, 2).is_none());
        assert!(GmgHierarchy::build(&a, 4, 0, 2).is_none());
    }
}
