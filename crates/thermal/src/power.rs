//! Power maps: heat injected into the user layers of a model.
//!
//! A [`PowerMap`] stores watts per grid cell for every user layer of a
//! specific [`ThermalModel`]. Power is usually
//! specified per floorplan block and spread over cells using the block's
//! rasterization weights.

use serde::{Deserialize, Serialize};

use crate::error::ThermalError;
use crate::grid::GridSpec;
use crate::model::ThermalModel;
use crate::units::Watts;

/// Watts per cell, for every user layer of a model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerMap {
    grid: GridSpec,
    n_layers: usize,
    /// `data[layer * cells + cell]`, watts.
    data: Vec<f64>,
}

impl PowerMap {
    /// Creates an all-zero power map shaped for `model`.
    pub fn zeros(model: &ThermalModel) -> Self {
        PowerMap {
            grid: model.grid(),
            n_layers: model.n_user_layers(),
            data: vec![0.0; model.n_user_layers() * model.grid().cells()],
        }
    }

    /// Number of user layers.
    pub fn n_layers(&self) -> usize {
        self.n_layers
    }

    /// Cells per layer.
    pub fn cells(&self) -> usize {
        self.grid.cells()
    }

    /// The watts assigned to the cells of `layer`.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    pub fn layer_slice(&self, layer: usize) -> &[f64] {
        assert!(layer < self.n_layers, "layer {layer} out of range");
        let c = self.cells();
        &self.data[layer * c..(layer + 1) * c]
    }

    /// Adds `power` uniformly over all cells of `layer`.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    pub fn add_uniform_layer_power(&mut self, layer: usize, power: Watts) {
        assert!(layer < self.n_layers, "layer {layer} out of range");
        let c = self.cells();
        let per_cell = power.get() / c as f64;
        for v in &mut self.data[layer * c..(layer + 1) * c] {
            *v += per_cell;
        }
    }

    /// Adds `power` to a single cell.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn add_cell_power(&mut self, layer: usize, ix: usize, iy: usize, power: Watts) {
        assert!(layer < self.n_layers, "layer {layer} out of range");
        let c = self.cells();
        let i = self.grid.index(ix, iy);
        self.data[layer * c + i] += power.get();
    }

    /// Adds `power` to a named floorplan block of `layer`, spread over the
    /// block's cells in proportion to area.
    ///
    /// # Errors
    ///
    /// Propagates [`ThermalModel::block_weights`] errors.
    pub fn add_block_power(
        &mut self,
        model: &ThermalModel,
        layer: usize,
        block: &str,
        power: Watts,
    ) -> Result<(), ThermalError> {
        let weights = model.block_weights(layer, block)?;
        let c = self.cells();
        for &(cell, w) in weights {
            self.data[layer * c + cell] += power.get() * w;
        }
        Ok(())
    }

    /// Multiplies every cell by `factor`.
    pub fn scale(&mut self, factor: f64) {
        for v in &mut self.data {
            *v *= factor;
        }
    }

    /// Adds another map (same shape) into this one.
    ///
    /// # Errors
    ///
    /// [`ThermalError::PowerMapMismatch`] if shapes differ.
    pub fn accumulate(&mut self, other: &PowerMap) -> Result<(), ThermalError> {
        if self.data.len() != other.data.len() || self.grid != other.grid {
            return Err(ThermalError::PowerMapMismatch {
                map_nodes: other.data.len(),
                model_nodes: self.data.len(),
            });
        }
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
        Ok(())
    }

    /// Total power over all layers.
    pub fn total(&self) -> Watts {
        Watts::new(self.data.iter().sum())
    }

    /// Total power of one layer.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    pub fn layer_total(&self, layer: usize) -> Watts {
        Watts::new(self.layer_slice(layer).iter().sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floorplan::{Floorplan, Rect};
    use crate::layer::Layer;
    use crate::material::SILICON;
    use crate::stack::Stack;

    fn model_with_blocks() -> ThermalModel {
        let die = 8e-3;
        let mut fp = Floorplan::new(die, die);
        fp.add_block("left", Rect::new(0.0, 0.0, die / 2.0, die))
            .unwrap();
        fp.add_block("right", Rect::new(die / 2.0, 0.0, die / 2.0, die))
            .unwrap();
        let stack = Stack::builder(die, die)
            .layer(Layer::uniform("si", 100e-6, SILICON.clone()).with_floorplan(fp))
            .build()
            .unwrap();
        stack.discretize(GridSpec::new(8, 8)).unwrap()
    }

    #[test]
    fn uniform_power_totals() {
        let m = model_with_blocks();
        let mut p = PowerMap::zeros(&m);
        p.add_uniform_layer_power(0, Watts::new(12.0));
        assert!((p.total().get() - 12.0).abs() < 1e-12);
        assert!((p.layer_total(0).get() - 12.0).abs() < 1e-12);
    }

    #[test]
    fn block_power_spreads_over_block_cells_only() {
        let m = model_with_blocks();
        let mut p = PowerMap::zeros(&m);
        p.add_block_power(&m, 0, "left", Watts::new(8.0)).unwrap();
        assert!((p.total().get() - 8.0).abs() < 1e-12);
        let g = m.grid();
        let s = p.layer_slice(0);
        for iy in 0..8 {
            for ix in 0..8 {
                let v = s[g.index(ix, iy)];
                if ix < 4 {
                    assert!(v > 0.0);
                } else {
                    assert_eq!(v, 0.0);
                }
            }
        }
    }

    #[test]
    fn unknown_block_rejected() {
        let m = model_with_blocks();
        let mut p = PowerMap::zeros(&m);
        assert!(p.add_block_power(&m, 0, "nope", Watts::new(1.0)).is_err());
    }

    #[test]
    fn scale_and_accumulate() {
        let m = model_with_blocks();
        let mut a = PowerMap::zeros(&m);
        a.add_uniform_layer_power(0, Watts::new(10.0));
        a.scale(0.5);
        assert!((a.total().get() - 5.0).abs() < 1e-12);
        let mut b = PowerMap::zeros(&m);
        b.add_uniform_layer_power(0, Watts::new(1.0));
        a.accumulate(&b).unwrap();
        assert!((a.total().get() - 6.0).abs() < 1e-12);
    }
}
