//! Rectangular floorplans: named blocks on a die outline.
//!
//! A [`Floorplan`] describes the 2-D geometry of one layer: a die outline of
//! `width x height` meters, covered by named, non-overlapping rectangular
//! [`Block`]s. Blocks are the unit at which heterogeneous conductivities and
//! power are specified; rasterization onto the solver grid happens in
//! [`crate::grid`].

use serde::{Deserialize, Serialize};

use crate::error::ThermalError;

/// Geometric tolerance (meters) used by overlap/containment checks.
///
/// 1 nm: far below any feature size in a stack model, far above f64 noise.
pub const GEOM_EPS: f64 = 1e-9;

/// An axis-aligned rectangle, in meters, with the origin at the die's
/// lower-left corner.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    x: f64,
    y: f64,
    width: f64,
    height: f64,
}

impl Rect {
    /// Creates a rectangle from its lower-left corner and size.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is non-finite or if the size is negative.
    /// (Zero-sized rectangles are permitted; they are useful as degenerate
    /// placeholders and never rasterize to anything.)
    pub fn new(x: f64, y: f64, width: f64, height: f64) -> Self {
        assert!(
            x.is_finite() && y.is_finite() && width.is_finite() && height.is_finite(),
            "rect coordinates must be finite"
        );
        assert!(width >= 0.0 && height >= 0.0, "rect size must be >= 0");
        Rect {
            x,
            y,
            width,
            height,
        }
    }

    /// Creates a rectangle from its two opposite corners.
    pub fn from_corners(x0: f64, y0: f64, x1: f64, y1: f64) -> Self {
        Rect::new(x0.min(x1), y0.min(y1), (x1 - x0).abs(), (y1 - y0).abs())
    }

    /// Lower-left x coordinate (m).
    pub fn x(&self) -> f64 {
        self.x
    }

    /// Lower-left y coordinate (m).
    pub fn y(&self) -> f64 {
        self.y
    }

    /// Width (m).
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Height (m).
    pub fn height(&self) -> f64 {
        self.height
    }

    /// Right edge x coordinate (m).
    pub fn x_max(&self) -> f64 {
        self.x + self.width
    }

    /// Top edge y coordinate (m).
    pub fn y_max(&self) -> f64 {
        self.y + self.height
    }

    /// Area in m^2.
    pub fn area(&self) -> f64 {
        self.width * self.height
    }

    /// Center point (m, m).
    pub fn center(&self) -> (f64, f64) {
        (self.x + self.width / 2.0, self.y + self.height / 2.0)
    }

    /// Whether the point is inside (boundary-inclusive).
    pub fn contains_point(&self, px: f64, py: f64) -> bool {
        px >= self.x - GEOM_EPS
            && px <= self.x_max() + GEOM_EPS
            && py >= self.y - GEOM_EPS
            && py <= self.y_max() + GEOM_EPS
    }

    /// Whether `other` lies entirely inside this rectangle (within
    /// [`GEOM_EPS`]).
    pub fn contains_rect(&self, other: &Rect) -> bool {
        other.x >= self.x - GEOM_EPS
            && other.y >= self.y - GEOM_EPS
            && other.x_max() <= self.x_max() + GEOM_EPS
            && other.y_max() <= self.y_max() + GEOM_EPS
    }

    /// Area of the intersection with `other`, in m^2 (0 if disjoint).
    pub fn intersection_area(&self, other: &Rect) -> f64 {
        let w = (self.x_max().min(other.x_max()) - self.x.max(other.x)).max(0.0);
        let h = (self.y_max().min(other.y_max()) - self.y.max(other.y)).max(0.0);
        w * h
    }

    /// Whether the two rectangles overlap by more than [`GEOM_EPS`]-sized
    /// slivers (shared edges do not count as overlap).
    pub fn overlaps(&self, other: &Rect) -> bool {
        let wx = self.x_max().min(other.x_max()) - self.x.max(other.x);
        let wy = self.y_max().min(other.y_max()) - self.y.max(other.y);
        wx > GEOM_EPS && wy > GEOM_EPS
    }

    /// Euclidean distance between the centers of two rectangles (m).
    pub fn center_distance(&self, other: &Rect) -> f64 {
        let (ax, ay) = self.center();
        let (bx, by) = other.center();
        ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt()
    }

    /// Returns this rectangle grown by `margin` on every side.
    pub fn expanded(&self, margin: f64) -> Rect {
        Rect::new(
            self.x - margin,
            self.y - margin,
            self.width + 2.0 * margin,
            self.height + 2.0 * margin,
        )
    }
}

/// A named rectangular block within a floorplan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Block {
    name: String,
    rect: Rect,
}

impl Block {
    /// Creates a named block.
    pub fn new(name: impl Into<String>, rect: Rect) -> Self {
        Block {
            name: name.into(),
            rect,
        }
    }

    /// Block name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Block geometry.
    pub fn rect(&self) -> &Rect {
        &self.rect
    }
}

/// A die floorplan: an outline and a set of named blocks.
///
/// Blocks may not overlap and must lie within the outline. Full coverage is
/// *not* required: cells not covered by any block take the layer's base
/// material (see [`crate::layer::Layer`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Floorplan {
    width: f64,
    height: f64,
    blocks: Vec<Block>,
}

impl Floorplan {
    /// Creates an empty floorplan with the given outline (meters).
    ///
    /// # Panics
    ///
    /// Panics if the outline is not strictly positive and finite.
    pub fn new(width: f64, height: f64) -> Self {
        assert!(
            width.is_finite() && width > 0.0 && height.is_finite() && height > 0.0,
            "floorplan outline must be positive and finite"
        );
        Floorplan {
            width,
            height,
            blocks: Vec::new(),
        }
    }

    /// Outline width (m).
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Outline height (m).
    pub fn height(&self) -> f64 {
        self.height
    }

    /// Outline rectangle.
    pub fn outline(&self) -> Rect {
        Rect::new(0.0, 0.0, self.width, self.height)
    }

    /// Outline area (m^2).
    pub fn area(&self) -> f64 {
        self.width * self.height
    }

    /// Adds a block, validating containment and non-overlap.
    ///
    /// # Errors
    ///
    /// [`ThermalError::BadFloorplan`] if the block escapes the outline,
    /// overlaps an existing block, or duplicates an existing block name.
    pub fn add_block(&mut self, name: impl Into<String>, rect: Rect) -> Result<(), ThermalError> {
        let name = name.into();
        if !self.outline().contains_rect(&rect) {
            return Err(ThermalError::BadFloorplan {
                reason: format!(
                    "block '{name}' [{:.6},{:.6} {:.6}x{:.6}] escapes outline {:.6}x{:.6}",
                    rect.x(),
                    rect.y(),
                    rect.width(),
                    rect.height(),
                    self.width,
                    self.height
                ),
            });
        }
        for b in &self.blocks {
            if b.name == name {
                return Err(ThermalError::BadFloorplan {
                    reason: format!("duplicate block name '{name}'"),
                });
            }
            if b.rect.overlaps(&rect) {
                return Err(ThermalError::BadFloorplan {
                    reason: format!("block '{name}' overlaps block '{}'", b.name),
                });
            }
        }
        self.blocks.push(Block::new(name, rect));
        Ok(())
    }

    /// The blocks, in insertion order.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the floorplan has no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Finds a block by name.
    pub fn block(&self, name: &str) -> Option<&Block> {
        self.blocks.iter().find(|b| b.name == name)
    }

    /// Index of a block by name.
    pub fn block_index(&self, name: &str) -> Option<usize> {
        self.blocks.iter().position(|b| b.name == name)
    }

    /// Total area covered by blocks, m^2.
    pub fn covered_area(&self) -> f64 {
        self.blocks.iter().map(|b| b.rect.area()).sum()
    }

    /// Fraction of the outline covered by blocks (0..=1).
    pub fn coverage(&self) -> f64 {
        self.covered_area() / self.area()
    }

    /// Checks that blocks tile the entire outline (within `tol` relative
    /// area). Useful for layers where every cell must map to a block, such
    /// as power-dissipating die layers.
    ///
    /// # Errors
    ///
    /// [`ThermalError::BadFloorplan`] if coverage is below `1 - tol`.
    pub fn require_full_coverage(&self, tol: f64) -> Result<(), ThermalError> {
        let cov = self.coverage();
        if cov < 1.0 - tol {
            return Err(ThermalError::BadFloorplan {
                reason: format!("coverage {cov:.4} below required {:.4}", 1.0 - tol),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_basics() {
        let r = Rect::new(1.0, 2.0, 3.0, 4.0);
        assert_eq!(r.x_max(), 4.0);
        assert_eq!(r.y_max(), 6.0);
        assert_eq!(r.area(), 12.0);
        assert_eq!(r.center(), (2.5, 4.0));
        assert!(r.contains_point(2.0, 3.0));
        assert!(!r.contains_point(0.0, 0.0));
    }

    #[test]
    fn rect_from_corners_normalizes() {
        let r = Rect::from_corners(3.0, 4.0, 1.0, 2.0);
        assert_eq!(r.x(), 1.0);
        assert_eq!(r.y(), 2.0);
        assert_eq!(r.width(), 2.0);
        assert_eq!(r.height(), 2.0);
    }

    #[test]
    fn intersection_area_cases() {
        let a = Rect::new(0.0, 0.0, 2.0, 2.0);
        let b = Rect::new(1.0, 1.0, 2.0, 2.0);
        assert!((a.intersection_area(&b) - 1.0).abs() < 1e-12);
        let c = Rect::new(5.0, 5.0, 1.0, 1.0);
        assert_eq!(a.intersection_area(&c), 0.0);
        // Shared edge: zero area, no overlap.
        let d = Rect::new(2.0, 0.0, 2.0, 2.0);
        assert_eq!(a.intersection_area(&d), 0.0);
        assert!(!a.overlaps(&d));
    }

    #[test]
    fn floorplan_rejects_escape_and_overlap() {
        let mut fp = Floorplan::new(1.0, 1.0);
        assert!(fp.add_block("a", Rect::new(0.0, 0.0, 0.5, 0.5)).is_ok());
        // escapes
        assert!(fp.add_block("b", Rect::new(0.9, 0.9, 0.2, 0.2)).is_err());
        // overlaps a
        assert!(fp.add_block("c", Rect::new(0.25, 0.25, 0.5, 0.5)).is_err());
        // duplicate name
        assert!(fp.add_block("a", Rect::new(0.5, 0.5, 0.1, 0.1)).is_err());
        // adjacent is fine
        assert!(fp.add_block("d", Rect::new(0.5, 0.0, 0.5, 0.5)).is_ok());
        assert_eq!(fp.len(), 2);
    }

    #[test]
    fn coverage_accounting() {
        let mut fp = Floorplan::new(2.0, 1.0);
        fp.add_block("left", Rect::new(0.0, 0.0, 1.0, 1.0)).unwrap();
        assert!((fp.coverage() - 0.5).abs() < 1e-12);
        assert!(fp.require_full_coverage(1e-6).is_err());
        fp.add_block("right", Rect::new(1.0, 0.0, 1.0, 1.0))
            .unwrap();
        assert!(fp.require_full_coverage(1e-6).is_ok());
    }

    #[test]
    fn block_lookup() {
        let mut fp = Floorplan::new(1.0, 1.0);
        fp.add_block("x", Rect::new(0.0, 0.0, 1.0, 0.5)).unwrap();
        assert!(fp.block("x").is_some());
        assert_eq!(fp.block_index("x"), Some(0));
        assert!(fp.block("y").is_none());
    }

    #[test]
    fn expanded_grows_every_side() {
        let r = Rect::new(1.0, 1.0, 2.0, 2.0).expanded(0.5);
        assert_eq!(r.x(), 0.5);
        assert_eq!(r.y(), 0.5);
        assert_eq!(r.width(), 3.0);
        assert_eq!(r.height(), 3.0);
    }
}
