//! The assembled RC network: conductance graph, capacitances, solvers.
//!
//! [`ThermalModel::build`] turns a [`Stack`] + [`GridSpec`] into a node
//! graph:
//!
//! ```text
//! node ids:
//!   [0*C .. 1*C)   heat-sink base, die-sized center region (grid)
//!   [1*C .. 2*C)   IHS (spreader), die-sized center region (grid)
//!   [2*C .. 3*C)   TIM (grid)
//!   [3*C .. (3+L)*C) user layers, top to bottom (grid each)
//!   then 12 extra package nodes:
//!     +0..4   spreader periphery  (W, E, S, N)
//!     +4..8   sink inner periphery (above the spreader ring)
//!     +8..12  sink outer periphery (beyond the spreader)
//! ```
//!
//! where `C = nx*ny` and `L` the number of user layers. The ambient is not
//! a node: convection enters the diagonal and the right-hand side, which
//! keeps the system symmetric positive definite.

use std::sync::{Arc, Mutex};

use xylem_obs::{Counter, Gauge};

use crate::adaptive::AdaptiveController;
use crate::csr::CsrMatrix;
use crate::error::ThermalError;
use crate::grid::{rasterize, GridSpec};
use crate::power::PowerMap;
use crate::solve::{
    debug_check_solution, solve_cg_reference, solve_cg_resilient_with, Operator, Preconditioner,
    PreconditionerKind, RecoveryReport, SolveStats, SolverOptions, SolverWorkspace,
};
use crate::stack::Stack;
use crate::stencil::StencilOperator;
use crate::temperature::TemperatureField;
use crate::units::{Celsius, Watts};

/// Index of the four package periphery sides, in storage order.
const SIDE_W: usize = 0;
const SIDE_E: usize = 1;
const SIDE_S: usize = 2;
const SIDE_N: usize = 3;

/// A discretized, solvable thermal model.
#[derive(Debug, Clone)]
pub struct ThermalModel {
    grid: GridSpec,
    width: f64,
    height: f64,
    n_user_layers: usize,
    user_layer_names: Vec<String>,
    /// Adjacency list: `neighbors[i]` holds `(j, G_ij)`, stored for both
    /// endpoints. Retained as the reference lowering the CSR matrix is
    /// checked against (property tests) and as the seed-era solver path
    /// ([`ThermalModel::steady_state_adjacency`]).
    neighbors: Vec<Vec<(u32, f64)>>,
    /// Conductance to ambient per node (convection + board path), W/K.
    g_ambient: Vec<f64>,
    /// Lumped heat capacity per node, J/K.
    capacitance: Vec<f64>,
    /// Diagonal of the conductance matrix (sum of incident G + G_ambient).
    diagonal: Vec<f64>,
    /// The conductance matrix lowered to flat CSR at build time; all
    /// production solves run over this.
    csr: CsrMatrix,
    /// Matrix-free structured-grid view of `csr` (coefficient planes, no
    /// column indices in the inner loop), extracted at build time when
    /// the node graph matches the 7-point layout. Grids built here always
    /// do; `None` guards future irregular topologies.
    stencil: Option<StencilOperator>,
    /// Preconditioner built for `csr` per the current solver options.
    prec: Preconditioner,
    /// Cached backward-Euler operator `G + C/dt` (+ its preconditioner),
    /// rebuilt only when `dt` or the preconditioner kind changes.
    transient_cache: TransientCache,
    ambient: f64,
    /// Per user layer, per block: `(cell, fraction of block area)`.
    block_weights: Vec<Vec<Vec<(usize, f64)>>>,
    /// Block names per user layer (parallel to `block_weights`).
    block_names: Vec<Vec<String>>,
    solver_options: SolverOptions,
}

/// Lazily built backward-Euler operator for one `dt`.
#[derive(Debug)]
struct TransientOp {
    dt: f64,
    kind: PreconditionerKind,
    a: CsrMatrix,
    /// Stencil view of `a` — the diagonal-patched clone of the model's
    /// stencil, so transient solves keep the matrix-free fast path.
    stencil: Option<StencilOperator>,
    prec: Preconditioner,
}

/// Grid size (cells per layer) from which a freshly built model defaults
/// to the geometric multigrid preconditioner. Below this the AMG setup
/// is cheap enough that the geometric hierarchy has nothing to win back;
/// at and above it GMG's fixed, shallow in-plane coarsening beats AMG's
/// pairwise aggregation on both setup and apply.
const GMG_MIN_CELLS: usize = 1024;

/// Builds the preconditioner for `kind` over `a`, supplying the grid
/// geometry the geometric hierarchy needs. When `kind` is
/// [`PreconditionerKind::Gmg`] but the hierarchy cannot be built (a
/// matrix whose shape does not match the grid), falls back to
/// [`Preconditioner::build`], which degrades GMG to AMG.
fn build_prec_for(
    a: &CsrMatrix,
    grid: GridSpec,
    n_layers: usize,
    kind: PreconditionerKind,
) -> Preconditioner {
    if kind == PreconditionerKind::Gmg {
        if let Some(p) = Preconditioner::build_gmg(a, grid.nx(), grid.ny(), n_layers) {
            return p;
        }
    }
    Preconditioner::build(a, kind)
}

/// Slots in the keyed transient-operator cache. Adaptive step-doubling
/// alternates `dt` and `dt/2` every step, and a horizon-clamped
/// remainder step adds one or two more distinct values; four slots hold
/// the working set of any stepping mode without an eviction storm.
const TRANSIENT_CACHE_SLOTS: usize = 4;

/// Interior-mutable keyed LRU cache for [`TransientOp`]s, so transient
/// stepping under `&self` pays the `A + C/dt` assembly (and its
/// preconditioner factorization) once per distinct `dt` instead of once
/// per call. DTM control loops re-solve with the same control period
/// thousands of times, and the adaptive engine cycles through a small
/// set of power-of-two step sizes.
///
/// Slots hold `Arc<TransientOp>` so the mutex guards only lookup,
/// insertion, and eviction — never a solve. Concurrent sessions sharing
/// one model (xylem-serve's shared-stack operator cache) each clone the
/// `Arc` and solve in parallel; an evicted operator stays alive until
/// the last in-flight solve drops its reference.
#[derive(Debug, Default)]
struct TransientCache(Mutex<Vec<Arc<TransientOp>>>);

impl Clone for TransientCache {
    /// Clones start empty: the cache is a pure memoization and rebuilding
    /// it is always correct.
    fn clone(&self) -> Self {
        TransientCache::default()
    }
}

impl ThermalModel {
    /// Builds the RC network for `stack` on `grid`.
    ///
    /// # Errors
    ///
    /// Propagates floorplan/rasterization errors; returns
    /// [`ThermalError::BadStack`] for impossible geometry.
    pub fn build(stack: &Stack, grid: GridSpec) -> Result<Self, ThermalError> {
        let (w, h) = (stack.width(), stack.height());
        let pkg = stack.package();
        pkg.validate_die(w, h)?;

        let cells = grid.cells();
        let n_user = stack.len();
        let n_solver_layers = 3 + n_user;
        let extra_base = n_solver_layers * cells;
        let n_nodes = extra_base + 12;

        // Per solver layer: thickness and per-cell conductivity/capacity.
        let mut thickness = Vec::with_capacity(n_solver_layers);
        let mut lambda: Vec<Vec<f64>> = Vec::with_capacity(n_solver_layers);
        let mut cap_vol: Vec<Vec<f64>> = Vec::with_capacity(n_solver_layers);

        let sink_m = pkg.sink_material();
        let sp_m = pkg.spreader_material();
        let tim_m = pkg.tim_material();
        thickness.push(pkg.sink_thickness());
        lambda.push(vec![sink_m.conductivity().get(); cells]);
        cap_vol.push(vec![sink_m.volumetric_heat_capacity().get(); cells]);
        thickness.push(pkg.spreader_thickness());
        lambda.push(vec![sp_m.conductivity().get(); cells]);
        cap_vol.push(vec![sp_m.volumetric_heat_capacity().get(); cells]);
        thickness.push(pkg.tim_thickness());
        lambda.push(vec![tim_m.conductivity().get(); cells]);
        cap_vol.push(vec![tim_m.volumetric_heat_capacity().get(); cells]);

        let mut block_weights = Vec::with_capacity(n_user);
        let mut block_names = Vec::with_capacity(n_user);
        let mut user_layer_names = Vec::with_capacity(n_user);
        for layer in stack.layers() {
            let r = rasterize(layer, grid, w, h)?;
            thickness.push(layer.thickness());
            lambda.push(r.lambda);
            cap_vol.push(r.capacity);
            block_weights.push(r.block_weights);
            block_names.push(
                layer
                    .floorplan()
                    .map(|fp| fp.blocks().iter().map(|b| b.name().to_string()).collect())
                    .unwrap_or_default(),
            );
            user_layer_names.push(layer.name().to_string());
        }

        let dx = w / grid.nx() as f64;
        let dy = h / grid.ny() as f64;
        let cell_area = dx * dy;

        let mut neighbors: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n_nodes];
        let mut g_ambient = vec![0.0_f64; n_nodes];
        let mut capacitance = vec![0.0_f64; n_nodes];

        let add_edge = |nb: &mut Vec<Vec<(u32, f64)>>, a: usize, b: usize, g: f64| {
            debug_assert!(g.is_finite() && g > 0.0, "conductance {g} between {a},{b}");
            nb[a].push((b as u32, g));
            nb[b].push((a as u32, g));
        };

        // --- grid-layer internal (lateral) and inter-layer (vertical) edges.
        for l in 0..n_solver_layers {
            let t = thickness[l];
            let lam = &lambda[l];
            let base = l * cells;
            for iy in 0..grid.ny() {
                for ix in 0..grid.nx() {
                    let i = grid.index(ix, iy);
                    // capacitance
                    capacitance[base + i] = cap_vol[l][i] * cell_area * t;
                    // +x neighbor
                    if ix + 1 < grid.nx() {
                        let j = grid.index(ix + 1, iy);
                        let g = (t * dy) / (dx / (2.0 * lam[i]) + dx / (2.0 * lam[j]));
                        add_edge(&mut neighbors, base + i, base + j, g);
                    }
                    // +y neighbor
                    if iy + 1 < grid.ny() {
                        let j = grid.index(ix, iy + 1);
                        let g = (t * dx) / (dy / (2.0 * lam[i]) + dy / (2.0 * lam[j]));
                        add_edge(&mut neighbors, base + i, base + j, g);
                    }
                    // vertical to the layer below
                    if l + 1 < n_solver_layers {
                        let tb = thickness[l + 1];
                        let lamb = &lambda[l + 1][i];
                        let g = cell_area / (t / (2.0 * lam[i]) + tb / (2.0 * lamb));
                        add_edge(&mut neighbors, base + i, (l + 1) * cells + i, g);
                    }
                }
            }
        }

        // --- package periphery nodes.
        let sp_side = pkg.spreader_side();
        let sk_side = pkg.sink_side();
        let ext_sp_x = (sp_side - w) / 2.0; // spreader overhang beyond die, x
        let ext_sp_y = (sp_side - h) / 2.0;
        let ext_sk = (sk_side - sp_side) / 2.0; // sink overhang beyond spreader

        let sp_ring_area = (sp_side * sp_side - w * h).max(0.0);
        let sk_ring_area = (sk_side * sk_side - sp_side * sp_side).max(0.0);
        let sp_side_area = sp_ring_area / 4.0;
        let sk_in_side_area = sp_ring_area / 4.0; // sink region above the spreader ring
        let sk_out_side_area = sk_ring_area / 4.0;

        let sp_periph = extra_base; // +side
        let sk_inner = extra_base + 4;
        let sk_outer = extra_base + 8;

        let lam_sp = sp_m.conductivity().get();
        let lam_sk = sink_m.conductivity().get();
        let t_sp = pkg.spreader_thickness();
        let t_sk = pkg.sink_thickness();

        // Capacitances of periphery nodes.
        let cap_sp = sp_m.volumetric_heat_capacity().get();
        let cap_sk = sink_m.volumetric_heat_capacity().get();
        for s in 0..4 {
            capacitance[sp_periph + s] = cap_sp * sp_side_area * t_sp;
            capacitance[sk_inner + s] = cap_sk * sk_in_side_area * t_sk;
            capacitance[sk_outer + s] = cap_sk * sk_out_side_area * t_sk;
        }

        // Lateral edges from the die-sized center grids to periphery nodes,
        // plus vertical spreader-periph <-> sink-inner-periph edges.
        if sp_ring_area > 0.0 {
            // Edge cells of the spreader grid (solver layer 1) and sink grid
            // (solver layer 0).
            for iy in 0..grid.ny() {
                for (side, ix) in [(SIDE_W, 0), (SIDE_E, grid.nx() - 1)] {
                    let i = grid.index(ix, iy);
                    let ext = ext_sp_x.max(1e-9);
                    let g_sp = lam_sp * (t_sp * dy) / (dx / 2.0 + ext / 2.0);
                    add_edge(&mut neighbors, cells + i, sp_periph + side, g_sp);
                    let g_sk = lam_sk * (t_sk * dy) / (dx / 2.0 + ext / 2.0);
                    add_edge(&mut neighbors, i, sk_inner + side, g_sk);
                }
            }
            for ix in 0..grid.nx() {
                for (side, iy) in [(SIDE_S, 0), (SIDE_N, grid.ny() - 1)] {
                    let i = grid.index(ix, iy);
                    let ext = ext_sp_y.max(1e-9);
                    let g_sp = lam_sp * (t_sp * dx) / (dy / 2.0 + ext / 2.0);
                    add_edge(&mut neighbors, cells + i, sp_periph + side, g_sp);
                    let g_sk = lam_sk * (t_sk * dx) / (dy / 2.0 + ext / 2.0);
                    add_edge(&mut neighbors, i, sk_inner + side, g_sk);
                }
            }
            // Vertical: spreader periphery <-> sink inner periphery.
            for s in 0..4 {
                let g = sp_side_area / (t_sp / (2.0 * lam_sp) + t_sk / (2.0 * lam_sk));
                add_edge(&mut neighbors, sp_periph + s, sk_inner + s, g);
            }
        }
        if sk_ring_area > 0.0 {
            // Lateral: sink inner periphery <-> sink outer periphery.
            for s in 0..4 {
                let ext_in = ((sp_side - w.min(h)) / 2.0).max(1e-9);
                let g = lam_sk * (t_sk * sp_side) / (ext_in / 2.0 + ext_sk.max(1e-9) / 2.0);
                add_edge(&mut neighbors, sk_inner + s, sk_outer + s, g);
            }
        }

        // --- convection to ambient from every sink node, proportional to
        // its share of the total sink area.
        let sink_area_total = sk_side * sk_side;
        let g_conv_total = 1.0 / pkg.convection_resistance();
        for g in g_ambient.iter_mut().take(cells) {
            *g += g_conv_total * (cell_area / sink_area_total);
        }
        for s in 0..4 {
            g_ambient[sk_inner + s] += g_conv_total * (sk_in_side_area / sink_area_total);
            g_ambient[sk_outer + s] += g_conv_total * (sk_out_side_area / sink_area_total);
        }

        // --- optional secondary path from the bottom layer to ambient.
        if let Some(r_board) = pkg.board_resistance() {
            let g_total = 1.0 / r_board;
            let bottom_base = (n_solver_layers - 1) * cells;
            for i in 0..cells {
                g_ambient[bottom_base + i] += g_total * (cell_area / (w * h));
            }
        }

        // Degenerate packages (spreader/sink exactly die-sized) leave some
        // periphery nodes with no edges at all; pin them to ambient with a
        // unit conductance so the system stays SPD. They carry no heat.
        for i in extra_base..n_nodes {
            if neighbors[i].is_empty() && g_ambient[i] == 0.0 {
                g_ambient[i] = 1.0;
            }
        }

        // --- diagonal.
        let mut diagonal = vec![0.0_f64; n_nodes];
        let mut conductances = Vec::new();
        for (i, d) in diagonal.iter_mut().enumerate() {
            conductances.clear();
            conductances.extend(neighbors[i].iter().map(|&(_, g)| g));
            *d = crate::reduce::pairwise_sum(&conductances) + g_ambient[i];
        }
        if diagonal.iter().any(|&d| d <= 0.0) {
            return Err(ThermalError::BadStack {
                reason: "model has an isolated node (zero diagonal)".into(),
            });
        }

        // Lower the node graph into flat CSR, extract the structured
        // stencil view, and build the steady-state preconditioner once;
        // every solve afterwards reuses all three. Large grids default to
        // the geometric multigrid preconditioner, which needs the stencil
        // geometry; small ones keep AMG (see [`GMG_MIN_CELLS`]).
        let csr = CsrMatrix::from_adjacency(&neighbors, &diagonal);
        let stencil = StencilOperator::from_csr(&csr, grid.nx(), grid.ny(), n_solver_layers);
        let preconditioner = if cells >= GMG_MIN_CELLS && stencil.is_some() {
            PreconditionerKind::Gmg
        } else {
            SolverOptions::default().preconditioner
        };
        let solver_options = SolverOptions {
            preconditioner,
            ..SolverOptions::default()
        };
        let prec = build_prec_for(&csr, grid, n_solver_layers, solver_options.preconditioner);

        Ok(ThermalModel {
            grid,
            width: w,
            height: h,
            n_user_layers: n_user,
            user_layer_names,
            neighbors,
            g_ambient,
            capacitance,
            diagonal,
            csr,
            stencil,
            prec,
            transient_cache: TransientCache::default(),
            ambient: pkg.ambient(),
            block_weights,
            block_names,
            solver_options,
        })
    }

    /// Grid resolution.
    pub fn grid(&self) -> GridSpec {
        self.grid
    }

    /// Die outline width, m.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Die outline height, m.
    pub fn height(&self) -> f64 {
        self.height
    }

    /// Number of user (stack) layers, excluding package layers.
    pub fn n_user_layers(&self) -> usize {
        self.n_user_layers
    }

    /// Names of the user layers, top to bottom.
    pub fn user_layer_names(&self) -> &[String] {
        &self.user_layer_names
    }

    /// Ambient temperature.
    pub fn ambient(&self) -> Celsius {
        Celsius::new(self.ambient)
    }

    /// Total node count (grid cells of all solver layers + package nodes).
    pub fn node_count(&self) -> usize {
        self.neighbors.len()
    }

    /// Node index of cell `(ix, iy)` in user layer `layer`.
    ///
    /// # Panics
    ///
    /// Panics if the layer or coordinates are out of range (debug builds for
    /// coordinates).
    pub fn user_node(&self, layer: usize, ix: usize, iy: usize) -> usize {
        assert!(
            layer < self.n_user_layers,
            "user layer {layer} out of range"
        );
        (3 + layer) * self.grid.cells() + self.grid.index(ix, iy)
    }

    /// First node index of user layer `layer`.
    pub(crate) fn user_layer_base(&self, layer: usize) -> usize {
        (3 + layer) * self.grid.cells()
    }

    /// Block names of user layer `layer` (empty if the layer has no
    /// floorplan).
    pub fn block_names(&self, layer: usize) -> &[String] {
        &self.block_names[layer]
    }

    /// Power-spreading weights of block `block` in user layer `layer`:
    /// `(cell, fraction of block area)` pairs.
    ///
    /// # Errors
    ///
    /// [`ThermalError::IndexOutOfRange`] if the layer is out of range or
    /// [`ThermalError::BadFloorplan`] if the block name is unknown.
    pub fn block_weights(
        &self,
        layer: usize,
        block: &str,
    ) -> Result<&[(usize, f64)], ThermalError> {
        let names = self
            .block_names
            .get(layer)
            .ok_or(ThermalError::IndexOutOfRange {
                what: "layer",
                index: layer,
                len: self.n_user_layers,
            })?;
        let bi =
            names
                .iter()
                .position(|n| n == block)
                .ok_or_else(|| ThermalError::BadFloorplan {
                    reason: format!("no block '{block}' in layer {layer}"),
                })?;
        Ok(&self.block_weights[layer][bi])
    }

    /// Replaces the solver options used by [`ThermalModel::steady_state`]
    /// and the transient integrator. Rebuilds the preconditioner if the
    /// kind changed and drops the cached transient operator.
    pub fn set_solver_options(&mut self, options: SolverOptions) {
        if options.preconditioner != self.solver_options.preconditioner {
            self.prec = build_prec_for(
                &self.csr,
                self.grid,
                3 + self.n_user_layers,
                options.preconditioner,
            );
            self.transient_cache = TransientCache::default();
        }
        self.solver_options = options;
    }

    /// The conductance matrix in flat CSR form (convection on the
    /// diagonal, as lowered at build time).
    pub fn csr(&self) -> &CsrMatrix {
        &self.csr
    }

    /// The matrix-free structured-grid view of the conductance matrix,
    /// when the node graph matched the 7-point layout at build time.
    pub fn stencil(&self) -> Option<&StencilOperator> {
        self.stencil.as_ref()
    }

    /// The steady-state operator, routed through the fastest matvec
    /// backend available (stencil sweeps when extracted, CSR otherwise).
    fn operator(&self) -> Operator<'_> {
        Operator::with_stencil(&self.csr, self.stencil.as_ref())
    }

    /// Current solver options.
    pub fn solver_options(&self) -> &SolverOptions {
        &self.solver_options
    }

    /// `y = G x` computed directly off the adjacency list — the reference
    /// lowering the CSR matvec is property-tested against, and the inner
    /// loop of the seed-era solver path.
    pub fn matvec_adjacency(&self, x: &[f64], y: &mut [f64]) {
        for i in 0..x.len() {
            let mut acc = self.diagonal[i] * x[i];
            for &(j, g) in &self.neighbors[i] {
                acc -= g * x[j as usize];
            }
            y[i] = acc;
        }
    }

    /// Right-hand side for the steady-state system: power plus ambient
    /// injection, written into a caller buffer.
    fn assemble_rhs_into(&self, power: &PowerMap, b: &mut Vec<f64>) -> Result<(), ThermalError> {
        let n = self.node_count();
        if power.n_layers() != self.n_user_layers || power.cells() != self.grid.cells() {
            return Err(ThermalError::PowerMapMismatch {
                map_nodes: power.n_layers() * power.cells(),
                model_nodes: self.n_user_layers * self.grid.cells(),
            });
        }
        b.clear();
        b.resize(n, 0.0);
        for (i, g) in self.g_ambient.iter().enumerate() {
            b[i] = g * self.ambient;
        }
        let cells = self.grid.cells();
        for l in 0..self.n_user_layers {
            let base = self.user_layer_base(l);
            let lp = power.layer_slice(l);
            for c in 0..cells {
                b[base + c] += lp[c];
            }
        }
        Ok(())
    }

    /// Solves the steady-state system `G T = P` for the given power map,
    /// cold-starting from ambient with a throwaway workspace. Convenience
    /// wrapper over [`ThermalModel::steady_state_from`]; sweeps that solve
    /// repeatedly should hold a [`SolverWorkspace`] and call that instead.
    ///
    /// # Errors
    ///
    /// [`ThermalError::PowerMapMismatch`] for a mismatched map;
    /// [`ThermalError::NoConvergence`] if CG stalls (raise
    /// [`SolverOptions::max_iterations`]).
    pub fn steady_state(&self, power: &PowerMap) -> Result<TemperatureField, ThermalError> {
        let mut ws = SolverWorkspace::new();
        self.steady_state_from(power, None, &mut ws)
    }

    /// Solves the steady-state system with an optional warm-start guess
    /// and a caller-owned workspace.
    ///
    /// `guess` seeds the CG iteration (a field near the solution — e.g.
    /// the previous solve of a sweep — directly cuts iterations); `None`
    /// cold-starts from uniform ambient. Either way the solve converges
    /// to the same solution within the configured tolerance. Beyond the
    /// returned field itself, repeated solves through one `ws` perform no
    /// per-solve allocation.
    ///
    /// # Errors
    ///
    /// As [`ThermalModel::steady_state`]; additionally rejects a `guess`
    /// whose node count does not match.
    pub fn steady_state_from(
        &self,
        power: &PowerMap,
        guess: Option<&TemperatureField>,
        ws: &mut SolverWorkspace,
    ) -> Result<TemperatureField, ThermalError> {
        let n = self.node_count();
        let mut rhs = std::mem::take(&mut ws.rhs);
        let result = (|| -> Result<_, ThermalError> {
            self.assemble_rhs_into(power, &mut rhs)?;
            let mut x = match guess {
                Some(g) => {
                    if g.node_count() != n {
                        return Err(ThermalError::PowerMapMismatch {
                            map_nodes: g.node_count(),
                            model_nodes: n,
                        });
                    }
                    g.raw().to_vec()
                }
                None => vec![self.ambient; n],
            };
            let mut recovery = RecoveryReport::default();
            let stats = solve_cg_resilient_with(
                self.operator(),
                &self.prec,
                &rhs,
                &mut x,
                ws,
                &self.solver_options,
                &mut recovery,
            )?;
            Ok((x, stats, recovery))
        })();
        ws.rhs = rhs;
        let (x, stats, recovery) = result?;
        let temps = TemperatureField::new(self, x, stats, recovery);
        debug_check_solution(&stats, &self.solver_options, temps.raw());
        #[cfg(debug_assertions)]
        {
            // Energy conservation: at steady state all injected power must
            // leave through the ambient paths.
            let balance = self.ambient_outflow(&temps) - power.total();
            let scale = power.total().get().abs().max(1.0);
            debug_assert!(
                balance.abs() <= 1e-3 * scale,
                "energy imbalance {balance} W for {} injected",
                power.total()
            );
        }
        Ok(temps)
    }

    /// The seed's steady-state path — Jacobi CG over the adjacency-list
    /// matvec, allocating per call — kept as the measured baseline the
    /// CSR solver's speedup is quoted against (see
    /// `benches/criterion_thermal.rs`).
    ///
    /// # Errors
    ///
    /// As [`ThermalModel::steady_state`].
    #[doc(hidden)]
    pub fn steady_state_adjacency(
        &self,
        power: &PowerMap,
    ) -> Result<TemperatureField, ThermalError> {
        let mut b = Vec::new();
        self.assemble_rhs_into(power, &mut b)?;
        let mut x = vec![self.ambient; self.node_count()];
        let stats = solve_cg_reference(
            |v, out| self.matvec_adjacency(v, out),
            &self.diagonal,
            &b,
            &mut x,
            &self.solver_options,
        )?;
        let temps = TemperatureField::new(self, x, stats, RecoveryReport::default());
        debug_check_solution(&stats, &self.solver_options, temps.raw());
        Ok(temps)
    }

    /// Advances a transient simulation by `steps` backward-Euler steps of
    /// `dt` seconds under constant `power`, starting from `initial`, with
    /// a throwaway workspace. Convenience wrapper over
    /// [`ThermalModel::transient_with`]; control loops stepping every
    /// period should hold a [`SolverWorkspace`] and call that instead.
    ///
    /// # Errors
    ///
    /// [`ThermalError::InvalidTimeStep`] for a bad `dt`; otherwise as
    /// [`ThermalModel::steady_state`].
    pub fn transient(
        &self,
        power: &PowerMap,
        initial: &TemperatureField,
        dt: f64,
        steps: usize,
    ) -> Result<TemperatureField, ThermalError> {
        let mut ws = SolverWorkspace::new();
        self.transient_with(power, initial, dt, steps, None, &mut ws)
    }

    /// Backward-Euler transient stepping with a caller-owned workspace
    /// and an explicit CG warm-start policy.
    ///
    /// The `A + C/dt` operator and its preconditioner come from a small
    /// LRU cache keyed on `dt` (bitwise) and preconditioner kind, so
    /// control loops stepping with a fixed period pay assembly and
    /// factorization once, not per call.
    ///
    /// `guess` seeds the **first** step's CG iterate: `None` (the
    /// default, and what [`ThermalModel::transient`] uses) starts from
    /// `initial` — the physically-warm choice, since the previous state
    /// is close to the next solution for any reasonable `dt`. Passing
    /// e.g. a uniform-ambient field instead forces a cold start, which
    /// exists so the warm-start benefit can be measured; the converged
    /// solution is the same either way. Steps after the first always
    /// iterate from the evolving state.
    ///
    /// # Errors
    ///
    /// As [`ThermalModel::transient`]; additionally rejects a `guess`
    /// whose node count does not match.
    pub fn transient_with(
        &self,
        power: &PowerMap,
        initial: &TemperatureField,
        dt: f64,
        steps: usize,
        guess: Option<&TemperatureField>,
        ws: &mut SolverWorkspace,
    ) -> Result<TemperatureField, ThermalError> {
        if !(dt.is_finite() && dt > 0.0) {
            return Err(ThermalError::InvalidTimeStep { dt });
        }
        let n = self.node_count();
        if initial.node_count() != n {
            return Err(ThermalError::PowerMapMismatch {
                map_nodes: initial.node_count(),
                model_nodes: n,
            });
        }
        if let Some(g) = guess {
            if g.node_count() != n {
                return Err(ThermalError::PowerMapMismatch {
                    map_nodes: g.node_count(),
                    model_nodes: n,
                });
            }
        }

        let mut rhs = std::mem::take(&mut ws.rhs);
        let mut rhs0 = std::mem::take(&mut ws.rhs0);
        let result = self.with_transient_op(dt, |op, prec| -> Result<_, ThermalError> {
            self.assemble_rhs_into(power, &mut rhs0)?;
            rhs.clear();
            rhs.resize(n, 0.0);
            // The state the BE right-hand side is formed from; also the CG
            // iterate, except on the first step when `guess` overrides it.
            let mut x = initial.raw().to_vec();
            let mut stats = SolveStats::default();
            let mut recovery = RecoveryReport::default();
            for step in 0..steps {
                for i in 0..n {
                    rhs[i] = rhs0[i] + self.capacitance[i] / dt * x[i];
                }
                if step == 0 {
                    if let Some(g) = guess {
                        x.copy_from_slice(g.raw());
                    }
                }
                let mut step_recovery = RecoveryReport::default();
                let s = solve_cg_resilient_with(
                    op,
                    prec,
                    &rhs,
                    &mut x,
                    ws,
                    &self.solver_options,
                    &mut step_recovery,
                )?;
                recovery.merge(&step_recovery);
                stats.iterations += s.iterations;
                stats.residual = s.residual;
            }
            Ok((x, stats, recovery))
        });
        ws.rhs = rhs;
        ws.rhs0 = rhs0;
        let (x, stats, recovery) = result?;
        let temps = TemperatureField::new(self, x, stats, recovery);
        debug_check_solution(&stats, &self.solver_options, temps.raw());
        Ok(temps)
    }

    /// Returns the backward-Euler operator `G + C/dt` (+ preconditioner)
    /// for `dt`, building it on a cache miss. The cache holds
    /// [`TRANSIENT_CACHE_SLOTS`] operators keyed on `dt` (bitwise) and
    /// preconditioner kind, evicting least-recently-used. The lock spans
    /// lookup and (on miss) the build, so hit/miss/eviction counters stay
    /// deterministic for a fixed call sequence; the returned `Arc` lets
    /// callers solve without holding the lock.
    fn transient_op(&self, dt: f64) -> Arc<TransientOp> {
        let kind = self.solver_options.preconditioner;
        let mut slots = self
            .transient_cache
            .0
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let hit = slots
            .iter()
            .position(|op| op.dt.to_bits() == dt.to_bits() && op.kind == kind);
        if let Some(i) = hit {
            xylem_obs::incr(Counter::TransientCacheHits);
            let op = slots.remove(i);
            // Most-recently-used lives at the back.
            slots.push(Arc::clone(&op));
            return op;
        }
        xylem_obs::incr(Counter::TransientCacheMisses);
        if slots.len() >= TRANSIENT_CACHE_SLOTS {
            slots.remove(0);
            xylem_obs::incr(Counter::TransientCacheEvictions);
        }
        let patch: Vec<f64> = self.capacitance.iter().map(|c| c / dt).collect();
        let a = self.csr.with_diagonal_added(&patch);
        let stencil = self.stencil.as_ref().map(|s| s.with_diagonal_added(&patch));
        let prec = build_prec_for(&a, self.grid, 3 + self.n_user_layers, kind);
        let op = Arc::new(TransientOp {
            dt,
            kind,
            a,
            stencil,
            prec,
        });
        slots.push(Arc::clone(&op));
        op
    }

    /// Runs `f` with the cached backward-Euler operator for `dt`. The
    /// cache lock is *not* held while `f` runs, so concurrent transient
    /// solves over one shared model proceed in parallel.
    fn with_transient_op<R>(
        &self,
        dt: f64,
        f: impl FnOnce(Operator<'_>, &Preconditioner) -> R,
    ) -> R {
        let op = self.transient_op(dt);
        f(Operator::with_stencil(&op.a, op.stencil.as_ref()), &op.prec)
    }

    /// One backward-Euler step of `dt` seconds, in place: forms the BE
    /// right-hand side from the current content of `x` (into the staging
    /// buffer `rhs`) and warm-starts CG from it. Charges CG iterations to
    /// `iterations` even when the solve fails, and reports a non-finite
    /// solution as [`ThermalError::NonFiniteTemperature`] instead of
    /// letting it propagate into the next step.
    #[allow(clippy::too_many_arguments)]
    fn be_step_inplace(
        &self,
        dt: f64,
        rhs0: &[f64],
        rhs: &mut Vec<f64>,
        x: &mut [f64],
        ws: &mut SolverWorkspace,
        recovery: &mut RecoveryReport,
        iterations: &mut usize,
    ) -> Result<f64, ThermalError> {
        let n = rhs0.len();
        rhs.clear();
        rhs.resize(n, 0.0);
        for i in 0..n {
            rhs[i] = rhs0[i] + self.capacitance[i] / dt * x[i];
        }
        let solved = self.with_transient_op(dt, |op, prec| {
            solve_cg_resilient_with(op, prec, rhs, x, ws, &self.solver_options, recovery)
        });
        match solved {
            Ok(s) => {
                *iterations += s.iterations;
                match x.iter().position(|v| !v.is_finite()) {
                    None => Ok(s.residual),
                    Some(node) => Err(ThermalError::NonFiniteTemperature { node }),
                }
            }
            Err(e) => {
                if let ThermalError::NoConvergence { iterations: it, .. } = &e {
                    *iterations += *it;
                }
                Err(e)
            }
        }
    }

    /// Error-controlled adaptive transient integration over `horizon_s`
    /// seconds under constant `power`, starting from `initial`.
    ///
    /// Each step solves one full backward-Euler step of `dt` and two
    /// half-steps; their difference yields a weighted-RMS local-error
    /// estimate that `ctrl` (see [`crate::adaptive`]) accepts or rejects,
    /// adapting `dt` through a clamped PI rule over power-of-two rungs.
    /// The accepted state is always the (more accurate) two-half-step
    /// solution. Diverging solves — solver errors or non-finite states —
    /// are rolled back, never propagated: the engine shrinks `dt`, and at
    /// the degradation floor (`dt_min`, or the rejection-streak budget)
    /// it force-accepts a finite over-tolerance state or *holds* the
    /// previous state across an unsolvable interval. Exhausting a CG or
    /// wall-clock budget degrades to plain fixed steps (economy mode).
    /// The returned field is therefore always finite, and every accept,
    /// reject, hold, and budget exhaustion is visible through
    /// [`xylem_obs`] counters, gauges, and JSONL events.
    ///
    /// `ctrl` carries state across calls: a DTM loop calls this once per
    /// control period and the step size, PI history, and budget
    /// accounting persist (and can be checkpointed) between calls.
    ///
    /// # Errors
    ///
    /// Only for invalid *inputs* — a bad `horizon_s`, a mismatched or
    /// non-finite `initial`. Solver failures during stepping degrade as
    /// described instead of erroring.
    pub fn transient_adaptive(
        &self,
        power: &PowerMap,
        initial: &TemperatureField,
        horizon_s: f64,
        ctrl: &mut AdaptiveController,
        ws: &mut SolverWorkspace,
    ) -> Result<TemperatureField, ThermalError> {
        if !(horizon_s.is_finite() && horizon_s > 0.0) {
            return Err(ThermalError::InvalidTimeStep { dt: horizon_s });
        }
        let n = self.node_count();
        if initial.node_count() != n {
            return Err(ThermalError::PowerMapMismatch {
                map_nodes: initial.node_count(),
                model_nodes: n,
            });
        }
        if let Some(node) = initial.raw().iter().position(|t| !t.is_finite()) {
            return Err(ThermalError::NonFiniteTemperature { node });
        }

        let mut rhs = std::mem::take(&mut ws.rhs);
        let mut rhs0 = std::mem::take(&mut ws.rhs0);
        let mut x_full = std::mem::take(&mut ws.x_full);
        let mut x_half = std::mem::take(&mut ws.x_half);
        let result = (|| -> Result<_, ThermalError> {
            self.assemble_rhs_into(power, &mut rhs0)?;
            let mut x = initial.raw().to_vec();
            let mut stats = SolveStats::default();
            let mut recovery = RecoveryReport::default();
            let mut t = 0.0_f64;
            // Relative slop so a remainder step within one ULP-scale of
            // the horizon terminates the loop.
            let t_end = horizon_s * (1.0 - 1e-12);
            while t < t_end {
                let dt = ctrl.dt().min(horizon_s - t);
                let started = std::time::Instant::now();
                let mut iters = 0usize;
                let mut attempt_recovery = RecoveryReport::default();

                // Attempt the step. Economy mode: one plain BE step, no
                // error estimate. Normal mode: step-doubling (full +
                // two halves); the half-step state is the candidate.
                let economy = ctrl.in_economy();
                let solves: u64 = if economy { 1 } else { 3 };
                let attempt = if economy {
                    x_full.clear();
                    x_full.extend_from_slice(&x);
                    self.be_step_inplace(
                        dt,
                        &rhs0,
                        &mut rhs,
                        &mut x_full,
                        ws,
                        &mut attempt_recovery,
                        &mut iters,
                    )
                    .map(|residual| (residual, f64::NAN))
                } else {
                    x_full.clear();
                    x_full.extend_from_slice(&x);
                    x_half.clear();
                    x_half.extend_from_slice(&x);
                    let half = dt * 0.5;
                    self.be_step_inplace(
                        dt,
                        &rhs0,
                        &mut rhs,
                        &mut x_full,
                        ws,
                        &mut attempt_recovery,
                        &mut iters,
                    )
                    .and_then(|_| {
                        self.be_step_inplace(
                            half,
                            &rhs0,
                            &mut rhs,
                            &mut x_half,
                            ws,
                            &mut attempt_recovery,
                            &mut iters,
                        )
                    })
                    .and_then(|_| {
                        self.be_step_inplace(
                            half,
                            &rhs0,
                            &mut rhs,
                            &mut x_half,
                            ws,
                            &mut attempt_recovery,
                            &mut iters,
                        )
                    })
                    .map(|residual| (residual, ctrl.error_norm(&x_half, &x_full)))
                };
                ctrl.note_cost(solves, iters as u64, started.elapsed().as_secs_f64());
                stats.iterations += iters;
                recovery.merge(&attempt_recovery);

                // Decide the outcome. `action` doubles as the JSONL label.
                // The streak budget is sampled before the controller
                // mutates it, so the "which budget pushed us to the
                // floor" report is accurate.
                let streak_exhausted = ctrl.reject_streak_exhausted();
                let mut err_for_event = f64::NAN;
                let action = match attempt {
                    Ok((residual, _err)) if economy => {
                        x.copy_from_slice(&x_full);
                        stats.residual = residual;
                        t += dt;
                        ctrl.on_economy_accept();
                        "accept"
                    }
                    Ok((residual, err)) if err.is_finite() && err <= 1.0 => {
                        x.copy_from_slice(&x_half);
                        stats.residual = residual;
                        t += dt;
                        err_for_event = err;
                        ctrl.on_accept(err);
                        "accept"
                    }
                    Ok((residual, err)) if err.is_finite() => {
                        // Error over tolerance: reject and shrink, unless
                        // already at the floor — then keep the finite
                        // half-step state rather than stall.
                        err_for_event = err;
                        if ctrl.at_dt_min() || ctrl.reject_streak_exhausted() {
                            x.copy_from_slice(&x_half);
                            stats.residual = residual;
                            t += dt;
                            ctrl.on_force_accept(err);
                            "force_accept"
                        } else {
                            ctrl.on_reject();
                            "reject"
                        }
                    }
                    // Divergence: a solve failed or produced a non-finite
                    // state (a non-finite error norm means the same).
                    // Roll back; shrink if possible, otherwise hold the
                    // previous state across the interval.
                    _ => {
                        if ctrl.at_dt_min() || ctrl.reject_streak_exhausted() {
                            t += dt;
                            ctrl.on_hold();
                            "hold"
                        } else {
                            ctrl.on_reject();
                            "reject"
                        }
                    }
                };

                match action {
                    "accept" | "force_accept" => xylem_obs::incr(Counter::AdaptiveAccepts),
                    "reject" => xylem_obs::incr(Counter::AdaptiveRejects),
                    _ => xylem_obs::incr(Counter::AdaptiveHolds),
                }
                xylem_obs::set_gauge(Gauge::AdaptiveDtS, ctrl.dt());
                xylem_obs::set_gauge(Gauge::AdaptiveLte, err_for_event);
                if xylem_obs::enabled() {
                    xylem_obs::event("adaptive_step")
                        .f64("t_s", t)
                        .f64("dt_s", dt)
                        .f64("err", err_for_event)
                        .str("action", action)
                        .u64("iters", iters as u64)
                        .bool("economy", economy)
                        .emit();
                }

                // The rejection-streak budget forcing a step through the
                // floor is an exhaustion event too (unlike the dt_min
                // clamp, which is an ordinary part of the ladder).
                if streak_exhausted && matches!(action, "force_accept" | "hold") {
                    xylem_obs::incr(Counter::BudgetExhaustions);
                    if xylem_obs::enabled() {
                        xylem_obs::event("adaptive_budget")
                            .str("which", "reject_streak")
                            .f64("t_s", t)
                            .str("mode", "forced")
                            .emit();
                    }
                }

                // Budgets are checked after the attempt is charged; the
                // transition to economy mode is reported exactly once.
                if let Some(kind) = ctrl.budget_exhausted() {
                    if ctrl.enter_economy() {
                        xylem_obs::incr(Counter::BudgetExhaustions);
                        if xylem_obs::enabled() {
                            xylem_obs::event("adaptive_budget")
                                .str("which", kind.label())
                                .f64("t_s", t)
                                .str("mode", "economy")
                                .emit();
                        }
                    }
                }
            }
            Ok((x, stats, recovery))
        })();
        ws.rhs = rhs;
        ws.rhs0 = rhs0;
        ws.x_full = x_full;
        ws.x_half = x_half;
        let (x, stats, recovery) = result?;
        // No debug_check_solution here: degraded (forced/held) states are
        // legitimately over-tolerance. The engine guarantees finiteness.
        Ok(TemperatureField::new(self, x, stats, recovery))
    }

    /// Total heat leaving through ambient paths (convection + board) for a
    /// temperature field. At steady state this equals the injected
    /// power — the conservation check used by the validation tests.
    pub fn ambient_outflow(&self, temps: &TemperatureField) -> Watts {
        let flows: Vec<f64> = self
            .g_ambient
            .iter()
            .zip(temps.raw())
            .map(|(g, t)| g * (t - self.ambient))
            .collect();
        Watts::new(crate::reduce::pairwise_sum(&flows))
    }

    pub(crate) fn grid_cells(&self) -> usize {
        self.grid.cells()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Layer;
    use crate::material::{D2D_AVERAGE, SILICON};
    use crate::package::Package;
    use crate::stack::Stack;

    fn model(nx: usize) -> ThermalModel {
        let die = 8e-3;
        let stack = Stack::builder(die, die)
            .package(Package::default_for_die(die, die))
            .layer(Layer::uniform("si", 100e-6, SILICON.clone()))
            .layer(Layer::uniform("d2d", 20e-6, D2D_AVERAGE.clone()))
            .layer(Layer::uniform("proc", 100e-6, SILICON.clone()))
            .build()
            .unwrap();
        stack.discretize(GridSpec::new(nx, nx)).unwrap()
    }

    #[test]
    fn node_count_is_layers_times_cells_plus_extras() {
        let m = model(8);
        assert_eq!(m.node_count(), (3 + 3) * 64 + 12);
        assert_eq!(m.n_user_layers(), 3);
    }

    #[test]
    fn symmetry_of_adjacency() {
        let m = model(6);
        for (i, nbrs) in m.neighbors.iter().enumerate() {
            for &(j, g) in nbrs {
                let back = m.neighbors[j as usize]
                    .iter()
                    .find(|&&(k, _)| k as usize == i)
                    .map(|&(_, gb)| gb);
                assert_eq!(back, Some(g), "edge {i}->{j} not symmetric");
            }
        }
    }

    #[test]
    fn steady_state_uniform_power_is_symmetric() {
        let m = model(8);
        let mut p = PowerMap::zeros(&m);
        p.add_uniform_layer_power(2, Watts::new(10.0));
        let t = m.steady_state(&p).unwrap();
        let s = t.layer_slice(2);
        let g = m.grid();
        // 4-fold symmetry of the temperature field.
        for iy in 0..8 {
            for ix in 0..8 {
                let a = s[g.index(ix, iy)];
                let b = s[g.index(7 - ix, iy)];
                let c = s[g.index(ix, 7 - iy)];
                assert!((a - b).abs() < 1e-6, "x mirror {a} {b}");
                assert!((a - c).abs() < 1e-6, "y mirror {a} {c}");
            }
        }
    }

    #[test]
    fn energy_conservation_at_steady_state() {
        let m = model(8);
        let mut p = PowerMap::zeros(&m);
        p.add_uniform_layer_power(0, Watts::new(4.0));
        p.add_uniform_layer_power(2, Watts::new(16.0));
        let t = m.steady_state(&p).unwrap();
        let out = m.ambient_outflow(&t);
        assert!(
            (out.get() - 20.0).abs() < 0.02,
            "outflow {out}, expected 20 W"
        );
    }

    #[test]
    fn hotter_with_more_power() {
        let m = model(8);
        let mut p1 = PowerMap::zeros(&m);
        p1.add_uniform_layer_power(2, Watts::new(10.0));
        let mut p2 = PowerMap::zeros(&m);
        p2.add_uniform_layer_power(2, Watts::new(20.0));
        let t1 = m.steady_state(&p1).unwrap();
        let t2 = m.steady_state(&p2).unwrap();
        assert!(t2.hotspot_of_layer(2).1 > t1.hotspot_of_layer(2).1);
    }

    #[test]
    fn linearity_superposition() {
        // T(a+b) - Tamb == (T(a)-Tamb) + (T(b)-Tamb) for a linear model.
        let m = model(6);
        let mut pa = PowerMap::zeros(&m);
        pa.add_cell_power(2, 1, 1, Watts::new(3.0));
        let mut pb = PowerMap::zeros(&m);
        pb.add_cell_power(2, 4, 4, Watts::new(5.0));
        let mut pab = PowerMap::zeros(&m);
        pab.add_cell_power(2, 1, 1, Watts::new(3.0));
        pab.add_cell_power(2, 4, 4, Watts::new(5.0));
        let ta = m.steady_state(&pa).unwrap();
        let tb = m.steady_state(&pb).unwrap();
        let tab = m.steady_state(&pab).unwrap();
        let amb = m.ambient().get();
        for i in 0..m.node_count() {
            let lhs = tab.raw()[i] - amb;
            let rhs = (ta.raw()[i] - amb) + (tb.raw()[i] - amb);
            assert!((lhs - rhs).abs() < 1e-5, "node {i}: {lhs} vs {rhs}");
        }
    }

    #[test]
    fn transient_approaches_steady_state() {
        let m = model(6);
        let mut p = PowerMap::zeros(&m);
        p.add_uniform_layer_power(2, Watts::new(12.0));
        let steady = m.steady_state(&p).unwrap();
        let init = TemperatureField::uniform(&m, m.ambient());
        // Long integration: 3000 x 0.1 s = 300 s >> the sink's ~40 s time
        // constant (C_sink ~ 86 J/K times R_conv = 0.45 K/W).
        let t = m.transient(&p, &init, 0.1, 3000).unwrap();
        let (_, hot_tr) = t.hotspot_of_layer(2);
        let (_, hot_ss) = steady.hotspot_of_layer(2);
        assert!(
            (hot_tr - hot_ss).abs() < 0.5,
            "transient {hot_tr} vs steady {hot_ss}"
        );
    }

    #[test]
    fn transient_monotone_heating_from_ambient() {
        let m = model(6);
        let mut p = PowerMap::zeros(&m);
        p.add_uniform_layer_power(2, Watts::new(12.0));
        let t0 = TemperatureField::uniform(&m, m.ambient());
        let t1 = m.transient(&p, &t0, 1e-3, 10).unwrap();
        let t2 = m.transient(&p, &t1, 1e-3, 10).unwrap();
        assert!(t1.hotspot_of_layer(2).1 > m.ambient());
        assert!(t2.hotspot_of_layer(2).1 > t1.hotspot_of_layer(2).1);
    }

    #[test]
    fn csr_and_adjacency_solvers_agree() {
        let m = model(8);
        let mut p = PowerMap::zeros(&m);
        p.add_uniform_layer_power(2, Watts::new(15.0));
        p.add_cell_power(0, 2, 5, Watts::new(1.5));
        let csr = m.steady_state(&p).unwrap();
        let adj = m.steady_state_adjacency(&p).unwrap();
        for (a, b) in csr.raw().iter().zip(adj.raw()) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn warm_started_steady_state_matches_cold() {
        let mut m = model(8);
        // Jacobi: on a model this small the default AMG solve is
        // already near the iteration floor cold, leaving no headroom
        // for the warm start to show up in the count.
        m.set_solver_options(SolverOptions {
            preconditioner: crate::solve::PreconditionerKind::Jacobi,
            ..*m.solver_options()
        });
        let mut p = PowerMap::zeros(&m);
        p.add_uniform_layer_power(2, Watts::new(10.0));
        let mut ws = crate::solve::SolverWorkspace::new();
        let cold = m.steady_state_from(&p, None, &mut ws).unwrap();
        // Warm-start a slightly different load from the first solution.
        let mut p2 = PowerMap::zeros(&m);
        p2.add_uniform_layer_power(2, Watts::new(11.0));
        let warm = m.steady_state_from(&p2, Some(&cold), &mut ws).unwrap();
        let scratch = m.steady_state(&p2).unwrap();
        assert!(warm.stats().iterations < cold.stats().iterations);
        for (a, b) in warm.raw().iter().zip(scratch.raw()) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn transient_cold_guess_matches_warm_solution() {
        let m = model(6);
        let mut p = PowerMap::zeros(&m);
        p.add_uniform_layer_power(2, Watts::new(12.0));
        let init = m.steady_state(&p).unwrap();
        let ambient = TemperatureField::uniform(&m, m.ambient());
        let mut ws = crate::solve::SolverWorkspace::new();
        let warm = m.transient_with(&p, &init, 1e-3, 1, None, &mut ws).unwrap();
        let cold = m
            .transient_with(&p, &init, 1e-3, 1, Some(&ambient), &mut ws)
            .unwrap();
        // Same linear system either way; the guess only changes the
        // iteration count, not the converged step. The BE right-hand side
        // carries the large C/dt terms, so the relative CG tolerance is
        // looser in absolute degrees than for steady state.
        assert!(warm.stats().iterations <= cold.stats().iterations);
        for (a, b) in warm.raw().iter().zip(cold.raw()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn preconditioner_choice_does_not_change_solution() {
        use crate::solve::PreconditionerKind;
        let mut m = model(6);
        let mut p = PowerMap::zeros(&m);
        p.add_uniform_layer_power(2, Watts::new(9.0));
        let mut fields = Vec::new();
        for kind in [
            PreconditionerKind::Jacobi,
            PreconditionerKind::Ssor,
            PreconditionerKind::Ic0,
        ] {
            let mut opts = *m.solver_options();
            opts.preconditioner = kind;
            m.set_solver_options(opts);
            fields.push(m.steady_state(&p).unwrap());
        }
        for f in &fields[1..] {
            for (a, b) in f.raw().iter().zip(fields[0].raw()) {
                assert!((a - b).abs() < 1e-6, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn transient_ladder_recovers_from_a_starved_iteration_cap() {
        // An ill-posed solver configuration — an iteration cap far below
        // what backward Euler needs — must not abort the transient: the
        // fallback ladder escalates and the recovered trajectory matches
        // a tight-tolerance reference within 1e-6.
        let mut m = model(6);
        let mut p = PowerMap::zeros(&m);
        p.add_uniform_layer_power(2, Watts::new(12.0));
        let init = TemperatureField::uniform(&m, m.ambient());
        // The BE right-hand side carries large C/dt terms, so a relative
        // CG tolerance is looser in absolute degrees than steady state;
        // tighten it for both runs so 1e-6 agreement is meaningful.
        m.set_solver_options(SolverOptions {
            tolerance: 1e-12,
            ..*m.solver_options()
        });
        let reference = m.transient(&p, &init, 1e-3, 5).unwrap();
        assert!(
            reference.recovery().is_empty(),
            "healthy run needs no ladder"
        );

        m.set_solver_options(SolverOptions {
            max_iterations: 2,
            ..*m.solver_options()
        });
        let recovered = m.transient(&p, &init, 1e-3, 5).unwrap();
        let report = recovered.recovery();
        assert!(!report.is_empty(), "ladder should have fired");
        assert!(report.recoveries >= 1);
        assert!(report.events.iter().any(|e| e.recovered));
        for (a, b) in recovered.raw().iter().zip(reference.raw()) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn from_raw_validates_shape_and_finiteness() {
        let m = model(4);
        let good = TemperatureField::from_raw(&m, vec![m.ambient().get(); m.node_count()]);
        assert!(good.is_ok());
        assert!(TemperatureField::from_raw(&m, vec![0.0; 3]).is_err());
        let mut bad = vec![m.ambient().get(); m.node_count()];
        bad[5] = f64::NAN;
        assert!(matches!(
            TemperatureField::from_raw(&m, bad),
            Err(ThermalError::NonFiniteTemperature { node: 5 })
        ));
    }

    #[test]
    fn mismatched_power_map_rejected() {
        let m1 = model(6);
        let m2 = model(8);
        let p = PowerMap::zeros(&m1);
        assert!(m2.steady_state(&p).is_err());
    }

    #[test]
    fn bad_time_step_rejected() {
        let m = model(4);
        let p = PowerMap::zeros(&m);
        let t0 = TemperatureField::uniform(&m, m.ambient());
        assert!(m.transient(&p, &t0, 0.0, 1).is_err());
        assert!(m.transient(&p, &t0, f64::NAN, 1).is_err());
    }
}
