//! Error-controlled adaptive time stepping for the transient engine.
//!
//! The fixed-`dt` backward-Euler loop in [`crate::model::ThermalModel::
//! transient_with`] has no accuracy control: a too-large step smears
//! transients past the throttle threshold, a too-small one wastes CG
//! solves. This module supplies the *policy* half of the adaptive
//! engine (`ThermalModel::transient_adaptive` is the mechanism):
//!
//! - [`AdaptiveOptions`] — tolerances, step bounds, controller gains,
//!   and run budgets, all validated before a run starts;
//! - [`AdaptiveController`] — the mutable stepping state: current step
//!   size, PI error history, accept/reject/hold counters, and budget
//!   accounting. It is serialisable so a DTM checkpoint can capture it
//!   and resume bit-identically.
//!
//! **Step-size rungs.** The controller only ever proposes steps of the
//! form `dt_min * 2^k` ("rungs"). The PI controller computes a real
//! factor, but the result is snapped *down* to the nearest rung. This
//! keeps the set of distinct operators tiny — step-doubling uses `dt`
//! and `dt/2`, both rungs — so the model's keyed transient-operator
//! cache almost always hits instead of re-running AMG setup every step.
//! Rung arithmetic is exact (power-of-two scaling), so replaying a
//! checkpointed controller reproduces the same `dt` sequence bitwise.
//!
//! **PI controller (accepted steps).** With the weighted-RMS error
//! `err` (accept iff `err <= 1`), the next step is
//! `dt * clamp(safety * err^(-pi_alpha) * err_prev^(pi_beta),
//! shrink_min, growth_max)`, snapped to a rung in `[dt_min, dt_max]`.
//! `err_prev` is updated only on accepted steps (Gustafsson's rule).
//!
//! **Rejection and degradation ladder.** A step is rejected when its
//! error exceeds tolerance or any solve in it diverges (solver error or
//! non-finite state); rejection rolls the state back and drops `dt` one
//! rung. At `dt_min` (or once `max_reject_streak` consecutive
//! rejections have burned), the engine stops retrying: an
//! error-too-large step is *force-accepted* (the finite two-half-step
//! solution is kept) and a diverging step becomes a *hold* (state
//! carried unchanged across the interval). Holds double `dt` so a dead
//! zone is crossed in geometrically few steps; both outcomes are
//! reported through counters and JSONL events, and neither panics.
//!
//! **Budgets.** Optional caps on total CG iterations and accumulated
//! solve wall-clock. When one trips, the engine degrades to *economy
//! mode* — plain single BE steps at the current `dt`, no step-doubling
//! error estimate — rather than aborting; the exhaustion is reported
//! once. Wall-clock budgets accumulate elapsed seconds (never absolute
//! timestamps), but are inherently non-reproducible across machines;
//! leave `max_wall_s` unset for bit-reproducible runs.
//!
//! See DESIGN.md §15 for the full derivation and semantics table.

use serde::{Deserialize, Serialize};

use crate::error::ThermalError;

/// Floor applied to error estimates before feeding the PI controller,
/// so a perfectly-resolved step (err ≈ 0) cannot demand infinite
/// growth.
const ERR_FLOOR: f64 = 1e-12;

/// Configuration for error-controlled adaptive transient stepping.
///
/// All fields are plain numbers so the whole struct is `Copy`,
/// serialisable (it rides inside `DtmPolicy` and run fingerprints), and
/// cheap to validate. Construct with [`Default`] and override fields.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveOptions {
    /// Relative tolerance on the per-step local truncation error.
    pub rtol: f64,
    /// Absolute tolerance (°C) on the per-step local truncation error.
    pub atol: f64,
    /// Smallest permitted step (s); also the base of the rung ladder.
    pub dt_min: f64,
    /// Largest permitted step (s). Effective maximum is the largest
    /// rung `dt_min * 2^k` not exceeding this.
    pub dt_max: f64,
    /// Initial step proposal (s), snapped down to a rung on start.
    pub dt_init: f64,
    /// Safety factor applied to the PI growth estimate, in `(0, 1]`.
    pub safety: f64,
    /// Upper clamp on per-step growth, `>= 1`.
    pub growth_max: f64,
    /// Lower clamp on per-step shrink, in `(0, 1)`.
    pub shrink_min: f64,
    /// Proportional exponent on the current error, in `(0, 1]`.
    pub pi_alpha: f64,
    /// Integral exponent on the previous accepted error, in `[0, 1]`.
    pub pi_beta: f64,
    /// Consecutive rejections tolerated before the step is forced
    /// through (force-accept or hold). At least 1.
    pub max_reject_streak: u32,
    /// Optional budget: total CG iterations across the run. Exhaustion
    /// switches the engine to economy mode (single BE steps).
    pub max_cg_iterations: Option<u64>,
    /// Optional budget: accumulated solve wall-clock seconds.
    /// Non-reproducible across machines; leave unset for deterministic
    /// runs.
    pub max_wall_s: Option<f64>,
}

impl Default for AdaptiveOptions {
    fn default() -> Self {
        AdaptiveOptions {
            rtol: 1e-3,
            atol: 1e-3,
            dt_min: 1e-6,
            dt_max: 1.0,
            dt_init: 1e-4,
            safety: 0.9,
            growth_max: 2.0,
            shrink_min: 0.25,
            pi_alpha: 0.35,
            pi_beta: 0.2,
            max_reject_streak: 8,
            max_cg_iterations: None,
            max_wall_s: None,
        }
    }
}

impl AdaptiveOptions {
    /// Checks every field is in range, reporting the first violation as
    /// [`ThermalError::InvalidAdaptiveConfig`].
    pub fn validate(&self) -> Result<(), ThermalError> {
        let bad = |what: &'static str, value: f64| -> Result<(), ThermalError> {
            Err(ThermalError::InvalidAdaptiveConfig { what, value })
        };
        if !(self.rtol.is_finite() && self.rtol > 0.0) {
            return bad("rtol", self.rtol);
        }
        if !(self.atol.is_finite() && self.atol > 0.0) {
            return bad("atol", self.atol);
        }
        if !(self.dt_min.is_finite() && self.dt_min > 0.0) {
            return bad("dt_min", self.dt_min);
        }
        if !(self.dt_max.is_finite() && self.dt_max >= self.dt_min) {
            return bad("dt_max", self.dt_max);
        }
        if !(self.dt_init.is_finite() && self.dt_init >= self.dt_min && self.dt_init <= self.dt_max)
        {
            return bad("dt_init", self.dt_init);
        }
        if !(self.safety.is_finite() && self.safety > 0.0 && self.safety <= 1.0) {
            return bad("safety", self.safety);
        }
        if !(self.growth_max.is_finite() && self.growth_max >= 1.0) {
            return bad("growth_max", self.growth_max);
        }
        if !(self.shrink_min.is_finite() && self.shrink_min > 0.0 && self.shrink_min < 1.0) {
            return bad("shrink_min", self.shrink_min);
        }
        if !(self.pi_alpha.is_finite() && self.pi_alpha > 0.0 && self.pi_alpha <= 1.0) {
            return bad("pi_alpha", self.pi_alpha);
        }
        if !(self.pi_beta.is_finite() && (0.0..=1.0).contains(&self.pi_beta)) {
            return bad("pi_beta", self.pi_beta);
        }
        if self.max_reject_streak == 0 {
            return bad("max_reject_streak", 0.0);
        }
        if let Some(cg) = self.max_cg_iterations {
            if cg == 0 {
                return bad("max_cg_iterations", 0.0);
            }
        }
        if let Some(w) = self.max_wall_s {
            if !(w.is_finite() && w > 0.0) {
                return bad("max_wall_s", w);
            }
        }
        Ok(())
    }
}

/// Which optional run budget tripped (see
/// [`AdaptiveController::budget_exhausted`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetKind {
    /// Total CG iterations exceeded `max_cg_iterations`.
    CgIterations,
    /// Accumulated solve wall-clock exceeded `max_wall_s`.
    WallClock,
}

impl BudgetKind {
    /// Stable label used in JSONL events.
    pub fn label(self) -> &'static str {
        match self {
            BudgetKind::CgIterations => "cg_iterations",
            BudgetKind::WallClock => "wall_clock",
        }
    }
}

/// Cumulative outcome counters of an adaptive run, for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveSummary {
    /// Steps accepted on their error estimate.
    pub accepted: u64,
    /// Steps force-accepted at the degradation floor.
    pub forced: u64,
    /// Steps rejected and rolled back.
    pub rejected: u64,
    /// Hold steps (state carried unchanged across the interval).
    pub holds: u64,
    /// Backward-Euler solves performed (including failed attempts).
    pub be_solves: u64,
    /// Step size after the last controller update (s).
    pub final_dt_s: f64,
    /// Whether the run ended in economy mode (a budget exhausted).
    pub economy: bool,
}

/// Mutable state of the adaptive stepper: step size, PI history, and
/// budget accounting.
///
/// Serialisable with bit-exact float round-tripping so DTM checkpoints
/// can persist it and resume the `dt` sequence identically.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveController {
    opts: AdaptiveOptions,
    /// Current proposed step (always a rung in `[dt_min, top_rung]`).
    dt: f64,
    /// WRMS error of the last accepted step (Gustafsson history).
    err_prev: f64,
    accepted: u64,
    forced: u64,
    rejected: u64,
    holds: u64,
    reject_streak: u32,
    be_solves: u64,
    cg_used: u64,
    wall_used_s: f64,
    economy: bool,
}

impl AdaptiveController {
    /// Builds a controller from validated options. The initial step is
    /// `dt_init` snapped down to a rung.
    pub fn new(opts: AdaptiveOptions) -> Result<Self, ThermalError> {
        opts.validate()?;
        let mut ctrl = AdaptiveController {
            opts,
            dt: opts.dt_min,
            err_prev: 1.0,
            accepted: 0,
            forced: 0,
            rejected: 0,
            holds: 0,
            reject_streak: 0,
            be_solves: 0,
            cg_used: 0,
            wall_used_s: 0.0,
            economy: false,
        };
        ctrl.dt = ctrl.snap_down(opts.dt_init);
        Ok(ctrl)
    }

    /// The options this controller was built with.
    pub fn options(&self) -> &AdaptiveOptions {
        &self.opts
    }

    /// Current proposed step size (s).
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Backward-Euler solves performed so far (including failures).
    pub fn be_solves(&self) -> u64 {
        self.be_solves
    }

    /// Whether a budget has tripped and the engine runs in economy mode.
    pub fn in_economy(&self) -> bool {
        self.economy
    }

    /// Consecutive rejections of the current step so far.
    pub fn reject_streak(&self) -> u32 {
        self.reject_streak
    }

    /// Cumulative outcome counters.
    pub fn summary(&self) -> AdaptiveSummary {
        AdaptiveSummary {
            accepted: self.accepted,
            forced: self.forced,
            rejected: self.rejected,
            holds: self.holds,
            be_solves: self.be_solves,
            final_dt_s: self.dt,
            economy: self.economy,
        }
    }

    /// Largest rung `dt_min * 2^k <= dt_max`. Exact: rungs are the
    /// base times a power of two.
    fn top_rung(&self) -> f64 {
        let k = (self.opts.dt_max / self.opts.dt_min).log2().floor();
        self.opts.dt_min * 2f64.powi(k as i32)
    }

    /// Snaps `dt` down to the nearest rung, clamped to
    /// `[dt_min, top_rung]`.
    fn snap_down(&self, dt: f64) -> f64 {
        if !(dt.is_finite() && dt > self.opts.dt_min) {
            return self.opts.dt_min;
        }
        let k = (dt / self.opts.dt_min).log2().floor();
        let rung = self.opts.dt_min * 2f64.powi(k as i32);
        rung.min(self.top_rung())
    }

    /// Weighted-RMS local-truncation-error norm between the fine
    /// (two-half-step) and coarse (one-full-step) solutions. `<= 1`
    /// means the step is within tolerance. NaN/inf inputs propagate to
    /// a non-finite norm, which callers treat as divergence.
    pub fn error_norm(&self, fine: &[f64], coarse: &[f64]) -> f64 {
        let n = fine.len().max(1);
        // Folded with the fixed pairwise tree so the norm — and with it
        // every accept/reject decision — has one canonical value
        // independent of how this is ever chunked or parallelized.
        let sq: Vec<f64> = fine
            .iter()
            .zip(coarse.iter())
            .map(|(a, b)| {
                let scale = self.opts.atol + self.opts.rtol * a.abs();
                let r = (a - b) / scale;
                r * r
            })
            .collect();
        (crate::reduce::pairwise_sum(&sq) / n as f64).sqrt()
    }

    /// Records an accepted step with WRMS error `err` and advances the
    /// PI controller.
    pub fn on_accept(&mut self, err: f64) {
        self.accepted += 1;
        self.reject_streak = 0;
        let e = err.max(ERR_FLOOR);
        let factor = (self.opts.safety
            * e.powf(-self.opts.pi_alpha)
            * self.err_prev.max(ERR_FLOOR).powf(self.opts.pi_beta))
        .clamp(self.opts.shrink_min, self.opts.growth_max);
        self.dt = self.snap_down((self.dt * factor).max(self.opts.dt_min));
        self.err_prev = e;
    }

    /// Records a rejected step: one rung down, streak up. The PI error
    /// history is untouched (it tracks accepted steps only).
    pub fn on_reject(&mut self) {
        self.rejected += 1;
        self.reject_streak = self.reject_streak.saturating_add(1);
        self.dt = (self.dt * 0.5).max(self.opts.dt_min);
    }

    /// Records a force-accepted step (error still over tolerance at the
    /// degradation floor, but the state is finite and kept).
    pub fn on_force_accept(&mut self, err: f64) {
        self.forced += 1;
        self.reject_streak = 0;
        self.err_prev = err.max(ERR_FLOOR);
    }

    /// Records a hold (unsolvable interval skipped with the state
    /// unchanged). Doubles `dt` so a dead zone is crossed in
    /// geometrically few holds.
    pub fn on_hold(&mut self) {
        self.holds += 1;
        self.reject_streak = 0;
        self.dt = self.snap_down(self.dt * 2.0);
    }

    /// Records an accepted economy-mode step (no error estimate; `dt`
    /// unchanged).
    pub fn on_economy_accept(&mut self) {
        self.accepted += 1;
        self.reject_streak = 0;
    }

    /// True once the step cannot shrink further.
    pub fn at_dt_min(&self) -> bool {
        self.dt <= self.opts.dt_min
    }

    /// True once `max_reject_streak` consecutive rejections have burned.
    pub fn reject_streak_exhausted(&self) -> bool {
        self.reject_streak >= self.opts.max_reject_streak
    }

    /// Charges the cost of one attempted step against the budgets.
    pub fn note_cost(&mut self, solves: u64, cg_iterations: u64, wall_s: f64) {
        self.be_solves += solves;
        self.cg_used += cg_iterations;
        if wall_s.is_finite() && wall_s >= 0.0 {
            self.wall_used_s += wall_s;
        }
    }

    /// Which budget, if any, is exhausted.
    pub fn budget_exhausted(&self) -> Option<BudgetKind> {
        if let Some(max) = self.opts.max_cg_iterations {
            if self.cg_used >= max {
                return Some(BudgetKind::CgIterations);
            }
        }
        if let Some(max) = self.opts.max_wall_s {
            if self.wall_used_s >= max {
                return Some(BudgetKind::WallClock);
            }
        }
        None
    }

    /// Enters economy mode. Returns `true` on the first call (so the
    /// caller reports the transition exactly once).
    pub fn enter_economy(&mut self) -> bool {
        let first = !self.economy;
        self.economy = true;
        first
    }

    /// Notifies the controller of an input discontinuity (e.g. a DVFS
    /// level change): the step is refined back to at most the initial
    /// rung and the PI history reset, so control decisions land on
    /// accurately resolved temperatures.
    pub fn notify_discontinuity(&mut self) {
        self.dt = self.dt.min(self.snap_down(self.opts.dt_init));
        self.err_prev = 1.0;
        self.reject_streak = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> AdaptiveOptions {
        AdaptiveOptions::default()
    }

    #[test]
    fn default_options_validate() {
        assert!(opts().validate().is_ok());
    }

    #[test]
    fn validation_rejects_out_of_range_fields() {
        let cases: Vec<(AdaptiveOptions, &str)> = vec![
            (
                AdaptiveOptions {
                    rtol: 0.0,
                    ..opts()
                },
                "rtol",
            ),
            (
                AdaptiveOptions {
                    atol: f64::NAN,
                    ..opts()
                },
                "atol",
            ),
            (
                AdaptiveOptions {
                    dt_min: -1.0,
                    ..opts()
                },
                "dt_min",
            ),
            (
                AdaptiveOptions {
                    dt_max: 1e-9,
                    ..opts()
                },
                "dt_max",
            ),
            (
                AdaptiveOptions {
                    dt_init: 10.0,
                    ..opts()
                },
                "dt_init",
            ),
            (
                AdaptiveOptions {
                    safety: 1.5,
                    ..opts()
                },
                "safety",
            ),
            (
                AdaptiveOptions {
                    growth_max: 0.5,
                    ..opts()
                },
                "growth_max",
            ),
            (
                AdaptiveOptions {
                    shrink_min: 1.0,
                    ..opts()
                },
                "shrink_min",
            ),
            (
                AdaptiveOptions {
                    pi_alpha: 0.0,
                    ..opts()
                },
                "pi_alpha",
            ),
            (
                AdaptiveOptions {
                    pi_beta: -0.1,
                    ..opts()
                },
                "pi_beta",
            ),
            (
                AdaptiveOptions {
                    max_reject_streak: 0,
                    ..opts()
                },
                "max_reject_streak",
            ),
            (
                AdaptiveOptions {
                    max_cg_iterations: Some(0),
                    ..opts()
                },
                "max_cg_iterations",
            ),
            (
                AdaptiveOptions {
                    max_wall_s: Some(0.0),
                    ..opts()
                },
                "max_wall_s",
            ),
        ];
        for (o, field) in cases {
            match o.validate() {
                Err(ThermalError::InvalidAdaptiveConfig { what, .. }) => {
                    assert_eq!(what, field);
                }
                other => panic!("expected InvalidAdaptiveConfig for {field}, got {other:?}"),
            }
        }
    }

    #[test]
    fn initial_dt_is_a_rung_at_most_dt_init() {
        let c = AdaptiveController::new(opts()).unwrap();
        let ratio = c.dt() / 1e-6;
        let k = ratio.log2();
        assert!((k - k.round()).abs() < 1e-12, "dt {} is not a rung", c.dt());
        assert!(c.dt() <= 1e-4 && c.dt() >= 1e-6);
    }

    #[test]
    fn accept_grows_and_stays_on_rungs() {
        let mut c = AdaptiveController::new(opts()).unwrap();
        let start = c.dt();
        // Tiny error: controller wants max growth, clamped to 2x.
        c.on_accept(1e-6);
        assert_eq!(c.dt(), start * 2.0);
        // Repeated growth saturates at the top rung <= dt_max.
        for _ in 0..80 {
            c.on_accept(1e-6);
        }
        assert!(c.dt() <= 1.0);
        let k = (c.dt() / 1e-6).log2();
        assert!((k - k.round()).abs() < 1e-12);
    }

    #[test]
    fn reject_halves_and_floors_at_dt_min() {
        let mut c = AdaptiveController::new(opts()).unwrap();
        let start = c.dt();
        c.on_reject();
        assert_eq!(c.dt(), start * 0.5);
        for _ in 0..40 {
            c.on_reject();
        }
        assert_eq!(c.dt(), 1e-6);
        assert!(c.at_dt_min());
        assert!(c.reject_streak_exhausted());
        c.on_hold();
        assert_eq!(c.reject_streak(), 0);
        assert_eq!(c.dt(), 2e-6);
    }

    #[test]
    fn error_norm_matches_hand_computation() {
        let c = AdaptiveController::new(opts()).unwrap();
        // fine = [1.0], coarse = [1.0 + d]: err = d / (atol + rtol*1.0)
        let d = 1e-3;
        let err = c.error_norm(&[1.0], &[1.0 + d]);
        let scale = 1e-3 + 1e-3;
        assert!((err - d / scale).abs() < 1e-12);
        assert!(c.error_norm(&[f64::NAN], &[1.0]).is_nan());
    }

    #[test]
    fn budgets_trip_and_economy_reports_once() {
        let o = AdaptiveOptions {
            max_cg_iterations: Some(100),
            ..opts()
        };
        let mut c = AdaptiveController::new(o).unwrap();
        assert!(c.budget_exhausted().is_none());
        c.note_cost(3, 99, 0.0);
        assert!(c.budget_exhausted().is_none());
        c.note_cost(1, 1, 0.0);
        assert_eq!(c.budget_exhausted(), Some(BudgetKind::CgIterations));
        assert!(c.enter_economy());
        assert!(!c.enter_economy());
        assert!(c.in_economy());
        assert_eq!(c.be_solves(), 4);
    }

    #[test]
    fn discontinuity_refines_back_to_initial_rung() {
        let mut c = AdaptiveController::new(opts()).unwrap();
        let initial = c.dt();
        for _ in 0..20 {
            c.on_accept(1e-6);
        }
        assert!(c.dt() > initial);
        c.notify_discontinuity();
        assert_eq!(c.dt(), initial);
        // A discontinuity never *grows* the step.
        for _ in 0..10 {
            c.on_reject();
        }
        let small = c.dt();
        c.notify_discontinuity();
        assert_eq!(c.dt(), small);
    }

    #[test]
    fn serde_round_trip_is_bit_exact() {
        let mut c = AdaptiveController::new(opts()).unwrap();
        c.on_accept(3.7e-1);
        c.on_reject();
        c.on_accept(9.1e-2);
        c.note_cost(9, 1234, 0.0);
        let json = serde_json::to_string(&c).unwrap();
        let back: AdaptiveController = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
        assert_eq!(c.dt().to_bits(), back.dt().to_bits());
    }

    #[test]
    fn summary_tracks_counters() {
        let mut c = AdaptiveController::new(opts()).unwrap();
        c.on_accept(0.5);
        c.on_reject();
        c.on_force_accept(2.0);
        c.on_hold();
        c.on_economy_accept();
        let s = c.summary();
        assert_eq!(s.accepted, 2);
        assert_eq!(s.rejected, 1);
        assert_eq!(s.forced, 1);
        assert_eq!(s.holds, 1);
        assert_eq!(s.final_dt_s, c.dt());
    }
}
